"""Table 3 — PH vs the algorithm-specific QAOA compiler.

The six MaxCut benchmarks (REG-20-{4,8,12}, Rand-20-{0.1,0.3,0.5}) at the
paper's 20-node size on the Manhattan-65 device; the QAOA compiler runs 20
random seeds as in the paper.

Shape claims checked: PH reduces CNOT count and depth versus the
algorithm-specific compiler while using far less compile time.
"""

import pytest

from repro.analysis import format_table, geomean, table3_compare

from conftest import write_result

_NAMES = ["REG-20-4", "REG-20-8", "REG-20-12", "Rand-20-0.1", "Rand-20-0.3", "Rand-20-0.5"]


@pytest.mark.parametrize("name", _NAMES)
def test_table3_benchmark(benchmark, name, results_dir):
    # Table 3 runs at paper scale (20 nodes) — it is small enough.
    row = benchmark.pedantic(
        table3_compare, args=(name,), kwargs={"scale": "paper", "seeds": 20},
        rounds=1, iterations=1,
    )
    ph, qc = row["ph"], row["qaoa_compiler"]
    table = format_table(
        ["Benchmark", "Compiler", "CNOT", "Single", "Total", "Depth", "Time"],
        [
            [name, "PH", ph["cnot"], ph["single"], ph["total"], ph["depth"], f"{ph['seconds']:.2f}s"],
            [name, "QAOA_Compiler", qc["cnot"], qc["single"], qc["total"], qc["depth"], f"{qc['seconds']:.2f}s"],
        ],
    )
    write_result(results_dir, f"table3_{name}.txt", table)
    assert ph["cnot"] <= qc["cnot"] * 1.10, f"PH lost CNOTs to the QAOA compiler on {name}"
    assert ph["seconds"] < qc["seconds"], "PH should be much faster"


def test_table3_summary(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: [table3_compare(name, scale="paper", seeds=20) for name in _NAMES],
        rounds=1, iterations=1,
    )
    cnot_ratio = geomean([r["ph"]["cnot"] / r["qaoa_compiler"]["cnot"] for r in rows])
    depth_ratio = geomean([r["ph"]["depth"] / r["qaoa_compiler"]["depth"] for r in rows])
    time_ratio = geomean(
        [r["ph"]["seconds"] / r["qaoa_compiler"]["seconds"] for r in rows]
    )
    table = format_table(
        ["Metric", "PH / QAOA_Compiler"],
        [
            ["CNOT geomean ratio", f"{cnot_ratio:.3f}"],
            ["Depth geomean ratio", f"{depth_ratio:.3f}"],
            ["Compile-time ratio", f"{time_ratio:.4f}"],
        ],
    )
    write_result(results_dir, "table3_summary.txt", table)
    assert cnot_ratio < 1.0  # paper: 31.2% CNOT reduction
    # paper: ~1.7% of the compile time; with 8 PH restarts vs 20 baseline
    # seeds the measured ratio is ~0.3, still several-fold faster.
    assert time_ratio < 0.5
