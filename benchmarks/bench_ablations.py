"""Ablations for the design decisions called out in DESIGN.md (D1-D3).

* D1 — GCO's lexicographic block order vs unsorted program order;
* D2 — adaptive junction alignment vs naive plans on the same schedule;
* D3 — Algorithm 3's tree embedding vs synthesize-then-route.
"""

import pytest

from repro.analysis import (
    ablation_alignment,
    ablation_tree_embedding,
    format_table,
)
from repro.core import ft_compile
from repro.workloads import BENCHMARKS

from conftest import write_result


@pytest.mark.parametrize("name", ["UCCSD-8", "N2", "Rand-30"])
def test_d1_lexicographic_vs_program_order(benchmark, name, scale, results_dir):
    program = BENCHMARKS[name].build(scale)
    gco = benchmark.pedantic(
        ft_compile, args=(program,), kwargs={"scheduler": "gco"}, rounds=1, iterations=1
    )
    unsorted_result = ft_compile(program, scheduler="none")
    table = format_table(
        ["Config", "CNOT", "Total gates"],
        [
            ["GCO (lexicographic)", gco.circuit.cnot_count,
             gco.circuit.cnot_count + gco.circuit.single_qubit_count],
            ["program order", unsorted_result.circuit.cnot_count,
             unsorted_result.circuit.cnot_count + unsorted_result.circuit.single_qubit_count],
        ],
    )
    write_result(results_dir, f"ablation_d1_{name}.txt", table)
    # Lexicographic ordering must not lose badly to arbitrary program order.
    # UCCSD generators emit excitation groups that are already junction-rich
    # in program order, and the pairwise junction planner exploits that more
    # than GCO's lexicographic grouping, so the slack is wider than the
    # seed's 1.05 (both configurations improved; program order improved more).
    assert gco.circuit.cnot_count <= unsorted_result.circuit.cnot_count * 1.20
    # The wider slack must come from the planner lifting program order, not
    # from GCO regressing: enforce that the paired planner never costs GCO
    # CNOTs relative to the seed's one-sided rule on the same schedule.
    onesided = ft_compile(program, scheduler="gco", junction_policy="onesided")
    assert gco.circuit.cnot_count <= onesided.circuit.cnot_count


@pytest.mark.parametrize("name", ["UCCSD-8", "N2"])
def test_d2_adaptive_alignment(benchmark, name, scale, results_dir):
    row = benchmark.pedantic(ablation_alignment, args=(name, scale), rounds=1, iterations=1)
    table = format_table(
        ["Config", "CNOT", "Total", "Depth"],
        [
            ["adaptive plans", row["adaptive"]["cnot"], row["adaptive"]["total"],
             row["adaptive"]["depth"]],
            ["naive plans (same schedule)", row["scheduled_naive"]["cnot"],
             row["scheduled_naive"]["total"], row["scheduled_naive"]["depth"]],
        ],
    )
    write_result(results_dir, f"ablation_d2_{name}.txt", table)
    assert row["adaptive"]["cnot"] <= row["scheduled_naive"]["cnot"]


@pytest.mark.parametrize("name", ["REG-20-4", "Rand-20-0.3", "UCCSD-8"])
def test_d3_tree_embedding(benchmark, name, scale, results_dir):
    row = benchmark.pedantic(ablation_tree_embedding, args=(name, scale), rounds=1, iterations=1)
    table = format_table(
        ["Config", "CNOT", "Total", "Depth"],
        [
            ["tree embedding (Alg. 3)", row["tree_embedding"]["cnot"],
             row["tree_embedding"]["total"], row["tree_embedding"]["depth"]],
            ["synthesize then route", row["synthesize_then_route"]["cnot"],
             row["synthesize_then_route"]["total"], row["synthesize_then_route"]["depth"]],
        ],
    )
    write_result(results_dir, f"ablation_d3_{name}.txt", table)
    assert row["tree_embedding"]["cnot"] <= row["synthesize_then_route"]["cnot"] * 1.10
