"""Table 1 — benchmark inventory.

Regenerates the paper's benchmark-information table: qubit count, Pauli
string count, and the CNOT/single-qubit gate counts of naive synthesis
(no optimization, no mapping).
"""

import pytest

from repro.analysis import format_table, table1_inventory
from repro.workloads import BENCHMARKS, build_benchmark

from conftest import write_result

_FAST_NAMES = [
    "UCCSD-8", "UCCSD-12",
    "REG-20-4", "REG-20-8", "REG-20-12",
    "Rand-20-0.1", "Rand-20-0.3", "Rand-20-0.5",
    "TSP-4", "TSP-5",
    "Ising-1D", "Ising-2D", "Ising-3D",
    "Heisen-1D", "Heisen-2D", "Heisen-3D",
    "N2", "H2S", "Rand-30", "Rand-40",
]


def test_table1_rows(benchmark, scale, results_dir):
    names = _FAST_NAMES if scale == "small" else list(BENCHMARKS)
    rows = benchmark(table1_inventory, names, scale)
    table = format_table(
        ["Benchmark", "Backend", "Family", "Qubits", "Pauli#", "CNOT#", "Single#"],
        [
            [r["name"], r["backend"], r["family"], r["qubits"], r["paulis"],
             r["naive_cnot"], r["naive_single"]]
            for r in rows
        ],
    )
    write_result(results_dir, "table1_inventory.txt", table)
    assert len(rows) == len(names)


@pytest.mark.parametrize("name", ["UCCSD-8", "Ising-1D", "Heisen-2D", "REG-20-4", "TSP-4"])
def test_benchmark_generation_speed(benchmark, name, scale):
    """Workload generation itself must stay cheap (paper compiles thousands)."""
    program = benchmark(build_benchmark, name, scale)
    assert program.num_strings > 0
