"""Large-scale streaming compile benchmark (100-500 qubits, 10^4-10^6 terms).

Measures the streaming scheduler (``core/streaming.py``) against the
materialized reference on generator-backed scale workloads, and records the
memory high-water marks that make the large-scale regime tractable at all:

* **scheduling speedup** — ``gco-stream`` / ``do-stream`` wall time vs the
  materialized ``gco_schedule`` / ``do_schedule`` on the same program
  (layer structure asserted identical before timing);
* **memory ceiling** — tracemalloc peak of a full ``do-stream`` drain
  (host-independent Python+numpy allocation bytes; the frontier holds at
  most ``DEFAULT_WINDOW`` realized profile rows) gated against a per-config
  absolute ceiling and the committed baseline;
* **end-to-end** — ``ft_compile`` (+ ``sc_compile`` with ``--large``) at
  opt 1 through the streaming path, with gate counts and peak RSS.

Run directly::

    PYTHONPATH=src python benchmarks/bench_scale.py --smoke    # CI gate
    PYTHONPATH=src python benchmarks/bench_scale.py            # full
    PYTHONPATH=src python benchmarks/bench_scale.py --large    # +500q/10^6

``--out FILE`` dumps every row as JSON (CI uploads it as an artifact);
``--baseline FILE`` additionally fails if any speedup halves or any traced
memory peak doubles against the committed baseline
(``benchmarks/results/bench_scale_baseline.json``).  Exit status is
non-zero on any gate failure.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
import tracemalloc
from typing import Callable, Dict, List, NamedTuple, Optional

from repro.core import compile_program
from repro.core.scheduling import do_schedule, gco_schedule
from repro.core.streaming import DEFAULT_WINDOW, stream_schedule
from repro.ir import PauliProgram
from repro.transpile.coupling import grid
from repro.workloads import scale_hubbard_program, scale_random_program


class ScaleConfig(NamedTuple):
    name: str
    build: Callable[[], PauliProgram]
    #: materialized-reference comparison is only affordable up to ~10^4
    #: blocks (do_schedule holds the full profile matrix and rescans it
    #: per layer); larger configs time the streaming path alone.
    compare_materialized: bool
    #: absolute tracemalloc ceiling (MB) for a full do-stream drain.
    mem_ceiling_mb: float
    #: which end-to-end compiles to run ("ft" always; "sc" is minutes).
    run_sc: bool


SMOKE_CONFIGS = [
    ScaleConfig(
        "ScaleRand-60x4000", lambda: scale_random_program(60, 4_000),
        compare_materialized=True, mem_ceiling_mb=16.0, run_sc=False,
    ),
]

FULL_CONFIGS = [
    ScaleConfig(
        "ScaleRand-100x10000", lambda: scale_random_program(100, 10_000),
        compare_materialized=True, mem_ceiling_mb=32.0, run_sc=False,
    ),
    ScaleConfig(
        "ScaleHubbard-100x30", lambda: scale_hubbard_program(50, steps=30),
        compare_materialized=True, mem_ceiling_mb=32.0, run_sc=False,
    ),
    ScaleConfig(
        "ScaleRand-200x100000", lambda: scale_random_program(200, 100_000),
        compare_materialized=False, mem_ceiling_mb=128.0, run_sc=True,
    ),
]

LARGE_CONFIGS = [
    ScaleConfig(
        "ScaleRand-500x1000000", lambda: scale_random_program(500, 1_000_000),
        compare_materialized=False, mem_ceiling_mb=1536.0, run_sc=False,
    ),
]

#: Minimum materialized-vs-streaming speedups (same process, same box, so
#: the ratio divides out host speed).  Kept far below the measured values
#: (~10x gco, ~3-20x do depending on size) to alarm only on regressions.
SPEEDUP_FLOORS = {"gco-schedule": 2.0, "do-schedule": 1.5}


def _rss_mb() -> float:
    """Process high-water RSS in MB (``ru_maxrss`` is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _drain(layers) -> int:
    """Consume a layer iterator, returning the block count."""
    return sum(len(layer) for layer in layers)


def _best_of(
    fn: Callable[[], object],
    repeats: int,
    setup: Optional[Callable[[], None]] = None,
) -> float:
    """Minimum single-run wall time (no separate warmup: scale runs are
    seconds each, so the first run is kept rather than discarded).

    ``setup`` runs untimed before every attempt; the schedulers use it to
    drop memoized block views so each side is timed from a cold program —
    otherwise the equality assertion (or a previous repeat) pre-pays the
    materialized scheduler's dominant view-construction cost.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        if setup is not None:
            setup()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _signature(schedule) -> List[List[tuple]]:
    return [
        [tuple(ws.string.label for ws in block) for block in layer]
        for layer in schedule
    ]


def bench_config(config: ScaleConfig, repeats: int) -> List[Dict]:
    rows: List[Dict] = []

    start = time.perf_counter()
    program = config.build()
    build_s = time.perf_counter() - start
    rows.append(
        {"workload": config.name, "kernel": "build",
         "stream_s": build_s, "blocks": program.num_blocks}
    )
    print(f"{config.name}: built {program.num_blocks} blocks "
          f"in {build_s:.2f}s", flush=True)

    # Streaming reproduces the materialized schedule exactly only when the
    # frontier covers every block; the comparison rows therefore run at
    # window >= #blocks (identical output, so the speedup is like for
    # like), while the memory row keeps DEFAULT_WINDOW — the bounded
    # production mode.
    exact_window = max(DEFAULT_WINDOW, program.num_blocks)
    if config.compare_materialized:
        assert _signature(stream_schedule(program, "gco-stream",
                                          window=exact_window)) == \
            _signature(gco_schedule(program)), \
            f"gco-stream diverged from gco_schedule on {config.name}"
        assert _signature(stream_schedule(program, "do-stream",
                                          window=exact_window)) == \
            _signature(do_schedule(program)), \
            f"do-stream diverged from do_schedule on {config.name}"

    for sched, materialized in (("gco", gco_schedule), ("do", do_schedule)):
        window = exact_window if config.compare_materialized else DEFAULT_WINDOW
        stream_s = _best_of(
            lambda: _drain(
                stream_schedule(program, f"{sched}-stream", window=window)
            ),
            repeats, setup=program.release_views,
        )
        row = {"workload": config.name, "kernel": f"{sched}-schedule",
               "stream_s": stream_s}
        if config.compare_materialized:
            materialized_s = _best_of(
                lambda: materialized(program),
                repeats, setup=program.release_views,
            )
            row["materialized_s"] = materialized_s
            row["speedup"] = materialized_s / stream_s
        if sched == "do":
            program.release_views()
            tracemalloc.start()
            _drain(stream_schedule(program, "do-stream"))  # DEFAULT_WINDOW
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            row["tracemalloc_mb"] = peak / 2**20
            row["mem_ceiling_mb"] = config.mem_ceiling_mb
        rows.append(row)
        print(f"{config.name}: {sched}-stream {stream_s:.2f}s"
              + (f" ({row['speedup']:.1f}x vs materialized)"
                 if "speedup" in row else ""), flush=True)

    start = time.perf_counter()
    ft = compile_program(program, backend="ft", scheduler="gco-stream",
                         run_peephole=True)
    ft_s = time.perf_counter() - start
    rows.append(
        {"workload": config.name, "kernel": "ft-compile",
         "stream_s": ft_s, "gates": ft.circuit.size, "rss_mb": _rss_mb()}
    )
    print(f"{config.name}: ft gco-stream opt1 {ft_s:.2f}s, "
          f"{ft.circuit.size} gates, RSS {_rss_mb():.0f} MB", flush=True)

    if config.run_sc:
        side = 1
        while side * side < program.num_qubits:
            side += 1
        start = time.perf_counter()
        sc = compile_program(program, backend="sc", scheduler="do-stream",
                             coupling=grid(side, side), run_peephole=True)
        sc_s = time.perf_counter() - start
        rows.append(
            {"workload": config.name, "kernel": "sc-compile",
             "stream_s": sc_s, "gates": sc.circuit.size, "rss_mb": _rss_mb()}
        )
        print(f"{config.name}: sc do-stream opt1 {sc_s:.2f}s, "
              f"{sc.circuit.size} gates, RSS {_rss_mb():.0f} MB", flush=True)
    return rows


def _print_rows(rows: List[Dict]) -> None:
    print()
    print(f"{'workload':<24} {'kernel':<14} {'stream':>9} {'material':>9} "
          f"{'speedup':>8} {'mem MB':>8}")
    for row in rows:
        mat = (f"{row['materialized_s']:>8.2f}s"
               if "materialized_s" in row else f"{'-':>9}")
        speed = (f"{row['speedup']:>7.1f}x" if "speedup" in row
                 else f"{'-':>8}")
        mem = (f"{row['tracemalloc_mb']:>8.1f}" if "tracemalloc_mb" in row
               else (f"{row['rss_mb']:>8.0f}" if "rss_mb" in row
                     else f"{'-':>8}"))
        print(f"{row['workload']:<24} {row['kernel']:<14} "
              f"{row['stream_s']:>8.2f}s {mat} {speed} {mem}")
    print()


def check_gates(rows: List[Dict]) -> List[str]:
    """Absolute floors: speedup per kernel, traced memory per config."""
    problems = []
    for row in rows:
        floor = SPEEDUP_FLOORS.get(row["kernel"])
        if floor is not None and "speedup" in row and row["speedup"] < floor:
            problems.append(
                f"{row['workload']}/{row['kernel']}: speedup "
                f"{row['speedup']:.1f}x below the {floor:.1f}x floor"
            )
        if "tracemalloc_mb" in row and \
                row["tracemalloc_mb"] > row["mem_ceiling_mb"]:
            problems.append(
                f"{row['workload']}/{row['kernel']}: traced peak "
                f"{row['tracemalloc_mb']:.1f} MB over the "
                f"{row['mem_ceiling_mb']:.0f} MB ceiling"
            )
    return problems


def check_baseline(rows: List[Dict], path: str) -> List[str]:
    """Relative gates against the committed baseline: a speedup may not
    halve and a traced memory peak may not double.  Ratios divide out host
    speed; allocation bytes are host-independent already."""
    with open(path) as handle:
        baseline = json.load(handle)["rows"]
    problems = []
    for row in rows:
        key = f"{row['workload']}/{row['kernel']}"
        recorded = baseline.get(key)
        if recorded is None:
            continue  # larger modes add rows the smoke baseline lacks
        if "speedup" in row and "speedup" in recorded and \
                row["speedup"] < recorded["speedup"] / 2.0:
            problems.append(
                f"{key}: speedup {row['speedup']:.1f}x fell below half the "
                f"committed baseline {recorded['speedup']:.1f}x"
            )
        if "tracemalloc_mb" in row and "tracemalloc_mb" in recorded and \
                row["tracemalloc_mb"] > recorded["tracemalloc_mb"] * 2.0:
            problems.append(
                f"{key}: traced peak {row['tracemalloc_mb']:.1f} MB more "
                f"than doubled the committed baseline "
                f"{recorded['tracemalloc_mb']:.1f} MB"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI mode: one 60q/4000-term config with the "
             "materialized comparison and memory gate",
    )
    parser.add_argument(
        "--large", action="store_true",
        help="additionally run the 500q/10^6-term config (nightly)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--out", default=None,
        help="write all rows to this JSON file (CI artifact)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="fail on >2x regression vs this committed baseline JSON "
             "(see benchmarks/results/bench_scale_baseline.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        configs = SMOKE_CONFIGS
    else:
        configs = FULL_CONFIGS + (LARGE_CONFIGS if args.large else [])
    repeats = args.repeats or (3 if args.smoke else 1)

    rows: List[Dict] = []
    for config in configs:
        rows.extend(bench_config(config, repeats))
    _print_rows(rows)

    problems = check_gates(rows)
    if args.baseline:
        problems += check_baseline(rows, args.baseline)

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(
                {"mode": "smoke" if args.smoke else
                         ("large" if args.large else "full"),
                 "repeats": repeats,
                 "rows": rows},
                handle, indent=2,
            )
        print(f"wrote timings to {args.out}")

    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if problems:
        return 1
    print("all scale gates passed: speedup floors held, streaming memory "
          "under every ceiling")
    return 0


if __name__ == "__main__":
    sys.exit(main())
