"""Table 4 — effect of the individual passes.

Left half: depth-oriented (DO) vs gate-count-oriented (GCO) scheduling.
Right half: block-wise compilation (BC) improvement over naive synthesis
through the same generic compiler.

Shape claims checked:
* on lattice models (Ising/Heisenberg) DO crushes GCO on depth (paper:
  -84.2% average) while gate counts stay comparable;
* BC reduces gate counts vs naive synthesis on excitation-style workloads
  (UCCSD, molecules, random);
* on Ising-style two-local workloads BC has no room (paper: 0.00%).
"""

import pytest

from repro.analysis import format_table, table4_passes

from conftest import write_result

_NAMES = [
    "UCCSD-8",
    "REG-20-4", "Rand-20-0.3",
    "Ising-1D", "Ising-2D",
    "Heisen-1D", "Heisen-2D",
    "N2", "Rand-30",
]


@pytest.mark.parametrize("name", _NAMES)
def test_table4_benchmark(benchmark, name, scale, results_dir):
    row = benchmark.pedantic(table4_passes, args=(name, scale), rounds=1, iterations=1)
    dvg = row["do_vs_gco_pct"]
    bc = row["bc_improvement_pct"]
    table = format_table(
        ["Benchmark", "Δ metric", "DO vs GCO %", "BC vs naive %"],
        [
            [name, key, f"{dvg[key]:+.1f}", f"{bc[key]:+.1f}"]
            for key in ("cnot", "single", "total", "depth")
        ],
    )
    write_result(results_dir, f"table4_{name}.txt", table)


def test_table4_lattice_do_wins_depth(benchmark, scale, results_dir):
    rows = benchmark.pedantic(
        lambda: {name: table4_passes(name, scale) for name in ("Ising-1D", "Heisen-1D", "Heisen-2D")},
        rounds=1, iterations=1,
    )
    for name, row in rows.items():
        assert row["do_vs_gco_pct"]["depth"] < -30.0, (
            f"DO should slash depth on {name}: {row['do_vs_gco_pct']}"
        )


def test_table4_bc_improves_uccsd(benchmark, scale):
    row = benchmark.pedantic(table4_passes, args=("UCCSD-8", scale), rounds=1, iterations=1)
    assert row["bc_improvement_pct"]["cnot"] < 0.0, row["bc_improvement_pct"]


def test_table4_bc_neutral_on_ising(benchmark, scale):
    # Two-local all-Z strings admit only one synthesis: BC can't help
    # (paper reports 0.00% for Ising rows).
    row = benchmark.pedantic(table4_passes, args=("Ising-1D", scale), rounds=1, iterations=1)
    assert abs(row["bc_improvement_pct"]["cnot"]) < 15.0
