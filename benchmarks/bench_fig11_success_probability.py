"""Figure 11 — QAOA success probability on the Melbourne device.

End-to-end: optimize (gamma, beta) on the ideal simulator, compile with the
default baseline and with Paulihedral, and compare ESP (noise-model
estimate) and RSP (noisy-simulated success probability).

The paper runs REG-n(7-10)-d4 and RD-n(7-10)-p0.5 on real hardware; here
the device is the Melbourne coupling map plus a calibrated noise model
(DESIGN.md documents the substitution).  The small scale uses the 7- and
8-node instances; REPRO_SCALE=paper runs all eight graphs.

Shape claim checked: PH's ESP improvement is > 1x on average (paper: 2.11x
ESP, 1.24x RSP average).
"""

import pytest

from repro.analysis import fig11_study, format_table, geomean, grouped_bar_chart
from repro.workloads import random_graph, regular_graph

from conftest import write_result


def _graphs(scale):
    sizes = (7, 8) if scale == "small" else (7, 8, 9, 10)
    graphs = {}
    for n in sizes:
        graphs[f"REG-n{n}-d4"] = regular_graph(n, 4, seed=n)
        graphs[f"RD-n{n}-p0.5"] = random_graph(n, 0.5, seed=n)
    return graphs


def test_fig11_improvements(benchmark, scale, results_dir):
    graphs = _graphs(scale)
    trajectories = 80 if scale == "small" else 200
    rows = benchmark.pedantic(
        fig11_study, args=(graphs,), kwargs={"trajectories": trajectories, "resolution": 4},
        rounds=1, iterations=1,
    )
    table = format_table(
        ["Graph", "ESP x", "RSP x", "PH CNOT", "Base CNOT", "PH depth", "Base depth"],
        [
            [r["name"], f"{r['esp_improvement']:.2f}", f"{r['rsp_improvement']:.2f}",
             r["ph"]["cnot"], r["baseline"]["cnot"], r["ph"]["depth"], r["baseline"]["depth"]]
            for r in rows
        ],
    )
    esp_geo = geomean([r["esp_improvement"] for r in rows])
    rsp_geo = geomean([max(r["rsp_improvement"], 1e-6) for r in rows])
    table += f"\ngeomean ESP improvement: {esp_geo:.2f}x  RSP improvement: {rsp_geo:.2f}x"
    chart = grouped_bar_chart(
        [
            ("ESP improvement (x, | marks 1.0)",
             {r["name"]: r["esp_improvement"] for r in rows}),
            ("RSP improvement (x, | marks 1.0)",
             {r["name"]: r["rsp_improvement"] for r in rows}),
        ],
        baseline=1.0,
    )
    write_result(results_dir, "fig11_success_probability.txt", table + "\n\n" + chart)
    assert esp_geo > 1.0, "PH should improve estimated success probability"
