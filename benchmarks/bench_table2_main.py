"""Table 2 — the main comparison: PH vs TK frontends x generic compilers.

For every benchmark this regenerates the paper's four configurations
(PH+Qiskit_L3, PH+tket_O2, TK+Qiskit_L3, TK+tket_O2) and reports
CNOT / single / total gate counts, depth, and compilation time.

The headline claims checked here (shape, not absolute numbers):
* PH beats TK on total gate count and depth on both backends;
* PH's extra compile time stays a small fraction of the flow.
"""

import pytest

from repro.analysis import format_table, geomean, table2_compare

from conftest import write_result

_SC_NAMES = ["UCCSD-8", "REG-20-4", "REG-20-8", "Rand-20-0.3", "TSP-4"]
_FT_NAMES = ["Ising-1D", "Ising-2D", "Heisen-1D", "Heisen-2D", "N2", "Rand-30"]

_CONFIGS = ["ph+qiskit_l3", "ph+tket_o2", "tk+qiskit_l3", "tk+tket_o2"]

#: Per-session cache so the summary test reuses the parametrized results.
_ROW_CACHE = {}


def _cached_row(name, scale):
    key = (name, scale)
    if key not in _ROW_CACHE:
        _ROW_CACHE[key] = table2_compare(name, scale)
    return _ROW_CACHE[key]


@pytest.mark.parametrize("name", _SC_NAMES + _FT_NAMES)
def test_table2_benchmark(benchmark, name, scale, results_dir):
    row = benchmark.pedantic(_cached_row, args=(name, scale), rounds=1, iterations=1)
    lines = []
    for config in _CONFIGS:
        m = row[config]
        lines.append(
            [name, config, m["cnot"], m["single"], m["total"], m["depth"],
             f"{m['frontend_s'] + m['generic_s']:.3f}s"]
        )
    table = format_table(
        ["Benchmark", "Config", "CNOT", "Single", "Total", "Depth", "Time"], lines
    )
    write_result(results_dir, f"table2_{name}.txt", table)

    ph = row["ph+qiskit_l3"]
    tk = row["tk+qiskit_l3"]
    # Shape check, per backend: on SC the paper's primary metric is CNOT
    # count (10x error rate); on FT, total gates.  TSP-class fully-diagonal
    # programs get slack because our TK exploits diagonality more than the
    # paper's tket did (see EXPERIMENTS.md).
    if row["backend"] == "sc":
        assert ph["cnot"] <= tk["cnot"] * 1.25, f"PH lost CNOTs to TK on {name}"
    else:
        assert ph["total"] <= tk["total"] * 1.05, f"PH lost to TK on {name}"


def test_table2_summary(benchmark, scale, results_dir):
    """Aggregate geomean improvements across the suite (paper's averages)."""
    rows = benchmark.pedantic(
        lambda: [_cached_row(name, scale) for name in _SC_NAMES + _FT_NAMES],
        rounds=1, iterations=1,
    )
    ratios = {"cnot": [], "total": [], "depth": []}
    for row in rows:
        ph, tk = row["ph+qiskit_l3"], row["tk+qiskit_l3"]
        for key in ratios:
            if tk[key] > 0 and ph[key] > 0:
                ratios[key].append(ph[key] / tk[key])
    summary = format_table(
        ["Metric", "PH/TK geomean", "Reduction %"],
        [
            [key, f"{geomean(vals):.3f}", f"{100 * (1 - geomean(vals)):.1f}"]
            for key, vals in ratios.items()
        ],
    )
    write_result(results_dir, "table2_summary.txt", summary)
    assert geomean(ratios["total"]) <= 1.0
    assert geomean(ratios["depth"]) <= 1.0
