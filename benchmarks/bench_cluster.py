"""Cluster benchmark: sharded-fabric throughput, warm latency, recovery.

Drives a *real* fabric — ``python -m repro.cli serve-cluster`` in a
subprocess (supervised gateway nodes, process-pool workers, shared-store
pull-through, unix router socket) — with the same 50-spec mixed corpus
as ``bench_gateway.py``, across three topologies:

* ``single``   — one plain gateway (``repro.cli serve``), the reference;
* ``cluster2`` — 2-node fabric behind the router;
* ``cluster3`` — 3-node fabric behind the router (full mode only).

Gates:

* **warm-hit p50** through the router stays under 20 ms (the router adds
  one hop to the single gateway's 10 ms budget, never more);
* **aggregate throughput** — a pipelined window through the router
  sustains >= 100 req/s on a single core (the router must not eat the
  fabric's capacity);
* **kill-one-node recovery** — SIGKILL a random gateway node under warm
  load: traffic keeps being answered (zero lost requests), and the
  fleet is back to full healthy strength within 30 s;
* **drain & shutdown** — ledgers reconcile, SIGTERM exits 0, no partial
  artifacts in any store.

Run directly::

    PYTHONPATH=src python benchmarks/bench_cluster.py           # full
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke   # CI gate

``--out``/``--baseline`` match the other benches: JSON dump plus a
regression gate (throughput below half the committed baseline, or warm
p50 above double) on top of the absolute floors.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))
sys.path.insert(0, str(REPO / "benchmarks"))

from bench_gateway import mixed_corpus  # noqa: E402
from repro.service import GatewayClient  # noqa: E402

WARM_P50_FLOOR_MS = 20.0
THROUGHPUT_FLOOR = 100.0
RECOVERY_FLOOR_S = 30.0


class ClusterProcess:
    """``repro.cli serve-cluster`` in a subprocess under a workdir."""

    def __init__(self, workdir: Path, nodes: int, workers: int = 1):
        self.state_dir = workdir / f"state-{nodes}"
        self.socket_path = str(self.state_dir / "router.sock")
        self.nodes = nodes
        env = {**os.environ, "PYTHONPATH": str(SRC)}
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve-cluster",
             str(self.state_dir), "--nodes", str(nodes),
             "--workers", str(workers), "--queue-limit", "64"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=str(REPO),
        )
        deadline = time.monotonic() + 120
        line = ""
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if "cluster listening" in line:
                return
            if self.process.poll() is not None:
                break
        raise RuntimeError(f"cluster failed to start: {line!r}")

    def stop(self) -> int:
        self.process.send_signal(signal.SIGTERM)
        try:
            self.process.wait(timeout=120)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()
            return -9
        return self.process.returncode


class SingleGateway:
    """``repro.cli serve`` reference point (same shape as ClusterProcess)."""

    def __init__(self, workdir: Path, workers: int = 1):
        self.state_dir = workdir / "single"
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.socket_path = str(self.state_dir / "gw.sock")
        self.nodes = 1
        env = {**os.environ, "PYTHONPATH": str(SRC)}
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--socket", self.socket_path,
             "--cache", str(self.state_dir / "cache"),
             "--workers", str(workers)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=str(REPO),
        )
        deadline = time.monotonic() + 60
        line = ""
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if "listening" in line:
                return
            if self.process.poll() is not None:
                break
        raise RuntimeError(f"gateway failed to start: {line!r}")

    stop = ClusterProcess.stop


async def cold_pass(socket_path: str, corpus: List[Dict]) -> Dict:
    client = await GatewayClient.connect(socket_path=socket_path)
    start = time.perf_counter()
    responses, _ = await client.run_specs(corpus, window=8, id_prefix="cold",
                                          timeout=900)
    wall = time.perf_counter() - start
    failed = [r for r in responses if not (r and r.get("ok"))]
    await client.close()
    if failed:
        raise RuntimeError(f"cold pass failed {len(failed)} jobs: {failed[:2]}")
    return {"jobs": len(corpus), "wall_s": round(wall, 3),
            "compiled": sum(1 for r in responses if not r.get("cached"))}


async def warm_latency(socket_path: str, corpus: List[Dict],
                       rounds: int) -> Dict:
    client = await GatewayClient.connect(socket_path=socket_path)
    samples: List[float] = []
    misses = 0
    for round_index in range(rounds):
        for index, spec in enumerate(corpus):
            t0 = time.perf_counter()
            response = await client.compile(
                spec, f"w{round_index}-{index}", timeout=120)
            samples.append(time.perf_counter() - t0)
            if not response.get("cached"):
                misses += 1
    await client.close()
    samples.sort()
    return {
        "samples": len(samples), "uncached": misses,
        "p50_ms": round(samples[len(samples) // 2] * 1e3, 3),
        "p95_ms": round(
            samples[min(len(samples) - 1, int(len(samples) * 0.95))] * 1e3,
            3),
        "max_ms": round(samples[-1] * 1e3, 3),
    }


async def sustained_throughput(socket_path: str, corpus: List[Dict],
                               seconds: float, window: int = 16) -> Dict:
    client = await GatewayClient.connect(socket_path=socket_path)
    completed = errors = sent = 0
    deadline = time.monotonic() + seconds

    async def send_one():
        nonlocal sent
        spec = corpus[sent % len(corpus)]
        await client._send({"op": "compile", "id": f"t{sent}", "spec": spec})
        sent += 1

    start = time.monotonic()
    for _ in range(window):
        await send_one()
    while time.monotonic() < deadline:
        frame = await asyncio.wait_for(client._read_frame(), 120)
        if frame.get("op") != "compile":
            continue
        completed += 1
        if not frame.get("ok"):
            errors += 1
        await send_one()
    wall = time.monotonic() - start
    while completed < sent:
        frame = await asyncio.wait_for(client._read_frame(), 120)
        if frame.get("op") == "compile":
            completed += 1
            if not frame.get("ok"):
                errors += 1
    await client.close()
    return {"seconds": round(wall, 3), "completed": completed,
            "errors": errors, "req_per_s": round(completed / wall, 1)}


async def kill_recovery(socket_path: str, corpus: List[Dict],
                        nodes: int) -> Dict:
    """SIGKILL one gateway node under warm load; measure how long until
    every node is healthy again, with traffic answered throughout."""
    client = await GatewayClient.connect(socket_path=socket_path)
    stats = await client.stats(timeout=60)
    name = sorted(stats["nodes"])[0]
    pid = stats["nodes"][name]["stats"]["pid"]
    killed_at = time.monotonic()
    os.kill(pid, signal.SIGKILL)

    answered = errors = 0
    healthy_at: Optional[float] = None
    deadline = killed_at + 120
    index = 0
    while time.monotonic() < deadline:
        spec = corpus[index % len(corpus)]
        index += 1
        response = await client.compile(spec, f"k{index}", timeout=120)
        answered += 1
        if not response.get("ok"):
            errors += 1
        if index % 10 == 0:
            snap = await client.stats(timeout=60)
            if snap["router"]["nodes_healthy"] == nodes:
                healthy_at = time.monotonic()
                break
    await client.close()
    return {
        "killed_node": name,
        "answered_during": answered,
        "errors_during": errors,
        "recovery_s": None if healthy_at is None
        else round(healthy_at - killed_at, 3),
    }


def run_topology(label: str, server, corpus: List[Dict], warm_rounds: int,
                 sustained_s: float, with_kill: bool) -> (List[Dict], bool):
    rows: List[Dict] = []
    failed = False
    base = {"workload": "mixed-corpus", "topology": label,
            "nodes": server.nodes}
    try:
        row = {**base, "kernel": "cold_pass",
               **asyncio.run(cold_pass(server.socket_path, corpus))}
        rows.append(row)
        print(f"{label:9s} cold      {row['jobs']} jobs   "
              f"wall {row['wall_s']:7.2f}s")

        row = {**base, "kernel": "warm_latency",
               **asyncio.run(warm_latency(server.socket_path, corpus,
                                          warm_rounds))}
        rows.append(row)
        print(f"{label:9s} warm      p50 {row['p50_ms']:6.2f}ms  "
              f"p95 {row['p95_ms']:6.2f}ms  max {row['max_ms']:6.2f}ms")
        if row["uncached"]:
            print(f"FAIL: {label}: {row['uncached']} warm requests missed "
                  f"the cache", file=sys.stderr)
            failed = True
        if row["p50_ms"] > WARM_P50_FLOOR_MS:
            print(f"FAIL: {label}: warm p50 {row['p50_ms']:.2f}ms above "
                  f"the {WARM_P50_FLOOR_MS:.0f}ms floor", file=sys.stderr)
            failed = True

        row = {**base, "kernel": "sustained",
               **asyncio.run(sustained_throughput(
                   server.socket_path, corpus, sustained_s))}
        rows.append(row)
        print(f"{label:9s} sustained {row['completed']} reqs  "
              f"{row['req_per_s']:7.1f} req/s over {row['seconds']:.1f}s")
        if row["errors"]:
            print(f"FAIL: {label}: {row['errors']} errored responses "
                  f"under load", file=sys.stderr)
            failed = True
        if row["req_per_s"] < THROUGHPUT_FLOOR:
            print(f"FAIL: {label}: {row['req_per_s']:.0f} req/s below the "
                  f"{THROUGHPUT_FLOOR:.0f} req/s floor", file=sys.stderr)
            failed = True

        if with_kill:
            row = {**base, "kernel": "kill_recovery",
                   **asyncio.run(kill_recovery(
                       server.socket_path, corpus, server.nodes))}
            rows.append(row)
            print(f"{label:9s} recovery  killed {row['killed_node']}  "
                  f"healthy again in {row['recovery_s']}s  "
                  f"({row['answered_during']} answered, "
                  f"{row['errors_during']} errors meanwhile)")
            if row["errors_during"]:
                print(f"FAIL: {label}: {row['errors_during']} requests "
                      f"errored during failover", file=sys.stderr)
                failed = True
            if row["recovery_s"] is None \
                    or row["recovery_s"] > RECOVERY_FLOOR_S:
                print(f"FAIL: {label}: fleet not healthy within "
                      f"{RECOVERY_FLOOR_S:.0f}s of the kill",
                      file=sys.stderr)
                failed = True
    finally:
        code = server.stop()
    print(f"{label:9s} shutdown  exit code {code}")
    if code != 0:
        print(f"FAIL: {label} did not shut down cleanly", file=sys.stderr)
        failed = True
    leftovers = list(server.state_dir.rglob("*.tmp"))
    if leftovers:
        print(f"FAIL: {label}: partial artifacts left: {leftovers}",
              file=sys.stderr)
        failed = True
    return rows, failed


def check_baseline(rows: List[Dict], path: str) -> List[str]:
    with open(path) as handle:
        baseline = {(row["topology"], row["kernel"]): row
                    for row in json.load(handle)["rows"]}
    problems = []
    for row in rows:
        recorded = baseline.get((row["topology"], row["kernel"]))
        if recorded is None:
            continue
        if row["kernel"] == "warm_latency" \
                and row["p50_ms"] > recorded["p50_ms"] * 2.0:
            problems.append(
                f"{row['topology']}: warm p50 {row['p50_ms']:.2f}ms more "
                f"than doubled vs baseline {recorded['p50_ms']:.2f}ms")
        if row["kernel"] == "sustained" \
                and row["req_per_s"] < recorded["req_per_s"] / 2.0:
            problems.append(
                f"{row['topology']}: {row['req_per_s']:.0f} req/s fell "
                f"below half the baseline {recorded['req_per_s']:.0f}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI mode: smaller corpus, fewer "
                             "topologies, shorter intervals")
    parser.add_argument("--corpus-size", type=int, default=None)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--out", default=None)
    parser.add_argument("--baseline", default=None)
    args = parser.parse_args(argv)

    corpus_size = args.corpus_size or (20 if args.smoke else 50)
    corpus = mixed_corpus(corpus_size)
    warm_rounds = 2 if args.smoke else 4
    sustained_s = 2.0 if args.smoke else 8.0
    if args.smoke:
        topologies = [("single", 1), ("cluster2", 2)]
    else:
        topologies = [("single", 1), ("cluster2", 2), ("cluster3", 3)]

    rows: List[Dict] = []
    failed = False
    with tempfile.TemporaryDirectory() as tmp:
        for label, nodes in topologies:
            if nodes == 1:
                server = SingleGateway(Path(tmp), workers=args.workers)
            else:
                server = ClusterProcess(Path(tmp), nodes,
                                        workers=args.workers)
            # Kill-recovery needs a router + supervisor to do the
            # failing-over; run it on every multi-node topology.
            topo_rows, topo_failed = run_topology(
                label, server, corpus, warm_rounds, sustained_s,
                with_kill=nodes > 1)
            rows.extend(topo_rows)
            failed = failed or topo_failed

    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"mode": "smoke" if args.smoke else "full",
                       "corpus": len(corpus), "workers": args.workers,
                       "rows": rows}, handle, indent=2)
        print(f"\nwrote timings to {args.out}")
    if args.baseline:
        for problem in check_baseline(rows, args.baseline):
            print(f"FAIL: {problem}", file=sys.stderr)
            failed = True
    if failed:
        return 1
    print("\ncluster floors satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
