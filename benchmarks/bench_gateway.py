"""Gateway benchmark: warm-hit latency and sustained throughput under load.

Drives a *real* gateway — ``python -m repro.cli serve`` in a subprocess,
unix socket, process-pool workers, on-disk cache — with a 50-spec mixed
corpus (FT + SC backends, text programs and registry benchmarks, with
duplicates, the shape of variational-loop traffic), and gates:

* **warm-hit p50** — serial round trips over the fully cached corpus;
  the acceptance floor is p50 <= 10 ms (the paper's pitch is that a
  deterministic compiler should answer repeat traffic at cache speed);
* **sustained throughput** — a pipelined window of requests kept full
  for a timed interval; floor >= 200 req/s on a single core;
* **drain & shutdown** — after the storm the queue must be empty, the
  stats ledger must reconcile, and SIGTERM must exit 0.

Run directly::

    PYTHONPATH=src python benchmarks/bench_gateway.py           # full
    PYTHONPATH=src python benchmarks/bench_gateway.py --smoke   # CI gate

``--out``/``--baseline`` match the other benches: JSON dump plus a
regression gate (throughput below half the committed baseline, or p50
above double, fails) on top of the absolute floors.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.service import GatewayClient  # noqa: E402

WARM_P50_FLOOR_MS = 10.0
THROUGHPUT_FLOOR = 200.0


def mixed_corpus(size: int = 50) -> List[Dict]:
    """Deterministic mixed corpus: FT/SC, text/registry, ~20% duplicates."""
    corpus: List[Dict] = [
        {"benchmark": "Ising-1D", "scale": "small"},
        {"benchmark": "Heisen-1D", "scale": "small"},
        {"benchmark": "UCCSD-8", "scale": "small"},
        {"benchmark": "REG-20-4", "scale": "small"},
    ]
    paulis = "IXYZ"
    state = 11
    while len(corpus) < size:
        index = len(corpus)
        if index % 5 == 4:
            # Duplicate an earlier entry: repeat traffic must dedupe/hit.
            corpus.append(dict(corpus[index // 2], label=f"dup{index}"))
            continue
        terms = []
        for t in range(2 + index % 3):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            label = "".join(
                paulis[(state >> (2 * q)) & 3] for q in range(5))
            if set(label) == {"I"}:
                label = "XX" + label[2:]
            terms.append(f"({label}, 1.0)")
        text = "{" + ", ".join(terms) + f", 0.{1 + index % 9}}};"
        spec = {"text": text, "label": f"rand{index}"}
        if index % 7 == 3:
            spec["backend"] = "sc"
            spec["coupling"] = {"num_qubits": 5,
                                "edges": [[i, i + 1] for i in range(4)]}
        corpus.append(spec)
    return corpus[:size]


class GatewayProcess:
    """`repro.cli serve` in a subprocess bound to a workdir unix socket."""

    def __init__(self, workdir: Path, workers: int = 1):
        self.socket_path = str(workdir / "gw.sock")
        self.cache_dir = str(workdir / "cache")
        env = {**os.environ, "PYTHONPATH": str(SRC)}
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--socket", self.socket_path, "--cache", self.cache_dir,
             "--workers", str(workers)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=str(REPO),
        )
        deadline = time.monotonic() + 60
        line = ""
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if "listening" in line:
                return
            if self.process.poll() is not None:
                break
        raise RuntimeError(f"gateway failed to start: {line!r}")

    def stop(self) -> int:
        self.process.send_signal(signal.SIGTERM)
        try:
            self.process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()
            return -9
        return self.process.returncode


async def cold_pass(socket_path: str, corpus: List[Dict]) -> Dict:
    client = await GatewayClient.connect(socket_path=socket_path)
    start = time.perf_counter()
    responses, _ = await client.run_specs(corpus, window=8, id_prefix="cold",
                                          timeout=600)
    wall = time.perf_counter() - start
    failed = [r for r in responses if not (r and r.get("ok"))]
    await client.close()
    if failed:
        raise RuntimeError(f"cold pass failed {len(failed)} jobs: {failed[:2]}")
    return {
        "kernel": "cold_pass", "workload": "mixed-corpus",
        "jobs": len(corpus), "wall_s": round(wall, 3),
        "compiled": sum(1 for r in responses if not r.get("cached")),
    }


async def warm_latency(socket_path: str, corpus: List[Dict],
                       rounds: int) -> Dict:
    """Serial round trips over the cached corpus: per-request latency."""
    client = await GatewayClient.connect(socket_path=socket_path)
    samples: List[float] = []
    misses = 0
    for round_index in range(rounds):
        for index, spec in enumerate(corpus):
            t0 = time.perf_counter()
            response = await client.compile(
                spec, f"w{round_index}-{index}", timeout=120)
            samples.append(time.perf_counter() - t0)
            if not response.get("cached"):
                misses += 1
    await client.close()
    samples.sort()
    p50 = samples[len(samples) // 2]
    p95 = samples[min(len(samples) - 1, int(len(samples) * 0.95))]
    return {
        "kernel": "warm_latency", "workload": "mixed-corpus",
        "samples": len(samples), "uncached": misses,
        "p50_ms": round(p50 * 1e3, 3), "p95_ms": round(p95 * 1e3, 3),
        "max_ms": round(samples[-1] * 1e3, 3),
    }


async def sustained_throughput(socket_path: str, corpus: List[Dict],
                               seconds: float, window: int = 16) -> Dict:
    """Keep ``window`` requests in flight for ``seconds``; count completions."""
    client = await GatewayClient.connect(socket_path=socket_path)
    completed = 0
    errors = 0
    sent = 0
    deadline = time.monotonic() + seconds

    async def send_one():
        nonlocal sent
        spec = corpus[sent % len(corpus)]
        await client._send({"op": "compile", "id": f"t{sent}", "spec": spec})
        sent += 1

    start = time.monotonic()
    for _ in range(window):
        await send_one()
    while time.monotonic() < deadline:
        frame = await asyncio.wait_for(client._read_frame(), 120)
        if frame.get("op") != "compile":
            continue
        completed += 1
        if not frame.get("ok"):
            errors += 1
        await send_one()
    wall = time.monotonic() - start
    # Drain the tail so the server ledger reconciles before stats.
    while completed < sent:
        frame = await asyncio.wait_for(client._read_frame(), 120)
        if frame.get("op") == "compile":
            completed += 1
            if not frame.get("ok"):
                errors += 1
    stats = await client.stats()
    await client.close()
    return {
        "kernel": "sustained", "workload": "mixed-corpus",
        "seconds": round(wall, 3), "completed": completed, "errors": errors,
        "req_per_s": round(completed / wall, 1),
        "hit_rate": stats["cache"]["hit_rate"],
        "queue_depth_after": stats["queue"]["depth"],
        "server_requests": stats["requests"],
    }


def check_baseline(rows: List[Dict], path: str) -> List[str]:
    with open(path) as handle:
        baseline = {row["kernel"]: row for row in json.load(handle)["rows"]}
    problems = []
    warm = next(r for r in rows if r["kernel"] == "warm_latency")
    sustained = next(r for r in rows if r["kernel"] == "sustained")
    recorded_warm = baseline.get("warm_latency")
    recorded_sustained = baseline.get("sustained")
    if recorded_warm is None or recorded_sustained is None:
        return ["baseline file lacks warm_latency/sustained rows"]
    if warm["p50_ms"] > recorded_warm["p50_ms"] * 2.0:
        problems.append(
            f"warm p50 {warm['p50_ms']:.2f}ms more than doubled vs the "
            f"committed baseline {recorded_warm['p50_ms']:.2f}ms")
    if sustained["req_per_s"] < recorded_sustained["req_per_s"] / 2.0:
        problems.append(
            f"throughput {sustained['req_per_s']:.0f} req/s fell below half "
            f"the committed baseline {recorded_sustained['req_per_s']:.0f}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI mode: shorter sustained interval")
    parser.add_argument("--corpus-size", type=int, default=50)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--out", default=None)
    parser.add_argument("--baseline", default=None)
    args = parser.parse_args(argv)

    corpus = mixed_corpus(args.corpus_size)
    warm_rounds = 2 if args.smoke else 4
    sustained_s = 3.0 if args.smoke else 10.0

    rows: List[Dict] = []
    failed = False
    with tempfile.TemporaryDirectory() as tmp:
        gateway = GatewayProcess(Path(tmp), workers=args.workers)
        try:
            row = asyncio.run(cold_pass(gateway.socket_path, corpus))
            rows.append(row)
            print(f"cold pass   {row['jobs']} jobs     wall {row['wall_s']:7.2f}s  "
                  f"({row['compiled']} compiled)")

            row = asyncio.run(warm_latency(gateway.socket_path, corpus,
                                           warm_rounds))
            rows.append(row)
            print(f"warm hits   {row['samples']} reqs    p50 {row['p50_ms']:6.2f}ms  "
                  f"p95 {row['p95_ms']:6.2f}ms  max {row['max_ms']:6.2f}ms")
            if row["uncached"]:
                print(f"FAIL: {row['uncached']} warm requests missed the cache",
                      file=sys.stderr)
                failed = True
            if row["p50_ms"] > WARM_P50_FLOOR_MS:
                print(f"FAIL: warm p50 {row['p50_ms']:.2f}ms above the "
                      f"{WARM_P50_FLOOR_MS:.0f}ms floor", file=sys.stderr)
                failed = True

            row = asyncio.run(sustained_throughput(
                gateway.socket_path, corpus, sustained_s))
            rows.append(row)
            print(f"sustained   {row['completed']} reqs    "
                  f"{row['req_per_s']:7.1f} req/s over {row['seconds']:.1f}s  "
                  f"(hit rate {row['hit_rate']})")
            if row["errors"]:
                print(f"FAIL: {row['errors']} errored responses under load",
                      file=sys.stderr)
                failed = True
            if row["req_per_s"] < THROUGHPUT_FLOOR:
                print(f"FAIL: {row['req_per_s']:.0f} req/s below the "
                      f"{THROUGHPUT_FLOOR:.0f} req/s floor", file=sys.stderr)
                failed = True
            if row["queue_depth_after"] != 0:
                print("FAIL: queue did not drain after the storm",
                      file=sys.stderr)
                failed = True
            served = row["server_requests"]
            outcomes = (served["warm_hits"] + served["completed"]
                        + served["failed"] + served["cancelled"]
                        + served["rejected"] + served["bad_specs"])
            if served["received"] != outcomes:
                print(f"FAIL: ledger does not reconcile: {served}",
                      file=sys.stderr)
                failed = True
        finally:
            code = gateway.stop()
        print(f"shutdown    exit code {code}")
        if code != 0:
            print("FAIL: gateway did not shut down cleanly", file=sys.stderr)
            failed = True
        # A clean shutdown leaves no partial artifacts in the store.
        leftovers = list(Path(tmp).rglob("*.tmp"))
        if leftovers:
            print(f"FAIL: partial artifacts left on disk: {leftovers}",
                  file=sys.stderr)
            failed = True

    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"mode": "smoke" if args.smoke else "full",
                       "corpus": len(corpus), "workers": args.workers,
                       "rows": rows}, handle, indent=2)
        print(f"\nwrote timings to {args.out}")
    if args.baseline:
        for problem in check_baseline(rows, args.baseline):
            print(f"FAIL: {problem}", file=sys.stderr)
            failed = True
    if failed:
        return 1
    print("\ngateway floors satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
