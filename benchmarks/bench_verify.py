"""Verifier benchmark: paper-scale certification latency + mutation catch.

The acceptance gate for the Pauli-propagation verifier (:mod:`repro.verify`):

* **certification** — the ft-backend Rand-30 (30 qubits, ~4.5k strings at
  paper scale) and the sc-backend UCCSD-8 (routed onto the 65-qubit
  Manhattan device, persistent-SWAP layout transitions) must verify at
  every generic opt level 0-3 in under ``--budget`` seconds each (default
  5 s), with no statevector fallback — these are exactly the compilations
  the <= 16-qubit dense oracle cannot touch;
* **detection** — an injected wrong-angle and wrong-Pauli mutation on the
  level-3 circuits must be caught with a localized mismatch report.

Run directly::

    PYTHONPATH=src python benchmarks/bench_verify.py           # full
    PYTHONPATH=src python benchmarks/bench_verify.py --smoke   # CI gate

``--out``/``--baseline`` match ``bench_kernels.py``: JSON dump plus a
regression gate — a verify time more than 4x its committed baseline fails
(generous, because absolute times depend on the runner; the hard 5 s
budget is the primary gate).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.circuit.gates import OP
from repro.core import compile_program
from repro.transpile import manhattan_65, transpile
from repro.verify import verify_circuit, verify_result
from repro.workloads import BENCHMARKS

#: The paper-scale acceptance matrix: UCCSD-8 and Rand-30, each compiled
#: through both backends (SC routed onto Manhattan-65 with persistent
#: layout transitions), all beyond any dense-simulation oracle.
CASES = (
    ("Rand-30", "ft"),
    ("Rand-30", "sc"),
    ("UCCSD-8", "sc"),
    ("UCCSD-8", "ft"),
)
OPT_LEVELS = (0, 1, 2, 3)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _first_rz_slot(circuit):
    tape = circuit.tape
    for slot in tape.iter_slots():
        if tape.op[slot] == OP["rz"]:
            return slot
    raise AssertionError("no rz gate found")


def bench_case(name: str, backend: str, repeats: int, budget: float) -> List[Dict]:
    program = BENCHMARKS[name].build("paper")
    kwargs = {"coupling": manhattan_65()} if backend == "sc" else {}
    result = compile_program(program, backend=backend, **kwargs)
    workload = f"{name}/{backend}"

    rows: List[Dict] = []
    level3_circuit = None
    for level in OPT_LEVELS:
        circuit = transpile(result.circuit, optimization_level=level)
        if level == 3:
            level3_circuit = circuit

        def check():
            report = verify_circuit(
                circuit,
                result.emitted_terms,
                initial_layout=result.initial_layout,
                final_layout=result.final_layout,
            )
            assert report.ok, report.describe()
            return report

        report = check()
        seconds = _best_of(check, repeats)
        rows.append({
            "workload": workload, "kernel": f"verify_l{level}",
            "backend": backend, "qubits": circuit.num_qubits,
            "gates": len(circuit), "gadgets": report.gadget_count,
            "seconds": seconds, "within_budget": seconds <= budget,
        })

    # Mutation catch: the verifier must reject a wrong angle and a wrong
    # Pauli on the fully optimized circuit, with a localized report.  (The
    # delta may cancel the gadget outright — e.g. UCCSD angles are exact
    # multiples of 1/16 — so any mismatch kind counts as detection.)
    mutated = level3_circuit.copy()
    mutated.tape.param[_first_rz_slot(mutated)] += 0.1875
    angle_report = verify_circuit(
        mutated, result.emitted_terms,
        initial_layout=result.initial_layout, final_layout=result.final_layout,
    )
    mutated = level3_circuit.copy()
    tape = mutated.tape
    for slot in tape.iter_slots():
        if tape.op[slot] == OP["h"]:
            tape.counts[OP["h"]] -= 1
            tape.counts[OP["yh"]] += 1
            tape.op[slot] = OP["yh"]
            break
    pauli_report = verify_circuit(
        mutated, result.emitted_terms,
        initial_layout=result.initial_layout, final_layout=result.final_layout,
    )
    rows.append({
        "workload": workload, "kernel": "mutation_detect",
        "wrong_angle_caught": not angle_report.ok
        and angle_report.mismatch is not None,
        "wrong_pauli_caught": not pauli_report.ok
        and pauli_report.mismatch is not None,
        "angle_report": angle_report.mismatch.describe()
        if angle_report.mismatch else "",
        "pauli_report": pauli_report.mismatch.describe()
        if pauli_report.mismatch else "",
    })
    return rows


def check_baseline(rows: List[Dict], path: str) -> List[str]:
    """Fail any verify time that more than quadrupled vs the baseline."""
    with open(path) as handle:
        baseline = json.load(handle)["kernels"]
    problems = []
    for row in rows:
        if "seconds" not in row:
            continue
        key = f"{row['workload']}/{row['kernel']}"
        recorded = baseline.get(key)
        if recorded is None:
            problems.append(f"{key}: no committed baseline entry")
        elif row["seconds"] > recorded["seconds"] * 4.0:
            problems.append(
                f"{key}: verify took {row['seconds']:.3f}s, over 4x the "
                f"committed {recorded['seconds']:.3f}s"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI mode: single repeat per level")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--budget", type=float, default=5.0,
                        help="hard per-verification wall-clock budget (s)")
    parser.add_argument("--out", default=None,
                        help="write timing rows to this JSON file")
    parser.add_argument("--baseline", default=None,
                        help="fail if any verify time quadrupled vs this JSON")
    args = parser.parse_args(argv)

    repeats = args.repeats or (1 if args.smoke else 5)
    rows: List[Dict] = []
    failed = False
    for name, backend in CASES:
        for row in bench_case(name, backend, repeats, args.budget):
            rows.append(row)
            label = row["workload"]
            if row["kernel"] == "mutation_detect":
                caught = row["wrong_angle_caught"] and row["wrong_pauli_caught"]
                print(
                    f"mutation     {label:<13} wrong-angle "
                    f"{'caught' if row['wrong_angle_caught'] else 'MISSED'}, "
                    f"wrong-pauli "
                    f"{'caught' if row['wrong_pauli_caught'] else 'MISSED'}"
                )
                if not caught:
                    print(f"FAIL: {label} mutation not detected", file=sys.stderr)
                    failed = True
            else:
                print(
                    f"verify       {label:<13} {row['kernel']}  "
                    f"{row['qubits']:>2}q {row['gates']:>7} gates "
                    f"{row['gadgets']:>5} gadgets  {row['seconds'] * 1e3:8.1f}ms"
                )
                if not row["within_budget"]:
                    print(
                        f"FAIL: {label}/{row['kernel']} took "
                        f"{row['seconds']:.2f}s, over the {args.budget:.1f}s "
                        f"budget", file=sys.stderr,
                    )
                    failed = True

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(
                {"mode": "smoke" if args.smoke else "full",
                 "repeats": repeats, "budget_s": args.budget, "rows": rows},
                handle, indent=2,
            )
        print(f"\nwrote timings to {args.out}")

    if args.baseline:
        for problem in check_baseline(rows, args.baseline):
            print(f"FAIL: {problem}", file=sys.stderr)
            failed = True
    if failed:
        return 1
    print("\nverifier budget satisfied on every paper-scale case")
    return 0


if __name__ == "__main__":
    sys.exit(main())
