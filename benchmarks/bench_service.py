"""Serving-layer benchmark: cache hit latency and batch scaling.

Two experiments, mirroring how the serving layer is used:

* **cold vs warm** — the UCCSD-8 (paper scale) FT compile served through a
  fresh cache (miss path: fingerprint, compile, serialize, store) against
  the same request served from a populated cache (hit path: fingerprint,
  lookup, deserialize).  The acceptance floor is a >= 20x warm speedup.
* **batch scaling** — the Table-2 corpus (lattice families, the N2/H2S
  molecules, Rand-30, and the QAOA/SC entries, heavies compiled under both
  schedulers) pushed through ``compile_batch`` serially and with 4
  workers.  The floor is >= 2x parallel speedup; jobs are ordered
  heaviest-first so the pool's greedy pulls approximate LPT scheduling.

Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py           # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke   # CI gate

``--smoke`` shrinks the corpus, keeps the cache-hit check, and skips the
worker-scaling *floor* (CI runners have unpredictable core counts) while
still exercising the pool path.  ``--out``/``--baseline`` match
``bench_kernels.py``: JSON dump plus a fail-if-halved regression gate on
the recorded speedups.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from repro.core import compile_program
from repro.service import CompileCache, compile_batch
from repro.workloads import build_benchmark

#: Table-2 corpus for the scaling experiment, heaviest first.  The two
#: multi-second entries also run under their non-default scheduler so no
#: single job dominates the 4-worker critical path.
TABLE2_CORPUS: List[Dict] = [
    {"benchmark": "Rand-30", "scale": "paper"},
    {"benchmark": "Rand-30", "scale": "paper", "scheduler": "do",
     "label": "Rand-30/do"},
    {"benchmark": "H2S", "scale": "paper"},
    {"benchmark": "H2S", "scale": "paper", "scheduler": "do", "label": "H2S/do"},
    {"benchmark": "N2", "scale": "paper"},
    {"benchmark": "N2", "scale": "paper", "scheduler": "do", "label": "N2/do"},
    {"benchmark": "TSP-5", "scale": "paper"},
    {"benchmark": "UCCSD-8", "scale": "paper"},
    {"benchmark": "Heisen-3D", "scale": "paper"},
    {"benchmark": "Heisen-2D", "scale": "paper"},
    {"benchmark": "REG-20-4", "scale": "paper"},
    {"benchmark": "Ising-1D", "scale": "paper"},
]

SMOKE_CORPUS: List[Dict] = [
    {"benchmark": "UCCSD-8", "scale": "paper"},
    {"benchmark": "N2", "scale": "small"},
    {"benchmark": "Heisen-2D", "scale": "paper"},
    {"benchmark": "Heisen-1D", "scale": "paper"},
    {"benchmark": "REG-20-4", "scale": "small"},
    {"benchmark": "Ising-1D", "scale": "paper"},
    # Exact duplicate: must be deduped, not compiled twice.
    {"benchmark": "Ising-1D", "scale": "paper", "label": "Ising-1D-dup"},
]


def effective_cores() -> int:
    """CPUs this process may actually use (affinity/cgroup aware-ish)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _best_of(fn, repeats: int) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


def bench_cache_hit(repeats: int, workdir: Path) -> Dict:
    """Cold (miss path, fresh store each run) vs warm (hit path) latency."""
    program = build_benchmark("UCCSD-8", "paper")

    cold_root = workdir / "cold"

    def cold_run():
        shutil.rmtree(cold_root, ignore_errors=True)
        result = compile_program(
            program, backend="ft", cache=CompileCache(cold_root)
        )
        assert not result.from_cache

    warm_cache = CompileCache(workdir / "warm")
    compile_program(program, backend="ft", cache=warm_cache)

    def warm_run():
        result = compile_program(program, backend="ft", cache=warm_cache)
        assert result.from_cache

    cold = _best_of(cold_run, repeats)
    warm = _best_of(warm_run, max(repeats * 5, 50))

    warm_cache.clear_memory()
    start = time.perf_counter()
    disk_result = compile_program(program, backend="ft", cache=warm_cache)
    disk = time.perf_counter() - start
    assert disk_result.from_cache and warm_cache.stats.disk_hits >= 1

    return {
        "workload": "UCCSD-8", "kernel": "cache_hit",
        "cold_ms": cold * 1e3, "warm_ms": warm * 1e3,
        "disk_hit_ms": disk * 1e3,
        "speedup": cold / warm,
    }


def bench_batch_scaling(corpus: List[Dict], workers: int, repeats: int,
                        workdir: Path) -> Dict:
    """Serial vs ``workers``-wide batch wall time on a fresh store each run."""

    def run(n_workers: int) -> float:
        def once():
            root = workdir / f"batch-{n_workers}"
            shutil.rmtree(root, ignore_errors=True)
            batch = compile_batch(corpus, cache=CompileCache(root),
                                  workers=n_workers)
            assert len(batch.entries) == len(corpus)
        return _best_of(once, repeats)

    serial = run(1)
    parallel = run(workers)
    return {
        "workload": "table2-corpus", "kernel": f"batch_{workers}w",
        "jobs": len(corpus), "cores": effective_cores(),
        "serial_s": serial, "parallel_s": parallel,
        "speedup": serial / parallel,
    }


def bench_warm_batch(corpus: List[Dict], workdir: Path) -> Dict:
    """A second pass over the same corpus must be all cache hits."""
    root = workdir / "warm-batch"
    cache = CompileCache(root)
    compile_batch(corpus, cache=cache, workers=1)
    start = time.perf_counter()
    batch = compile_batch(corpus, cache=cache, workers=1)
    elapsed = time.perf_counter() - start
    assert all(entry.cached or entry.deduped for entry in batch.entries), (
        "second batch pass was not fully served from the cache"
    )
    return {
        "workload": "table2-corpus", "kernel": "warm_batch",
        "jobs": len(corpus), "wall_s": elapsed,
        "hits": sum(1 for e in batch.entries if e.cached),
    }


def check_baseline(rows: List[Dict], path: str) -> List[str]:
    """Fail any speedup that halved against the committed baseline (ratio
    comparison divides out absolute machine speed, as in bench_kernels)."""
    with open(path) as handle:
        baseline = json.load(handle)["kernels"]
    problems = []
    for row in rows:
        if "speedup" not in row:
            continue
        if row["kernel"].startswith("batch_"):
            # Worker scaling depends on the host's core count, which the
            # committed baseline cannot know; gated by the 2x floor instead.
            continue
        key = f"{row['workload']}/{row['kernel']}"
        recorded = baseline.get(key)
        if recorded is None:
            problems.append(f"{key}: no committed baseline entry")
        elif row["speedup"] < recorded["speedup"] / 2.0:
            problems.append(
                f"{key}: speedup {row['speedup']:.1f}x fell below half the "
                f"committed baseline {recorded['speedup']:.1f}x"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI mode: smaller corpus, no scaling floor")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", default=None,
                        help="write timing rows to this JSON file")
    parser.add_argument("--baseline", default=None,
                        help="fail if any speedup halved vs this baseline JSON")
    args = parser.parse_args(argv)

    repeats = args.repeats or (3 if args.smoke else 5)
    corpus = SMOKE_CORPUS if args.smoke else TABLE2_CORPUS
    warm_floor = 10.0 if args.smoke else 20.0

    rows = []
    failed = False
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)

        row = bench_cache_hit(repeats, workdir)
        rows.append(row)
        print(
            f"cache hit   UCCSD-8/ft  cold {row['cold_ms']:8.2f}ms  "
            f"warm {row['warm_ms']:6.3f}ms  disk-hit {row['disk_hit_ms']:6.3f}ms  "
            f"-> {row['speedup']:5.1f}x"
        )
        if row["speedup"] < warm_floor:
            print(
                f"FAIL: warm cache hit speedup {row['speedup']:.1f}x below "
                f"the {warm_floor:.0f}x floor", file=sys.stderr,
            )
            failed = True

        row = bench_batch_scaling(corpus, args.workers, repeats if args.smoke else 2,
                                  workdir)
        rows.append(row)
        cores = row["cores"]
        print(
            f"batch       {row['jobs']} jobs      serial {row['serial_s']:7.2f}s  "
            f"{args.workers}-worker {row['parallel_s']:7.2f}s  "
            f"-> {row['speedup']:5.2f}x  ({cores} core(s))"
        )
        # Wall-clock scaling needs physical parallelism: the 2x floor is
        # only meaningful with >= 4 usable cores.  On narrower machines the
        # number is recorded but not gated (a 4-worker pool on 1 core can
        # only lose).
        if not args.smoke and cores >= 4 and row["speedup"] < 2.0:
            print(
                f"FAIL: {args.workers}-worker batch speedup "
                f"{row['speedup']:.2f}x below the 2x floor", file=sys.stderr,
            )
            failed = True
        elif not args.smoke and cores < 4:
            print(
                f"note: scaling floor skipped ({cores} usable core(s) < 4); "
                f"speedup recorded for reference only"
            )

        row = bench_warm_batch(corpus, workdir)
        rows.append(row)
        print(
            f"warm batch  {row['jobs']} jobs      wall {row['wall_s']:7.3f}s  "
            f"({row['hits']} hits)"
        )

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(
                {"mode": "smoke" if args.smoke else "full",
                 "workers": args.workers, "repeats": repeats, "rows": rows},
                handle, indent=2,
            )
        print(f"\nwrote timings to {args.out}")

    if args.baseline:
        for problem in check_baseline(rows, args.baseline):
            print(f"FAIL: {problem}", file=sys.stderr)
            failed = True
    if failed:
        return 1
    print("\nserving-layer floors satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
