"""Shared benchmark configuration.

Scale selection: set ``REPRO_SCALE=paper`` to run the paper-size benchmarks
(hours for the largest entries, as in the paper); the default ``small``
scale finishes in minutes on a laptop.

Every bench writes its rendered table into ``results/`` next to this file
so EXPERIMENTS.md can reference stable artifacts.
"""

import os
import resource
import tracemalloc
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "small")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def peak_rss_mb() -> float:
    """Process high-water RSS in MB (``ru_maxrss`` is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def memory_footer() -> str:
    """One-line memory report appended to every benchmark artifact.

    Always includes the process peak RSS; when the caller is running under
    :mod:`tracemalloc` (the scale benches trace their scheduling phase) the
    traced Python/numpy allocation peak is reported too — that number is
    host-independent and is what the bench_scale memory gate compares.
    """
    line = f"peak RSS: {peak_rss_mb():.0f} MB"
    if tracemalloc.is_tracing():
        _, peak = tracemalloc.get_traced_memory()
        line += f"; tracemalloc peak: {peak / 2**20:.1f} MB"
    return line


def write_result(results_dir: Path, name: str, text: str, memory: bool = True) -> None:
    path = results_dir / name
    if memory:
        text = f"{text}\n[{memory_footer()}]"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
