"""Shared benchmark configuration.

Scale selection: set ``REPRO_SCALE=paper`` to run the paper-size benchmarks
(hours for the largest entries, as in the paper); the default ``small``
scale finishes in minutes on a laptop.

Every bench writes its rendered table into ``results/`` next to this file
so EXPERIMENTS.md can reference stable artifacts.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "small")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
