"""Device-layer benchmark: reliability-weighted routing vs distance-only.

For each registry device x workload combo the logical circuit is routed
twice — once hop-distance-only (the seed-identical path) and once with the
device's calibrated per-edge error rates (the portfolio router) — and both
results are scored with ESP against the same noise model.  The gates:

* **correctness** — both routes pass ``validate_routed``;
* **never-worse** — the noise-aware ESP is >= the distance-only ESP on
  every combo (the portfolio always contains the distance-only baseline);
* **improvement** — on the headline combos (melbourne-15 / falcon-27 x
  UCCSD-8 / REG-12-4) the ratio stays within 2x of the committed baseline
  (``--baseline``), which records a strict improvement on each;
* **overhead** — with no noise model supplied, the public ``route()``
  dispatch costs < 5% over the bare routing kernel.

Everything here is deterministic (seeded calibrations, deterministic
router), so the ESP numbers are exactly reproducible; the 2x margins only
absorb cross-platform float differences.

Run directly::

    PYTHONPATH=src python benchmarks/bench_devices.py            # full
    PYTHONPATH=src python benchmarks/bench_devices.py --smoke    # CI gate

``--out FILE`` dumps the rows as JSON; ``--baseline FILE`` enables the
committed-baseline ratio gate (see benchmarks/results/).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.core import ft_compile
from repro.noise.model import esp
from repro.transpile import get_device, route, validate_routed
from repro.transpile.layout import dense_initial_layout
from repro.transpile.routing import _route_with
from repro.workloads import maxcut_program, regular_graph, uccsd_program

#: The acceptance combos: both headline devices on the UCCSD-8 / QAOA
#: corpus.  The committed baseline records a strict ESP improvement on
#: every one of these.
HEADLINE_DEVICES = ("melbourne-15", "falcon-27")
#: Full mode adds breadth: more topologies, same never-worse gate.
EXTRA_DEVICES = ("manhattan-65", "sycamore-30", "grid-4x4")

_OVERHEAD_LIMIT = 0.05


def _workloads():
    return {
        "UCCSD-8": uccsd_program(8),
        "REG-12-4": maxcut_program(regular_graph(12, 4, seed=3), name="REG-12-4"),
    }


def bench_esp(device_names) -> List[Dict]:
    rows = []
    circuits = {
        name: ft_compile(program, scheduler="gco").circuit
        for name, program in _workloads().items()
    }
    for dev_name in device_names:
        dev = get_device(dev_name)
        for wname, circuit in circuits.items():
            if circuit.num_qubits > dev.coupling.num_qubits:
                continue
            base = route(circuit, dev.coupling)
            noisy = route(circuit, dev.coupling, edge_error=dev.edge_error())
            validate_routed(base.circuit, dev.coupling)
            validate_routed(noisy.circuit, dev.coupling)
            esp_base = esp(base.circuit, dev.noise_model, strict=True)
            esp_noisy = esp(noisy.circuit, dev.noise_model, strict=True)
            rows.append(
                {"device": dev_name, "workload": wname,
                 "base_swaps": base.swap_count, "noise_swaps": noisy.swap_count,
                 "esp_base": esp_base, "esp_noise": esp_noisy,
                 "ratio": esp_noisy / esp_base if esp_base > 0 else float("inf")}
            )
    return rows


def bench_overhead(repeats: int) -> Dict:
    """Dispatch cost of the noise-aware ``route()`` on the no-noise path.

    The public entry point now checks connectivity, probes the (absent)
    cost matrix, and falls through to the routing kernel; all of that must
    stay under 5% of one routing run.  Both sides are timed best-of-N on
    the same pre-built layout-independent inputs.
    """
    dev = get_device("melbourne-15")
    circuit = ft_compile(_workloads()["UCCSD-8"], scheduler="gco").circuit
    coupling = dev.coupling
    coupling.distance_matrix()  # exclude the one-time BFS from both sides

    def kernel():
        layout = dense_initial_layout(coupling, circuit.num_qubits)
        return _route_with(circuit, coupling, layout, None)

    def public():
        return route(circuit, coupling)

    # Interleave the two sides so clock drift and cache warmth hit both
    # equally — timing them in separate blocks biases an 8ms ratio by more
    # than the 5% being measured.
    kernel()
    public()  # warm up both
    kernel_s = public_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        kernel()
        kernel_s = min(kernel_s, time.perf_counter() - start)
        start = time.perf_counter()
        public()
        public_s = min(public_s, time.perf_counter() - start)
    return {
        "kernel_ms": kernel_s * 1e3,
        "public_ms": public_s * 1e3,
        "overhead": public_s / kernel_s - 1.0,
    }


def check_baseline(rows: List[Dict], path: str) -> List[str]:
    """Gate the headline combos against the committed ESP baseline."""
    with open(path) as handle:
        baseline = json.load(handle)["combos"]
    problems = []
    by_key = {f"{r['device']}/{r['workload']}": r for r in rows}
    for key, recorded in baseline.items():
        row = by_key.get(key)
        if row is None:
            problems.append(f"{key}: combo missing from this run")
            continue
        if row["ratio"] < recorded["ratio"] / 2.0:
            problems.append(
                f"{key}: ESP ratio {row['ratio']:.2f} fell below half the "
                f"committed baseline {recorded['ratio']:.2f}"
            )
        if row["esp_noise"] < recorded["esp_noise"] / 2.0:
            problems.append(
                f"{key}: noise-aware ESP {row['esp_noise']:.3e} fell below "
                f"half the committed baseline {recorded['esp_noise']:.3e}"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI mode: headline devices only, fewer overhead repeats",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default=None, help="write rows to this JSON file")
    parser.add_argument(
        "--baseline", default=None,
        help="gate the headline combos against this committed baseline "
             "JSON (see benchmarks/results/)",
    )
    args = parser.parse_args(argv)

    devices = HEADLINE_DEVICES if args.smoke else HEADLINE_DEVICES + EXTRA_DEVICES
    rows = bench_esp(devices)

    print("ESP: reliability-weighted route vs distance-only SABRE")
    print(f"{'device':<14} {'workload':<10} {'base sw':>8} {'noise sw':>9} "
          f"{'ESP base':>10} {'ESP noise':>10} {'ratio':>7}")
    for row in rows:
        print(
            f"{row['device']:<14} {row['workload']:<10} "
            f"{row['base_swaps']:>8} {row['noise_swaps']:>9} "
            f"{row['esp_base']:>10.3e} {row['esp_noise']:>10.3e} "
            f"{row['ratio']:>6.2f}x"
        )

    failed = False
    for row in rows:
        if row["esp_noise"] < row["esp_base"]:
            print(
                f"FAIL: {row['device']}/{row['workload']} noise-aware ESP "
                f"{row['esp_noise']:.3e} below distance-only "
                f"{row['esp_base']:.3e}",
                file=sys.stderr,
            )
            failed = True

    overhead = bench_overhead(args.repeats or (10 if args.smoke else 30))
    print(
        f"\nno-noise dispatch overhead: kernel {overhead['kernel_ms']:.2f}ms, "
        f"route() {overhead['public_ms']:.2f}ms "
        f"({overhead['overhead'] * 100:+.1f}%)"
    )
    if overhead["overhead"] > _OVERHEAD_LIMIT:
        print(
            f"FAIL: no-noise route() overhead {overhead['overhead'] * 100:.1f}% "
            f"exceeds the {_OVERHEAD_LIMIT * 100:.0f}% limit",
            file=sys.stderr,
        )
        failed = True

    if args.baseline:
        for problem in check_baseline(rows, args.baseline):
            print(f"FAIL: {problem}", file=sys.stderr)
            failed = True

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(
                {"mode": "smoke" if args.smoke else "full",
                 "rows": rows, "overhead": overhead},
                handle, indent=2,
            )
        print(f"wrote results to {args.out}")

    if failed:
        return 1
    print("\nnoise-aware routing never lost ESP; dispatch overhead within limit")
    return 0


if __name__ == "__main__":
    sys.exit(main())
