"""Compile-time scaling (the paper's ~5 % overhead / scalability claim).

The paper argues Paulihedral's passes are scalable because they manipulate
Pauli strings, not gate matrices: lexicographic sort is O(S log S), DO
layering is near-quadratic in blocks but with tiny constants, and synthesis
is single-pass.  This bench measures PH frontend wall time across the
random-Hamiltonian family and asserts near-linear growth in string count —
first on the paper-scale sizes (10^2-10^3 strings, materialized ``gco``),
then on the streaming regime (10^4-10^5 strings, ``gco-stream``), where the
windowed scheduler keeps growth near-linear long after the materialized
path has gone quadratic in view construction.
"""

import time

import pytest

from repro.analysis import format_table
from repro.core import ft_compile
from repro.core.streaming import stream_schedule
from repro.workloads import random_hamiltonian_program, scale_random_program

from conftest import write_result

_SIZES = [100, 200, 400, 800]
_STREAM_SIZES = [10_000, 30_000, 100_000]


def _time_compile(num_strings: int) -> float:
    program = random_hamiltonian_program(20, num_strings=num_strings, seed=5)
    start = time.perf_counter()
    ft_compile(program, scheduler="gco", run_peephole=False)
    return time.perf_counter() - start


def test_frontend_scaling(benchmark, results_dir):
    timings = {}
    for size in _SIZES:
        timings[size] = _time_compile(size)
    benchmark.pedantic(_time_compile, args=(_SIZES[-1],), rounds=1, iterations=1)

    table = format_table(
        ["Strings", "Frontend (s)", "us / string"],
        [[size, f"{sec:.3f}", f"{1e6 * sec / size:.1f}"] for size, sec in timings.items()],
    )
    write_result(results_dir, "scaling_frontend.txt", table)

    # Near-linear: 8x strings should cost well under 8 * 8x time.
    growth = timings[_SIZES[-1]] / max(timings[_SIZES[0]], 1e-9)
    assert growth < 64, f"superquadratic frontend scaling: {growth:.1f}x for 8x strings"


def _time_stream_compile(num_strings: int) -> float:
    program = scale_random_program(100, num_strings, seed=5)
    start = time.perf_counter()
    ft_compile(program, scheduler="gco-stream", run_peephole=False)
    return time.perf_counter() - start


def test_streaming_scaling(results_dir):
    """10^4-10^5 strings through the streaming frontend stays near-linear.

    The materialized path's per-block ``BlockView`` construction makes it
    superlinear well before 10^5 strings; ``gco-stream`` scans compact
    keys in chunks and must keep the 10x size step under a 30x time step
    (O(S log S) sort plus linear synthesis; 30x leaves headroom for
    allocator noise on a loaded runner, while quadratic growth would be
    100x).
    """
    timings = {}
    for size in _STREAM_SIZES:
        timings[size] = _time_stream_compile(size)

    table = format_table(
        ["Strings", "Streaming frontend (s)", "us / string"],
        [[size, f"{sec:.3f}", f"{1e6 * sec / size:.1f}"]
         for size, sec in timings.items()],
    )
    write_result(results_dir, "scaling_streaming.txt", table)

    growth = timings[_STREAM_SIZES[-1]] / max(timings[_STREAM_SIZES[0]], 1e-9)
    assert growth < 30, (
        f"superlinear streaming frontend scaling: {growth:.1f}x time "
        f"for 10x strings"
    )

    # The per-string cost at 10^5 must not exceed the 10^4 cost by more
    # than 3x either (the same bound, phrased scale-free).
    per_small = timings[_STREAM_SIZES[0]] / _STREAM_SIZES[0]
    per_large = timings[_STREAM_SIZES[-1]] / _STREAM_SIZES[-1]
    assert per_large < 3 * per_small, (
        f"per-string streaming cost tripled: {1e6 * per_small:.1f} -> "
        f"{1e6 * per_large:.1f} us/string"
    )


@pytest.mark.parametrize("num_strings", [200, 800])
def test_ph_frontend_throughput(benchmark, num_strings):
    program = random_hamiltonian_program(20, num_strings=num_strings, seed=5)
    result = benchmark(ft_compile, program, scheduler="gco", run_peephole=False)
    assert result.circuit.size > 0


@pytest.mark.parametrize("num_strings", [10_000])
def test_streaming_frontend_throughput(benchmark, num_strings):
    program = scale_random_program(100, num_strings, seed=5)
    result = benchmark.pedantic(
        ft_compile, args=(program,),
        kwargs={"scheduler": "gco-stream", "run_peephole": False},
        rounds=1, iterations=1,
    )
    assert result.circuit.size > 0
