"""Compile-time scaling (the paper's ~5 % overhead / scalability claim).

The paper argues Paulihedral's passes are scalable because they manipulate
Pauli strings, not gate matrices: lexicographic sort is O(S log S), DO
layering is near-quadratic in blocks but with tiny constants, and synthesis
is single-pass.  This bench measures PH frontend wall time across the
random-Hamiltonian family and asserts near-linear growth in string count.
"""

import time

import pytest

from repro.analysis import format_table
from repro.core import ft_compile
from repro.workloads import random_hamiltonian_program

from conftest import write_result

_SIZES = [100, 200, 400, 800]


def _time_compile(num_strings: int) -> float:
    program = random_hamiltonian_program(20, num_strings=num_strings, seed=5)
    start = time.perf_counter()
    ft_compile(program, scheduler="gco", run_peephole=False)
    return time.perf_counter() - start


def test_frontend_scaling(benchmark, results_dir):
    timings = {}
    for size in _SIZES:
        timings[size] = _time_compile(size)
    benchmark.pedantic(_time_compile, args=(_SIZES[-1],), rounds=1, iterations=1)

    table = format_table(
        ["Strings", "Frontend (s)", "us / string"],
        [[size, f"{sec:.3f}", f"{1e6 * sec / size:.1f}"] for size, sec in timings.items()],
    )
    write_result(results_dir, "scaling_frontend.txt", table)

    # Near-linear: 8x strings should cost well under 8 * 8x time.
    growth = timings[_SIZES[-1]] / max(timings[_SIZES[0]], 1e-9)
    assert growth < 64, f"superquadratic frontend scaling: {growth:.1f}x for 8x strings"


@pytest.mark.parametrize("num_strings", [200, 800])
def test_ph_frontend_throughput(benchmark, num_strings):
    program = random_hamiltonian_program(20, num_strings=num_strings, seed=5)
    result = benchmark(ft_compile, program, scheduler="gco", run_peephole=False)
    assert result.circuit.size > 0
