"""Micro-benchmark: the repository's rewritten kernels vs their seed code.

Two families, both on the paper-scale UCCSD-8 and REG-20-4 workloads:

* **Pauli kernels** — the shipped ``do_schedule`` / ``most_overlap_sort``
  (packed :class:`~repro.pauli.symplectic.PauliTable`, cached
  :class:`~repro.ir.BlockView` masks) against faithful copies of the
  original per-byte scalar implementations;
* **transpile stages** — the tape-based worklist ``optimize`` and the
  incremental SABRE ``route`` (plus the full level-3
  optimize/route/re-optimize composition) against the seed
  rebuild-the-world implementations kept in
  :mod:`repro.transpile.reference`.

Output equality/equivalence is asserted before timing, and the
pairwise-consistent junction planner is checked for CNOT non-regression
against the legacy one-sided planner on the Table 2 FT configurations.

Run directly::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke    # CI gate

``--out FILE`` dumps every timing row as JSON (CI uploads it as an
artifact); ``--baseline FILE`` additionally fails if any kernel runs more
than 2x slower than the committed baseline timings.

Exit status is non-zero when the smoke thresholds fail, so CI can use it
as a perf sanity check.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.circuit.statevector import equivalent_up_to_global_phase, simulate
from repro.core import ft_compile
from repro.core.ft_backend import most_overlap_sort
from repro.core.reference import scalar_do_schedule, scalar_most_overlap_sort
from repro.core.scheduling import do_schedule
from repro.ir import PauliProgram
from repro.pauli import PauliString
from repro.transpile import manhattan_65, optimize, route
from repro.transpile.reference import seed_optimize, seed_route
from repro.workloads import build_benchmark

WORKLOADS = ("UCCSD-8", "REG-20-4")
TABLE2_FT = ("Ising-1D", "Ising-2D", "Heisen-1D", "Heisen-2D", "N2", "Rand-30")

#: Statevector equivalence is only asserted where it is cheap.
_EQUIV_MAX_QUBITS = 12


# ----------------------------------------------------------------------
# Harness (the scalar oracle lives in repro.core.reference, shared with
# the equivalence tests so the two cannot drift)
# ----------------------------------------------------------------------

def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` single-run time.

    The minimum is the standard robust microbenchmark estimator: a load
    spike can only inflate individual runs, never deflate them, so the
    minimum tracks the true cost while a mean smears scheduler noise into
    the speedup ratios (and the CI regression gate built on them).
    """
    fn()  # warm up caches and allocator
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def _schedule_signature(schedule) -> List[List[Tuple[str, ...]]]:
    return [
        [tuple(ws.string.label for ws in block) for block in layer]
        for layer in schedule
    ]


def _program_terms(program: PauliProgram) -> List[Tuple[PauliString, float]]:
    return [
        (ws.string, ws.weight * parameter)
        for ws, parameter in program.all_weighted_strings()
    ]


def bench_kernels(repeats: int) -> List[Dict]:
    rows = []
    for name in WORKLOADS:
        program = build_benchmark(name, "paper")
        terms = _program_terms(program)

        assert _schedule_signature(do_schedule(program)) == _schedule_signature(
            scalar_do_schedule(program)
        ), f"do_schedule output diverged from the scalar reference on {name}"
        assert [s.label for s, _ in most_overlap_sort(terms)] == [
            s.label for s, _ in scalar_most_overlap_sort(terms)
        ], f"most_overlap_sort output diverged from the scalar reference on {name}"

        scalar = _time(lambda: scalar_do_schedule(program), repeats)
        vector = _time(lambda: do_schedule(program), repeats)
        rows.append(
            {"workload": name, "kernel": "do_schedule",
             "scalar_ms": scalar * 1e3, "vector_ms": vector * 1e3,
             "speedup": scalar / vector}
        )
        scalar = _time(lambda: scalar_most_overlap_sort(terms), repeats)
        vector = _time(lambda: most_overlap_sort(terms), repeats)
        rows.append(
            {"workload": name, "kernel": "most_overlap_sort",
             "scalar_ms": scalar * 1e3, "vector_ms": vector * 1e3,
             "speedup": scalar / vector}
        )
    return rows


def _assert_optimize_equivalent(name: str, seed_out, tape_out) -> None:
    """The two optimizers only need to agree up to circuit equivalence."""
    assert len(seed_out) == len(tape_out), (
        f"optimize gate count diverged on {name}: "
        f"{len(seed_out)} vs {len(tape_out)}"
    )
    assert seed_out.count_ops() == tape_out.count_ops(), (
        f"optimize op counts diverged on {name}"
    )
    if seed_out.num_qubits <= _EQUIV_MAX_QUBITS:
        rng = np.random.default_rng(20260730)
        dim = 2 ** seed_out.num_qubits
        state = rng.normal(size=dim) + 1j * rng.normal(size=dim)
        state /= np.linalg.norm(state)
        assert equivalent_up_to_global_phase(
            simulate(seed_out, state), simulate(tape_out, state)
        ), f"optimize outputs not statevector-equivalent on {name}"


def bench_transpile(repeats: int) -> List[Dict]:
    """Time the level-3 transpile stages: worklist engine + incremental
    router vs the seed implementations, with equivalence asserted first."""
    coupling = manhattan_65()
    coupling.distance_matrix()  # exclude the one-time BFS from both sides
    rows = []
    for name in WORKLOADS:
        program = build_benchmark(name, "paper")
        emission = ft_compile(program, scheduler="do", run_peephole=False).circuit

        seed_opt = seed_optimize(emission)
        tape_opt = optimize(emission)
        _assert_optimize_equivalent(name, seed_opt, tape_opt)

        seed_routed, _, _, seed_swaps = seed_route(seed_opt, coupling)
        tape_result = route(seed_opt, coupling)
        assert list(seed_routed.gates) == list(tape_result.circuit.gates), (
            f"router output diverged from the seed router on {name}"
        )
        assert seed_swaps == tape_result.swap_count

        def seed_l3():
            out = seed_optimize(emission)
            routed, _, _, _ = seed_route(out, coupling)
            return seed_optimize(routed)

        def tape_l3():
            out = optimize(emission)
            routed = route(out, coupling).circuit
            return optimize(routed)

        # Both routers are timed on the same input (seed_opt, the circuit
        # whose routed output was asserted identical above) so the row is
        # a like-for-like ratio.  floor_scale softens the gate for the
        # routing-dominated rows, whose sub-ms seed timings are the
        # noisiest: the recorded full-run speedups (benchmarks/results/)
        # document the achieved >=5x on optimize+route, while the floor
        # only alarms on real regressions instead of timer jitter.
        stages = (
            ("optimize", lambda: seed_optimize(emission), lambda: optimize(emission), 1.0),
            ("route", lambda: seed_route(seed_opt, coupling),
             lambda: route(seed_opt, coupling), 0.6),
            ("optimize+route", seed_l3, tape_l3, 0.8),
        )
        for stage, seed_fn, tape_fn, floor_scale in stages:
            seed_ms = _time(seed_fn, repeats) * 1e3
            tape_ms = _time(tape_fn, repeats) * 1e3
            rows.append(
                {"workload": name, "kernel": stage,
                 "scalar_ms": seed_ms, "vector_ms": tape_ms,
                 "speedup": seed_ms / tape_ms, "floor_scale": floor_scale}
            )
    return rows


def check_junction_planner(names: Sequence[str]) -> List[Dict]:
    """Paired junction planning must never cost CNOTs vs the old one-sided
    rule on the Table 2 FT configurations (same schedule, same terms)."""
    rows = []
    for name in names:
        program = build_benchmark(name, "small")
        for scheduler in ("do", "gco"):
            paired = ft_compile(
                program, scheduler=scheduler, junction_policy="paired"
            ).circuit.cnot_count
            onesided = ft_compile(
                program, scheduler=scheduler, junction_policy="onesided"
            ).circuit.cnot_count
            rows.append(
                {"workload": name, "scheduler": scheduler,
                 "paired_cnot": paired, "onesided_cnot": onesided}
            )
            assert paired <= onesided, (
                f"paired planner regressed CNOTs on {name}/{scheduler}: "
                f"{paired} > {onesided}"
            )
    return rows


def _print_rows(title: str, old_label: str, new_label: str, rows: List[Dict]) -> None:
    print(title)
    print(f"{'workload':<12} {'kernel':<18} {old_label:>10} {new_label:>10} {'speedup':>8}")
    for row in rows:
        print(
            f"{row['workload']:<12} {row['kernel']:<18} "
            f"{row['scalar_ms']:>8.3f}ms {row['vector_ms']:>8.3f}ms "
            f"{row['speedup']:>7.1f}x"
        )
    print()


def check_baseline(rows: List[Dict], path: str) -> List[str]:
    """Fail any kernel that regressed >2x against the committed baseline.

    The comparison uses the seed-vs-new *speedup ratio*, which divides out
    the host machine's absolute speed (both sides run on the same box in
    the same process), so a slow or contended CI runner does not fail the
    gate and a fast one does not mask a real regression.  The committed
    baseline also records the absolute ms for human reference.
    """
    with open(path) as handle:
        baseline = json.load(handle)["kernels"]
    problems = []
    for row in rows:
        key = f"{row['workload']}/{row['kernel']}"
        recorded = baseline.get(key)
        if recorded is None:
            problems.append(f"{key}: no committed baseline entry")
        elif row["speedup"] < recorded["speedup"] / 2.0:
            problems.append(
                f"{key}: speedup {row['speedup']:.1f}x fell below half the "
                f"committed baseline {recorded['speedup']:.1f}x"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI mode: fewer repeats, a 2x speedup floor, and the "
             "junction check on two benchmarks",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--out", default=None,
        help="write all timing rows to this JSON file (CI artifact)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="fail if any kernel is >2x slower than this committed "
             "baseline JSON (see benchmarks/results/)",
    )
    args = parser.parse_args(argv)

    repeats = args.repeats or (10 if args.smoke else 50)
    floor = 2.0 if args.smoke else 5.0

    rows = bench_kernels(repeats)
    _print_rows("Pauli kernels (seed scalar vs vectorized)",
                "scalar", "vectorized", rows)

    transpile_rows = bench_transpile(max(3, repeats // 2))
    _print_rows("Transpile stages (seed sweeps vs tape worklist/router)",
                "seed", "tape", transpile_rows)
    rows = rows + transpile_rows

    junction_names = TABLE2_FT[:2] if args.smoke else TABLE2_FT
    junction_rows = check_junction_planner(junction_names)
    print(f"{'workload':<12} {'scheduler':<10} {'paired cx':>10} {'one-sided cx':>13}")
    for row in junction_rows:
        print(
            f"{row['workload']:<12} {row['scheduler']:<10} "
            f"{row['paired_cnot']:>10} {row['onesided_cnot']:>13}"
        )

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(
                {"mode": "smoke" if args.smoke else "full",
                 "repeats": repeats,
                 "rows": rows,
                 "junction": junction_rows},
                handle, indent=2,
            )
        print(f"\nwrote timings to {args.out}")

    failed = False
    for row in rows:
        row_floor = floor * row.get("floor_scale", 1.0)
        if row["speedup"] < row_floor:
            print(
                f"FAIL: {row['workload']}/{row['kernel']} speedup "
                f"{row['speedup']:.1f}x below the {row_floor:.1f}x floor",
                file=sys.stderr,
            )
            failed = True
    if args.baseline:
        for problem in check_baseline(rows, args.baseline):
            print(f"FAIL: {problem}", file=sys.stderr)
            failed = True
    if failed:
        return 1
    print(f"\nall kernels >= their speedup floors (base {floor:.0f}x); "
          f"junction planner never regressed CNOTs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
