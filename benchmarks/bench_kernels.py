"""Micro-benchmark: vectorized symplectic kernels vs the scalar seed code.

Compares the shipped ``do_schedule`` / ``most_overlap_sort`` (running on the
packed :class:`~repro.pauli.symplectic.PauliTable` and cached
:class:`~repro.ir.BlockView` masks) against faithful copies of the original
per-byte scalar implementations, on the paper-scale UCCSD-8 and REG-20-4
workloads.  Equality of the outputs is asserted before timing, and the
pairwise-consistent junction planner is checked for CNOT non-regression
against the legacy one-sided planner on the Table 2 FT configurations.

Run directly::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke    # CI gate

Exit status is non-zero when the smoke thresholds fail, so CI can use it
as a perf sanity check.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Sequence, Tuple

from repro.core import ft_compile
from repro.core.ft_backend import most_overlap_sort
from repro.core.reference import scalar_do_schedule, scalar_most_overlap_sort
from repro.core.scheduling import do_schedule
from repro.ir import PauliProgram
from repro.pauli import PauliString
from repro.workloads import build_benchmark

WORKLOADS = ("UCCSD-8", "REG-20-4")
TABLE2_FT = ("Ising-1D", "Ising-2D", "Heisen-1D", "Heisen-2D", "N2", "Rand-30")


# ----------------------------------------------------------------------
# Harness (the scalar oracle lives in repro.core.reference, shared with
# the equivalence tests so the two cannot drift)
# ----------------------------------------------------------------------

def _time(fn, repeats: int) -> float:
    fn()  # warm up caches and allocator
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def _schedule_signature(schedule) -> List[List[Tuple[str, ...]]]:
    return [
        [tuple(ws.string.label for ws in block) for block in layer]
        for layer in schedule
    ]


def _program_terms(program: PauliProgram) -> List[Tuple[PauliString, float]]:
    return [
        (ws.string, ws.weight * parameter)
        for ws, parameter in program.all_weighted_strings()
    ]


def bench_kernels(repeats: int) -> List[Dict]:
    rows = []
    for name in WORKLOADS:
        program = build_benchmark(name, "paper")
        terms = _program_terms(program)

        assert _schedule_signature(do_schedule(program)) == _schedule_signature(
            scalar_do_schedule(program)
        ), f"do_schedule output diverged from the scalar reference on {name}"
        assert [s.label for s, _ in most_overlap_sort(terms)] == [
            s.label for s, _ in scalar_most_overlap_sort(terms)
        ], f"most_overlap_sort output diverged from the scalar reference on {name}"

        scalar = _time(lambda: scalar_do_schedule(program), repeats)
        vector = _time(lambda: do_schedule(program), repeats)
        rows.append(
            {"workload": name, "kernel": "do_schedule",
             "scalar_ms": scalar * 1e3, "vector_ms": vector * 1e3,
             "speedup": scalar / vector}
        )
        scalar = _time(lambda: scalar_most_overlap_sort(terms), repeats)
        vector = _time(lambda: most_overlap_sort(terms), repeats)
        rows.append(
            {"workload": name, "kernel": "most_overlap_sort",
             "scalar_ms": scalar * 1e3, "vector_ms": vector * 1e3,
             "speedup": scalar / vector}
        )
    return rows


def check_junction_planner(names: Sequence[str]) -> List[Dict]:
    """Paired junction planning must never cost CNOTs vs the old one-sided
    rule on the Table 2 FT configurations (same schedule, same terms)."""
    rows = []
    for name in names:
        program = build_benchmark(name, "small")
        for scheduler in ("do", "gco"):
            paired = ft_compile(
                program, scheduler=scheduler, junction_policy="paired"
            ).circuit.cnot_count
            onesided = ft_compile(
                program, scheduler=scheduler, junction_policy="onesided"
            ).circuit.cnot_count
            rows.append(
                {"workload": name, "scheduler": scheduler,
                 "paired_cnot": paired, "onesided_cnot": onesided}
            )
            assert paired <= onesided, (
                f"paired planner regressed CNOTs on {name}/{scheduler}: "
                f"{paired} > {onesided}"
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI mode: fewer repeats, a 2x speedup floor, and the "
             "junction check on two benchmarks",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    repeats = args.repeats or (10 if args.smoke else 50)
    floor = 2.0 if args.smoke else 5.0

    rows = bench_kernels(repeats)
    print(f"{'workload':<12} {'kernel':<18} {'scalar':>10} {'vectorized':>10} {'speedup':>8}")
    for row in rows:
        print(
            f"{row['workload']:<12} {row['kernel']:<18} "
            f"{row['scalar_ms']:>8.3f}ms {row['vector_ms']:>8.3f}ms "
            f"{row['speedup']:>7.1f}x"
        )

    junction_names = TABLE2_FT[:2] if args.smoke else TABLE2_FT
    junction_rows = check_junction_planner(junction_names)
    print()
    print(f"{'workload':<12} {'scheduler':<10} {'paired cx':>10} {'one-sided cx':>13}")
    for row in junction_rows:
        print(
            f"{row['workload']:<12} {row['scheduler']:<10} "
            f"{row['paired_cnot']:>10} {row['onesided_cnot']:>13}"
        )

    failures = [row for row in rows if row["speedup"] < floor]
    if failures:
        for row in failures:
            print(
                f"FAIL: {row['workload']}/{row['kernel']} speedup "
                f"{row['speedup']:.1f}x below the {floor:.0f}x floor",
                file=sys.stderr,
            )
        return 1
    print(f"\nall kernels >= {floor:.0f}x; junction planner never regressed CNOTs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
