"""Speculative-lane benchmark: answer-now latency and upgrade landing.

Drives two real gateways over the same all-cold corpus — one with
``--speculate`` (cold misses answer at the opt-1 tier, a background
opt-3 recompile upgrades the cache entry in place) and one without —
and gates the lane's two promises:

* **answering early must be free or better** — cold-lane p50 *and* p95
  with speculation on stay within 10% of speculation off (the opt-1
  compile is a strict subset of the full pipeline, and the background
  lane's strict priority keeps it off the cold path);
* **the background lane actually converges the store** — the
  upgrade-landed rate over subscribed requests is >= 90%, the
  speculative ledger reconciles (``spec_enqueued`` equals the sum of
  its terminal outcomes), and a warm pass after the upgrades land
  serves every artifact at full tier.

Run directly::

    PYTHONPATH=src python benchmarks/bench_speculative.py           # full
    PYTHONPATH=src python benchmarks/bench_speculative.py --smoke   # CI gate

``--out``/``--baseline`` match the other benches: JSON dump plus a
regression gate (upgrade-latency p50 more than doubled, or the landed
rate below half the committed baseline, fails) on top of the ratios.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.service import GatewayClient  # noqa: E402

COLD_RATIO_CEILING = 1.10       # spec-on cold p50/p95 vs spec-off
LANDED_RATE_FLOOR = 0.90


def cold_corpus(size: int) -> List[Dict]:
    """Unique small programs: every request is a genuine cold miss, so
    the on/off comparison measures the cold lane and nothing else."""
    paulis = "IXYZ"
    corpus: List[Dict] = []
    state = 17
    while len(corpus) < size:
        index = len(corpus)
        terms = []
        for _ in range(2 + index % 3):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            label = "".join(paulis[(state >> (2 * q)) & 3] for q in range(5))
            if set(label) == {"I"}:
                label = "XY" + label[2:]
            terms.append(f"({label}, 1.0)")
        text = "{" + ", ".join(terms) + f", 0.{1 + index % 9}}};"
        corpus.append({"text": text, "label": f"spec{index}"})
    return corpus


class GatewayProcess:
    """`repro.cli serve` in a subprocess bound to a workdir unix socket."""

    def __init__(self, workdir: Path, workers: int, speculate: bool):
        workdir.mkdir(parents=True, exist_ok=True)
        self.socket_path = str(workdir / "gw.sock")
        self.cache_dir = str(workdir / "cache")
        argv = [sys.executable, "-m", "repro.cli", "serve",
                "--socket", self.socket_path, "--cache", self.cache_dir,
                "--workers", str(workers)]
        if speculate:
            argv += ["--speculate", "--speculative-limit", "64"]
        env = {**os.environ, "PYTHONPATH": str(SRC)}
        self.process = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=str(REPO),
        )
        deadline = time.monotonic() + 60
        line = ""
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if "listening" in line:
                return
            if self.process.poll() is not None:
                break
        raise RuntimeError(f"gateway failed to start: {line!r}")

    def stop(self) -> int:
        self.process.send_signal(signal.SIGTERM)
        try:
            self.process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()
            return -9
        return self.process.returncode


def percentiles(samples: List[float]) -> Dict[str, float]:
    ordered = sorted(samples)
    p50 = ordered[len(ordered) // 2]
    p95 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.95))]
    return {"p50_ms": round(p50 * 1e3, 3), "p95_ms": round(p95 * 1e3, 3),
            "max_ms": round(ordered[-1] * 1e3, 3)}


async def cold_pass(socket_path: str, corpus: List[Dict],
                    subscribe: bool) -> Dict:
    """Serial cold round trips.  With ``subscribe`` every request asks
    for the upgrade push and the pass waits for it to land before the
    next request: each cold sample then measures the answer-now path
    itself, not CPU contention with the previous request's background
    recompile (on a one-core runner the lanes can't overlap for free —
    the soak covers overlapped traffic)."""
    client = await GatewayClient.connect(socket_path=socket_path)
    samples: List[float] = []
    tiers: Dict[str, int] = {}
    landed = 0
    upgrade_ms: List[float] = []
    for index, spec in enumerate(corpus):
        t0 = time.perf_counter()
        response = await client.compile(spec, f"c{index}", timeout=300,
                                        want_upgrade=subscribe)
        samples.append(time.perf_counter() - t0)
        if not response.get("ok"):
            raise RuntimeError(f"cold compile failed: {response}")
        tier = response.get("tier") or "full"
        tiers[tier] = tiers.get(tier, 0) + 1
        if subscribe:
            push = await client.wait_upgrade(f"c{index}", timeout=300)
            if push.get("ok"):
                landed += 1
                upgrade_ms.append(push["upgrade_ms"])
    stats = await client.stats()
    await client.close()

    row = {
        "kernel": "cold_spec_on" if subscribe else "cold_spec_off",
        "workload": "unique-cold-corpus", "jobs": len(corpus),
        "tiers": tiers, **percentiles(samples),
    }
    if subscribe:
        upgrade_ms.sort()
        spec = stats["speculative"]
        row.update({
            "upgrades_landed": landed,
            "landed_rate": round(landed / len(corpus), 4),
            "upgrade_p50_ms": (round(upgrade_ms[len(upgrade_ms) // 2], 3)
                               if upgrade_ms else None),
            "upgrade_max_ms": (round(upgrade_ms[-1], 3)
                               if upgrade_ms else None),
            "speculative": {k: v for k, v in spec.items()
                            if k.startswith("spec_")},
        })
    return row


async def warm_full_tier_pass(socket_path: str, corpus: List[Dict]) -> Dict:
    """After the upgrades landed, every warm hit must serve full tier."""
    client = await GatewayClient.connect(socket_path=socket_path)
    samples: List[float] = []
    full = 0
    misses = 0
    for index, spec in enumerate(corpus):
        t0 = time.perf_counter()
        response = await client.compile(spec, f"w{index}", timeout=120)
        samples.append(time.perf_counter() - t0)
        if not response.get("cached"):
            misses += 1
        if response.get("tier") == "full":
            full += 1
    await client.close()
    return {
        "kernel": "warm_after_upgrade", "workload": "unique-cold-corpus",
        "jobs": len(corpus), "uncached": misses, "full_tier": full,
        **percentiles(samples),
    }


def check_baseline(rows: List[Dict], path: str) -> List[str]:
    with open(path) as handle:
        baseline = {row["kernel"]: row for row in json.load(handle)["rows"]}
    problems = []
    on = next(r for r in rows if r["kernel"] == "cold_spec_on")
    recorded = baseline.get("cold_spec_on")
    if recorded is None:
        return ["baseline file lacks a cold_spec_on row"]
    if recorded.get("upgrade_p50_ms") and on.get("upgrade_p50_ms") and \
            on["upgrade_p50_ms"] > recorded["upgrade_p50_ms"] * 2.0:
        problems.append(
            f"upgrade p50 {on['upgrade_p50_ms']:.1f}ms more than doubled "
            f"vs the committed baseline {recorded['upgrade_p50_ms']:.1f}ms")
    if on["landed_rate"] < recorded["landed_rate"] / 2.0:
        problems.append(
            f"landed rate {on['landed_rate']:.2f} fell below half the "
            f"committed baseline {recorded['landed_rate']:.2f}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI mode: smaller corpus")
    parser.add_argument("--corpus-size", type=int, default=None)
    # Two workers by default: the background lane keeps one slot in
    # reserve for cold arrivals, which is the configuration the cold-
    # parity gate is really about (a single worker serializes the lanes
    # through preemption instead).
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--out", default=None)
    parser.add_argument("--baseline", default=None)
    args = parser.parse_args(argv)

    size = args.corpus_size or (12 if args.smoke else 32)
    corpus = cold_corpus(size)
    rows: List[Dict] = []
    failed = False

    with tempfile.TemporaryDirectory() as tmp:
        # Speculation OFF: the reference cold lane.
        off_gw = GatewayProcess(Path(tmp) / "off", workers=args.workers,
                                speculate=False)
        try:
            off = asyncio.run(cold_pass(off_gw.socket_path, corpus,
                                        subscribe=False))
        finally:
            if off_gw.stop() != 0:
                print("FAIL: speculation-off gateway dirty shutdown",
                      file=sys.stderr)
                failed = True
        rows.append(off)
        print(f"spec off    {off['jobs']} cold    p50 {off['p50_ms']:7.2f}ms  "
              f"p95 {off['p95_ms']:7.2f}ms")

        # Speculation ON: answer at opt-1, upgrade in the background.
        on_gw = GatewayProcess(Path(tmp) / "on", workers=args.workers,
                               speculate=True)
        try:
            on = asyncio.run(cold_pass(on_gw.socket_path, corpus,
                                       subscribe=True))
            rows.append(on)
            print(f"spec on     {on['jobs']} cold    p50 {on['p50_ms']:7.2f}ms  "
                  f"p95 {on['p95_ms']:7.2f}ms  "
                  f"(landed {on['upgrades_landed']}/{on['jobs']}, "
                  f"upgrade p50 {on['upgrade_p50_ms']}ms)")

            warm = asyncio.run(warm_full_tier_pass(on_gw.socket_path, corpus))
            rows.append(warm)
            print(f"warm after  {warm['jobs']} reqs    "
                  f"p50 {warm['p50_ms']:7.2f}ms  "
                  f"({warm['full_tier']}/{warm['jobs']} full tier)")
        finally:
            if on_gw.stop() != 0:
                print("FAIL: speculation-on gateway dirty shutdown",
                      file=sys.stderr)
                failed = True

    # -- gates --------------------------------------------------------------
    if on["tiers"].get("opt1", 0) != on["jobs"]:
        print(f"FAIL: speculation on answered tiers {on['tiers']}, "
              f"expected all opt1", file=sys.stderr)
        failed = True
    for quantile in ("p50_ms", "p95_ms"):
        if on[quantile] > off[quantile] * COLD_RATIO_CEILING:
            print(f"FAIL: cold {quantile} with speculation on "
                  f"({on[quantile]:.2f}ms) exceeds {COLD_RATIO_CEILING:.2f}x "
                  f"the speculation-off lane ({off[quantile]:.2f}ms)",
                  file=sys.stderr)
            failed = True
    if on["landed_rate"] < LANDED_RATE_FLOOR:
        print(f"FAIL: upgrade landed rate {on['landed_rate']:.2f} below "
              f"the {LANDED_RATE_FLOOR:.2f} floor", file=sys.stderr)
        failed = True
    ledger = on["speculative"]
    outcomes = (ledger["spec_upgraded"] + ledger["spec_stale"]
                + ledger["spec_cancelled"] + ledger["spec_dropped"])
    if ledger["spec_enqueued"] != outcomes:
        print(f"FAIL: speculative ledger does not reconcile: {ledger}",
              file=sys.stderr)
        failed = True
    if warm["uncached"] or warm["full_tier"] != warm["jobs"]:
        print(f"FAIL: warm pass after upgrades: {warm['uncached']} misses, "
              f"{warm['full_tier']}/{warm['jobs']} full tier",
              file=sys.stderr)
        failed = True

    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"mode": "smoke" if args.smoke else "full",
                       "corpus": len(corpus), "workers": args.workers,
                       "rows": rows}, handle, indent=2)
        print(f"\nwrote timings to {args.out}")
    if args.baseline:
        for problem in check_baseline(rows, args.baseline):
            print(f"FAIL: {problem}", file=sys.stderr)
            failed = True
    if failed:
        return 1
    print("\nspeculative-lane floors satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
