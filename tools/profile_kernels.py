"""cProfile attribution for the scheduling/synthesis hot path.

The streaming-scheduler rewrite was driven by exactly this harness: profile
one stage at a time on a scale workload, read the top ``tottime`` rows, and
kill the per-candidate Python work they expose (the padding loop's 1.3M
``column_height`` visits were found here, not guessed).  Kept as a tool so
the next optimization round starts from measurement too.

Stages (``--stage all`` runs every one):

* ``build``     — generator -> :class:`~repro.ir.PauliProgram`;
* ``scan``      — the streaming scanner (compact keys + active lengths);
* ``gco``       — full ``gco-stream`` drain;
* ``do``        — full ``do-stream`` drain (frontier + padding loop);
* ``ft``        — end-to-end ``ft_compile`` at opt 1 via ``gco-stream``;
* ``conjugate`` — the batched Clifford tape conjugation sweep.

Run::

    PYTHONPATH=src python tools/profile_kernels.py --stage do \\
        --qubits 200 --terms 100000
    PYTHONPATH=src python tools/profile_kernels.py --stage all --limit 15
    PYTHONPATH=src python tools/profile_kernels.py --stage ft \\
        --dump ft.pstats       # then e.g. snakeviz ft.pstats elsewhere
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from typing import Callable, Dict

from repro.core import ft_compile
from repro.core.streaming import scan_blocks, stream_schedule
from repro.ir import PauliProgram
from repro.workloads import scale_random_program


def _drain(layers) -> int:
    return sum(len(layer) for layer in layers)


def _conjugate_stage(program: PauliProgram) -> None:
    """Whole-table tape conjugation: the verifier's inner sweep."""
    from repro.circuit.gates import OP
    from repro.circuit.tape import NO_SLOT
    from repro.verify.clifford import SignedPauliTable

    signed = SignedPauliTable.from_strings(
        ws.string for ws, _ in program.all_weighted_strings()
    )
    n = program.num_qubits
    tape = []
    for _ in range(10):  # a deep entangling sweep, verifier-style
        for q in range(n):
            tape.append((OP["h"], q, NO_SLOT))
            tape.append((OP["cx"], q, (q + 1) % n))
            tape.append((OP["s"], q, NO_SLOT))
    signed.apply_tape(tape)


def _stages(program: PauliProgram) -> Dict[str, Callable[[], object]]:
    return {
        "scan": lambda: scan_blocks(program),
        "gco": lambda: _drain(stream_schedule(program, "gco-stream")),
        "do": lambda: _drain(stream_schedule(program, "do-stream")),
        "ft": lambda: ft_compile(
            program, scheduler="gco-stream", run_peephole=True
        ),
        "conjugate": lambda: _conjugate_stage(program),
    }


def profile_stage(name: str, fn: Callable[[], object], sort: str,
                  limit: int, dump: str = None) -> None:
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    fn()
    profiler.disable()
    elapsed = time.perf_counter() - start
    print(f"\n=== {name}: {elapsed:.2f}s ===")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(sort).print_stats(limit)
    if dump:
        stats.dump_stats(dump)
        print(f"[pstats dumped to {dump}]")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qubits", type=int, default=100)
    parser.add_argument("--terms", type=int, default=20_000)
    parser.add_argument(
        "--stage", default="do",
        choices=["all", "build", "scan", "gco", "do", "ft", "conjugate"],
    )
    parser.add_argument(
        "--sort", default="tottime",
        help="pstats sort key (tottime, cumulative, ncalls, ...)",
    )
    parser.add_argument("--limit", type=int, default=25,
                        help="rows of the stats table to print")
    parser.add_argument("--dump", default=None,
                        help="also dump raw pstats to this file")
    args = parser.parse_args(argv)

    if args.stage == "build":
        profile_stage(
            "build",
            lambda: scale_random_program(args.qubits, args.terms),
            args.sort, args.limit, args.dump,
        )
        return 0

    program = scale_random_program(args.qubits, args.terms)
    print(f"workload: {program.num_blocks} blocks on "
          f"{program.num_qubits} qubits")
    stages = _stages(program)
    selected = stages if args.stage == "all" else {args.stage: stages[args.stage]}
    for name, fn in selected.items():
        program.release_views()  # profile from a cold program every time
        profile_stage(name, fn, args.sort, args.limit,
                      args.dump if len(selected) == 1 else None)
    return 0


if __name__ == "__main__":
    sys.exit(main())
