#!/usr/bin/env python3
"""Repo-specific AST linter: the discipline rules generic linters can't know.

Four rule families, each encoding an invariant this codebase actually
relies on (stdlib-only, so CI can run it without the package installed):

* **RS101 — no blocking calls in the gateway's event loop.**  Inside an
  ``async def`` in ``src/repro/service/``, calls to known-blocking APIs
  (``time.sleep``, ``subprocess.*``, sync ``os``/``shutil``/``tempfile``
  file I/O, pathlib read/write/stat methods, the cache's disk-walking
  maintenance methods) stall every connected client.  Blocking work
  belongs on the executor (``loop.run_in_executor``) — lambdas and
  nested ``def`` bodies are therefore exempt: by construction they run
  off-loop.
* **RS102 — CacheStats lock discipline.**  In ``src/repro/service/``,
  a class that creates ``self._lock`` promises that shared mutable state
  is only written under it: any ``self.x = ...`` / ``self.x[...] = ...``
  / augmented assignment outside a ``with self._lock:`` block (and
  outside ``__init__``/``__post_init__``) is a data race waiting for a
  second thread.
* **RS103 — GateTape columns are private to ``circuit/tape.py``.**  The
  tape's parallel columns and wire links are one consistency domain
  (``alive`` vs ``alive_count`` vs ``counts`` vs the linked lists);
  writing ``tape.alive[s] = ...`` from outside the tape module bypasses
  the splice bookkeeping and desynchronizes them.
* **RS104 — no float equality on angles/weights.**  Rotation parameters
  and term weights are accumulated floats; ``==``/``!=`` against them is
  almost always a latent epsilon bug (canonicalize mod 2*pi or compare
  with a tolerance instead).

False positives are silenced in place with a pragma comment on the
offending line: ``# lint: allow-blocking``, ``# lint: caller-holds-lock``,
``# lint: allow-tape-write``, ``# lint: allow-float-eq``, or the blanket
``# lint: ignore``.  Exit status: 0 clean, 1 findings, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import List, Optional, Tuple

# --- RS101 tables ----------------------------------------------------------

#: Dotted call paths that block the event loop.
BLOCKING_CALLS = {
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.unlink", "os.remove", "os.replace", "os.rename", "os.stat",
    "os.listdir", "os.scandir", "os.makedirs", "os.mkdir", "os.rmdir",
    "os.path.exists", "os.path.isfile", "os.path.isdir", "os.path.getsize",
    "shutil.rmtree", "shutil.copy", "shutil.copyfile", "shutil.copytree",
    "shutil.move",
    "tempfile.mkdtemp", "tempfile.mkstemp", "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryDirectory",
    "socket.create_connection", "socket.getaddrinfo",
}

#: Bare-name calls that block.
BLOCKING_NAMES = {"open", "input"}

#: Method names that are file/socket I/O on their usual receivers
#: (pathlib.Path, CompileCache); flagged regardless of receiver type —
#: a rare same-named in-memory method earns a pragma, not a type system.
BLOCKING_METHODS = {
    "read_text", "write_text", "read_bytes", "write_bytes",
    "touch", "rmdir", "iterdir", "glob", "rglob",
    "sweep_stale_tmp", "merge_from", "_write_disk", "get_disk",
    # CompileCache mutators (disk I/O under the publish lock).  `discard`
    # is deliberately absent: set.discard() is ubiquitous in async code
    # and would drown the signal — its disk path is caught via
    # _write_disk/read_text inside the cache itself.
    "put", "put_tiered", "upgrade", "adopt", "pull_through",
}

# --- RS104 tables ----------------------------------------------------------

#: Terminal identifiers treated as float-valued angle/weight quantities.
FLOAT_NAMES = {"param", "parameter", "angle", "theta", "weight", "phase"}

PRAGMAS = {
    "RS101": ("allow-blocking",),
    "RS102": ("caller-holds-lock", "allow-unlocked"),
    "RS103": ("allow-tape-write",),
    "RS104": ("allow-float-eq",),
}

#: GateTape parallel columns: subscript stores on these attribute names
#: outside circuit/tape.py bypass the tape's bookkeeping.
TAPE_COLUMNS = {
    "op", "q0", "q1", "param", "alive",
    "nxt0", "prv0", "nxt1", "prv1", "head", "tail", "counts",
}
#: GateTape scalar bookkeeping attributes.
TAPE_ATTRS = {"alive_count", "_links_ready"}


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute expression."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_self_lock_with(node: ast.With) -> bool:
    """True for ``with self._lock:`` (any position among the items)."""
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Attribute) and expr.attr == "_lock":
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                return True
    return False


class Finding:
    def __init__(self, path: Path, line: int, col: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.col = col
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class FileLinter(ast.NodeVisitor):
    """One file's walk; context is tracked with explicit stacks."""

    def __init__(self, path: Path, display: str, source: str):
        self.path = path
        self.display = display
        self.lines = source.splitlines()
        self.findings: List[Finding] = []
        self.in_service = "/service/" in display.replace("\\", "/")
        self.is_tape_module = display.replace("\\", "/").endswith(
            "circuit/tape.py")
        # (kind, name) where kind is "async" | "sync" | "lambda"
        self.func_stack: List[Tuple[str, str]] = []
        # Per locked-class frame: name of the class; parallel stack of
        # with-lock nesting depth active inside it.
        self.class_stack: List[Tuple[str, bool]] = []
        self.lock_depth = 0

    # -- plumbing ----------------------------------------------------------
    def report(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        text = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        if "# lint: ignore" in text:
            return
        for tag in PRAGMAS[rule]:
            if f"# lint: {tag}" in text:
                return
        self.findings.append(
            Finding(Path(self.display), line, node.col_offset, rule, message))

    # -- scope tracking ----------------------------------------------------
    def _class_declares_lock(self, node: ast.ClassDef) -> bool:
        """Does any method of this class assign ``self._lock``?"""
        for child in ast.walk(node):
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "_lock"
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return True
        return False

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append((node.name, self._class_declares_lock(node)))
        outer_depth, self.lock_depth = self.lock_depth, 0
        self.generic_visit(node)
        self.lock_depth = outer_depth
        self.class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.func_stack.append(("sync", node.name))
        self.generic_visit(node)
        self.func_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.func_stack.append(("async", node.name))
        self.generic_visit(node)
        self.func_stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.func_stack.append(("lambda", "<lambda>"))
        self.generic_visit(node)
        self.func_stack.pop()

    def visit_With(self, node: ast.With) -> None:
        locked = is_self_lock_with(node)
        if locked:
            self.lock_depth += 1
        self.generic_visit(node)
        if locked:
            self.lock_depth -= 1

    # -- RS101: blocking calls in async defs -------------------------------
    def _in_async_scope(self) -> bool:
        return bool(self.func_stack) and self.func_stack[-1][0] == "async"

    def visit_Call(self, node: ast.Call) -> None:
        if self.in_service and self._in_async_scope():
            func = node.func
            dotted = dotted_name(func)
            blocked = None
            if dotted is not None and dotted in BLOCKING_CALLS:
                blocked = dotted
            elif isinstance(func, ast.Name) and func.id in BLOCKING_NAMES:
                blocked = func.id
            elif isinstance(func, ast.Attribute) and func.attr in BLOCKING_METHODS:
                blocked = f"...{func.attr}"
            if blocked is not None:
                scope = self.func_stack[-1][1]
                self.report(
                    node, "RS101",
                    f"blocking call {blocked}() inside 'async def {scope}' "
                    f"stalls the event loop; move it onto the executor "
                    f"(loop.run_in_executor)",
                )
        self.generic_visit(node)

    # -- RS102 + RS103: assignments ----------------------------------------
    def _check_store(self, node: ast.AST, target: ast.AST) -> None:
        self._check_lock_discipline(node, target)
        self._check_tape_write(node, target)

    def _check_lock_discipline(self, node: ast.AST, target: ast.AST) -> None:
        if not self.in_service or not self.class_stack:
            return
        class_name, has_lock = self.class_stack[-1]
        if not has_lock or self.lock_depth > 0:
            return
        if self.func_stack and self.func_stack[-1][1] in (
            "__init__", "__post_init__",
        ):
            return
        # self.attr = ... or self.attr[...] = ...
        inner = target
        if isinstance(inner, ast.Subscript):
            inner = inner.value
        if (
            isinstance(inner, ast.Attribute)
            and isinstance(inner.value, ast.Name)
            and inner.value.id == "self"
            and inner.attr != "_lock"
        ):
            self.report(
                node, "RS102",
                f"mutation of self.{inner.attr} in locked class "
                f"{class_name} outside 'with self._lock'",
            )

    def _check_tape_write(self, node: ast.AST, target: ast.AST) -> None:
        if self.is_tape_module:
            return
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            attribute = target.value
            if attribute.attr in TAPE_COLUMNS and terminal_name(
                attribute.value
            ) in {"tape", "_tape", "out", "self"}:
                self.report(
                    node, "RS103",
                    f"direct write to tape column .{attribute.attr}[...] "
                    f"outside circuit/tape.py bypasses splice bookkeeping",
                )
        elif isinstance(target, ast.Attribute) and target.attr in TAPE_ATTRS:
            self.report(
                node, "RS103",
                f"direct write to tape attribute .{target.attr} outside "
                f"circuit/tape.py bypasses count bookkeeping",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            targets = target.elts if isinstance(
                target, (ast.Tuple, ast.List)) else [target]
            for single in targets:
                self._check_store(node, single)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node, node.target)
        self.generic_visit(node)

    # -- RS104: float equality ---------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            for side in (node.left, *node.comparators):
                name = terminal_name(side)
                if name in FLOAT_NAMES:
                    self.report(
                        node, "RS104",
                        f"float equality against {name!r}; compare with a "
                        f"tolerance or canonicalize first",
                    )
                    break
        self.generic_visit(node)


def lint_file(path: Path, display: str) -> List[Finding]:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(Path(display), exc.lineno or 1, exc.offset or 0,
                        "RS100", f"syntax error: {exc.msg}")]
    linter = FileLinter(path, display, source)
    linter.visit(tree)
    return linter.findings


def iter_targets(roots: List[Path]) -> List[Tuple[Path, str]]:
    targets: List[Tuple[Path, str]] = []
    for root in roots:
        if root.is_file():
            targets.append((root, str(root)))
        elif root.is_dir():
            for path in sorted(root.rglob("*.py")):
                targets.append((path, str(path)))
        else:
            raise FileNotFoundError(str(root))
    return targets


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_repro",
        description="repo-specific AST lint (async-safety, lock discipline, "
                    "tape encapsulation, float equality)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the all-clear summary line",
    )
    options = parser.parse_args(argv)
    try:
        targets = iter_targets([Path(p) for p in options.paths])
    except FileNotFoundError as exc:
        print(f"lint_repro: no such path: {exc}", file=sys.stderr)
        return 2
    findings: List[Finding] = []
    for path, display in targets:
        findings.extend(lint_file(path, display))
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_repro: {len(findings)} finding(s) in "
              f"{len(targets)} file(s)", file=sys.stderr)
        return 1
    if not options.quiet:
        print(f"lint_repro: clean ({len(targets)} files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
