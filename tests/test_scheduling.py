"""Tests for GCO and DO scheduling (paper Section 4, Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    do_schedule,
    gco_schedule,
    layer_operator_overlap,
    schedule_depth_estimate,
    schedule_to_program,
)
from repro.core.reference import (
    scalar_do_schedule,
    scalar_layer_operator_overlap,
)
from repro.ir import PauliBlock, PauliProgram


def prog(*block_specs, parameter=1.0):
    blocks = [
        PauliBlock(labels if isinstance(labels, list) else [labels], parameter=parameter)
        for labels in block_specs
    ]
    return PauliProgram(blocks)


class TestGCO:
    def test_blocks_sorted_lexicographically(self):
        p = prog("ZZ", "XX", "YY", "XI")
        schedule = gco_schedule(p)
        firsts = [layer[0][0].string.label for layer in schedule]
        # X < Y < Z < I from the high qubit down: XI < XX? q1 equal (X); q0: I(3) > X(0)
        assert firsts == ["XX", "XI", "YY", "ZZ"]

    def test_strings_sorted_within_block(self):
        p = prog(["ZZ", "XX"])
        schedule = gco_schedule(p)
        labels = [ws.string.label for ws in schedule[0][0]]
        assert labels == ["XX", "ZZ"]

    def test_singleton_layers(self):
        p = prog("XX", "ZZ", "YY")
        schedule = gco_schedule(p)
        assert all(len(layer) == 1 for layer in schedule)

    def test_semantics_preserved(self):
        p = prog("ZZ", "XI", ["YY", "XX"], parameter=0.4)
        flattened = schedule_to_program(gco_schedule(p))
        assert flattened.multiset_of_terms() == p.multiset_of_terms()


class TestDO:
    def test_disjoint_blocks_share_a_layer(self):
        # One big block on qubits 0-2, one small on qubit 3.
        p = prog("IZZZ", "ZIII")
        schedule = do_schedule(p)
        assert len(schedule) == 1
        assert len(schedule[0]) == 2
        assert schedule[0][0].active_length == 3  # primary is the large block

    def test_overlapping_blocks_get_own_layers(self):
        p = prog("ZZZ", "ZII")
        schedule = do_schedule(p)
        assert len(schedule) == 2

    def test_padding_respects_depth_budget(self):
        # Primary has depth ~ 2*(3-1)+1 = 5; the three 2-qubit blocks on the
        # same spare qubits have depth 3 each, so only one fits per column.
        p = prog("IIZZZ", "ZZIII", "ZZIII", "ZZIII")
        schedule = do_schedule(p)
        first_layer = schedule[0]
        assert first_layer[0].pauli_strings[0].label == "IIZZZ"
        assert len(first_layer) == 2  # one padding block fits (3 <= 5), not two (6 > 5)

    def test_all_blocks_scheduled_exactly_once(self):
        p = prog("XX", "YY", "ZZ", "XY", "YX")
        schedule = do_schedule(p)
        flattened = schedule_to_program(schedule)
        assert flattened.multiset_of_terms() == p.multiset_of_terms()

    def test_overlap_drives_layer_order(self):
        # After the first layer (ZZI...), the block sharing Z operators
        # should come before the X block.
        p = prog("ZZZZ", "ZZII", "XXII")
        schedule = do_schedule(p)
        order = [layer[0].pauli_strings[0].label for layer in schedule]
        assert order.index("ZZII") < order.index("XXII")

    def test_depth_estimate_monotone(self):
        p = prog("IZZZ", "ZIII")
        do_depth = schedule_depth_estimate(do_schedule(p))
        gco_depth = schedule_depth_estimate(gco_schedule(p))
        assert do_depth <= gco_depth


class TestLayerOverlap:
    def test_counts_matching_ops(self):
        block_a = PauliBlock(["ZZI"])
        block_b = PauliBlock(["ZII"])
        assert layer_operator_overlap(block_b, [block_a]) == 1

    def test_mismatched_ops_do_not_count(self):
        block_a = PauliBlock(["ZZI"])
        block_b = PauliBlock(["XXI"])
        assert layer_operator_overlap(block_b, [block_a]) == 0


@given(
    st.lists(
        st.text(alphabet="IXYZ", min_size=4, max_size=4).filter(lambda s: set(s) != {"I"}),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=50, deadline=None)
def test_schedulers_preserve_term_multiset(labels):
    p = prog(*labels, parameter=0.3)
    for schedule in (gco_schedule(p), do_schedule(p)):
        assert schedule_to_program(schedule).multiset_of_terms() == p.multiset_of_terms()


@given(
    st.lists(
        st.text(alphabet="IXYZ", min_size=4, max_size=4).filter(lambda s: set(s) != {"I"}),
        min_size=2,
        max_size=8,
    )
)
@settings(max_examples=30, deadline=None)
def test_do_layers_are_qubit_disjoint_from_primary(labels):
    p = prog(*labels)
    for layer in do_schedule(p):
        primary_qubits = set(layer[0].active_qubits)
        for padding in layer[1:]:
            assert not (set(padding.active_qubits) & primary_qubits)


# ----------------------------------------------------------------------
# Vectorized scheduler vs the scalar oracle (repro.core.reference keeps
# the seed implementation, shared with benchmarks/bench_kernels.py)
# ----------------------------------------------------------------------

def _signature(schedule):
    return [
        [tuple(ws.string.label for ws in block) for block in layer]
        for layer in schedule
    ]


@given(
    st.lists(
        st.lists(
            st.text(alphabet="IXYZ", min_size=5, max_size=5).filter(
                lambda s: set(s) != {"I"}
            ),
            min_size=1,
            max_size=3,
        ),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=40, deadline=None)
def test_do_schedule_matches_scalar_reference(block_labels):
    p = prog(*block_labels)
    assert _signature(do_schedule(p)) == _signature(scalar_do_schedule(p))


@given(
    st.lists(
        st.text(alphabet="IXYZ", min_size=4, max_size=4).filter(lambda s: set(s) != {"I"}),
        min_size=1,
        max_size=5,
    ),
    st.lists(
        st.text(alphabet="IXYZ", min_size=4, max_size=4).filter(lambda s: set(s) != {"I"}),
        min_size=1,
        max_size=5,
    ),
)
@settings(max_examples=40, deadline=None)
def test_layer_overlap_matches_scalar_reference(block_labels, layer_labels):
    block = PauliBlock(block_labels)
    layer = [PauliBlock(layer_labels)]
    assert layer_operator_overlap(block, layer) == scalar_layer_operator_overlap(
        block, layer
    )
