"""Tests for the Pauli-propagation verifier subsystem (repro.verify).

Three layers of cross-validation, each against an independent reference:

* the packed conjugation engine against the *scalar* per-qubit update
  tables it replaced (the migration gate for the ``baselines.tableau``
  port) and against explicit matrix conjugation;
* gadget extraction against ``circuit_unitary`` on random Clifford+rotation
  tapes (catches sign/phase bugs that no self-consistency check would);
* the end-to-end verifier against both backends, with injected mutations
  that must be detected and localized.
"""

import math

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import layout_permutation
from repro.circuit import QuantumCircuit, circuit_unitary, equivalent_up_to_global_phase
from repro.circuit.gates import OP, Gate
from repro.core import compile_program
from repro.ir import PauliBlock, PauliProgram
from repro.pauli import PauliString
from repro.transpile import linear, route, transpile
from repro.verify import (
    RotationGadget,
    SignedPauliTable,
    VerificationError,
    canonicalize_gadgets,
    extract_gadgets,
    verify_circuit,
    verify_result,
)

# ----------------------------------------------------------------------
# Scalar reference: the per-qubit update tables the packed engine replaced
# (kept verbatim from the old baselines.tableau.TrackedPauli machinery).
# ----------------------------------------------------------------------

_H_TABLE = {0: (1, 0), 1: (1, 2), 2: (1, 1), 3: (-1, 3)}
_S_TABLE = {0: (1, 0), 1: (1, 3), 2: (1, 2), 3: (-1, 1)}
_SDG_TABLE = {0: (1, 0), 1: (-1, 3), 2: (1, 2), 3: (1, 1)}
_X_TABLE = {0: (1, 0), 1: (1, 1), 2: (-1, 2), 3: (-1, 3)}


class ScalarPauli:
    """Minimal scalar tracked Pauli: codes bytearray plus a +/-1 sign."""

    def __init__(self, string):
        self.codes = bytearray(string.codes)
        self.sign = 1

    def apply(self, move, qubits):
        table = {"h": _H_TABLE, "s": _S_TABLE, "sdg": _SDG_TABLE, "x": _X_TABLE}.get(move)
        if table is not None:
            q = qubits[0]
            sign, new = table[self.codes[q]]
            self.codes[q] = new
            self.sign *= sign
        elif move == "cx":
            control, target = qubits
            xc, zc = self.codes[control] & 1, (self.codes[control] >> 1) & 1
            xt, zt = self.codes[target] & 1, (self.codes[target] >> 1) & 1
            if xc & zt & (xt ^ zc ^ 1):
                self.sign *= -1
            self.codes[target] = (xt ^ xc) | (zt << 1)
            self.codes[control] = xc | ((zc ^ zt) << 1)
        elif move == "swap":
            a, b = qubits
            self.codes[a], self.codes[b] = self.codes[b], self.codes[a]
        else:
            raise ValueError(move)


_MOVES = ["h", "s", "sdg", "x", "cx", "swap"]


@given(
    st.lists(
        st.text(alphabet="IXYZ", min_size=3, max_size=3).filter(lambda s: set(s) != {"I"}),
        min_size=1, max_size=5,
    ),
    st.lists(
        st.tuples(st.sampled_from(_MOVES), st.integers(0, 2), st.integers(0, 2)),
        min_size=1, max_size=12,
    ),
)
@settings(max_examples=60, deadline=None)
def test_packed_engine_matches_scalar_reference(labels, moves):
    """Migration gate: packed whole-table conjugation == scalar per-row."""
    strings = [PauliString.from_label(label) for label in labels]
    table = SignedPauliTable.from_strings(strings)
    scalars = [ScalarPauli(s) for s in strings]
    for move, a, b in moves:
        if move in ("cx", "swap"):
            if a == b:
                continue
            qubits = (a, b)
        else:
            qubits = (a,)
        table.apply(OP[move], *qubits)
        for scalar in scalars:
            scalar.apply(move, qubits)
    for row, scalar in enumerate(scalars):
        assert table.string(row).codes == bytes(scalar.codes)
        assert table.sign(row) == scalar.sign


_ALL_CLIFFORD_1Q = ["h", "s", "sdg", "x", "y", "z", "yh"]
_ALL_CLIFFORD_2Q = ["cx", "cz", "swap"]


@pytest.mark.parametrize("gate_name", _ALL_CLIFFORD_1Q + _ALL_CLIFFORD_2Q)
def test_conjugate_rows_matches_matrix_conjugation(gate_name):
    """Engine rule for every Clifford == U P U^dagger on all 2-qubit Paulis."""
    labels = [a + b for a in "IXYZ" for b in "IXYZ"][1:]  # skip II
    strings = [PauliString.from_label(label) for label in labels]
    table = SignedPauliTable.from_strings(strings)
    qubits = (0, 1) if gate_name in _ALL_CLIFFORD_2Q else (0,)
    gate = Gate(gate_name, qubits)
    table.apply(OP[gate_name], *qubits)
    qc = QuantumCircuit(2)
    qc.append(gate)
    u = circuit_unitary(qc)
    for row, string in enumerate(strings):
        expected = u @ string.to_matrix() @ u.conj().T
        tracked = table.signed(row)
        assert np.allclose(expected, tracked.sign * tracked.string.to_matrix()), (
            f"{gate_name} conjugation wrong for {string.label}"
        )


def test_apply_inverse_round_trips():
    strings = [PauliString.from_label(l) for l in ["XYZ", "ZZI", "IYX"]]
    table = SignedPauliTable.from_strings(strings)
    gates = [("h", 0, -1), ("s", 1, -1), ("cx", 0, 2), ("yh", 2, -1), ("cz", 1, 2)]
    for name, a, b in gates:
        table.apply(OP[name], a, b)
    for name, a, b in reversed(gates):
        table.apply_inverse(OP[name], a, b)
    for row, string in enumerate(strings):
        assert table.signed(row).string == string
        assert table.sign(row) == 1


# ----------------------------------------------------------------------
# Gadget extraction vs the dense unitary (the sign/phase acid test)
# ----------------------------------------------------------------------

_TAPE_GATES = _ALL_CLIFFORD_1Q + _ALL_CLIFFORD_2Q + ["rz", "rx", "ry"]


@st.composite
def clifford_rotation_tapes(draw, max_qubits=5, max_gates=24):
    n = draw(st.integers(1, max_qubits))
    qc = QuantumCircuit(n)
    for _ in range(draw(st.integers(1, max_gates))):
        name = draw(st.sampled_from(_TAPE_GATES))
        q = draw(st.integers(0, n - 1))
        if name in _ALL_CLIFFORD_2Q:
            if n == 1:
                continue
            q2 = draw(st.integers(0, n - 2))
            q2 = q2 if q2 < q else q2 + 1
            getattr(qc, name)(q, q2)
        elif name in ("rz", "rx", "ry"):
            angle = draw(st.floats(-3.5, 3.5, allow_nan=False))
            getattr(qc, name)(angle, q)
        else:
            getattr(qc, name)(q)
    return qc


def _rebuilt_unitary(extraction):
    """``prod_k exp(-i angle_k/2 P_k)`` (first gadget applied first)."""
    n = extraction.num_qubits
    unitary = np.eye(2 ** n, dtype=complex)
    for gadget in extraction.gadgets:
        unitary = (
            scipy.linalg.expm(-0.5j * gadget.angle * gadget.string.to_matrix())
            @ unitary
        )
    return unitary


@given(clifford_rotation_tapes())
@settings(max_examples=60, deadline=None)
def test_extraction_matches_circuit_unitary(qc):
    """Satellite check: gadget factorization reproduces the exact unitary
    up to global phase (n <= 5 keeps the dense algebra cheap)."""
    extraction = extract_gadgets(qc)
    clifford_only = QuantumCircuit(qc.num_qubits)
    for gate in qc.gates:
        if gate.name not in ("rz", "rx", "ry"):
            clifford_only.append(gate)
    rebuilt = circuit_unitary(clifford_only) @ _rebuilt_unitary(extraction)
    assert equivalent_up_to_global_phase(circuit_unitary(qc), rebuilt, atol=1e-7)


@given(clifford_rotation_tapes(max_qubits=4, max_gates=16))
@settings(max_examples=30, deadline=None)
def test_residual_frame_matches_matrix_conjugation(qc):
    """The residual tableau rows are exactly ``C^dagger P C`` for the
    rotation-stripped circuit ``C``."""
    extraction = extract_gadgets(qc)
    clifford_only = QuantumCircuit(qc.num_qubits)
    for gate in qc.gates:
        if gate.name not in ("rz", "rx", "ry"):
            clifford_only.append(gate)
    u = circuit_unitary(clifford_only)
    n = qc.num_qubits
    for q in range(min(n, 3)):
        for axis, image in (
            ("X", extraction.frame.inverse_image_of_x(q)),
            ("Z", extraction.frame.inverse_image_of_z(q)),
        ):
            generator = PauliString.from_sparse(n, {q: axis}).to_matrix()
            expected = u.conj().T @ generator @ u
            assert np.allclose(
                expected, image.sign * image.string.to_matrix()
            ), f"frame row {axis}_{q} wrong"


def test_frame_permutation_detection():
    qc = QuantumCircuit(4)
    qc.swap(0, 2)
    qc.swap(1, 0)
    frame = extract_gadgets(qc).frame
    sigma = frame.permutation()
    # swap(0,2) then swap(1,0): 0 -> 2, 2 -> 0 -> 1, 1 -> 0.
    assert sigma == [2, 0, 1, 3]
    assert not frame.is_identity()

    qc = QuantumCircuit(2)
    qc.h(0)
    assert extract_gadgets(qc).frame.permutation() is None

    qc = QuantumCircuit(2)
    qc.x(0)  # sign-flipping residual: not a pure permutation
    assert extract_gadgets(qc).frame.permutation() is None

    qc = QuantumCircuit(3)
    qc.cx(0, 1)
    qc.cx(0, 1)
    assert extract_gadgets(qc).frame.is_identity()


# ----------------------------------------------------------------------
# Canonicalization
# ----------------------------------------------------------------------

def _gadget(label, angle, position=0):
    return RotationGadget(PauliString.from_label(label), angle, position)


class TestCanonicalization:
    def test_adjacent_same_pauli_merges(self):
        out = canonicalize_gadgets([_gadget("XX", 0.3), _gadget("XX", 0.4)])
        assert len(out) == 1 and math.isclose(out[0].angle, 0.7)

    def test_merge_across_commuting_gadget(self):
        # ZZ commutes with XX: the two XX rotations merge through it.
        out = canonicalize_gadgets(
            [_gadget("XX", 0.3), _gadget("ZZ", 0.2), _gadget("XX", 0.4)]
        )
        assert [g.label for g in out] == ["XX", "ZZ"]
        assert math.isclose(out[0].angle, 0.7)

    def test_no_merge_across_anticommuting_gadget(self):
        out = canonicalize_gadgets(
            [_gadget("XX", 0.3), _gadget("ZI", 0.2), _gadget("XX", 0.4)]
        )
        assert [g.label for g in out] == ["XX", "ZI", "XX"]

    def test_cancellation_drops_pair(self):
        out = canonicalize_gadgets([_gadget("XY", 0.3), _gadget("XY", -0.3)])
        assert out == []

    def test_zero_and_two_pi_dropped(self):
        out = canonicalize_gadgets(
            [_gadget("XX", 0.0), _gadget("ZZ", 2.0 * math.pi), _gadget("YY", 1.0)]
        )
        assert [g.label for g in out] == ["YY"]

    def test_angles_wrap_mod_two_pi(self):
        out = canonicalize_gadgets([_gadget("XX", 2.0 * math.pi + 0.5)])
        assert len(out) == 1 and math.isclose(out[0].angle, 0.5)


# ----------------------------------------------------------------------
# End-to-end verification and mutation detection
# ----------------------------------------------------------------------

def _program(*entries, parameter=0.7):
    return PauliProgram.from_hamiltonian(list(entries), parameter=parameter)


PROGRAM = _program(
    ("XXIZ", 0.3), ("ZZYI", -0.7), ("IXYZ", 1.1), ("XXIZ", 0.4), ("ZIIZ", 0.9)
)


class TestVerifyCompilations:
    @pytest.mark.parametrize("backend", ["ft", "sc"])
    def test_certifies_both_backends(self, backend):
        kwargs = {"coupling": linear(4)} if backend == "sc" else {}
        result = compile_program(PROGRAM, backend=backend, **kwargs)
        report = verify_result(PROGRAM, result)
        assert report.ok, report.describe()
        assert report.max_angle_error < 1e-9

    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_certifies_all_opt_levels(self, level):
        result = compile_program(PROGRAM, backend="ft", run_peephole=False)
        compiled = transpile(result.circuit, optimization_level=level)
        report = verify_circuit(compiled, result.emitted_terms)
        assert report.ok, report.describe()

    def test_certifies_routed_circuit_with_permutation(self):
        result = compile_program(PROGRAM, backend="ft")
        routed = route(result.circuit, linear(4))
        report = verify_circuit(
            routed.circuit,
            result.emitted_terms,
            initial_layout=routed.initial_layout,
            final_layout=routed.final_layout,
        )
        assert report.ok, report.describe()

    def test_verifier_agrees_with_statevector_oracle(self):
        # The two oracles must reach the same verdict on a healthy compile.
        result = compile_program(PROGRAM, backend="sc", coupling=linear(4))
        assert verify_result(PROGRAM, result).ok
        from repro.circuit.statevector import simulate
        from repro.core.synthesis import pauli_rotation_gates

        naive = QuantumCircuit(4)
        for string, coefficient in result.emitted_terms:
            naive.extend(pauli_rotation_gates(string, -2.0 * coefficient))
        rng = np.random.default_rng(5)
        state = rng.normal(size=16) + 1j * rng.normal(size=16)
        state /= np.linalg.norm(state)
        s_init = layout_permutation(result.initial_layout, 4)
        s_final = layout_permutation(result.final_layout, 4)
        reference = s_final @ simulate(naive, s_init.conj().T @ state)
        assert np.isclose(abs(np.vdot(simulate(result.circuit, state), reference)), 1.0)

    def test_compile_program_verify_flag(self):
        result = compile_program(PROGRAM, backend="ft", verify=True)
        assert result.verification is not None and result.verification.ok


def _first_rz_slot(circuit):
    tape = circuit.tape
    for slot in tape.iter_slots():
        if tape.op[slot] == OP["rz"]:
            return slot
    raise AssertionError("no rz in circuit")


class TestMutationDetection:
    def setup_method(self):
        self.result = compile_program(PROGRAM, backend="ft")

    def test_wrong_angle_detected_and_localized(self):
        mutated = self.result.circuit.copy()
        slot = _first_rz_slot(mutated)
        mutated.tape.param[slot] += 0.125
        report = verify_circuit(mutated, self.result.emitted_terms)
        assert not report.ok
        assert report.mismatch.kind == "angle"
        assert report.mismatch.position is not None
        assert "1.250e-01" in report.mismatch.detail

    def test_wrong_pauli_detected_with_qubit(self):
        # Flip one basis change h -> yh: the gadget's X becomes a Y.
        mutated = self.result.circuit.copy()
        tape = mutated.tape
        for slot in tape.iter_slots():
            if tape.op[slot] == OP["h"]:
                tape.counts[OP["h"]] -= 1
                tape.counts[OP["yh"]] += 1
                tape.op[slot] = OP["yh"]
                break
        report = verify_circuit(mutated, self.result.emitted_terms)
        assert not report.ok
        assert report.mismatch.kind in ("pauli", "frame")
        if report.mismatch.kind == "pauli":
            assert report.mismatch.qubit is not None

    def test_dropped_rotation_detected(self):
        mutated = self.result.circuit.copy()
        slot = _first_rz_slot(mutated)
        mutated.tape.remove(slot)
        report = verify_circuit(mutated, self.result.emitted_terms)
        assert not report.ok
        assert report.mismatch.kind in ("missing", "pauli", "angle")

    def test_extra_rotation_detected(self):
        mutated = self.result.circuit.copy()
        mutated.rz(0.4, 2)
        report = verify_circuit(mutated, self.result.emitted_terms)
        assert not report.ok

    def test_stray_clifford_breaks_the_frame(self):
        mutated = self.result.circuit.copy()
        mutated.swap(0, 3)
        report = verify_circuit(mutated, self.result.emitted_terms)
        assert not report.ok
        assert report.mismatch.kind == "frame"

    def test_sign_error_detected(self):
        mutated = self.result.circuit.copy()
        mutated.x(1)  # uncompensated Pauli correction
        report = verify_circuit(mutated, self.result.emitted_terms)
        assert not report.ok
        assert report.mismatch.kind == "frame"

    def test_tampered_emission_fails_multiset(self):
        tampered = [(s, c) for s, c in self.result.emitted_terms]
        tampered[0] = (tampered[0][0], tampered[0][1] + 1.0)
        self.result.emitted_terms = tampered
        report = verify_result(PROGRAM, self.result)
        assert not report.ok
        assert report.mismatch.kind == "multiset"

    def test_raise_if_failed(self):
        mutated = self.result.circuit.copy()
        mutated.tape.param[_first_rz_slot(mutated)] += 0.5
        report = verify_circuit(mutated, self.result.emitted_terms)
        with pytest.raises(VerificationError):
            report.raise_if_failed()

    def test_verify_flag_raises_on_bad_compile(self, monkeypatch):
        import repro.core.ft_backend as ft_backend

        original = ft_backend.ft_compile

        def broken(program, **kwargs):
            out = original(program, **kwargs)
            out.circuit.tape.param[_first_rz_slot(out.circuit)] *= 2.0
            return out

        monkeypatch.setattr("repro.core.compiler.ft_compile", broken)
        with pytest.raises(VerificationError):
            compile_program(PROGRAM, backend="ft", verify=True)


class TestPaperScale:
    def test_thirty_qubit_program_verifies_without_statevector(self):
        blocks = []
        rng = np.random.default_rng(11)
        for _ in range(12):
            codes = rng.integers(0, 4, size=30)
            if not codes.any():
                codes[0] = 2
            blocks.append(
                PauliBlock(
                    [(PauliString(bytes(codes.astype(np.uint8))), 0.5)],
                    parameter=float(rng.normal() or 0.3),
                )
            )
        program = PauliProgram(blocks)
        result = compile_program(program, backend="ft", verify=True)
        assert result.verification.ok
        assert result.verification.num_qubits == 30

    def test_thirty_qubit_mutation_detected(self):
        program = PauliProgram.from_hamiltonian(
            [("X" * 15 + "Z" * 15, 0.25), ("Z" * 30, -0.5), ("Y" + "I" * 28 + "X", 1.0)]
        )
        result = compile_program(program, backend="ft")
        mutated = result.circuit.copy()
        mutated.tape.param[_first_rz_slot(mutated)] -= 0.2
        report = verify_circuit(mutated, result.emitted_terms)
        assert not report.ok and report.mismatch.kind == "angle"
