"""Tests for the IR/tape invariant analyzer (repro.static.invariants).

Replaces the retired ``tests/test_validation.py``: the legacy program
diagnostics (identity-only blocks, zero weights, duplicates, commuting
warnings) keep their coverage through the ``validate_program`` alias,
and the new named-invariant checks get corruption fixtures of their own
— a compiled tape is broken one field at a time and the report must
name exactly the invariant that broke.
"""

import math

import pytest

from repro.core import compile_program
from repro.ir import Diagnostic, PauliBlock, PauliProgram, validate_program
from repro.static import (
    InvariantViolation,
    check_program,
    check_result,
    check_tape,
    debug_check,
    debug_invariants_enabled,
)
from repro.static.invariants import DEBUG_ENV
from repro.transpile import CouplingMap


def program_of(*blocks):
    return PauliProgram(list(blocks))


def compiled_tape():
    result = compile_program(program_of(
        PauliBlock(["ZZI", "XXI"], 0.5), PauliBlock(["IYY"], 0.25)))
    return result, result.circuit.tape


def first_live_slot(tape, two_qubit=False):
    for slot in range(len(tape.op)):
        if tape.alive[slot] and (not two_qubit or tape.q1[slot] >= 0):
            return slot
    raise AssertionError("no live slot found")


def invariants(report):
    return {issue.invariant for issue in report.errors}


# ---------------------------------------------------------------------------
# Legacy program validation (the old ir/validation.py coverage)
# ---------------------------------------------------------------------------

class TestValidateProgram:
    def test_clean_program_ok(self):
        report = validate_program(program_of(PauliBlock(["ZZ", "XX"], 0.5)))
        assert report.ok
        assert not report.diagnostics
        assert str(report).endswith("OK")

    def test_identity_only_block_is_error(self):
        report = validate_program(program_of(PauliBlock(["II"], 0.5)))
        assert not report.ok
        assert "identity" in report.errors[0].message
        assert report.errors[0].invariant == "program.structure"

    def test_zero_weight_is_error(self):
        report = validate_program(program_of(PauliBlock([("ZZ", 0.0)], 0.5)))
        assert not report.ok
        assert "zero weight" in report.errors[0].message

    def test_duplicate_strings_warn(self):
        report = validate_program(program_of(PauliBlock(["ZZ", "ZZ"], 0.5)))
        assert report.ok
        assert any("duplicate" in d.message for d in report.warnings)

    def test_noncommuting_block_warns(self):
        report = validate_program(program_of(PauliBlock(["XI", "ZI"], 0.5)))
        assert report.ok
        assert any("commute" in d.message for d in report.warnings)

    def test_zero_parameter_warns(self):
        report = validate_program(program_of(PauliBlock(["ZZ"], 0.0)))
        assert any("parameter is zero" in d.message for d in report.warnings)

    def test_raise_on_error(self):
        report = validate_program(program_of(PauliBlock(["II"], 1.0)))
        with pytest.raises(ValueError):
            report.raise_on_error()

    def test_diagnostic_str(self):
        d = Diagnostic("warning", 3, "something")
        assert "block 3" in str(d)
        assert "warning" in str(d)

    def test_legacy_names_still_importable_from_ir(self):
        from repro.ir import ValidationReport

        report = ValidationReport(subject="thing")
        assert report.ok and str(report) == "thing OK"

    def test_workload_generators_emit_clean_programs(self):
        from repro.workloads import (
            build_benchmark,
            heisenberg_program,
            ising_program,
            uccsd_program,
        )
        for program in (
            uccsd_program(8),
            ising_program([8]),
            heisenberg_program([3, 3]),
            build_benchmark("REG-20-4", "small"),
            build_benchmark("TSP-4", "small"),
            build_benchmark("N2", "small"),
        ):
            report = validate_program(program)
            assert report.ok, f"{program.name}: {report}"


# ---------------------------------------------------------------------------
# New named-invariant program checks
# ---------------------------------------------------------------------------

class TestCheckProgram:
    def test_nan_weight_names_coefficient_invariant(self):
        report = check_program(program_of(
            PauliBlock([("ZZ", float("nan"))], 0.5)))
        assert "program.coefficient-finite" in invariants(report)

    def test_infinite_parameter_names_coefficient_invariant(self):
        report = check_program(program_of(PauliBlock(["ZZ"], math.inf)))
        assert "program.coefficient-finite" in invariants(report)

    def test_qubit_width_mismatch_detected(self):
        # check_program duck-types its subject, so a wrapper declaring a
        # wider width than its strings span stands in for a corrupted
        # deserialized program.
        class Declared:
            num_qubits = 3

            def __iter__(self):
                return iter([PauliBlock(["ZZ"], 0.5)])

        report = check_program(Declared())
        assert "program.qubit-width" in invariants(report)


# ---------------------------------------------------------------------------
# Gate-tape invariants via one-field corruption
# ---------------------------------------------------------------------------

class TestCheckTape:
    def test_compiled_circuit_is_clean(self):
        result, tape = compiled_tape()
        report = check_tape(tape)
        assert report.ok, str(report)
        # Accepts the circuit wrapper too.
        assert check_tape(result.circuit).ok

    def test_alive_count_drift(self):
        _, tape = compiled_tape()
        tape.alive_count += 1
        report = check_tape(tape)
        assert invariants(report) == {"tape.alive-count"}

    def test_opcode_out_of_range(self):
        _, tape = compiled_tape()
        tape.op[first_live_slot(tape)] = 99
        report = check_tape(tape)
        assert "tape.opcode-range" in invariants(report)

    def test_qubit_out_of_bounds(self):
        _, tape = compiled_tape()
        tape.q0[first_live_slot(tape)] = 999
        report = check_tape(tape)
        assert "tape.qubit-bounds" in invariants(report)

    def test_nan_parameter(self):
        _, tape = compiled_tape()
        tape.param[first_live_slot(tape)] = float("nan")
        report = check_tape(tape)
        assert "tape.param-finite" in invariants(report)

    def test_opcode_count_drift(self):
        _, tape = compiled_tape()
        code = tape.op[first_live_slot(tape)]
        tape.counts[code] += 1
        report = check_tape(tape)
        assert "tape.opcode-counts" in invariants(report)

    def test_dead_slot_left_linked(self):
        # Kill a row while keeping the count columns consistent: only the
        # wire links are now stale, so only tape.wire-links may fire.
        _, tape = compiled_tape()
        tape.ensure_links()
        slot = first_live_slot(tape)
        tape.alive[slot] = False
        tape.alive_count -= 1
        tape.counts[tape.op[slot]] -= 1
        report = check_tape(tape)
        assert "tape.wire-links" in invariants(report)
        assert any("dead slot" in issue.message for issue in report.errors)

    def test_ragged_columns_short_circuit(self):
        _, tape = compiled_tape()
        tape.q0.append(0)
        report = check_tape(tape)
        assert invariants(report) == {"tape.column-shape"}

    def test_coupling_conformance(self):
        # An FT-compiled (all-to-all) circuit checked against a sparse
        # line coupling must flag its uncoupled CNOTs by name.
        result, tape = compiled_tape()
        line = CouplingMap([(0, 1), (1, 2)])
        assert check_tape(tape).ok
        report = check_tape(tape, coupling=line)
        # The compile is free to emit only coupled pairs in principle, so
        # corrupt one 2q gate onto a definitely-uncoupled pair instead of
        # assuming the layout.
        slot = first_live_slot(tape, two_qubit=True)
        tape.q0[slot], tape.q1[slot] = 0, 2
        report = check_tape(tape, coupling=line)
        assert "tape.coupling" in invariants(report)

    def test_sc_compile_respects_coupling(self):
        program = program_of(PauliBlock(["ZZI", "XXI"], 0.5))
        coupling = CouplingMap([(0, 1), (1, 2)])
        result = compile_program(program, backend="sc", coupling=coupling)
        assert check_tape(result.circuit, coupling=coupling).ok


# ---------------------------------------------------------------------------
# Result sweep + the between-pass debug hook
# ---------------------------------------------------------------------------

class TestCheckResultAndDebugHook:
    def test_result_sweep_covers_emitted_terms(self):
        result, _ = compiled_tape()
        assert check_result(result).ok
        string, _coeff = result.emitted_terms[0]
        result.emitted_terms[0] = (string, float("inf"))
        report = check_result(result)
        assert "result.coefficient-finite" in invariants(report)

    def test_violation_carries_report_and_invariant(self):
        _, tape = compiled_tape()
        tape.alive_count += 1
        with pytest.raises(InvariantViolation) as info:
            check_tape(tape).raise_on_error()
        assert info.value.invariant == "tape.alive-count"
        assert not info.value.report.ok
        assert "tape.alive-count" in str(info.value)

    def test_debug_hook_is_noop_when_disabled(self, monkeypatch):
        monkeypatch.delenv(DEBUG_ENV, raising=False)
        assert not debug_invariants_enabled()
        _, tape = compiled_tape()
        tape.alive_count += 1
        debug_check("stage", tape=tape)  # must not raise

    def test_debug_hook_raises_and_names_the_stage(self, monkeypatch):
        monkeypatch.setenv(DEBUG_ENV, "1")
        assert debug_invariants_enabled()
        _, tape = compiled_tape()
        tape.alive_count += 1
        with pytest.raises(InvariantViolation, match="after-peephole"):
            debug_check("after-peephole", tape=tape)

    def test_compiles_clean_under_debug_flag(self, monkeypatch):
        monkeypatch.setenv(DEBUG_ENV, "1")
        program = program_of(
            PauliBlock(["ZZI", "XXI"], 0.5), PauliBlock(["IYY"], 0.25))
        ft = compile_program(program, backend="ft")
        assert ft.circuit.cnot_count > 0
        coupling = CouplingMap([(0, 1), (1, 2)])
        sc = compile_program(program, backend="sc", coupling=coupling)
        assert sc.circuit.cnot_count > 0
