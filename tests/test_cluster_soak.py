"""Cluster soak: node-kill fault injection under hostile mixed load.

Run with ``-m slow`` (excluded from tier-1; the nightly CI job runs it).
``REPRO_SOAK_SECONDS`` shortens the churn window for local iteration.

One ``repro.cli serve-cluster`` subprocess (3 supervised gateway nodes,
process-pool workers, shared-store pull-through, unix router socket)
takes:

* churning well-behaved clients running mixed warm/cold/stats/ping
  traffic through the router, some asking for full artifacts;
* rude clients that send garbage frames and slam the connection shut
  with compiles still in flight;
* a killer that SIGKILLs a random *gateway node* every ~10 seconds
  (the supervisor restarts it; the router fails its ranges over in the
  meantime).

The cluster must hold three promises through all of it:

1. **Zero lost requests** — every compile a client managed to send on a
   live router connection is answered: a result, or a clean, coded
   rejection.  Never silence.
2. **Byte-identical artifacts** — a fingerprint's artifact payload is
   the same no matter which node (original owner, failover peer, or a
   restarted incarnation) served it.
3. **A reconciling ledger** — after drain, the router's stats satisfy
   received == sum(outcomes), nothing is left outstanding, all three
   nodes are healthy again, and a SIGTERM drains to exit 0 with no
   partial artifacts in any store.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.service import GatewayClient

pytestmark = pytest.mark.slow

SRC = str(Path(__file__).resolve().parent.parent / "src")
SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "60"))
KILL_INTERVAL = max(3.0, min(10.0, SOAK_SECONDS / 4))

WARM_SPECS = [
    {"text": "{(XXI, 1.0), (YYI, 0.5), 0.3};", "label": "warm-a"},
    {"text": "{(IZZ, -0.25), 0.7};", "label": "warm-b"},
    {"benchmark": "Ising-1D", "scale": "small"},
]


def cold_spec(thread_id: int, sequence: int) -> dict:
    paulis = "IXYZ"
    state = (thread_id * 7919 + sequence * 104729) & 0x7FFFFFFF
    label = "".join(paulis[(state >> (2 * q)) & 3] for q in range(5))
    if set(label) == {"I"}:
        label = "XY" + label[2:]
    return {
        "text": f"{{({label}, 1.0), 0.{1 + sequence % 9}}};",
        "label": f"cold-{thread_id}-{sequence}",
    }


class ClientLedger:
    """What the churn threads actually observed, summed at the end."""

    def __init__(self):
        self.lock = threading.Lock()
        self.sent = 0            # compiles sent on connections that lived
        self.answered = 0        # ... and were answered (ok or coded error)
        self.ok = 0
        self.rejected = 0        # clean coded rejections
        self.errors = 0          # other coded errors (bad-spec etc.)
        self.session_failures = 0
        #: fingerprint -> canonical artifact JSON, first seen; mismatches
        #: collect in divergent.
        self.artifacts = {}
        self.divergent = []

    def record_session(self, responses):
        with self.lock:
            self.sent += len(responses)
            for response in responses:
                if response is None:
                    continue
                self.answered += 1
                if response.get("ok"):
                    self.ok += 1
                    if "artifact" in response:
                        self._check_artifact(response)
                elif response.get("code") in ("overloaded", "unavailable",
                                              "shutting-down", "cancelled"):
                    self.rejected += 1
                else:
                    self.errors += 1

    def _check_artifact(self, response):
        fingerprint = response["fingerprint"]
        canonical = json.dumps(response["artifact"], sort_keys=True)
        first = self.artifacts.setdefault(fingerprint, canonical)
        if first != canonical:
            self.divergent.append(fingerprint)


def churn_client(socket_path: str, thread_id: int, deadline: float,
                 ledger: ClientLedger, rude: bool):
    sequence = 0
    while time.monotonic() < deadline:
        try:
            responses = _one_session(socket_path, thread_id, sequence, rude)
        except (ConnectionError, OSError, asyncio.TimeoutError,
                TimeoutError):
            # The router connection itself failed; nothing sent on it is
            # held against the zero-loss promise (we never kill the
            # router, so these should stay rare).
            ledger.session_failures += 1
            time.sleep(0.05)
            continue
        ledger.record_session(responses)
        sequence += 10
        time.sleep(0.01)


def _one_session(socket_path: str, thread_id: int, base: int,
                 rude: bool) -> list:
    async def session():
        client = await GatewayClient.connect(socket_path=socket_path,
                                             timeout=20)
        try:
            if rude:
                client._writer.write(b'{"op": "compile"}\n')   # no id
                client._writer.write(b"pure garbage\n")
                await client._writer.drain()
                await asyncio.wait_for(client._read_frame(), 30)
                await asyncio.wait_for(client._read_frame(), 30)
                # Launch a cold compile and slam the door mid-flight.
                await client._send({"op": "compile", "id": "orphan",
                                    "spec": cold_spec(thread_id, base + 99)})
                return []
            responses = []
            for i in range(4):
                if i % 2 == 0:
                    spec = WARM_SPECS[(base + i) % len(WARM_SPECS)]
                    # Warm artifacts feed the byte-identity audit: over
                    # the soak every node ends up serving these.
                    responses.append(await client.compile(
                        spec, f"s{thread_id}-{base + i}", want="artifact",
                        timeout=180))
                else:
                    responses.append(await client.compile(
                        cold_spec(thread_id, base + i),
                        f"s{thread_id}-{base + i}", timeout=180))
            pong = await client.ping()
            assert pong["ok"]
            return responses
        finally:
            await client.close()

    return asyncio.run(session())


def node_killer(socket_path: str, deadline: float, kills: list):
    """Every ~KILL_INTERVAL s, SIGKILL one gateway node, rotating through
    the fleet; pids come from the cluster stats verb."""
    victim_index = 0
    while time.monotonic() < deadline:
        time.sleep(KILL_INTERVAL)
        if time.monotonic() >= deadline:
            return
        try:
            async def snipe(index):
                client = await GatewayClient.connect(
                    socket_path=socket_path, timeout=20)
                stats = await client.stats(timeout=60)
                await client.close()
                names = sorted(stats["nodes"])
                name = names[index % len(names)]
                section = stats["nodes"][name]
                if section["stats"] is None:
                    return None, None
                return name, section["stats"]["pid"]

            name, pid = asyncio.run(snipe(victim_index))
            victim_index += 1
            if pid:
                os.kill(pid, signal.SIGKILL)
                kills.append((name, pid))
        except (ConnectionError, OSError, ProcessLookupError,
                asyncio.TimeoutError, TimeoutError, KeyError):
            continue


@pytest.mark.slow
def test_cluster_soak(tmp_path):
    state_dir = tmp_path / "state"
    socket_path = str(state_dir / "router.sock")
    env = {**os.environ, "PYTHONPATH": SRC}
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve-cluster", str(state_dir),
         "--nodes", "3", "--workers", "1", "--queue-limit", "32"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        for _ in range(10):
            line = server.stdout.readline()
            if "cluster listening" in line:
                break
        else:   # pragma: no cover
            pytest.fail("serve-cluster never reported listening")

        deadline = time.monotonic() + SOAK_SECONDS
        ledger = ClientLedger()
        kills: list = []
        threads = [
            threading.Thread(
                target=churn_client,
                args=(socket_path, i, deadline, ledger, i % 3 == 2),
                daemon=True)
            for i in range(5)
        ]
        threads.append(threading.Thread(
            target=node_killer, args=(socket_path, deadline, kills),
            daemon=True))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=SOAK_SECONDS + 300)
            assert not t.is_alive(), "a churn thread wedged"

        # ------------------------------------------------------------------
        # Promise 1: zero lost requests — every compile sent on a live
        # router connection got an answer.
        # ------------------------------------------------------------------
        assert ledger.sent == ledger.answered, vars(ledger)
        assert ledger.ok > 20, f"suspiciously little traffic: {vars(ledger)}"
        assert ledger.errors == 0, vars(ledger)
        assert len(kills) >= 1, "fault injection never fired"

        # ------------------------------------------------------------------
        # Promise 2: byte-identical artifacts regardless of serving node.
        # ------------------------------------------------------------------
        assert not ledger.divergent, ledger.divergent
        assert len(ledger.artifacts) >= 1

        # ------------------------------------------------------------------
        # Promise 3: drain and reconcile.
        # ------------------------------------------------------------------
        async def audit():
            client = await GatewayClient.connect(socket_path=socket_path,
                                                 timeout=30)
            drain_deadline = time.monotonic() + 180
            while time.monotonic() < drain_deadline:
                stats = await client.stats(timeout=60)
                router = stats["router"]
                if router["outstanding"] == 0 \
                        and router["nodes_healthy"] == 3:
                    break
                await asyncio.sleep(0.25)
            # The cluster must still do real work after the storm.
            post = await client.compile(
                {"text": "{(XYXYX, 1.0), 0.5};", "label": "post-soak"},
                "post", timeout=180)
            assert post["ok"]
            final = await client.stats(timeout=60)
            await client.close()
            return final

        final = asyncio.run(audit())

        router = final["router"]
        req = router["requests"]
        outcomes = (req["warm_hits"] + req["completed"] + req["failed"]
                    + req["cancelled"] + req["rejected"] + req["bad_specs"])
        assert req["received"] == outcomes, req
        assert router["outstanding"] == 0, router
        assert router["nodes_healthy"] == 3, router
        # The killed nodes really restarted: their trunks reconnected.
        killed_names = {name for name, _ in kills if name}
        for name in killed_names:
            assert final["nodes"][name]["connects"] >= 2, final["nodes"][name]
        # Each node's own ledger reconciles too.
        for name, section in final["nodes"].items():
            node_req = section["stats"]["requests"]
            node_outcomes = (
                node_req["warm_hits"] + node_req["completed"]
                + node_req["failed"] + node_req["cancelled"]
                + node_req["rejected"] + node_req["bad_specs"])
            assert node_req["received"] == node_outcomes, (name, node_req)
        # Replication actually happened: some warm traffic was served by
        # pulling a peer's artifact through.
        assert final["cluster"]["cache"]["pulled"] >= 1, final["cluster"]

        # ------------------------------------------------------------------
        # Clean shutdown: SIGTERM -> drain -> exit 0, stores whole.
        # ------------------------------------------------------------------
        server.send_signal(signal.SIGTERM)
        assert server.wait(timeout=120) == 0
        assert not os.path.exists(socket_path)
        for store in state_dir.glob("store-*"):
            assert not list(store.rglob("*.tmp")), store
            for artifact in store.rglob("*.json"):
                json.loads(artifact.read_text())   # every artifact is whole
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
