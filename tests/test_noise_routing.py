"""Noise-aware routing equivalence suite and calibration-aware cache tests.

The Issue 8 contract, in test form:

* no noise model (or a uniform one, which carries no routing signal) —
  the routed circuit is **gate-identical** to the seed reference router;
* melbourne/falcon calibrated models — ``validate_routed`` passes and the
  ESP of the noise-aware route is >= the distance-only route on the
  UCCSD-8 / QAOA corpus;
* identical programs compiled for differently-calibrated same-topology
  devices get distinct fingerprints and distinct cache entries.
"""

import math

import pytest

from repro.core import compile_program
from repro.service import CompileCache
from repro.core.ft_backend import ft_compile
from repro.noise.model import NoiseModel, esp
from repro.service.fingerprint import canonical_options, compile_fingerprint
from repro.transpile import (
    CouplingMap,
    Layout,
    get_device,
    heavy_hex,
    linear,
    melbourne,
    reliability_cost_matrix,
    route,
    validate_routed,
)
from repro.transpile.reference import seed_route
from repro.workloads import maxcut_program, regular_graph, uccsd_program


def gates(circuit):
    tape = circuit.tape
    return [
        (tape.op[s], tape.q0[s], tape.q1[s], tape.param[s])
        for s in tape.iter_slots()
    ]


@pytest.fixture(scope="module")
def corpus():
    """Logical (unrouted) circuits for the UCCSD-8 / QAOA corpus."""
    return {
        "uccsd-8": ft_compile(uccsd_program(8), scheduler="gco").circuit,
        "qaoa-12-4": ft_compile(
            maxcut_program(regular_graph(12, 4, seed=3)), scheduler="gco"
        ).circuit,
    }


DEVICES = ("melbourne-15", "falcon-27")


class TestReferenceEquivalence:
    @pytest.mark.parametrize("dev_name", DEVICES)
    def test_no_noise_is_gate_identical_to_seed(self, corpus, dev_name):
        dev = get_device(dev_name)
        for circ in corpus.values():
            ref_circ, _, _, _ = seed_route(circ, dev.coupling)
            assert gates(route(circ, dev.coupling).circuit) == gates(ref_circ)

    @pytest.mark.parametrize("dev_name", DEVICES)
    def test_uniform_model_is_gate_identical_to_seed(self, corpus, dev_name):
        dev = get_device(dev_name)
        uniform = {e: 0.02 for e in dev.coupling.edges}
        for circ in corpus.values():
            ref_circ, _, _, _ = seed_route(circ, dev.coupling)
            routed = route(circ, dev.coupling, edge_error=uniform)
            assert gates(routed.circuit) == gates(ref_circ)

    def test_empty_edge_error_is_gate_identical_to_seed(self, corpus):
        dev = get_device("melbourne-15")
        circ = corpus["qaoa-12-4"]
        ref_circ, _, _, _ = seed_route(circ, dev.coupling)
        assert gates(route(circ, dev.coupling, edge_error={}).circuit) == gates(ref_circ)


class TestNoiseAwareRouting:
    @pytest.mark.parametrize("dev_name", DEVICES)
    def test_calibrated_route_validates_and_never_loses_esp(self, corpus, dev_name):
        dev = get_device(dev_name)
        for name, circ in corpus.items():
            base = route(circ, dev.coupling)
            noisy = route(circ, dev.coupling, edge_error=dev.edge_error())
            validate_routed(noisy.circuit, dev.coupling)
            e_base = esp(base.circuit, dev.noise_model, strict=True)
            e_noisy = esp(noisy.circuit, dev.noise_model, strict=True)
            assert e_noisy >= e_base, (dev_name, name)

    def test_calibrated_route_strictly_improves_somewhere(self, corpus):
        improved = 0
        for dev_name in DEVICES:
            dev = get_device(dev_name)
            for circ in corpus.values():
                base = route(circ, dev.coupling)
                noisy = route(circ, dev.coupling, edge_error=dev.edge_error())
                if esp(noisy.circuit, dev.noise_model, strict=True) > esp(
                    base.circuit, dev.noise_model, strict=True
                ):
                    improved += 1
        assert improved > 0

    def test_portfolio_is_deterministic(self, corpus):
        dev = get_device("falcon-27")
        circ = corpus["qaoa-12-4"]
        first = route(circ, dev.coupling, edge_error=dev.edge_error())
        second = route(circ, dev.coupling, edge_error=dev.edge_error())
        assert gates(first.circuit) == gates(second.circuit)
        assert first.swap_count == second.swap_count

    def test_explicit_layout_is_honored(self, corpus):
        dev = get_device("melbourne-15")
        circ = corpus["qaoa-12-4"]
        layout = Layout({q: q for q in range(circ.num_qubits)})
        routed = route(circ, dev.coupling, initial_layout=layout,
                       edge_error=dev.edge_error())
        assert routed.initial_layout == layout
        validate_routed(routed.circuit, dev.coupling)

    def test_disconnected_map_raises(self):
        cmap = heavy_hex(rows=2, row_len=4, trim=1)
        circ = ft_compile(uccsd_program(4), scheduler="gco").circuit
        with pytest.raises(ValueError, match="disconnected"):
            route(circ, cmap)


class TestReliabilityCostMatrix:
    def test_none_for_absent_or_uniform(self):
        cmap = linear(4)
        assert reliability_cost_matrix(cmap, None) is None
        assert reliability_cost_matrix(cmap, {}) is None
        uniform = {e: 0.01 for e in cmap.edges}
        assert reliability_cost_matrix(cmap, uniform) is None

    def test_swap_cost_form_and_symmetry(self):
        cmap = linear(3)
        ee = {(0, 1): 0.01, (1, 2): 0.05}
        cost = reliability_cost_matrix(cmap, ee)
        assert cost[0][1] == pytest.approx(3.0 * -math.log(0.99))
        assert cost[1][2] == pytest.approx(3.0 * -math.log(0.95))
        assert cost[0][2] == pytest.approx(cost[0][1] + cost[1][2])
        for a in range(3):
            for b in range(3):
                assert cost[a][b] == pytest.approx(cost[b][a])

    def test_prefers_reliable_detour(self):
        # Square 0-1-2-3-0 where the direct edge (0, 1) is terrible: the
        # Dijkstra cost of 0->1 should be the three-edge detour.
        cmap = CouplingMap([(0, 1), (1, 2), (2, 3), (3, 0)], num_qubits=4)
        ee = {(0, 1): 0.5, (1, 2): 0.001, (2, 3): 0.001, (0, 3): 0.001}
        cost = reliability_cost_matrix(cmap, ee)
        detour = 3 * 3.0 * -math.log(1 - 0.001)
        assert cost[0][1] == pytest.approx(detour)

    def test_out_of_range_rate_raises(self):
        cmap = linear(3)
        with pytest.raises(ValueError, match="outside"):
            reliability_cost_matrix(cmap, {(0, 1): 1.5, (1, 2): 0.01})


class TestGateErrorModes:
    @pytest.fixture
    def model(self):
        return NoiseModel.uniform(linear(3), single_qubit=1e-3, two_qubit=2e-2)

    def test_strict_raises_symmetrically(self, model):
        # Historically unknown 1q indices silently scored 0.0 while unknown
        # edges raised; both arities now behave the same way.
        with pytest.raises(ValueError, match="qubit 7"):
            model.gate_error("h", (7,))
        with pytest.raises(ValueError, match=r"\(0, 2\)"):
            model.gate_error("cx", (0, 2))

    def test_lenient_is_error_free_symmetrically(self, model):
        assert model.gate_error("h", (7,), strict=False) == 0.0
        assert model.gate_error("cx", (0, 2), strict=False) == 0.0

    def test_esp_strict_raises_on_uncalibrated_edge(self, model):
        from repro.circuit import QuantumCircuit

        qc = QuantumCircuit(3)
        qc.cx(0, 2)  # not a coupled edge of linear(3)
        with pytest.raises(ValueError):
            esp(qc, model, strict=True)
        assert esp(qc, model, strict=False) == 1.0

    def test_esp_readout_lenient_in_both_modes(self, model):
        from repro.circuit import QuantumCircuit

        qc = QuantumCircuit(3)
        # Qubit 9 has no readout calibration; both modes skip it.
        assert esp(qc, model, measured_qubits=[9], strict=True) == 1.0
        assert esp(qc, model, measured_qubits=[9], strict=False) == 1.0

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="outside"):
            NoiseModel({0: 1.5}, {}, {})
        with pytest.raises(ValueError, match="outside"):
            NoiseModel({}, {(0, 1): -0.1}, {})


def _device_pair():
    """Two same-topology devices with different calibrations."""
    a = get_device("melbourne-15")
    from repro.transpile import DeviceSpec

    recal = DeviceSpec(
        "melbourne-15",
        melbourne(),
        NoiseModel.calibrated(melbourne(), seed=9999),
    )
    return a, recal


class TestCacheDiscrimination:
    def test_distinct_fingerprints_for_different_calibrations(self):
        a, b = _device_pair()
        program = uccsd_program(4)
        fps = [
            compile_fingerprint(
                program,
                canonical_options(
                    backend="sc", scheduler="do", coupling=dev.coupling,
                    edge_error=dev.edge_error(),
                    noise_model=dev.noise_model, device=dev.name,
                ),
            )
            for dev in (a, b)
        ]
        assert fps[0] != fps[1]

    def test_distinct_cache_entries_for_different_calibrations(self, tmp_path):
        a, b = _device_pair()
        program = uccsd_program(4)
        cache = CompileCache(tmp_path)
        first = compile_program(program, backend="sc", device=a, cache=cache)
        second = compile_program(program, backend="sc", device=b, cache=cache)
        assert first.fingerprint != second.fingerprint
        assert not first.from_cache
        assert not second.from_cache
        # Same device again is a hit.
        again = compile_program(program, backend="sc", device=a, cache=cache)
        assert again.from_cache
        assert again.fingerprint == first.fingerprint

    def test_sub_quantum_recalibration_shares_fingerprint(self):
        # Rates moving by less than the 1e-6 quantum must not thrash the
        # cache; a real recalibration (>= 1e-6) must miss.
        base = get_device("melbourne-15").noise_model
        tiny = NoiseModel(
            {q: r + 1e-9 for q, r in base.single_qubit_error.items()},
            base.two_qubit_error,
            base.readout_error,
        )
        real = NoiseModel(
            {q: r + 1e-4 for q, r in base.single_qubit_error.items()},
            base.two_qubit_error,
            base.readout_error,
        )
        opts = lambda m: canonical_options(
            backend="sc", scheduler="do", noise_model=m
        )
        assert opts(base) == opts(tiny)
        assert opts(base) != opts(real)


class TestBatchDeviceSpecs:
    def test_device_and_coupling_keys_are_exclusive(self):
        from repro.service.batch import resolve_spec

        with pytest.raises(ValueError, match="'device' or 'coupling'"):
            resolve_spec(
                {"benchmark": "UCCSD-8", "backend": "sc",
                 "device": "melbourne-15", "coupling": "manhattan_65"}
            )

    def test_registry_name_and_snapshot_fingerprint_identically(self):
        from repro.service.batch import resolve_spec

        dev = get_device("melbourne-15")
        by_name = resolve_spec(
            {"benchmark": "UCCSD-8", "backend": "sc", "device": "melbourne-15"}
        )
        by_snapshot = resolve_spec(
            {"benchmark": "UCCSD-8", "backend": "sc",
             "device": dev.to_snapshot()}
        )
        assert by_name.fingerprint() == by_snapshot.fingerprint()

    def test_device_spec_compiles_routed(self):
        from repro.service.batch import compile_batch

        dev = get_device("melbourne-15")
        batch = compile_batch(
            [{"benchmark": "UCCSD-8", "backend": "sc", "device": "melbourne-15"}]
        )
        result = batch.entries[0].result()
        assert result.device == "melbourne-15"
        validate_routed(result.circuit, dev.coupling)


class TestDeviceCompile:
    def test_sc_compile_with_device(self):
        dev = get_device("melbourne-15")
        result = compile_program(uccsd_program(4), backend="sc", device="melbourne-15")
        assert result.device == "melbourne-15"
        validate_routed(result.circuit, dev.coupling)
        assert 0.0 < result.esp(dev.noise_model) < 1.0

    def test_ft_compile_with_device_scores_lenient(self):
        dev = get_device("ion-trap-8")
        result = compile_program(uccsd_program(8), backend="ft", device=dev)
        assert result.device == "ion-trap-8"
        # FT circuits act on virtual all-to-all edges; lenient is default.
        assert 0.0 < result.esp(dev.noise_model) <= 1.0

    def test_device_and_coupling_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            compile_program(
                uccsd_program(4), backend="sc",
                device="melbourne-15", coupling=melbourne(),
            )
