"""Replication consistency tests for the store-layer pull-through.

Cluster nodes replicate lazily: a node missing a fingerprint probes its
peers' content-addressed stores and adopts what it finds (publishing
locally with the exclusive-link merge).  The contract under test:

* a pulled artifact is **byte-identical** to what the peer holds, and
  the ledger counts it as a disk hit (``pulled`` rides along, so
  ``hits + misses == lookups`` is unchanged);
* racing pulls/merges into one store never lose or tear a write —
  content addressing plus the exclusive link make the publish
  first-writer-wins and exact;
* a node dying mid-publish leaves only a ``.tmp`` orphan that the sweep
  removes without touching published artifacts or breaking future
  pulls;
* ``replica_probes`` bounds how many peers a miss consults.

Key/value helpers mirror ``test_cache_contention.py``: values embed the
key plus block-spanning padding so torn reads are detectable.
"""

import json
import os
import threading

from repro.service import CompileCache


def key_for(i: int) -> str:
    return f"{i:02x}" + f"{i:062x}"


def value_for(key: str) -> str:
    return json.dumps({"key": key, "pad": key * 40})


def seeded_store(root, count=10) -> CompileCache:
    cache = CompileCache(root)
    for i in range(count):
        cache.put(key_for(i), value_for(key_for(i)))
    return cache


class TestPullThrough:
    def test_pull_is_byte_identical_and_counted_as_a_hit(self, tmp_path):
        seeded_store(tmp_path / "peer")
        consumer = CompileCache(tmp_path / "own",
                                peer_roots=[tmp_path / "peer"])
        for i in range(10):
            key = key_for(i)
            assert consumer.get(key) == value_for(key)
        stats = consumer.stats.as_dict()
        assert stats["pulled"] == 10
        assert stats["disk_hits"] == 10
        assert stats["misses"] == 0
        assert stats["lookups"] == stats["hits"] == 10
        # The pull published locally: the bytes on the consumer's disk
        # are exactly the peer's bytes.
        for i in range(10):
            key = key_for(i)
            own = (tmp_path / "own" / key[:2] / f"{key[2:]}.json").read_bytes()
            peer = (tmp_path / "peer" / key[:2]
                    / f"{key[2:]}.json").read_bytes()
            assert own == peer
        assert not list((tmp_path / "own").rglob("*.tmp"))

    def test_pulled_artifact_survives_the_peer(self, tmp_path):
        """After one pull, the consumer's store is self-sufficient — a
        fresh cache over the same root (no peers) serves the key."""
        seeded_store(tmp_path / "peer", count=1)
        consumer = CompileCache(tmp_path / "own",
                                peer_roots=[tmp_path / "peer"])
        key = key_for(0)
        assert consumer.get(key) == value_for(key)
        survivor = CompileCache(tmp_path / "own")
        assert survivor.get(key) == value_for(key)
        assert survivor.stats.pulled == 0       # served locally

    def test_second_get_hits_memory_not_the_peer(self, tmp_path):
        seeded_store(tmp_path / "peer", count=1)
        consumer = CompileCache(tmp_path / "own",
                                peer_roots=[tmp_path / "peer"])
        key = key_for(0)
        consumer.get(key)
        consumer.get(key)
        stats = consumer.stats.as_dict()
        assert stats["pulled"] == 1
        assert stats["memory_hits"] == 1

    def test_true_miss_consults_peers_then_counts_one_miss(self, tmp_path):
        (tmp_path / "peer").mkdir()
        consumer = CompileCache(tmp_path / "own",
                                peer_roots=[tmp_path / "peer"])
        assert consumer.get(key_for(7)) is None
        stats = consumer.stats.as_dict()
        assert stats["misses"] == 1 and stats["pulled"] == 0
        assert stats["lookups"] == 1

    def test_replica_probes_bounds_the_consultation(self, tmp_path):
        """Only the first ``replica_probes`` peers are consulted — the
        knob that keeps a miss from fanning out across a large fleet."""
        seeded_store(tmp_path / "holder", count=1)
        empty_peers = [tmp_path / f"empty-{i}" for i in range(2)]
        key = key_for(0)
        peers = [*empty_peers, tmp_path / "holder"]

        limited = CompileCache(tmp_path / "own-a", peer_roots=peers,
                               replica_probes=2)
        assert limited.get(key) is None          # never reached the holder
        assert limited.stats.misses == 1

        full = CompileCache(tmp_path / "own-b", peer_roots=peers)
        assert full.replica_probes == 3          # defaults to all peers
        assert full.get(key) == value_for(key)
        assert full.stats.pulled == 1

        disabled = CompileCache(tmp_path / "own-c", peer_roots=peers,
                                replica_probes=0)
        assert disabled.get(key) is None

    def test_memory_only_cache_adopts_without_publishing(self, tmp_path):
        seeded_store(tmp_path / "peer", count=1)
        consumer = CompileCache(None, peer_roots=[tmp_path / "peer"])
        key = key_for(0)
        assert consumer.get(key) == value_for(key)
        assert consumer.stats.pulled == 1
        assert consumer.get(key) == value_for(key)   # memory front now
        assert consumer.stats.memory_hits == 1


class TestRacingPublishes:
    def test_concurrent_pulls_into_one_store_stay_exact(self, tmp_path):
        """Two nodes (two cache instances over one root) pulling the same
        keys concurrently: every read byte-identical, no lost writes, no
        temp droppings — the exclusive link settles the race."""
        seeded_store(tmp_path / "peer", count=16)
        errors = []

        def puller(tag: int):
            cache = CompileCache(tmp_path / "own",
                                 peer_roots=[tmp_path / "peer"])
            for i in range(16):
                key = key_for(i)
                text = cache.get(key)
                if text != value_for(key):
                    errors.append((tag, key))

        threads = [threading.Thread(target=puller, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        survivor = CompileCache(tmp_path / "own")
        for i in range(16):
            key = key_for(i)
            assert survivor.get(key) == value_for(key)
        assert not list((tmp_path / "own").rglob("*.tmp"))

    def test_pulls_racing_a_merge_lose_nothing(self, tmp_path):
        """A bulk ``merge_from`` and per-key pull-throughs hammering one
        destination concurrently: all keys land, byte-identical, and no
        key is ever double-*created* — the exclusive link gives exactly
        one writer the publish, so ``merged`` never counts a key the pull
        already published.  (The serving-side ``pulled`` counter may
        legitimately overlap ``merged`` on a key when the merge lands
        between the puller's local probe and its peer read: the puller
        really did serve the peer's bytes.)"""
        seeded_store(tmp_path / "peer", count=24)
        dest = CompileCache(tmp_path / "own",
                            peer_roots=[tmp_path / "peer"])
        merge_counts = []

        def merger():
            merge_counts.append(dest.merge_from(tmp_path / "peer"))

        def puller():
            for i in range(24):
                key = key_for(i)
                text = dest.get(key)
                assert text is None or text == value_for(key)

        threads = [threading.Thread(target=merger),
                   threading.Thread(target=puller)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(24):
            key = key_for(i)
            assert dest.get(key) == value_for(key)
        # Every key was accounted for by at least one side, neither side
        # over-counts its universe, and nothing was lost.
        assert merge_counts[0] + dest.stats.pulled >= 24
        assert 0 <= merge_counts[0] <= 24
        assert 0 <= dest.stats.pulled <= 24
        assert not list((tmp_path / "own").rglob("*.tmp"))

    def test_dead_writer_mid_publish_is_swept_and_recoverable(self, tmp_path):
        """A node SIGKILLed between mkstemp and the link leaves a
        pid-attributed ``.tmp`` in the *destination* store; the sweep
        reaps it (the pid is dead) and the key remains pullable from the
        surviving peer."""
        seeded_store(tmp_path / "peer", count=1)
        key = key_for(0)
        shard = tmp_path / "own" / key[:2]
        shard.mkdir(parents=True)
        orphan = shard / "pub-999999999-dead.tmp"
        orphan.write_text(value_for(key)[: len(value_for(key)) // 2])
        os.utime(orphan, (1, 1))

        consumer = CompileCache(tmp_path / "own",
                                peer_roots=[tmp_path / "peer"])
        assert consumer.sweep_stale_tmp(max_age_seconds=3600) == 1
        assert not orphan.exists()
        assert consumer.get(key) == value_for(key)
        assert consumer.stats.pulled == 1
        published = shard / f"{key[2:]}.json"
        assert published.read_text() == value_for(key)
