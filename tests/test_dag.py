"""Tests for the DAG circuit representation and commutation analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Gate, QuantumCircuit, circuit_unitary, equivalent_up_to_global_phase
from repro.circuit.dag import DAGCircuit, critical_path, dag_depth, gates_commute


class TestGatesCommute:
    def test_disjoint_always(self):
        assert gates_commute(Gate("h", (0,)), Gate("x", (1,)))
        assert gates_commute(Gate("cx", (0, 1)), Gate("cx", (2, 3)))

    def test_diagonal_pair(self):
        assert gates_commute(Gate("rz", (0,), (0.3,)), Gate("s", (0,)))
        assert gates_commute(Gate("cz", (0, 1)), Gate("rz", (1,), (0.2,)))

    def test_cx_shared_control(self):
        assert gates_commute(Gate("cx", (0, 1)), Gate("cx", (0, 2)))

    def test_cx_shared_target(self):
        assert gates_commute(Gate("cx", (0, 2)), Gate("cx", (1, 2)))

    def test_cx_control_target_conflict(self):
        assert not gates_commute(Gate("cx", (0, 1)), Gate("cx", (1, 2)))

    def test_diag_through_control(self):
        assert gates_commute(Gate("cx", (0, 1)), Gate("rz", (0,), (0.5,)))

    def test_x_through_target(self):
        assert gates_commute(Gate("cx", (0, 1)), Gate("x", (1,)))

    def test_h_blocks(self):
        assert not gates_commute(Gate("cx", (0, 1)), Gate("h", (0,)))

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_claimed_commutation_is_sound(self, data):
        """Whenever gates_commute says True, the matrices really commute."""
        def random_gate():
            kind = data.draw(st.sampled_from(["h", "x", "z", "s", "rz", "rx", "cx", "cz"]))
            a = data.draw(st.integers(0, 2))
            if kind in ("cx", "cz"):
                b = data.draw(st.integers(0, 2).filter(lambda x: x != a))
                return Gate(kind, (a, b))
            if kind in ("rz", "rx"):
                return Gate(kind, (a,), (data.draw(st.floats(-2, 2, allow_nan=False)),))
            return Gate(kind, (a,))

        g1, g2 = random_gate(), random_gate()
        if not gates_commute(g1, g2):
            return
        qc_ab = QuantumCircuit(3)
        qc_ab.append(g1)
        qc_ab.append(g2)
        qc_ba = QuantumCircuit(3)
        qc_ba.append(g2)
        qc_ba.append(g1)
        assert np.allclose(circuit_unitary(qc_ab), circuit_unitary(qc_ba))


class TestDAGStructure:
    def test_wire_order_edges(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).h(1)
        dag = DAGCircuit.from_circuit(qc)
        assert dag.edges[0] == [1]
        assert dag.edges[1] == [2]

    def test_parallel_gates_independent(self):
        qc = QuantumCircuit(2)
        qc.h(0).h(1)
        dag = DAGCircuit.from_circuit(qc)
        assert dag.edges[0] == []
        assert dag.edges[1] == []

    def test_topological_order_valid(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).cx(1, 2).h(2)
        dag = DAGCircuit.from_circuit(qc)
        order = dag.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for u, vs in dag.edges.items():
            for v in vs:
                assert position[u] < position[v]

    def test_layers_asap(self):
        qc = QuantumCircuit(4)
        qc.h(0).h(1).cx(0, 1).h(2)
        dag = DAGCircuit.from_circuit(qc)
        layers = dag.layers()
        assert set(layers[0]) == {0, 1, 3}
        assert layers[1] == [2]

    def test_round_trip_preserves_unitary(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).rz(0.2, 1).cx(1, 2).yh(2)
        dag = DAGCircuit.from_circuit(qc)
        rebuilt = dag.to_circuit()
        assert equivalent_up_to_global_phase(
            circuit_unitary(rebuilt), circuit_unitary(qc)
        )


class TestCommutationDAG:
    def test_relaxes_shared_control(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1).cx(0, 2)
        strict = DAGCircuit.from_circuit(qc)
        relaxed = DAGCircuit.commutation_dag(qc)
        assert strict.edges[0] == [1]
        assert relaxed.edges[0] == []

    def test_depth_shrinks_or_equal(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 1).cx(0, 2).cx(0, 3)
        strict = dag_depth(DAGCircuit.from_circuit(qc))
        relaxed = dag_depth(DAGCircuit.commutation_dag(qc))
        assert relaxed <= strict
        assert relaxed == 1.0  # all three share only the control

    def test_any_topological_order_is_equivalent(self):
        qc = QuantumCircuit(3)
        qc.rz(0.3, 0).cx(0, 1).rz(0.4, 0).cx(0, 2).s(0)
        dag = DAGCircuit.commutation_dag(qc)
        rebuilt = dag.to_circuit(list(reversed(dag.topological_order()))[::-1])
        assert equivalent_up_to_global_phase(
            circuit_unitary(rebuilt), circuit_unitary(qc)
        )


class TestCriticalPath:
    def test_depth_matches_circuit_depth(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).cx(1, 2).rz(0.1, 2)
        dag = DAGCircuit.from_circuit(qc)
        assert dag_depth(dag) == qc.depth()

    def test_weighted_depth(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        dag = DAGCircuit.from_circuit(qc)
        heavy_cx = dag_depth(dag, weight=lambda g: 10.0 if g.name == "cx" else 1.0)
        assert heavy_cx == 11.0

    def test_critical_path_is_a_path(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).h(2).cx(1, 2)
        dag = DAGCircuit.from_circuit(qc)
        path = critical_path(dag)
        assert len(path) == dag_depth(dag)
        preds = dag.predecessors()
        for earlier, later in zip(path, path[1:]):
            assert earlier in preds[later]

    def test_empty_circuit(self):
        dag = DAGCircuit.from_circuit(QuantumCircuit(1))
        assert dag_depth(dag) == 0.0
        assert critical_path(dag) == []


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_commutation_dag_round_trip_property(data):
    qc = QuantumCircuit(3)
    n = data.draw(st.integers(1, 12))
    for _ in range(n):
        kind = data.draw(st.sampled_from(["h", "s", "rz", "cx", "x", "cz"]))
        a = data.draw(st.integers(0, 2))
        if kind in ("cx", "cz"):
            b = data.draw(st.integers(0, 2).filter(lambda x: x != a))
            qc.append(Gate(kind, (a, b)))
        elif kind == "rz":
            qc.rz(data.draw(st.floats(-2, 2, allow_nan=False)), a)
        else:
            qc.append(Gate(kind, (a,)))
    dag = DAGCircuit.commutation_dag(qc)
    rebuilt = dag.to_circuit()
    assert equivalent_up_to_global_phase(circuit_unitary(rebuilt), circuit_unitary(qc))
