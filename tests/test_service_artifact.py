"""Artifact round-trip tests over the full gate zoo.

Unlike the QASM round trip (which expands ``yh`` and only promises unitary
equivalence), the service artifact codec promises **gate-identical tapes**:
serialize → deserialize must reproduce every opcode, operand pair, and
IEEE-754 angle bit-for-bit, and re-serializing must reproduce the original
document byte-for-byte.  The circuit generators are reused from the QASM
round-trip suite so both codecs face the same zoo.
"""

import json
import math

import pytest
from hypothesis import given, settings

from repro.circuit import Gate, QuantumCircuit
from repro.core import compile_program
from repro.ir import parse_program
from repro.service import (
    circuit_from_dict,
    circuit_to_dict,
    dumps_artifact,
    loads_artifact,
    program_from_dict,
    program_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.service.batch import compile_batch
from repro.transpile import linear
from test_qasm_roundtrip import GATE_ZOO_1Q, GATE_ZOO_2Q, GATE_ZOO_ROT, zoo_circuits


def assert_tapes_identical(a: QuantumCircuit, b: QuantumCircuit) -> None:
    """Live rows equal, column by column (opcode, operands, exact angle)."""
    assert a.num_qubits == b.num_qubits
    rows_a = [a.tape.row(slot) for slot in a.tape.iter_slots()]
    rows_b = [b.tape.row(slot) for slot in b.tape.iter_slots()]
    assert rows_a == rows_b


@given(zoo_circuits())
@settings(max_examples=60, deadline=None)
def test_circuit_roundtrip_is_gate_identical(qc):
    back = circuit_from_dict(circuit_to_dict(qc))
    assert_tapes_identical(qc, back)
    assert list(back.gates) == list(qc.gates)
    assert back.count_ops() == qc.count_ops()
    assert back.depth() == qc.depth()


@given(zoo_circuits())
@settings(max_examples=30, deadline=None)
def test_reserialization_is_byte_identical(qc):
    first = json.dumps(circuit_to_dict(qc), sort_keys=True)
    second = json.dumps(
        circuit_to_dict(circuit_from_dict(circuit_to_dict(qc))), sort_keys=True
    )
    assert first == second


def test_every_zoo_gate_roundtrips_individually():
    for name in GATE_ZOO_1Q:
        qc = QuantumCircuit(1)
        qc.append(Gate(name, (0,)))
        assert_tapes_identical(qc, circuit_from_dict(circuit_to_dict(qc)))
    for name in GATE_ZOO_ROT:
        qc = QuantumCircuit(1)
        # An angle with no short decimal form: exact IEEE-754 round trip.
        qc.append(Gate(name, (0,), (math.pi / 7 + 1e-17,)))
        back = circuit_from_dict(circuit_to_dict(qc))
        assert back.gates[0].params == qc.gates[0].params
    for name in GATE_ZOO_2Q:
        qc = QuantumCircuit(2)
        qc.append(Gate(name, (1, 0)))   # operand order must survive
        back = circuit_from_dict(circuit_to_dict(qc))
        assert back.gates[0].qubits == (1, 0)


def test_circuit_metadata_preserved():
    qc = QuantumCircuit(3, name="my-kernel")
    qc.h(0).cx(0, 1).rz(0.25, 2)
    back = circuit_from_dict(circuit_to_dict(qc))
    assert back.name == "my-kernel"
    assert back.num_qubits == 3


class TestResultArtifacts:
    def test_ft_result_roundtrip(self):
        program = parse_program("{(XYZ, 0.5), (ZZI, -0.25), 0.7};")
        result = compile_program(program, backend="ft")
        back = loads_artifact(dumps_artifact(result))
        assert_tapes_identical(result.circuit, back.circuit)
        assert back.backend == "ft" and back.scheduler == result.scheduler
        assert back.metrics == result.metrics
        assert [(s.label, c) for s, c in back.emitted_terms] == \
            [(s.label, c) for s, c in result.emitted_terms]
        assert back.initial_layout is None and back.final_layout is None

    def test_sc_result_roundtrip_preserves_layouts(self):
        program = parse_program("{(ZIIZ, 1.0), 0.5};\n{(XXII, -0.5), 0.3};")
        result = compile_program(program, backend="sc", coupling=linear(4))
        back = loads_artifact(dumps_artifact(result))
        assert back.metrics == result.metrics
        for layout_pair in (
            (back.initial_layout, result.initial_layout),
            (back.final_layout, result.final_layout),
        ):
            got, want = layout_pair
            assert sorted(got.physical_qubits()) == sorted(want.physical_qubits())
            for p in want.physical_qubits():
                assert got.logical(p) == want.logical(p)

    def test_artifact_text_reserializes_byte_identically(self):
        program = parse_program("{(XYZ, 0.5), 0.7};")
        result = compile_program(program, backend="ft")
        text = dumps_artifact(result)
        assert dumps_artifact(loads_artifact(text)) == text

    def test_version_gate(self):
        program = parse_program("{(XY, 1.0), 0.5};")
        payload = result_to_dict(compile_program(program, backend="ft"))
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            result_from_dict(payload)
        circ = circuit_to_dict(QuantumCircuit(1).h(0))
        circ["version"] = 0
        with pytest.raises(ValueError, match="version"):
            circuit_from_dict(circ)

    def test_kind_gate(self):
        circ = circuit_to_dict(QuantumCircuit(1).h(0))
        with pytest.raises(ValueError, match="circuit"):
            result_from_dict({**circ, "kind": "circuit"})


class TestProgramArtifacts:
    def test_program_roundtrip_preserves_everything(self):
        program = parse_program(
            "{(XYZI, 0.5), (IZZX, -0.25), 0.3};\n{(YIIX, 1.5), 1.0};",
            name="transport",
        )
        back = program_from_dict(program_to_dict(program))
        assert back.name == "transport"
        assert back.num_qubits == program.num_qubits
        assert back.multiset_of_terms() == program.multiset_of_terms()
        assert [b.parameter for b in back] == [b.parameter for b in program]
        assert [len(b) for b in back] == [len(b) for b in program]

    def test_exact_weight_transport(self):
        """The codec must beat the %g-formatted text IR on precision."""
        from repro.ir import PauliBlock, PauliProgram
        from repro.pauli import PauliString

        weight = 0.1234567890123456789   # not representable in %g
        program = PauliProgram([
            PauliBlock([(PauliString.from_label("XZ"), weight)], parameter=1.0)
        ])
        back = program_from_dict(program_to_dict(program))
        assert back[0][0].weight == program[0][0].weight


def test_batch_entries_deserialize_to_equal_metrics(tmp_path):
    specs = [
        {"text": "{(XX, 1.0), (YY, 0.5), 0.3};", "label": "a"},
        {"text": "{(ZZ, -0.5), 0.7};", "label": "b"},
    ]
    batch = compile_batch(specs)
    for entry in batch.entries:
        result = entry.result()
        direct = compile_program(
            parse_program(specs[entry.index]["text"]), backend="ft"
        )
        assert result.metrics == direct.metrics
        assert_tapes_identical(result.circuit, direct.circuit)
