"""Artifact round-trip tests over the full gate zoo.

Unlike the QASM round trip (which expands ``yh`` and only promises unitary
equivalence), the service artifact codec promises **gate-identical tapes**:
serialize → deserialize must reproduce every opcode, operand pair, and
IEEE-754 angle bit-for-bit, and re-serializing must reproduce the original
document byte-for-byte.  The circuit generators are reused from the QASM
round-trip suite so both codecs face the same zoo.
"""

import json
import math
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.circuit import Gate, QuantumCircuit
from repro.core import compile_program
from repro.ir import parse_program
from repro.service import (
    circuit_from_dict,
    circuit_to_dict,
    dumps_artifact,
    loads_artifact,
    program_from_dict,
    program_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.service.batch import compile_batch
from repro.transpile import linear
from test_qasm_roundtrip import GATE_ZOO_1Q, GATE_ZOO_2Q, GATE_ZOO_ROT, zoo_circuits


def assert_tapes_identical(a: QuantumCircuit, b: QuantumCircuit) -> None:
    """Live rows equal, column by column (opcode, operands, exact angle)."""
    assert a.num_qubits == b.num_qubits
    rows_a = [a.tape.row(slot) for slot in a.tape.iter_slots()]
    rows_b = [b.tape.row(slot) for slot in b.tape.iter_slots()]
    assert rows_a == rows_b


@given(zoo_circuits())
@settings(max_examples=60, deadline=None)
def test_circuit_roundtrip_is_gate_identical(qc):
    back = circuit_from_dict(circuit_to_dict(qc))
    assert_tapes_identical(qc, back)
    assert list(back.gates) == list(qc.gates)
    assert back.count_ops() == qc.count_ops()
    assert back.depth() == qc.depth()


@given(zoo_circuits())
@settings(max_examples=30, deadline=None)
def test_reserialization_is_byte_identical(qc):
    first = json.dumps(circuit_to_dict(qc), sort_keys=True)
    second = json.dumps(
        circuit_to_dict(circuit_from_dict(circuit_to_dict(qc))), sort_keys=True
    )
    assert first == second


def test_every_zoo_gate_roundtrips_individually():
    for name in GATE_ZOO_1Q:
        qc = QuantumCircuit(1)
        qc.append(Gate(name, (0,)))
        assert_tapes_identical(qc, circuit_from_dict(circuit_to_dict(qc)))
    for name in GATE_ZOO_ROT:
        qc = QuantumCircuit(1)
        # An angle with no short decimal form: exact IEEE-754 round trip.
        qc.append(Gate(name, (0,), (math.pi / 7 + 1e-17,)))
        back = circuit_from_dict(circuit_to_dict(qc))
        assert back.gates[0].params == qc.gates[0].params
    for name in GATE_ZOO_2Q:
        qc = QuantumCircuit(2)
        qc.append(Gate(name, (1, 0)))   # operand order must survive
        back = circuit_from_dict(circuit_to_dict(qc))
        assert back.gates[0].qubits == (1, 0)


def test_circuit_metadata_preserved():
    qc = QuantumCircuit(3, name="my-kernel")
    qc.h(0).cx(0, 1).rz(0.25, 2)
    back = circuit_from_dict(circuit_to_dict(qc))
    assert back.name == "my-kernel"
    assert back.num_qubits == 3


class TestResultArtifacts:
    def test_ft_result_roundtrip(self):
        program = parse_program("{(XYZ, 0.5), (ZZI, -0.25), 0.7};")
        result = compile_program(program, backend="ft")
        back = loads_artifact(dumps_artifact(result))
        assert_tapes_identical(result.circuit, back.circuit)
        assert back.backend == "ft" and back.scheduler == result.scheduler
        assert back.metrics == result.metrics
        assert [(s.label, c) for s, c in back.emitted_terms] == \
            [(s.label, c) for s, c in result.emitted_terms]
        assert back.initial_layout is None and back.final_layout is None

    def test_sc_result_roundtrip_preserves_layouts(self):
        program = parse_program("{(ZIIZ, 1.0), 0.5};\n{(XXII, -0.5), 0.3};")
        result = compile_program(program, backend="sc", coupling=linear(4))
        back = loads_artifact(dumps_artifact(result))
        assert back.metrics == result.metrics
        for layout_pair in (
            (back.initial_layout, result.initial_layout),
            (back.final_layout, result.final_layout),
        ):
            got, want = layout_pair
            assert sorted(got.physical_qubits()) == sorted(want.physical_qubits())
            for p in want.physical_qubits():
                assert got.logical(p) == want.logical(p)

    def test_artifact_text_reserializes_byte_identically(self):
        program = parse_program("{(XYZ, 0.5), 0.7};")
        result = compile_program(program, backend="ft")
        text = dumps_artifact(result)
        assert dumps_artifact(loads_artifact(text)) == text

    def test_version_gate(self):
        program = parse_program("{(XY, 1.0), 0.5};")
        payload = result_to_dict(compile_program(program, backend="ft"))
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            result_from_dict(payload)
        circ = circuit_to_dict(QuantumCircuit(1).h(0))
        circ["version"] = 0
        with pytest.raises(ValueError, match="version"):
            circuit_from_dict(circ)

    def test_kind_gate(self):
        circ = circuit_to_dict(QuantumCircuit(1).h(0))
        with pytest.raises(ValueError, match="circuit"):
            result_from_dict({**circ, "kind": "circuit"})


class TestCrossVersionDecode:
    """The decode floor is OLDEST_SUPPORTED_VERSION, not the current
    version.

    Regression: ``_check_version`` defaulted ``oldest`` to
    ``ARTIFACT_VERSION``, so every decode path that did not pass an
    explicit floor silently rejected still-supported older payloads the
    moment the version was bumped — a cache full of v2 artifacts read as
    all-miss after upgrading to a v3 build.
    """

    @staticmethod
    def _payload_at_version(version):
        """A faithful payload of the given era: v1 predates ``device``,
        v2 predates ``tier``/``pipeline``."""
        program = parse_program("{(XYZ, 0.5), (ZZI, -0.25), 0.7};")
        payload = result_to_dict(compile_program(program, backend="ft"))
        if version < 3:
            payload.pop("tier", None)
            payload.pop("pipeline", None)
        if version < 2:
            payload.pop("device", None)
        payload["version"] = version
        payload["circuit"] = {**payload["circuit"], "version": version}
        return payload

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_supported_versions_all_decode(self, version):
        back = result_from_dict(self._payload_at_version(version))
        reference = compile_program(
            parse_program("{(XYZ, 0.5), (ZZI, -0.25), 0.7};"), backend="ft"
        )
        assert_tapes_identical(back.circuit, reference.circuit)
        assert back.backend == "ft"
        # Era defaults: fields an old payload lacks come back as the
        # values a current writer would have used.
        if version < 3:
            assert back.tier == "full" and back.pipeline is None
        if version < 2:
            assert back.device is None

    @pytest.mark.parametrize("version", [0, 4, None, "2"])
    def test_out_of_range_versions_still_reject(self, version):
        payload = self._payload_at_version(2)
        payload["version"] = version
        with pytest.raises(ValueError, match="version"):
            result_from_dict(payload)

    def test_true_floor_is_the_default(self):
        from repro.service import ARTIFACT_VERSION, OLDEST_SUPPORTED_VERSION

        assert OLDEST_SUPPORTED_VERSION == 1 < ARTIFACT_VERSION
        # The loads path inherits the floor: a v1 text decodes.
        text = json.dumps(self._payload_at_version(1))
        assert loads_artifact(text).tier == "full"

    def test_v3_tier_survives_the_text_roundtrip(self):
        from repro.service import TIER_FAST

        program = parse_program("{(XY, 1.0), 0.5};")
        result = compile_program(program, backend="ft", peephole_level=1)
        assert result.tier == TIER_FAST
        back = loads_artifact(dumps_artifact(result))
        assert back.tier == TIER_FAST
        assert back.pipeline == result.pipeline


_ARTIFACT_CORPUS = (
    Path(__file__).parent / "corpora" / "artifact_versions.jsonl"
)


def _artifact_corpus_cases():
    cases = []
    for line in _ARTIFACT_CORPUS.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            cases.append(json.loads(line))
    return cases


class TestCommittedArtifactCorpus:
    """Frozen artifacts from every codec era must keep decoding.

    The corpus is the on-disk counterpart of the cross-version matrix
    above: real serialized documents written by v1/v2/v3 builds
    (including reduced-tier speculative v3 artifacts), committed so a
    future version bump that breaks the decode floor fails against
    bytes that actually shipped, not against synthetic payloads.
    """

    @pytest.mark.parametrize(
        "case", _artifact_corpus_cases(), ids=lambda case: case["id"],
    )
    def test_every_committed_era_decodes(self, case):
        result = result_from_dict(case["artifact"])
        assert result.tier == case["expect_tier"]
        assert result.circuit.num_qubits == case["artifact"]["circuit"]["num_qubits"]
        assert list(result.circuit.gates)   # tape reconstructed, non-empty

    @pytest.mark.parametrize(
        "case",
        [c for c in _artifact_corpus_cases() if c["artifact"]["version"] == 3],
        ids=lambda case: case["id"],
    )
    def test_current_era_reserializes_byte_identically(self, case):
        text = json.dumps(case["artifact"], sort_keys=True,
                          separators=(",", ":"))
        assert dumps_artifact(loads_artifact(text)) == text

    def test_corpus_spans_the_supported_range(self):
        from repro.service import ARTIFACT_VERSION, OLDEST_SUPPORTED_VERSION

        versions = {c["artifact"]["version"] for c in _artifact_corpus_cases()}
        assert versions == set(
            range(OLDEST_SUPPORTED_VERSION, ARTIFACT_VERSION + 1)
        )
        tiers = {c["expect_tier"] for c in _artifact_corpus_cases()}
        assert "full" in tiers and {"opt1", "opt2"} <= tiers


class TestProgramArtifacts:
    def test_program_roundtrip_preserves_everything(self):
        program = parse_program(
            "{(XYZI, 0.5), (IZZX, -0.25), 0.3};\n{(YIIX, 1.5), 1.0};",
            name="transport",
        )
        back = program_from_dict(program_to_dict(program))
        assert back.name == "transport"
        assert back.num_qubits == program.num_qubits
        assert back.multiset_of_terms() == program.multiset_of_terms()
        assert [b.parameter for b in back] == [b.parameter for b in program]
        assert [len(b) for b in back] == [len(b) for b in program]

    def test_exact_weight_transport(self):
        """The codec must beat the %g-formatted text IR on precision."""
        from repro.ir import PauliBlock, PauliProgram
        from repro.pauli import PauliString

        weight = 0.1234567890123456789   # not representable in %g
        program = PauliProgram([
            PauliBlock([(PauliString.from_label("XZ"), weight)], parameter=1.0)
        ])
        back = program_from_dict(program_to_dict(program))
        assert back[0][0].weight == program[0][0].weight


def test_batch_entries_deserialize_to_equal_metrics(tmp_path):
    specs = [
        {"text": "{(XX, 1.0), (YY, 0.5), 0.3};", "label": "a"},
        {"text": "{(ZZ, -0.5), 0.7};", "label": "b"},
    ]
    batch = compile_batch(specs)
    for entry in batch.entries:
        result = entry.result()
        direct = compile_program(
            parse_program(specs[entry.index]["text"]), backend="ft"
        )
        assert result.metrics == direct.metrics
        assert_tapes_identical(result.circuit, direct.circuit)
