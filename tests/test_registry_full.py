"""Every registered benchmark must build and compile at small scale.

The broadest smoke test in the suite: all 31 Table 1 entries go through
their backend's Paulihedral flow end to end (small instances), checking
that no generator/compiler combination is broken.
"""

import pytest

from repro.core import compile_program
from repro.ir import validate_program
from repro.workloads import BENCHMARKS
from repro.transpile import manhattan_65

_SC_COUPLING = manhattan_65()


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_benchmark_builds_and_compiles(name):
    spec = BENCHMARKS[name]
    program = spec.build("small")
    assert program.num_strings > 0
    assert validate_program(program).ok, name

    if spec.backend == "sc":
        result = compile_program(program, backend="sc", coupling=_SC_COUPLING)
    else:
        result = compile_program(program, backend="ft")
    metrics = result.metrics
    assert metrics["total"] > 0
    assert metrics["depth"] > 0
    assert metrics["cnot"] >= 0


@pytest.mark.parametrize("name", ["UCCSD-8", "REG-20-4", "Ising-1D", "Heisen-1D"])
def test_compile_program_restarts_path(name):
    spec = BENCHMARKS[name]
    program = spec.build("small")
    if spec.backend != "sc":
        pytest.skip("restarts only affect the SC backend")
    one = compile_program(program, backend="sc", coupling=_SC_COUPLING, restarts=1)
    many = compile_program(program, backend="sc", coupling=_SC_COUPLING, restarts=4)
    assert many.metrics["cnot"] <= one.metrics["cnot"]
