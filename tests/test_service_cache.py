"""Property tests for the serving layer's fingerprints and compile cache.

The contract under test:

* fingerprints are **stable** — across interpreter restarts (pinned digest
  + a fresh-subprocess recomputation) and across machines (pure SHA-256 of
  canonical bytes, no Python ``hash()``);
* fingerprints are **canonical** — invariant under block reordering, term
  reordering inside a block, splitting a coefficient between weight and
  parameter, coefficient formatting, and program renaming;
* fingerprints are **discriminating** — distinct programs and distinct
  compile options get distinct digests;
* a cache hit returns the **byte-identical** artifact a cold compile
  produced, from both the memory and the disk tier, with every outcome
  counted in the stats.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_program
from repro.ir import PauliBlock, PauliProgram, parse_program
from repro.pauli import PauliString
from repro.service import (
    CompileCache,
    canonical_options,
    compile_fingerprint,
    dumps_artifact,
    program_fingerprint,
)
from repro.service.artifact import ARTIFACT_VERSION
from repro.transpile import linear

FIXED_TEXT = "{(XYZI, 0.5), (IZZX, -0.25), 0.3};\n{(YIIX, 1.5), 1.0};"
#: Pinned digests of FIXED_TEXT: any change to the canonical encoding or
#: the hash construction must show up here as a deliberate version bump.
FIXED_PROGRAM_FP = "5ddb36bd2cc3c206fb9f74539f5a3b3ccb1b44f7c757595fc3e7b2dbec3ee995"
FIXED_COMPILE_FP = "a7cbccb82b839d5fe339bbf9c3de2f2beb86641338e3a55e745435454e181ab1"


def fixed_program():
    return parse_program(FIXED_TEXT)


class TestFingerprintStability:
    def test_pinned_program_digest(self):
        assert program_fingerprint(fixed_program()) == FIXED_PROGRAM_FP

    def test_pinned_compile_digest(self):
        fp = compile_fingerprint(fixed_program(), canonical_options("ft", "gco"))
        assert fp == FIXED_COMPILE_FP

    def test_stable_across_interpreter_restarts(self):
        """A fresh interpreter (fresh ``PYTHONHASHSEED``) must agree."""
        src = Path(__file__).resolve().parent.parent / "src"
        code = (
            "from repro.ir import parse_program\n"
            "from repro.service import program_fingerprint\n"
            f"print(program_fingerprint(parse_program({FIXED_TEXT!r})))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": str(src), "PYTHONHASHSEED": "random"},
        )
        assert out.stdout.strip() == FIXED_PROGRAM_FP


class TestFingerprintCanonicalization:
    def test_block_reordering(self):
        a = parse_program("{(XX, 1.0), 0.5};\n{(ZZ, -1.0), 0.25};")
        b = parse_program("{(ZZ, -1.0), 0.25};\n{(XX, 1.0), 0.5};")
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_term_reordering_within_block(self):
        a = parse_program("{(XX, 1.0), (YY, 2.0), (ZZ, 3.0), 0.5};")
        b = parse_program("{(ZZ, 3.0), (XX, 1.0), (YY, 2.0), 0.5};")
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_weight_parameter_split(self):
        """Only the effective coefficient weight*parameter is semantic."""
        a = PauliProgram([PauliBlock([(PauliString.from_label("XZ"), 0.5)],
                                     parameter=2.0)])
        b = PauliProgram([PauliBlock([(PauliString.from_label("XZ"), 1.0)],
                                     parameter=1.0)])
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_coefficient_formatting(self):
        a = parse_program("{(XY, 0.5), 1.0};")
        b = parse_program("{(XY, 0.5000000000), 1.00};")
        c = parse_program("{(XY, 5e-1), 1e0};")
        assert program_fingerprint(a) == program_fingerprint(b) == program_fingerprint(c)

    def test_negative_zero_coefficient(self):
        a = PauliProgram([PauliBlock([(PauliString.from_label("XY"), 0.0)],
                                     parameter=1.0)])
        b = PauliProgram([PauliBlock([(PauliString.from_label("XY"), -0.0)],
                                     parameter=1.0)])
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_name_is_metadata_not_semantics(self):
        a = parse_program(FIXED_TEXT, name="alpha")
        b = parse_program(FIXED_TEXT, name="beta")
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_block_encoding_matches_the_one_sweep_fast_path(self):
        """``PauliProgram.canonical_form`` packs all blocks in one sweep;
        it must stay byte-identical to composing the per-block
        ``PauliBlock.canonical_bytes`` encodings."""
        import struct

        program = fixed_program()
        encoded = sorted(block.canonical_bytes() for block in program)
        composed = (
            b"pauli-program-v1"
            + struct.pack("<II", program.num_qubits, len(encoded))
            + b"".join(encoded)
        )
        assert program.canonical_form() == composed

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_random_permutations_are_invariant(self, data):
        n = data.draw(st.integers(2, 5))
        blocks = []
        for _ in range(data.draw(st.integers(1, 3))):
            strings = []
            for _ in range(data.draw(st.integers(1, 4))):
                codes = [data.draw(st.integers(0, 3)) for _ in range(n)]
                strings.append((
                    PauliString(codes),
                    data.draw(st.floats(-2, 2, allow_nan=False)),
                ))
            blocks.append(PauliBlock(
                strings, parameter=data.draw(st.floats(-2, 2, allow_nan=False))
            ))
        program = PauliProgram(blocks)
        block_order = data.draw(st.permutations(range(len(blocks))))
        shuffled = PauliProgram([
            PauliBlock(
                [blocks[i].strings[j]
                 for j in data.draw(st.permutations(range(len(blocks[i].strings))))],
                parameter=blocks[i].parameter,
            )
            for i in block_order
        ])
        assert program_fingerprint(program) == program_fingerprint(shuffled)


class TestFingerprintDiscrimination:
    def test_distinct_programs(self):
        base = program_fingerprint(fixed_program())
        assert program_fingerprint(parse_program("{(XYZI, 0.5), 0.3};")) != base
        assert program_fingerprint(
            parse_program(FIXED_TEXT.replace("0.5", "0.50001"))
        ) != base
        assert program_fingerprint(
            parse_program(FIXED_TEXT.replace("XYZI", "XYZZ"))
        ) != base

    def test_duplicate_multiplicity_is_semantic(self):
        once = parse_program("{(XX, 1.0), 0.5};")
        twice = parse_program("{(XX, 1.0), (XX, 1.0), 0.5};")
        assert program_fingerprint(once) != program_fingerprint(twice)

    def test_options_discriminate(self):
        program = fixed_program()
        seen = set()
        for options in [
            canonical_options("ft", "gco"),
            canonical_options("ft", "do"),
            canonical_options("ft", "gco", run_peephole=False),
            canonical_options("sc", "do", coupling=linear(4)),
            canonical_options("sc", "do", coupling=linear(5)),
            canonical_options("sc", "do", coupling=linear(4), restarts=3),
            canonical_options("sc", "do", coupling=linear(4),
                              edge_error={(0, 1): 0.01}),
        ]:
            seen.add(compile_fingerprint(program, options))
        assert len(seen) == 7

    def test_qubit_count_is_semantic(self):
        a = parse_program("{(XX, 1.0), 0.5};")
        b = parse_program("{(IXX, 1.0), 0.5};")
        assert program_fingerprint(a) != program_fingerprint(b)


class TestCompileCache:
    def test_hit_is_byte_identical_to_cold_compile(self, tmp_path):
        program = fixed_program()
        cache = CompileCache(tmp_path)
        cold = compile_program(program, backend="ft", cache=cache)
        assert not cold.from_cache and cold.fingerprint is not None

        warm = compile_program(program, backend="ft", cache=cache)
        assert warm.from_cache
        assert dumps_artifact(warm) == dumps_artifact(cold)
        assert cache.get(cold.fingerprint) == dumps_artifact(cold)
        assert list(warm.circuit.gates) == list(cold.circuit.gates)
        assert warm.metrics == cold.metrics

    def test_disk_tier_survives_a_new_process_front(self, tmp_path):
        program = fixed_program()
        first = CompileCache(tmp_path)
        cold = compile_program(program, backend="ft", cache=first)

        second = CompileCache(tmp_path)   # fresh LRU, same store
        warm = compile_program(program, backend="ft", cache=second)
        assert warm.from_cache
        assert second.stats.disk_hits == 1 and second.stats.misses == 0
        assert dumps_artifact(warm) == dumps_artifact(cold)

    def test_stats_and_lru_eviction(self, tmp_path):
        cache = CompileCache(tmp_path, memory_entries=2)
        cache.put("aa" + "0" * 62, "one")
        cache.put("bb" + "0" * 62, "two")
        cache.put("cc" + "0" * 62, "three")
        assert cache.stats.evictions == 1
        # Evicted from memory, still on disk.
        assert cache.get("aa" + "0" * 62) == "one"
        assert cache.stats.disk_hits == 1
        assert cache.get("zz" + "0" * 62) is None
        assert cache.stats.misses == 1
        assert cache.stats.puts == 3
        stats = cache.stats.as_dict()
        assert stats["hits"] == stats["memory_hits"] + stats["disk_hits"]

    def test_memory_only_mode(self):
        cache = CompileCache()
        result = compile_program(fixed_program(), backend="ft", cache=cache)
        assert compile_program(
            fixed_program(), backend="ft", cache=cache
        ).from_cache
        assert result.fingerprint in cache

    def test_merge_from_worker_store(self, tmp_path):
        main = CompileCache(tmp_path / "main")
        worker = CompileCache(tmp_path / "worker")
        worker.put("ab" + "1" * 62, "payload")
        main.put("cd" + "2" * 62, "existing")
        assert main.merge_from(tmp_path / "worker") == 1
        assert main.get("ab" + "1" * 62) == "payload"
        assert main.stats.merged == 1
        # Idempotent: nothing new to copy the second time.
        assert main.merge_from(tmp_path / "worker") == 0

    def test_tiered_get_split_preserves_stats(self, tmp_path):
        """``get_memory``/``get_disk`` (the gateway's loop-safe split)
        must together count exactly what the composite ``get`` counts:
        a memory probe never records a miss, the disk probe records the
        hit-or-miss, and a disk hit promotes into the memory tier."""
        fp = "ee" + "3" * 62
        cache = CompileCache(tmp_path)
        cache.put(fp, "payload")

        # Memory front answers inline and counts the hit.
        assert cache.get_memory(fp) == "payload"
        assert cache.stats.memory_hits == 1 and cache.stats.misses == 0

        # A memory miss is silent: no miss is charged until the disk
        # tier has spoken, so probe-then-dedupe never inflates misses.
        assert cache.get_memory("ff" + "4" * 62) is None
        assert cache.stats.misses == 0

        # Fresh front, same store: memory probe silent, disk probe hits
        # and promotes, so the next memory probe answers directly.
        second = CompileCache(tmp_path)
        assert second.get_memory(fp) is None
        assert second.stats.misses == 0
        assert second.get_disk(fp) == "payload"
        assert second.stats.disk_hits == 1 and second.stats.misses == 0
        assert second.get_memory(fp) == "payload"
        assert second.stats.memory_hits == 1

        # A full miss is charged by the disk tier exactly once, and the
        # composite get equals the split run in sequence.
        assert second.get_disk("ff" + "4" * 62) is None
        assert second.stats.misses == 1
        third = CompileCache(tmp_path)
        assert third.get(fp) == "payload"
        assert third.stats.disk_hits == 1
        assert third.get(fp) == "payload"
        assert third.stats.memory_hits == 1
        assert third.get("ff" + "4" * 62) is None
        assert third.stats.misses == 1
        totals = third.stats.as_dict()
        assert totals["hits"] == totals["memory_hits"] + totals["disk_hits"]

    def test_memory_only_mode_disk_probe_counts_the_miss(self):
        cache = CompileCache()
        cache.put("aa" + "0" * 62, "x")
        assert cache.get_memory("bb" + "1" * 62) is None
        assert cache.stats.misses == 0
        assert cache.get_disk("bb" + "1" * 62) is None
        assert cache.stats.misses == 1

    def test_sc_results_cache_with_layouts(self, tmp_path):
        program = parse_program("{(ZIIZ, 1.0), 0.5};\n{(XXII, -0.5), 0.3};")
        coupling = linear(4)
        cache = CompileCache(tmp_path)
        cold = compile_program(program, backend="sc", coupling=coupling, cache=cache)
        warm = compile_program(program, backend="sc", coupling=coupling, cache=cache)
        assert warm.from_cache
        assert dumps_artifact(warm) == dumps_artifact(cold)
        for p in warm.final_layout.physical_qubits():
            assert warm.final_layout.logical(p) == cold.final_layout.logical(p)

    def test_scheduler_default_resolution_shares_the_fingerprint(self, tmp_path):
        cache = CompileCache(tmp_path)
        implicit = compile_program(fixed_program(), backend="ft", cache=cache)
        explicit = compile_program(
            fixed_program(), backend="ft", scheduler="gco", cache=cache
        )
        assert explicit.from_cache
        assert implicit.fingerprint == explicit.fingerprint

    def test_stale_or_corrupt_artifact_recompiles_instead_of_raising(self, tmp_path):
        cache = CompileCache(tmp_path)
        cold = compile_program(fixed_program(), backend="ft", cache=cache)
        good = cache.get(cold.fingerprint)

        # Future artifact version: must fall back to a recompile...
        cache.put(
            cold.fingerprint,
            good.replace(f'"version":{ARTIFACT_VERSION}', '"version":999'),
        )
        redone = compile_program(fixed_program(), backend="ft", cache=cache)
        assert not redone.from_cache
        # ...and heal the entry so the next lookup hits again.
        assert cache.get(cold.fingerprint) == good
        assert compile_program(fixed_program(), backend="ft", cache=cache).from_cache

        # Truncated/corrupt JSON likewise.
        cache.put(cold.fingerprint, good[: len(good) // 2])
        assert not compile_program(fixed_program(), backend="ft", cache=cache).from_cache

        # Valid JSON that is not an object likewise.
        cache.put(cold.fingerprint, "null")
        assert not compile_program(fixed_program(), backend="ft", cache=cache).from_cache


def tier_text(tier, payload=0):
    """A minimal artifact-shaped document carrying a quality tier."""
    import json

    return json.dumps({"version": 3, "kind": "result", "tier": tier,
                       "payload": payload})


class TestTieredCache:
    FP = "dd" + "5" * 62

    def test_put_tiered_then_upgrade_lands_in_place(self, tmp_path):
        cache = CompileCache(tmp_path)
        assert cache.put_tiered(self.FP, tier_text("opt1"), "opt1")
        assert cache.stats.puts == 1 and cache.stats.upgraded == 0

        full = tier_text("full")
        assert cache.upgrade(self.FP, full)
        assert cache.get(self.FP) == full
        assert cache.stats.upgraded == 1
        assert cache.stats.stale_upgrades == 0
        # Same key on disk: the upgrade replaced, not duplicated.
        assert len(list(cache.iter_fingerprints())) == 1

    def test_upgrade_loses_cas_against_equal_or_better(self, tmp_path):
        cache = CompileCache(tmp_path)
        first = tier_text("full", payload=1)
        cache.put(self.FP, first)
        # A background recompile that arrives after a full-effort publish
        # must leave the existing entry untouched.
        assert not cache.upgrade(self.FP, tier_text("full", payload=2))
        assert cache.get(self.FP) == first
        assert cache.stats.stale_upgrades == 1 and cache.stats.upgraded == 0

    def test_lower_tier_never_downgrades(self, tmp_path):
        cache = CompileCache(tmp_path)
        full = tier_text("full")
        cache.put(self.FP, full)
        assert not cache.put_tiered(self.FP, tier_text("opt1"), "opt1")
        assert cache.get(self.FP) == full
        assert cache.stats.stale_upgrades == 1
        # opt2 over opt1 *does* land (strictly better).
        other = "ee" + "6" * 62
        cache.put_tiered(other, tier_text("opt1"), "opt1")
        assert cache.put_tiered(other, tier_text("opt2"), "opt2")
        assert cache.get(other) == tier_text("opt2")

    def test_upgrade_of_empty_key_lands_and_counts_upgraded(self, tmp_path):
        cache = CompileCache(tmp_path)
        assert cache.upgrade(self.FP, tier_text("full"))
        assert cache.stats.upgraded == 1 and cache.stats.puts == 0
        assert cache.get(self.FP) == tier_text("full")

    def test_legacy_untiered_artifact_reads_as_full(self, tmp_path):
        """v1/v2 artifacts carry no tier field: they must rank as full,
        so an opt-1 placeholder can never clobber one."""
        import json

        cache = CompileCache(tmp_path)
        legacy = json.dumps({"version": 2, "kind": "result"})
        cache.put(self.FP, legacy)
        assert not cache.put_tiered(self.FP, tier_text("opt1"), "opt1")
        assert cache.get(self.FP) == legacy

    def test_tiered_ledger_reconciles(self, tmp_path):
        """Every tiered publish lands in exactly one of puts / upgraded /
        stale_upgrades."""
        cache = CompileCache(tmp_path)
        publishes = 0
        for i, (tier, key) in enumerate([
            ("opt1", "aa"), ("opt1", "aa"), ("full", "aa"), ("full", "aa"),
            ("opt1", "bb"), ("opt2", "bb"), ("opt2", "bb"), ("full", "cc"),
        ]):
            cache.put_tiered(key + "0" * 62, tier_text(tier, i), tier)
            publishes += 1
        stats = cache.stats
        assert (stats.puts + stats.upgraded + stats.stale_upgrades
                == publishes)

    def test_memory_only_tiered_cas(self):
        cache = CompileCache()
        assert cache.put_tiered(self.FP, tier_text("opt1"), "opt1")
        assert not cache.put_tiered(self.FP, tier_text("opt1", 9), "opt1")
        assert cache.upgrade(self.FP, tier_text("full"))
        assert cache.get(self.FP) == tier_text("full")
        assert cache.stats.puts == 1
        assert cache.stats.upgraded == 1
        assert cache.stats.stale_upgrades == 1

    def test_threaded_upgrade_cas_single_winner(self, tmp_path):
        """N racing upgraders of one opt-1 entry: exactly one lands, the
        rest count stale, and the stored artifact is the winner's."""
        import threading

        cache = CompileCache(tmp_path)
        cache.put_tiered(self.FP, tier_text("opt1"), "opt1")
        barrier = threading.Barrier(8)
        outcomes = []

        def worker(n):
            barrier.wait()
            outcomes.append(cache.upgrade(self.FP, tier_text("full", n)))

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count(True) == 1
        assert cache.stats.upgraded == 1
        assert cache.stats.stale_upgrades == 7
        stored = cache.get(self.FP)
        assert stored in {tier_text("full", n) for n in range(8)}


class TestDiscardRaces:
    FP = "ab" + "7" * 62

    def test_conditional_discard_checks_content(self, tmp_path):
        cache = CompileCache(tmp_path)
        cache.put(self.FP, "fresh")
        # Mismatched expectation: nothing removed, nothing counted.
        assert not cache.discard(self.FP, expect="stale")
        assert cache.get(self.FP) == "fresh"
        assert cache.stats.discards == 0
        # Matching expectation removes both tiers.
        assert cache.discard(self.FP, expect="fresh")
        assert cache.get(self.FP) is None
        assert cache.stats.discards == 1
        # Discarding a missing key is a no-op, not a count.
        assert not cache.discard(self.FP)
        assert cache.stats.discards == 1

    @pytest.mark.parametrize("disk", [True, False])
    def test_discard_never_removes_a_concurrent_republish(self, tmp_path, disk):
        """Regression: ``discard`` used to unlink unconditionally, so an
        invalidation racing a ``put`` of fresh bytes could silently drop
        the fresh artifact (and bump ``discards`` past the number of
        entries actually removed).  The conditional form must leave a
        republished entry alone under arbitrary interleaving."""
        import threading

        cache = CompileCache(tmp_path if disk else None)
        rounds = 50
        for i in range(rounds):
            stale, fresh = f"stale-{i}", f"fresh-{i}"
            cache.put(self.FP, stale)
            barrier = threading.Barrier(2)

            def discarder():
                barrier.wait()
                cache.discard(self.FP, expect=stale)

            def publisher():
                barrier.wait()
                cache.put(self.FP, fresh)

            threads = [threading.Thread(target=discarder),
                       threading.Thread(target=publisher)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # Whichever order the race resolved in, the fresh bytes are
            # the stored entry afterwards.
            assert cache.get(self.FP) == fresh
        assert cache.stats.discards <= rounds


class TestBatchService:
    SPECS = [
        {"text": "{(XXI, 1.0), (YYI, 0.5), 0.3};", "label": "a"},
        {"text": "{(IZZ, -0.25), 0.7};", "label": "b"},
        {"text": "{(XXI, 1.0), (YYI, 0.5), 0.3};", "label": "a-dup"},
    ]

    def test_serial_stats_count_each_lookup_once(self, tmp_path):
        from repro.service import compile_batch

        cache = CompileCache(tmp_path)
        batch = compile_batch(self.SPECS, cache=cache, workers=1)
        assert batch.unique_jobs == 2 and batch.dispatched_jobs == 2
        assert cache.stats.misses == 2
        assert cache.stats.puts == 2
        rerun = compile_batch(self.SPECS, cache=cache, workers=1)
        assert all(e.cached or e.deduped for e in rerun.entries)
        assert cache.stats.misses == 2   # unchanged: no second-pass misses

    def test_worker_stores_are_merged_and_cleaned(self, tmp_path):
        from repro.service import compile_batch

        cache = CompileCache(tmp_path)
        batch = compile_batch(self.SPECS, cache=cache, workers=2)
        assert batch.merged_artifacts == batch.dispatched_jobs == 2
        assert not (cache.root / "workers").exists()
        # The shared store holds exactly the unique artifacts.
        assert len(list(cache.iter_fingerprints())) == 2

    #: Distinct single-block programs: every job is a unique cache miss.
    MANY_SPECS = [
        {"text": f"{{(XZY, 1.0), 0.{i + 1}}};", "label": f"u{i}"}
        for i in range(5)
    ]

    def test_merge_reports_worker_eviction_stats_exactly(self, tmp_path):
        """Regression: the merge used to throw the workers' cache counters
        away, silently dropping the evictions a full LRU front produced
        mid-run.  With a front of 1 every worker put beyond its first
        evicts, so the aggregate must show puts == dispatched and at least
        (dispatched - workers) evictions."""
        from repro.service import compile_batch

        cache = CompileCache(tmp_path)
        batch = compile_batch(
            self.MANY_SPECS, cache=cache, workers=2, worker_memory_entries=1,
        )
        assert batch.dispatched_jobs == 5
        assert batch.worker_stats is not None
        assert batch.worker_stats["puts"] == 5
        assert (batch.dispatched_jobs - 2 <= batch.worker_stats["evictions"]
                <= batch.dispatched_jobs)
        assert batch.summary()["worker_cache"] == batch.worker_stats
        assert sum(batch.per_worker.values()) == 5

    def test_shared_worker_store_folds_stats_and_skips_merge(self, tmp_path):
        """worker_store="shared": workers write the shared root directly;
        their puts surface in cache.stats exactly once (absorbed, not
        re-counted by a parent adopt) and nothing needs merging."""
        from repro.service import compile_batch

        cache = CompileCache(tmp_path)
        batch = compile_batch(
            self.MANY_SPECS, cache=cache, workers=2, worker_store="shared",
        )
        assert batch.merged_artifacts == 0
        assert not (cache.root / "workers").exists()
        assert cache.stats.puts == 5          # worker puts, absorbed once
        assert cache.stats.misses == 5 * 2    # parent probe + worker probe
        assert len(list(cache.iter_fingerprints())) == 5
        # Artifacts are hot in the parent front without a second disk write.
        rerun = compile_batch(self.MANY_SPECS, cache=cache, workers=1)
        assert all(entry.cached for entry in rerun.entries)
        assert cache.stats.memory_hits == 5

    def test_worker_store_validation(self, tmp_path):
        from repro.service import compile_batch

        with pytest.raises(ValueError):
            compile_batch(self.SPECS, cache=CompileCache(tmp_path),
                          workers=2, worker_store="psychic")
