"""Tests for the Pauli IR: blocks, programs, parser, semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import PauliBlock, PauliProgram, WeightedString, format_program, parse_program
from repro.pauli import PauliString


def make_block(*labels, parameter=1.0, weights=None):
    weights = weights or [1.0] * len(labels)
    return PauliBlock(list(zip(labels, weights)), parameter=parameter)


class TestBlock:
    def test_accepts_mixed_entry_forms(self):
        block = PauliBlock(
            ["XZ", PauliString.from_label("ZZ"), ("YY", 0.5),
             WeightedString(PauliString.from_label("XX"), -1.0)],
            parameter=0.3,
        )
        assert block.num_strings == 4
        assert block.parameter == 0.3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PauliBlock([], parameter=1.0)

    def test_rejects_mixed_sizes(self):
        with pytest.raises(ValueError):
            PauliBlock(["XX", "X"])

    def test_active_qubits_and_length(self):
        block = make_block("IXY", "IZI")
        assert block.active_qubits == (0, 1)
        assert block.active_length == 2

    def test_core_qubits(self):
        block = make_block("XXI", "IXX")
        assert block.core_qubits == (1,)

    def test_mutually_commuting(self):
        assert make_block("IIXY", "IIYX").is_mutually_commuting()
        assert not make_block("XII", "ZII").is_mutually_commuting()

    def test_lexicographic_sort(self):
        block = make_block("ZZ", "XX", "YY")
        ordered = block.sorted_lexicographically()
        assert [ws.string.label for ws in ordered] == ["XX", "YY", "ZZ"]

    def test_block_lex_key_uses_first_sorted_string(self):
        block = make_block("ZZ", "XX")
        assert block.lex_key() == PauliString.from_label("XX").lex_key()

    def test_lex_key_is_min_over_unsorted_strings(self):
        # The key is the *minimum* over strings, so an unsorted block ranks
        # exactly like its sorted self (its first string, "XY", is not the
        # representative).
        unsorted = make_block("XY", "ZZ", "XX")
        assert unsorted.lex_key() == PauliString.from_label("XX").lex_key()
        assert unsorted.lex_key() == unsorted.sorted_lexicographically().lex_key()

    def test_view_matches_scalar_queries(self):
        block = make_block("XXI", "IXX", "IZI")
        view = block.view
        assert view.active_qubits == block.active_qubits == (0, 1, 2)
        assert view.active_length == 3
        assert view.core_qubits == block.core_qubits == (1,)
        assert view.depth_estimate == block.depth_estimate() == 3 + 3 + 1
        assert view.lex_key == block.lex_key()

    def test_view_is_cached(self):
        block = make_block("XXI")
        assert block.view is block.view

    def test_sorted_block_is_cached_and_idempotent(self):
        block = make_block("ZZ", "XX")
        once = block.sorted_lexicographically()
        assert block.sorted_lexicographically() is once
        assert once.sorted_lexicographically() is once

    def test_depth_estimate_grows_with_weight(self):
        small = make_block("IIZ")
        large = make_block("ZZZ")
        assert large.depth_estimate() > small.depth_estimate()

    def test_overlaps_qubits(self):
        a = make_block("XII")
        b = make_block("IIZ")
        c = make_block("XIZ")
        assert not a.overlaps_qubits(b)
        assert a.overlaps_qubits(c)


class TestProgram:
    def test_from_hamiltonian(self):
        prog = PauliProgram.from_hamiltonian([("XX", 0.5), ("ZZ", -1.0)], parameter=0.1)
        assert prog.num_blocks == 2
        assert prog.num_strings == 2
        assert prog.num_qubits == 2

    def test_rejects_mixed_qubit_counts(self):
        with pytest.raises(ValueError):
            PauliProgram([make_block("XX"), make_block("X")])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PauliProgram([])

    def test_semantics_sum(self):
        prog = PauliProgram.from_hamiltonian([("X", 2.0), ("Z", 1.0)], parameter=0.5)
        x = PauliString.from_label("X").to_matrix()
        z = PauliString.from_label("Z").to_matrix()
        assert np.allclose(prog.to_hamiltonian(), 0.5 * (2 * x + z))

    def test_block_reorder_preserves_semantics(self):
        prog = PauliProgram([make_block("XY", parameter=0.3), make_block("ZZ", parameter=0.7)])
        swapped = prog.with_blocks(list(reversed(prog.blocks)))
        assert np.allclose(prog.to_hamiltonian(), swapped.to_hamiltonian())
        assert prog.multiset_of_terms() == swapped.multiset_of_terms()

    def test_multiset_counts_duplicates(self):
        prog = PauliProgram([make_block("XX"), make_block("XX")])
        key = (PauliString.from_label("XX"), 1.0)
        assert prog.multiset_of_terms()[key] == 2


class TestParser:
    def test_parse_simple(self):
        prog = parse_program("{(IIXY, 0.5), (IIYX, -0.5), 0.2};")
        assert prog.num_blocks == 1
        block = prog[0]
        assert block.parameter == 0.2
        assert [ws.string.label for ws in block] == ["IIXY", "IIYX"]
        assert [ws.weight for ws in block] == [0.5, -0.5]

    def test_parse_symbolic_parameter(self):
        prog = parse_program("{(XX, 1.0), theta};", parameters={"theta": 0.7})
        assert prog[0].parameter == 0.7

    def test_parse_unknown_symbol_defaults_to_one(self):
        prog = parse_program("{(XX, 1.0), gamma};")
        assert prog[0].parameter == 1.0

    def test_round_trip(self):
        text = "{(IXZ, 0.5), (ZZI, -1), 0.25};\n{(XXX, 1), 2};"
        prog = parse_program(text)
        again = parse_program(format_program(prog))
        assert prog.multiset_of_terms() == again.multiset_of_terms()

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_program("no blocks here")

    def test_parse_rejects_parameterless_block(self):
        with pytest.raises(ValueError):
            parse_program("{(XX, 1.0)};")


@given(
    st.lists(
        st.tuples(st.text(alphabet="IXYZ", min_size=3, max_size=3),
                  st.floats(-2, 2, allow_nan=False)),
        min_size=1,
        max_size=5,
    ),
    st.randoms(),
)
@settings(max_examples=40, deadline=None)
def test_permutation_invariance_property(terms, rng):
    prog = PauliProgram.from_hamiltonian(terms, parameter=0.5)
    blocks = list(prog.blocks)
    rng.shuffle(blocks)
    shuffled = prog.with_blocks(blocks)
    assert prog.multiset_of_terms() == shuffled.multiset_of_terms()
    assert np.allclose(prog.to_hamiltonian(), shuffled.to_hamiltonian())
