"""QASM round-trip property tests over the full gate zoo.

``to_qasm`` expands ``yh`` into the exact three-line ``rx(pi/4); z;
rx(-pi/4)`` sequence, so a round-tripped circuit is not gate-for-gate
identical — the contract is *unitary equivalence*, asserted here for every
gate the library can emit.  The safe arithmetic angle parser (which
replaced the sanitized ``eval``) is exercised both through the round trip
and directly.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    Gate,
    QuantumCircuit,
    circuit_unitary,
    equivalent_up_to_global_phase,
    from_qasm,
    to_qasm,
)
from repro.circuit.qasm import _eval_angle

GATE_ZOO_1Q = ["h", "x", "y", "z", "s", "sdg", "yh"]
GATE_ZOO_ROT = ["rx", "ry", "rz"]
GATE_ZOO_2Q = ["cx", "cz", "swap"]


@st.composite
def zoo_circuits(draw, max_qubits=3, max_gates=12):
    n = draw(st.integers(1, max_qubits))
    qc = QuantumCircuit(n)
    for _ in range(draw(st.integers(0, max_gates))):
        kind = draw(st.sampled_from(GATE_ZOO_1Q + GATE_ZOO_ROT + GATE_ZOO_2Q))
        a = draw(st.integers(0, n - 1))
        if kind in GATE_ZOO_2Q:
            if n == 1:
                continue
            b = draw(st.integers(0, n - 1).filter(lambda x: x != a))
            qc.append(Gate(kind, (a, b)))
        elif kind in GATE_ZOO_ROT:
            angle = draw(st.floats(-2 * math.pi, 2 * math.pi,
                                   allow_nan=False, allow_infinity=False))
            qc.append(Gate(kind, (a,), (angle,)))
        else:
            qc.append(Gate(kind, (a,)))
    return qc


@given(zoo_circuits())
@settings(max_examples=60, deadline=None)
def test_roundtrip_unitary_equivalence(qc):
    back = from_qasm(to_qasm(qc))
    assert back.num_qubits == qc.num_qubits
    assert equivalent_up_to_global_phase(
        circuit_unitary(back), circuit_unitary(qc)
    )


def test_every_zoo_gate_roundtrips_individually():
    for name in GATE_ZOO_1Q:
        qc = QuantumCircuit(1)
        qc.append(Gate(name, (0,)))
        back = from_qasm(to_qasm(qc))
        assert equivalent_up_to_global_phase(
            circuit_unitary(back), circuit_unitary(qc)
        ), name
    for name in GATE_ZOO_ROT:
        qc = QuantumCircuit(1)
        qc.append(Gate(name, (0,), (0.7321,)))
        back = from_qasm(to_qasm(qc))
        assert equivalent_up_to_global_phase(
            circuit_unitary(back), circuit_unitary(qc)
        ), name
    for name in GATE_ZOO_2Q:
        qc = QuantumCircuit(2)
        qc.append(Gate(name, (0, 1)))
        back = from_qasm(to_qasm(qc))
        assert equivalent_up_to_global_phase(
            circuit_unitary(back), circuit_unitary(qc)
        ), name


def test_yh_expands_to_three_lines():
    qc = QuantumCircuit(1)
    qc.yh(0)
    text = to_qasm(qc)
    gate_lines = [line for line in text.splitlines()
                  if line and not line.startswith(("OPENQASM", "include", "qreg"))]
    assert gate_lines == ["rx(pi/4) q[0];", "z q[0];", "rx(-pi/4) q[0];"]
    back = from_qasm(text)
    assert [g.name for g in back] == ["rx", "z", "rx"]
    assert equivalent_up_to_global_phase(
        circuit_unitary(back), circuit_unitary(qc)
    )


class TestAngleParser:
    @pytest.mark.parametrize("expression,value", [
        ("pi", math.pi),
        ("pi/2", math.pi / 2),
        ("-pi/4", -math.pi / 4),
        ("3*pi/4", 3 * math.pi / 4),
        ("0.25", 0.25),
        ("2.5e-3", 2.5e-3),
        ("1E2", 100.0),
        ("-(pi/2 + 0.25)", -(math.pi / 2 + 0.25)),
        ("(1+2)*pi", 3 * math.pi),
        ("+pi", math.pi),
        ("--1", 1.0),
        (".5", 0.5),
    ])
    def test_accepted_grammar(self, expression, value):
        assert _eval_angle(expression) == pytest.approx(value, abs=1e-15)

    @pytest.mark.parametrize("expression", [
        "", "foo", "1+", "(pi", "pi)", "1/0", "2**3", "import os",
        "__import__('os')", "1;2", "pi pi", "0x10",
    ])
    def test_rejected_with_value_error(self, expression):
        with pytest.raises(ValueError):
            _eval_angle(expression)

    def test_roundtrip_precision(self):
        qc = QuantumCircuit(1)
        qc.rz(0.123456789012, 0)
        back = from_qasm(to_qasm(qc))
        assert back[0].params[0] == pytest.approx(0.123456789012, abs=1e-11)
