"""Tests for the device registry and coupling-map edge cases.

Covers the Issue 8 satellites: the silent-disconnection bug
(``CouplingMap.distance()`` used to serve the ``2n`` init sentinel for
disconnected pairs), the falsy-zero ``num_qubits=0`` bug, and the
:mod:`repro.transpile.devices` registry the noise-aware compile path
targets.
"""

import json

import pytest

from repro.noise.model import NoiseModel
from repro.transpile import (
    CouplingMap,
    DeviceSpec,
    device_names,
    get_device,
    heavy_hex,
    linear,
    load_device,
    melbourne,
)


class TestCouplingValidation:
    def test_explicit_zero_qubits_rejected(self):
        # The historical `if num_qubits:` treated an explicit 0 as "infer".
        with pytest.raises(ValueError, match="num_qubits"):
            CouplingMap([], num_qubits=0)

    def test_negative_qubits_rejected(self):
        with pytest.raises(ValueError, match="num_qubits"):
            CouplingMap([(0, 1)], num_qubits=-3)

    def test_empty_map_needs_explicit_count(self):
        with pytest.raises(ValueError, match="edges or an explicit"):
            CouplingMap([])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            CouplingMap([(2, 2)], num_qubits=3)

    def test_negative_endpoint_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            CouplingMap([(-1, 0)], num_qubits=2)

    def test_endpoints_beyond_count_rejected(self):
        with pytest.raises(ValueError, match="num_qubits is 2"):
            CouplingMap([(0, 9)], num_qubits=2)

    def test_isolated_trailing_qubits_allowed_but_not_fully_connected(self):
        cmap = CouplingMap([(0, 1)], num_qubits=3)
        assert cmap.num_qubits == 3
        assert not cmap.is_fully_connected
        assert cmap.distance(0, 1) == 1


class TestDisconnection:
    def test_trimmed_heavy_hex_is_disconnected(self):
        # trim=1 on a 2x4 lattice removes the only bridge qubit, splitting
        # the two rows — the regression that motivated the distance() fix.
        cmap = heavy_hex(rows=2, row_len=4, trim=1)
        assert not cmap.is_fully_connected

    def test_untrimmed_heavy_hex_is_fully_connected(self):
        assert heavy_hex(rows=2, row_len=4).is_fully_connected

    def test_distance_raises_on_disconnected_pair(self):
        cmap = heavy_hex(rows=2, row_len=4, trim=1)
        # Qubits 0 and 4 sit in different rows with the bridge trimmed away.
        with pytest.raises(ValueError, match="disconnected"):
            cmap.distance(0, 4)

    def test_distance_still_served_within_component(self):
        cmap = heavy_hex(rows=2, row_len=4, trim=1)
        assert cmap.distance(0, 3) == 3
        assert cmap.distance(4, 7) == 3

    def test_distance_matrix_keeps_sentinel_for_disconnected(self):
        # Bulk consumers get the documented 2n placeholder and are expected
        # to gate on is_fully_connected themselves.
        cmap = CouplingMap([(0, 1)], num_qubits=3)
        assert cmap.distance_matrix()[0][2] == 2 * cmap.num_qubits


class TestDeviceSpec:
    def test_validates_missing_qubit_calibration(self):
        cmap = linear(3)
        model = NoiseModel(
            {0: 1e-3, 1: 1e-3},  # qubit 2 missing
            {(0, 1): 2e-2, (1, 2): 2e-2},
            {},
        )
        with pytest.raises(ValueError, match="qubit 2"):
            DeviceSpec("holey", cmap, model)

    def test_validates_missing_edge_calibration(self):
        cmap = linear(3)
        model = NoiseModel(
            {0: 1e-3, 1: 1e-3, 2: 1e-3},
            {(0, 1): 2e-2},  # edge (1, 2) missing
            {},
        )
        with pytest.raises(ValueError, match=r"edge \(1, 2\)"):
            DeviceSpec("holey", cmap, model)

    def test_snapshot_round_trip_is_exact(self):
        dev = get_device("melbourne-15")
        clone = DeviceSpec.from_snapshot(dev.to_snapshot())
        assert clone.name == dev.name
        assert clone.coupling.edges == dev.coupling.edges
        assert clone.coupling.num_qubits == dev.coupling.num_qubits
        assert clone.noise_model.two_qubit_error == dev.noise_model.two_qubit_error
        assert clone.noise_model.single_qubit_error == dev.noise_model.single_qubit_error
        assert clone.noise_model.readout_error == dev.noise_model.readout_error

    def test_load_device_from_json_file(self, tmp_path):
        dev = get_device("falcon-27")
        path = tmp_path / "falcon.json"
        path.write_text(json.dumps(dev.to_snapshot()))
        loaded = load_device(str(path))
        assert loaded.name == "falcon-27"
        assert loaded.edge_error() == dev.edge_error()


class TestRegistry:
    def test_fixed_names(self):
        names = device_names()
        assert set(names) >= {
            "melbourne-15", "falcon-27", "manhattan-65", "sycamore-30",
        }

    def test_fixed_entries_resolve(self):
        for name in device_names():
            dev = get_device(name)
            assert dev.name == name
            assert dev.coupling.is_fully_connected

    def test_melbourne_matches_topology_zoo(self):
        dev = get_device("melbourne-15")
        assert dev.coupling.edges == melbourne().edges

    def test_family_patterns(self):
        assert get_device("ion-trap-5").coupling.num_qubits == 5
        assert get_device("grid-2x3").coupling.num_qubits == 6
        assert get_device("ring-6").coupling.num_qubits == 6

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="melbourne-15"):
            get_device("no-such-device")

    def test_calibration_is_deterministic_per_name(self):
        a = get_device("melbourne-15")
        b = get_device("melbourne-15")
        assert a.noise_model.two_qubit_error == b.noise_model.two_qubit_error

    def test_different_devices_get_different_calibrations(self):
        # Same topology class, different names -> different seeded rates.
        a = get_device("ring-6").noise_model.two_qubit_error
        b = get_device("grid-2x3").noise_model.two_qubit_error
        assert set(a.values()) != set(b.values())

    def test_calibration_has_spread(self):
        rates = list(get_device("melbourne-15").noise_model.two_qubit_error.values())
        assert max(rates) > min(rates)
