"""Differential fuzzing of the whole compile pipeline.

Hypothesis generates random Pauli programs (mixed weights, angles, and
block shapes) and compiles them through both backends at every generic
``--opt-level``.  Three independent oracles check the cases:

* the **naive baseline** — the paper's one-string-at-a-time chain synthesis
  (:func:`repro.core.synthesis.pauli_rotation_gates`), applied to the
  compiler's emitted term order, must be statevector-equivalent to the
  compiled circuit at every opt level (programs up to 10 qubits, where the
  dense simulation stays cheap);
* the **PR-2 reference engine** — the seed peephole/router implementations
  kept in :mod:`repro.transpile.reference` must agree with the worklist
  engine on the same frontend emissions;
* the **Pauli-propagation verifier** (:mod:`repro.verify`) — cross-checked
  against the statevector oracle on every small case, and the *only*
  oracle for the paper-scale band: hypothesis-generated 17-30-qubit
  programs (backends x opt levels, > 100 cases per run) that no dense
  simulator could touch.

On top of the per-case unitary check, the emitted term multiset must equal
the program's IR multiset exactly (the scheduling licence), and the SC
backend's layout bookkeeping is folded into the oracle via permutation
matrices.

Falsifying examples found during development are committed to
``tests/corpora/differential_regressions.jsonl`` and replayed verbatim by
``test_regression_corpus`` — through the statevector oracles *and* the new
verifier — so they can never come back.
"""

import json
import os
from collections import Counter
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import layout_permutation
from repro.circuit import QuantumCircuit
from repro.circuit.statevector import simulate
from repro.core import compile_program
from repro.core.synthesis import pauli_rotation_gates
from repro.ir import PauliBlock, PauliProgram
from repro.pauli import PauliString
from repro.service import program_from_dict, program_to_dict
from repro.transpile import linear, optimize, route, transpile
from repro.transpile.reference import seed_optimize, seed_route
from repro.verify import verify_circuit, verify_result

CORPUS = Path(__file__).parent / "corpora" / "differential_regressions.jsonl"
OPT_LEVELS = (0, 1, 2, 3)

#: Statevector-oracle ceiling: 2^10 = 1024-dim states stay cheap.
MAX_QUBITS = 10
#: Paper-scale band checked by Pauli propagation only.
MIN_BIG_QUBITS, MAX_BIG_QUBITS = 17, 30
#: Case-count multiplier for extended hunts: the nightly CI job sets
#: ``REPRO_FUZZ_SCALE=5`` (~600 generated cases across the entry points
#: below) on top of the per-commit defaults.
FUZZ_SCALE = max(1, int(os.environ.get("REPRO_FUZZ_SCALE", "1")))


# ----------------------------------------------------------------------
# Program generator
# ----------------------------------------------------------------------

def _strings(draw, n, count):
    out = []
    for _ in range(count):
        codes = [draw(st.integers(0, 3)) for _ in range(n)]
        if all(c == 0 for c in codes):
            # Identity strings are pure global phase; force one operator so
            # every generated term exercises synthesis.
            codes[draw(st.integers(0, n - 1))] = draw(st.integers(1, 3))
        out.append(PauliString(codes))
    return out


_angles = st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False).filter(
    lambda x: abs(x) > 1e-9
)


@st.composite
def pauli_programs(draw, max_qubits=MAX_QUBITS, max_blocks=3, max_strings=3,
                   min_qubits=2):
    n = draw(st.integers(min_qubits, max_qubits))
    blocks = []
    for _ in range(draw(st.integers(1, max_blocks))):
        strings = _strings(draw, n, draw(st.integers(1, max_strings)))
        weights = [draw(_angles) for _ in strings]
        parameter = draw(_angles)
        blocks.append(PauliBlock(list(zip(strings, weights)), parameter=parameter))
    return PauliProgram(blocks, name="fuzz")


def _random_state(num_qubits, seed=23):
    rng = np.random.default_rng(seed)
    dim = 2 ** num_qubits
    state = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return state / np.linalg.norm(state)


def _states_close(a, b, atol=1e-8):
    """Statevector equality up to global phase."""
    inner = np.vdot(a, b)
    return np.isclose(abs(inner), 1.0, atol=atol)


def _naive_chain_circuit(terms, num_qubits):
    """The naive baseline: chain-synthesize ``exp(i c P)`` per term in order."""
    qc = QuantumCircuit(num_qubits)
    for string, coefficient in terms:
        qc.extend(pauli_rotation_gates(string, -2.0 * coefficient))
    return qc


def _term_multiset(terms):
    return Counter((string, coefficient) for string, coefficient in terms)


# ----------------------------------------------------------------------
# Differential properties
# ----------------------------------------------------------------------

def check_ft_case(program):
    """FT backend vs the naive baseline, at every opt level."""
    result = compile_program(program, backend="ft", run_peephole=False)
    assert _term_multiset(result.emitted_terms) == Counter(
        {k: v for k, v in program.multiset_of_terms().items()}
    ), "scheduling changed the emitted term multiset"

    # Third oracle: Pauli propagation must agree with the statevector
    # verdict on every small case (the two share no code path).
    verify_result(program, result).raise_if_failed()

    n = program.num_qubits
    state = _random_state(n)
    reference = simulate(_naive_chain_circuit(result.emitted_terms, n), state)
    for level in OPT_LEVELS:
        compiled = transpile(result.circuit, optimization_level=level)
        assert _states_close(simulate(compiled, state), reference), (
            f"ft/opt-level {level} diverged from the naive baseline"
        )
        verify_circuit(compiled, result.emitted_terms).raise_if_failed()


def check_sc_case(program):
    """SC backend (linear coupling) vs the naive baseline, every opt level.

    The oracle folds the initial/final layouts in:
    ``circuit == S_final . U(emitted) . S_init^dagger`` on a random state.
    """
    n = program.num_qubits
    coupling = linear(n)
    result = compile_program(
        program, backend="sc", coupling=coupling, run_peephole=False
    )
    assert _term_multiset(result.emitted_terms) == Counter(
        {k: v for k, v in program.multiset_of_terms().items()}
    ), "SC scheduling changed the emitted term multiset"

    verify_result(program, result).raise_if_failed()

    state = _random_state(n)
    s_init = layout_permutation(result.initial_layout, n)
    s_final = layout_permutation(result.final_layout, n)
    logical = s_init.conj().T @ state
    reference = s_final @ simulate(
        _naive_chain_circuit(result.emitted_terms, n), logical
    )
    for level in OPT_LEVELS:
        compiled = transpile(result.circuit, optimization_level=level)
        assert _states_close(simulate(compiled, state), reference), (
            f"sc/opt-level {level} diverged from the naive baseline"
        )
        verify_circuit(
            compiled,
            result.emitted_terms,
            initial_layout=result.initial_layout,
            final_layout=result.final_layout,
        ).raise_if_failed()


def check_reference_engine_case(program):
    """PR-2 oracle: worklist optimize vs seed optimize, router identity."""
    result = compile_program(program, backend="ft", run_peephole=False)
    emission = result.circuit
    n = program.num_qubits

    seed_out = seed_optimize(emission)
    tape_out = optimize(emission)
    assert len(seed_out) == len(tape_out)
    assert seed_out.count_ops() == tape_out.count_ops()
    state = _random_state(n)
    assert _states_close(simulate(seed_out, state), simulate(tape_out, state)), (
        "worklist optimize diverged from the seed engine"
    )

    coupling = linear(n)
    seed_routed, _, _, seed_swaps = seed_route(seed_out, coupling)
    tape_result = route(seed_out, coupling)
    assert list(seed_routed.gates) == list(tape_result.circuit.gates), (
        "incremental router diverged from the seed router"
    )
    assert seed_swaps == tape_result.swap_count


# ----------------------------------------------------------------------
# Paper-scale band: Pauli propagation is the only oracle
# ----------------------------------------------------------------------

def check_big_ft_case(program):
    """FT at 17-30 qubits: verifier-only, every opt level (5 cases)."""
    result = compile_program(program, backend="ft")
    verify_result(program, result).raise_if_failed()
    for level in OPT_LEVELS:
        compiled = transpile(result.circuit, optimization_level=level)
        verify_circuit(compiled, result.emitted_terms).raise_if_failed()


def check_big_sc_case(program):
    """SC (linear coupling, persistent swaps) at 17-30 qubits (5 cases)."""
    result = compile_program(
        program, backend="sc", coupling=linear(program.num_qubits)
    )
    verify_result(program, result).raise_if_failed()
    for level in OPT_LEVELS:
        compiled = transpile(result.circuit, optimization_level=level)
        verify_circuit(
            compiled,
            result.emitted_terms,
            initial_layout=result.initial_layout,
            final_layout=result.final_layout,
        ).raise_if_failed()


# ----------------------------------------------------------------------
# Fuzz entry points (>= 200 statevector program/backend/opt-level cases:
# 40 x 4 ft + 25 x 4 sc = 260, plus 30 reference-engine cases, plus
# >= 125 paper-scale cases above 16 qubits: (15 ft + 10 sc) x 5 checks)
# ----------------------------------------------------------------------

@given(pauli_programs())
@settings(max_examples=40 * FUZZ_SCALE, deadline=None)
def test_ft_differential_fuzz(program):
    check_ft_case(program)


@given(pauli_programs(max_qubits=6))
@settings(max_examples=25 * FUZZ_SCALE, deadline=None)
def test_sc_differential_fuzz(program):
    check_sc_case(program)


@given(pauli_programs(max_qubits=6))
@settings(max_examples=30 * FUZZ_SCALE, deadline=None)
def test_reference_engine_differential_fuzz(program):
    check_reference_engine_case(program)


@given(pauli_programs(min_qubits=MIN_BIG_QUBITS, max_qubits=MAX_BIG_QUBITS))
@settings(max_examples=15 * FUZZ_SCALE, deadline=None)
def test_big_ft_pauli_propagation_fuzz(program):
    check_big_ft_case(program)


@given(pauli_programs(min_qubits=MIN_BIG_QUBITS, max_qubits=MAX_BIG_QUBITS))
@settings(max_examples=10 * FUZZ_SCALE, deadline=None)
def test_big_sc_pauli_propagation_fuzz(program):
    check_big_sc_case(program)


# ----------------------------------------------------------------------
# Regression corpus replay
# ----------------------------------------------------------------------

def _corpus_cases():
    cases = []
    if CORPUS.exists():
        for line in CORPUS.read_text().splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                cases.append(json.loads(line))
    return cases


_CHECKS = {
    "ft": check_ft_case,
    "sc": check_sc_case,
    "reference": check_reference_engine_case,
}


@pytest.mark.parametrize(
    "case", _corpus_cases(),
    ids=lambda case: case.get("id", "case"),
)
def test_regression_corpus(case):
    program = program_from_dict(case["program"])
    _CHECKS[case["backend"]](program)


@pytest.mark.parametrize(
    "case", _corpus_cases(),
    ids=lambda case: case.get("id", "case"),
)
def test_regression_corpus_through_pauli_propagation(case):
    """Replay every committed falsifier through the new oracle as well."""
    program = program_from_dict(case["program"])
    result = compile_program(program, backend="ft")
    verify_result(program, result).raise_if_failed()
    if case["backend"] == "sc":
        sc = compile_program(
            program, backend="sc", coupling=linear(program.num_qubits)
        )
        verify_result(program, sc).raise_if_failed()


@given(pauli_programs())
@settings(max_examples=20, deadline=None)
def test_corpus_format_round_trips_the_generator(program):
    """The corpus format must express anything the generator can emit."""
    assert program_from_dict(program_to_dict(program)).multiset_of_terms() == \
        program.multiset_of_terms()
