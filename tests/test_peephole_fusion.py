"""Unit tests for the SWAP/CNOT fusion peephole pass."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Gate, QuantumCircuit, circuit_unitary, equivalent_up_to_global_phase
from repro.transpile import fuse_swap_cx, linear, optimize, validate_routed


class TestFusionRules:
    @pytest.mark.parametrize("first,second", [
        ("swap", (0, 1)), ("swap", (1, 0)),
    ])
    def test_swap_then_cx_both_orientations(self, first, second):
        for cx_pair in [(0, 1), (1, 0)]:
            qc = QuantumCircuit(2)
            qc.swap(*second)
            qc.cx(*cx_pair)
            out, fused = fuse_swap_cx(qc)
            assert fused == 1
            assert out.count_ops() == {"cx": 2}
            assert equivalent_up_to_global_phase(
                circuit_unitary(out), circuit_unitary(qc)
            )

    def test_cx_then_swap(self):
        for cx_pair in [(0, 1), (1, 0)]:
            qc = QuantumCircuit(2)
            qc.cx(*cx_pair)
            qc.swap(0, 1)
            out, fused = fuse_swap_cx(qc)
            assert fused == 1
            assert out.cnot_count == 2
            assert equivalent_up_to_global_phase(
                circuit_unitary(out), circuit_unitary(qc)
            )

    def test_no_fusion_across_interleaved_gate(self):
        qc = QuantumCircuit(2)
        qc.swap(0, 1).h(0).cx(0, 1)
        out, fused = fuse_swap_cx(qc)
        assert fused == 0

    def test_no_fusion_on_different_pairs(self):
        qc = QuantumCircuit(3)
        qc.swap(0, 1).cx(1, 2)
        out, fused = fuse_swap_cx(qc)
        assert fused == 0

    def test_fusion_reduces_hardware_cnots(self):
        qc = QuantumCircuit(2)
        qc.swap(0, 1).cx(0, 1)
        out, _ = fuse_swap_cx(qc)
        assert out.cnot_count == 2
        assert qc.cnot_count == 4

    def test_fused_output_stays_routable(self):
        qc = QuantumCircuit(3)
        qc.swap(0, 1).cx(0, 1).swap(1, 2).cx(2, 1)
        out = optimize(qc)
        validate_routed(out, linear(3))

    def test_chain_of_fusions(self):
        # swap cx swap cx -> repeated fusion shrinks everything.
        qc = QuantumCircuit(2)
        qc.swap(0, 1).cx(0, 1).swap(0, 1).cx(0, 1)
        out = optimize(qc)
        assert out.cnot_count < qc.cnot_count
        assert equivalent_up_to_global_phase(
            circuit_unitary(out), circuit_unitary(qc)
        )


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_fusion_preserves_unitary_on_random_swap_cx_circuits(data):
    qc = QuantumCircuit(3)
    num_gates = data.draw(st.integers(2, 10))
    for _ in range(num_gates):
        kind = data.draw(st.sampled_from(["swap", "cx", "rz"]))
        a = data.draw(st.integers(0, 2))
        b = data.draw(st.integers(0, 2).filter(lambda x: x != a))
        if kind == "rz":
            qc.rz(data.draw(st.floats(-2, 2, allow_nan=False)), a)
        else:
            qc.append(Gate(kind, (a, b)))
    out, _ = fuse_swap_cx(qc)
    assert equivalent_up_to_global_phase(circuit_unitary(out), circuit_unitary(qc))
    assert out.cnot_count <= qc.cnot_count
