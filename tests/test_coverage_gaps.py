"""Targeted tests for less-travelled paths across the library."""

import numpy as np
import pytest

from repro.circuit import Gate, QuantumCircuit, circuit_unitary, simulate
from repro.cli import main
from repro.core import SCSynthesizer, sc_compile
from repro.core.scheduling import do_schedule
from repro.ir import PauliBlock, PauliProgram
from repro.pauli import PauliString
from repro.transpile import CouplingMap, Layout, grid, linear, ring


class TestLayoutExtras:
    def test_from_physical_list(self):
        layout = Layout.from_physical_list([4, 2, 0])
        assert layout.physical(0) == 4
        assert layout.logical(2) == 1

    def test_copy_is_independent(self):
        layout = Layout({0: 0, 1: 1})
        other = layout.copy()
        other.swap_physical(0, 1)
        assert layout.physical(0) == 0

    def test_eq(self):
        assert Layout({0: 1}) == Layout({0: 1})
        assert Layout({0: 1}) != Layout({0: 2})


class TestCouplingExtras:
    def test_weighted_shortest_path_prefers_cheap_edges(self):
        # Triangle where the direct edge is expensive.
        cmap = CouplingMap([(0, 1), (1, 2), (0, 2)])
        costs = {(0, 2): 10.0, (0, 1): 1.0, (1, 2): 1.0}

        def weight(u, v):
            return costs.get((u, v), costs.get((v, u), 1.0))

        path = cmap.shortest_path(0, 2, weight=weight)
        assert path == [0, 1, 2]

    def test_subgraph_connectivity(self):
        cmap = linear(5)
        assert cmap.subgraph_is_connected([1, 2, 3])
        assert not cmap.subgraph_is_connected([0, 2])

    def test_distance_symmetry(self):
        cmap = grid(3, 3)
        for a in range(9):
            for b in range(9):
                assert cmap.distance(a, b) == cmap.distance(b, a)


class TestGateExtras:
    def test_repr_with_params(self):
        text = repr(Gate("rz", (1,), (0.5,)))
        assert "rz" in text and "0.5" in text

    def test_cz_simulation_symmetry(self):
        qc1 = QuantumCircuit(2)
        qc1.h(0).h(1).cz(0, 1)
        qc2 = QuantumCircuit(2)
        qc2.h(0).h(1).cz(1, 0)
        assert np.allclose(simulate(qc1), simulate(qc2))

    def test_to_text(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        lines = qc.to_text().splitlines()
        assert len(lines) == 2

    def test_truncate_guard(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        with pytest.raises(ValueError):
            qc.truncate(-1)


class TestSCBackendEdgeCases:
    def test_edge_error_steers_gather(self):
        # Square ring 0-1-2-3 with actives at opposite corners 0 and 2:
        # gather must route around the poisoned side (via 3, not via 1).
        cmap = ring(4)
        expensive_via_1 = {(0, 1): 9.0, (1, 2): 9.0}
        synthesizer = SCSynthesizer(cmap, edge_error=expensive_via_1)
        synthesizer.layout = Layout({q: q for q in range(4)})
        from repro.circuit import QuantumCircuit as QC
        synthesizer.circuit = QC(4)
        synthesizer.transition_swaps = 0
        active = {0, 2}
        synthesizer._gather(active, frozenset())
        swaps = [g for g in synthesizer.circuit if g.name == "swap"]
        assert swaps, "corners must require movement"
        for gate in swaps:
            assert set(gate.qubits) not in ({0, 1}, {1, 2}), (
                "gather ignored the error-weighted path"
            )

    def test_parallel_block_rollback_defers(self):
        # Two blocks on overlapping qubit regions of a tight line: the
        # second cannot run in parallel and must still compile (deferred).
        program = PauliProgram([
            PauliBlock(["ZZZZ"], 1.0),   # primary spans everything
            PauliBlock(["XIIX"], 1.0),   # needs the same wires
        ])
        result = sc_compile(program, linear(4))
        labels = sorted(s.label for s, _ in result.emitted_terms)
        assert labels == ["XIIX", "ZZZZ"]

    def test_transition_swaps_counted(self):
        program = PauliProgram([PauliBlock(["ZIIZ"], 1.0), PauliBlock(["IZZI"], 1.0)])
        cmap = linear(4)
        synthesizer = SCSynthesizer(cmap)
        result = synthesizer.run(do_schedule(program), 4)
        assert result.transition_swaps == result.circuit.count_ops().get("swap", 0)

    def test_single_string_single_qubit_program(self):
        program = PauliProgram([PauliBlock(["IXI"], 0.5)])
        result = sc_compile(program, linear(3))
        ops = result.circuit.count_ops()
        assert ops.get("swap", 0) == 0
        assert ops["rz"] == 1


class TestCLIExtra:
    def test_table3_cli(self, capsys):
        assert main(["table3", "REG-20-4", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "qaoa_compiler" in out

    def test_compile_with_scheduler_flag(self, capsys):
        assert main(["compile", "Heisen-1D", "--scheduler", "do"]) == 0
        assert "Depth" in capsys.readouterr().out

    def test_table1_cli(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Ising-1D" in out and "NaCl" in out
