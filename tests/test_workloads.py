"""Tests for the workload generators against Table 1 ground truth."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import PauliProgram
from repro.pauli import PauliString
from repro.workloads import (
    BENCHMARKS,
    annihilation,
    benchmark_names,
    best_maxcut_bitstrings,
    build_benchmark,
    creation,
    excitation_terms,
    heisenberg_program,
    ising_program,
    lattice_edges,
    maxcut_program,
    maxcut_value,
    molecule_program,
    naive_gate_counts,
    random_graph,
    random_hamiltonian_program,
    regular_graph,
    tsp_program,
    uccsd_program,
)
from repro.workloads.fermion import PauliSum


class TestFermionSubstrate:
    def test_annihilation_matrix(self):
        # a_0 on 1 qubit = |0><1| = (X + iY)/2.
        op = annihilation(1, 0)
        dense = sum(c * s.to_matrix() for s, c in op.terms.items())
        assert np.allclose(dense, [[0, 1], [0, 0]])

    def test_creation_is_adjoint(self):
        op = creation(2, 1)
        dense = sum(c * s.to_matrix() for s, c in op.terms.items())
        a = annihilation(2, 1)
        dense_a = sum(c * s.to_matrix() for s, c in a.terms.items())
        assert np.allclose(dense, dense_a.conj().T)

    def test_anticommutation(self):
        # {a_0, a†_0} = 1, {a_0, a_1} = 0 (with JW strings).
        n = 3
        a0 = annihilation(n, 0)
        a0d = creation(n, 0)
        anti = (a0 @ a0d) + (a0d @ a0)
        dense = sum(c * s.to_matrix() for s, c in anti.simplified().terms.items())
        assert np.allclose(dense, np.eye(2 ** n))
        a1 = annihilation(n, 1)
        anti01 = ((a0 @ a1) + (a1 @ a0)).simplified()
        assert not anti01.terms

    def test_excitation_terms_hermitian_generator(self):
        terms = excitation_terms(4, [0], [2])
        assert len(terms) == 2  # single excitation -> 2 strings
        dense = sum(w * s.to_matrix() for s, w in terms)
        assert np.allclose(dense, dense.conj().T)

    def test_double_excitation_has_8_strings(self):
        terms = excitation_terms(4, [0, 1], [2, 3])
        assert len(terms) == 8
        for string, _ in terms:
            xy = sum(1 for q in string.support if string[q] in "XY")
            assert xy == 4

    def test_excitation_exponential_is_unitary(self):
        terms = excitation_terms(4, [0, 1], [2, 3])
        generator = sum(w * s.to_matrix() for s, w in terms)
        u = scipy.linalg.expm(1j * 0.3 * generator)
        assert np.allclose(u @ u.conj().T, np.eye(16))

    def test_pauli_sum_algebra(self):
        x = PauliSum.of(PauliString.from_label("X"), 2.0)
        y = PauliSum.of(PauliString.from_label("Y"), 1.0)
        z = x @ y  # 2 XY = 2iZ
        assert z.terms[PauliString.from_label("Z")] == 2j

    def test_real_weight_rejection(self):
        s = PauliSum.of(PauliString.from_label("X"), 1j)
        with pytest.raises(ValueError):
            s.real_weighted_strings()


class TestUCCSD:
    def test_paper_string_count_uccsd8(self):
        # Table 1: UCCSD-8 has 144 Pauli strings (18 doubles x 8).
        prog = uccsd_program(8)
        assert prog.num_strings == 144

    def test_blocks_share_parameters_and_commute(self):
        prog = uccsd_program(8)
        for block in prog:
            assert block.is_mutually_commuting()

    def test_singles_add_two_string_blocks(self):
        prog = uccsd_program(8, include_singles=True)
        sizes = sorted({block.num_strings for block in prog})
        assert sizes == [2, 8]

    def test_custom_parameters(self):
        prog = uccsd_program(8, parameters=[0.1] * 18)
        assert all(block.parameter == 0.1 for block in prog)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            uccsd_program(6)


class TestQAOAWorkloads:
    def test_regular_graph_edge_count(self):
        prog = maxcut_program(regular_graph(20, 4))
        assert prog.num_strings == 40  # Table 1: REG-20-4 -> 40 strings

    def test_rand_graph_seeded(self):
        g1 = random_graph(20, 0.3, seed=7)
        g2 = random_graph(20, 0.3, seed=7)
        assert sorted(g1.edges()) == sorted(g2.edges())

    def test_single_block_shares_gamma(self):
        prog = maxcut_program(regular_graph(10, 4), gamma=0.8)
        assert prog.num_blocks == 1
        assert prog[0].parameter == 0.8

    def test_tsp_counts_match_table1(self):
        assert tsp_program(4).num_strings == 112
        assert tsp_program(5).num_strings == 225

    def test_tsp_terms_are_z_only(self):
        prog = tsp_program(3)
        for ws, _ in prog.all_weighted_strings():
            assert all(ws.string[q] == "Z" for q in ws.string.support)

    def test_maxcut_value(self):
        import networkx as nx
        g = nx.Graph([(0, 1), (1, 2)])
        assert maxcut_value(g, 0b010) == 2
        assert maxcut_value(g, 0b000) == 0

    def test_best_maxcut(self):
        import networkx as nx
        g = nx.Graph([(0, 1), (1, 2), (0, 2)])  # triangle: best cut = 2
        best, winners = best_maxcut_bitstrings(g)
        assert best == 2
        assert len(winners) == 6


class TestLattices:
    def test_chain_edges(self):
        assert lattice_edges([4]) == [(0, 1), (1, 2), (2, 3)]

    def test_grid_edge_count(self):
        # 5x6 grid: 5*5 + 4*6 = 49 edges (Table 1 Ising-2D -> 49 strings).
        assert len(lattice_edges([5, 6])) == 49

    def test_3d_edge_count(self):
        # 2x3x5 block: Table 1 Ising-3D row lists 59 strings.
        edges = lattice_edges([2, 3, 5])
        assert len(edges) == 2 * 3 * 4 + 2 * 2 * 5 + 1 * 3 * 5

    def test_ising_1d_counts_match_table1(self):
        prog = ising_program([30])
        assert prog.num_qubits == 30
        assert prog.num_strings == 29
        cnots, singles = naive_gate_counts(prog)
        assert (cnots, singles) == (58, 29)  # Table 1 row Ising-1D

    def test_heisenberg_1d_counts_match_table1(self):
        prog = heisenberg_program([30])
        assert prog.num_strings == 87
        cnots, singles = naive_gate_counts(prog)
        assert (cnots, singles) == (174, 319)  # Table 1 row Heisen-1D

    def test_heisenberg_2d_counts_match_table1(self):
        prog = heisenberg_program([5, 6])
        assert prog.num_strings == 147
        cnots, singles = naive_gate_counts(prog)
        assert (cnots, singles) == (294, 539)  # Table 1 row Heisen-2D


class TestRandomHamiltonian:
    def test_paper_recipe_count(self):
        prog = random_hamiltonian_program(10)
        assert prog.num_strings == 5 * 10 * 10

    def test_scaled_count(self):
        prog = random_hamiltonian_program(30, num_strings=50)
        assert prog.num_strings == 50

    def test_deterministic(self):
        a = random_hamiltonian_program(8, num_strings=20, seed=5)
        b = random_hamiltonian_program(8, num_strings=20, seed=5)
        assert a.multiset_of_terms() == b.multiset_of_terms()

    def test_weights_in_range(self):
        prog = random_hamiltonian_program(6, num_strings=30)
        for ws, _ in prog.all_weighted_strings():
            assert -1.0 <= ws.weight <= 1.0
            assert 1 <= ws.string.weight <= 6


class TestMolecules:
    def test_specs_sizes(self):
        prog = molecule_program("N2", num_strings=100)
        assert prog.num_qubits == 20
        assert prog.num_strings == 100

    def test_unknown_molecule(self):
        with pytest.raises(ValueError):
            molecule_program("H2O2")

    def test_strings_unique(self):
        prog = molecule_program("H2S", num_strings=200)
        strings = [ws.string for ws, _ in prog.all_weighted_strings()]
        assert len(set(strings)) == len(strings)

    def test_deterministic(self):
        a = molecule_program("CO2", num_strings=50)
        b = molecule_program("CO2", num_strings=50)
        assert a.multiset_of_terms() == b.multiset_of_terms()


class TestRegistry:
    def test_all_benchmarks_present(self):
        # The paper's 31 Table 1 rows plus the 5 large-scale streaming
        # workloads (ScaleRand-100/200/500, ScaleHubbard-100/500).
        assert len(BENCHMARKS) == 36
        assert len(benchmark_names(family="Scale")) == 5

    def test_backend_split(self):
        assert len(benchmark_names(backend="sc")) == 14
        assert len(benchmark_names(backend="ft")) == 22

    def test_small_scale_builds(self):
        for name in ["UCCSD-8", "REG-20-4", "Ising-1D", "Heisen-2D", "N2", "Rand-30", "TSP-4"]:
            prog = build_benchmark(name, scale="small")
            assert prog.num_strings > 0

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError):
            build_benchmark("nope")

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            build_benchmark("Ising-1D", scale="huge")

    def test_paper_scale_qaoa(self):
        prog = build_benchmark("REG-20-8", scale="paper")
        assert prog.num_qubits == 20
        assert prog.num_strings == 80  # Table 1
