"""Tests for the extension modules: Trotterization, QASM export, CLI."""

import math

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, circuit_unitary, equivalent_up_to_global_phase
from repro.circuit.qasm import from_qasm, to_qasm
from repro.cli import main
from repro.core.trotter import trotter_error_bound, trotter_steps_for, trotterize
from repro.ir import PauliProgram


class TestTrotter:
    @pytest.fixture
    def step(self):
        return PauliProgram.from_hamiltonian([("XX", 1.0), ("ZZ", 0.5)], parameter=0.1)

    def test_trotterize_replicates_blocks(self, step):
        program = trotterize(step, 3)
        assert program.num_blocks == 6
        assert program.num_strings == 6

    def test_trotterize_rejects_bad_count(self, step):
        with pytest.raises(ValueError):
            trotterize(step, 0)

    def test_steps_for(self):
        assert trotter_steps_for(1.0, 0.1) == 10
        assert trotter_steps_for(0.01, 0.1) == 1
        with pytest.raises(ValueError):
            trotter_steps_for(1.0, 0.0)

    def test_error_bound_decreases_with_steps(self):
        # XI and ZI anticommute, so the bound is nonzero and ~ 1/N.
        step = PauliProgram.from_hamiltonian([("XI", 1.0), ("ZI", 0.5)], parameter=0.1)
        few = trotter_error_bound(step, total_time=1.0, num_steps=2)
        many = trotter_error_bound(step, total_time=1.0, num_steps=20)
        assert many < few

    def test_error_bound_zero_for_commuting(self):
        commuting = PauliProgram.from_hamiltonian([("ZZ", 1.0), ("ZI", 1.0)])
        assert trotter_error_bound(commuting, 1.0, 1) == 0.0

    def test_step_preserving_cost_at_most_linear(self, step):
        from repro.core import ft_compile

        single = ft_compile(trotterize(step, 1), scheduler="none").circuit
        triple = ft_compile(trotterize(step, 3), scheduler="none").circuit
        assert triple.cnot_count <= 3 * single.cnot_count

    def test_gco_merges_across_steps(self, step):
        # Documented caveat: GCO groups identical terms from different
        # steps, collapsing the product formula to one coarse step.
        from repro.core import ft_compile

        merged = ft_compile(trotterize(step, 8), scheduler="gco").circuit
        single = ft_compile(trotterize(step, 1), scheduler="gco").circuit
        assert merged.count_ops()["rz"] == single.count_ops()["rz"]


class TestQASM:
    def test_round_trip_simple(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).rz(0.5, 1).swap(1, 2).s(2).sdg(0)
        text = to_qasm(qc)
        back = from_qasm(text)
        assert equivalent_up_to_global_phase(circuit_unitary(back), circuit_unitary(qc))

    def test_yh_decomposition_exact(self):
        qc = QuantumCircuit(1)
        qc.yh(0)
        back = from_qasm(to_qasm(qc))
        assert equivalent_up_to_global_phase(circuit_unitary(back), circuit_unitary(qc))

    def test_header_present(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        text = to_qasm(qc)
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[2];" in text

    def test_parse_angles_with_pi(self):
        text = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\nrz(pi/2) q[0];\n'
        qc = from_qasm(text)
        assert math.isclose(qc[0].params[0], math.pi / 2)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            from_qasm("no qreg here")

    def test_parse_rejects_unknown_gate(self):
        with pytest.raises(ValueError):
            from_qasm('OPENQASM 2.0;\nqreg q[1];\nfoo q[0];')

    def test_unsafe_angle_rejected(self):
        with pytest.raises(ValueError):
            from_qasm('OPENQASM 2.0;\nqreg q[1];\nrz(__import__) q[0];')

    def test_compiled_circuit_exports(self):
        from repro.core import ft_compile
        program = PauliProgram.from_hamiltonian([("XY", 0.3), ("ZZ", 0.4)])
        circuit = ft_compile(program).circuit
        back = from_qasm(to_qasm(circuit))
        assert equivalent_up_to_global_phase(
            circuit_unitary(back), circuit_unitary(circuit)
        )


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "UCCSD-8" in out and "Ising-1D" in out

    def test_compile_known(self, capsys):
        assert main(["compile", "Ising-1D"]) == 0
        assert "CNOT" in capsys.readouterr().out

    def test_compile_unknown(self, capsys):
        assert main(["compile", "nope"]) == 2

    def test_table4(self, capsys):
        assert main(["table4", "Ising-1D"]) == 0
        out = capsys.readouterr().out
        assert "DO vs GCO" in out

    def test_table2(self, capsys):
        assert main(["table2", "Ising-1D"]) == 0
        assert "ph+qiskit_l3" in capsys.readouterr().out
