"""Tests for metrics, tables, and the experiment drivers."""

import math

import pytest

from repro.analysis import (
    ablation_alignment,
    ablation_tree_embedding,
    circuit_metrics,
    format_table,
    geomean,
    percent_change,
    ratio,
    table1_inventory,
    table2_compare,
    table3_compare,
    table4_passes,
)
from repro.circuit import QuantumCircuit
from repro.transpile import linear


class TestMetrics:
    def test_circuit_metrics_counts(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).rz(0.2, 1).swap(1, 2)
        m = circuit_metrics(qc)
        assert m["cnot"] == 1 + 3
        assert m["single"] == 2
        assert m["total"] == m["cnot"] + m["single"]
        assert m["depth"] >= 4  # swap decomposed into 3 CNOTs

    def test_percent_change(self):
        assert percent_change(50, 100) == -50.0
        assert percent_change(150, 100) == 50.0
        assert percent_change(0, 0) == 0.0
        assert math.isinf(percent_change(5, 0))

    def test_ratio_guard(self):
        assert ratio(4, 2) == 2.0
        assert math.isinf(ratio(1, 0))

    def test_geomean(self):
        assert math.isclose(geomean([2, 8]), 4.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])


class TestTables:
    def test_format_alignment(self):
        text = format_table(["A", "Metric"], [["x", 1], ["longer", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")
        assert "longer" in lines[3]

    def test_float_rendering(self):
        text = format_table(["V"], [[1.0], [0.123456]])
        assert "1" in text and "0.123" in text


class TestExperimentDrivers:
    def test_table1_shapes(self):
        rows = table1_inventory(["Ising-1D", "REG-20-4"], scale="small")
        assert {r["name"] for r in rows} == {"Ising-1D", "REG-20-4"}
        for r in rows:
            assert r["paulis"] > 0 and r["naive_cnot"] > 0

    def test_table2_ising_exact_paper_row(self):
        # Paper Table 2, Ising-1D with PH+Qiskit_L3: 58 CNOT, 29 single,
        # 87 total, depth 6 — our pipeline reproduces it exactly.
        row = table2_compare("Ising-1D", scale="paper")
        ph = row["ph+qiskit_l3"]
        assert (ph["cnot"], ph["single"], ph["total"], ph["depth"]) == (58, 29, 87, 6)

    def test_table2_has_all_configs(self):
        row = table2_compare("Ising-2D", scale="small")
        for config in ("ph+qiskit_l3", "ph+tket_o2", "tk+qiskit_l3", "tk+tket_o2"):
            assert set(row[config]) >= {"cnot", "single", "total", "depth"}

    def test_table3_rejects_non_qaoa(self):
        with pytest.raises(ValueError):
            table3_compare("Ising-1D")

    def test_table3_small(self):
        row = table3_compare("REG-20-4", scale="small", seeds=2)
        assert row["ph"]["cnot"] > 0
        assert row["qaoa_compiler"]["cnot"] > 0

    def test_table4_keys(self):
        row = table4_passes("Heisen-1D", scale="small")
        assert set(row["do_vs_gco_pct"]) == {"cnot", "single", "total", "depth"}
        assert row["do_vs_gco_pct"]["depth"] < 0  # DO reduces depth on lattices

    def test_ablation_alignment_runs(self):
        row = ablation_alignment("UCCSD-8", scale="small")
        assert row["adaptive"]["cnot"] <= row["scheduled_naive"]["cnot"]

    def test_ablation_tree_embedding_runs(self):
        from repro.transpile import grid
        row = ablation_tree_embedding("REG-20-4", scale="small", coupling=grid(3, 4))
        assert row["tree_embedding"]["cnot"] > 0
