"""Correctness tests for Pauli-rotation synthesis (paper Figure 2)."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import circuit_unitary, equivalent_up_to_global_phase
from repro.core import (
    SynthesisPlan,
    aligned_chain_plan,
    chain_plan,
    naive_program_circuit,
    pauli_evolution_circuit,
    pauli_rotation_gates,
)
from repro.ir import PauliProgram
from repro.pauli import PauliString


def exact_evolution(label: str, coefficient: float) -> np.ndarray:
    matrix = PauliString.from_label(label).to_matrix()
    return scipy.linalg.expm(1j * coefficient * matrix)


def check_label(label: str, coefficient: float, plan=None):
    string = PauliString.from_label(label)
    circuit = pauli_evolution_circuit(string, coefficient, plan=plan)
    assert equivalent_up_to_global_phase(
        circuit_unitary(circuit), exact_evolution(label, coefficient)
    ), f"synthesis wrong for {label}"


class TestSingleStrings:
    @pytest.mark.parametrize("label", ["Z", "X", "Y"])
    def test_single_qubit(self, label):
        check_label(label, 0.37)

    @pytest.mark.parametrize("label", ["ZZ", "XX", "YY", "XY", "ZX", "YZ"])
    def test_two_qubit(self, label):
        check_label(label, -0.81)

    @pytest.mark.parametrize("label", ["ZIZ", "XYZ", "YIX", "ZZZ", "IYI"])
    def test_three_qubit(self, label):
        check_label(label, 1.23)

    def test_paper_figure2_string(self):
        # exp(i * Y Z I X Z * theta/2): 5 qubits, support {0,1,3,4}.
        check_label("YZIXZ", 0.25)

    def test_identity_string_is_empty(self):
        string = PauliString.identity(3)
        assert pauli_rotation_gates(string, 0.5) == []

    def test_gate_structure(self):
        string = PauliString.from_label("YZIXZ")
        gates = pauli_rotation_gates(string, 0.5)
        names = [g.name for g in gates]
        # 2 basis gates, 3 CNOTs, rz, 3 CNOTs, 2 basis gates
        assert names.count("rz") == 1
        assert names.count("cx") == 6
        assert names.count("h") == 2
        assert names.count("yh") == 2


class TestPlans:
    def test_every_root_choice_is_correct(self):
        string = PauliString.from_label("XYZZ")
        for root in string.support:
            plan = chain_plan(string.support, root=root)
            check_label("XYZZ", 0.4, plan=plan)

    def test_every_chain_permutation_is_correct(self):
        import itertools
        string = PauliString.from_label("ZZY")
        for order in itertools.permutations(string.support):
            plan = chain_plan(order)
            check_label("ZZY", -0.6, plan=plan)

    def test_tree_plan(self):
        # Star tree: 0 and 1 both feed 3, then 3 feeds 4 (paper Fig. 2 (2)).
        string = PauliString.from_label("YZIXZ")
        plan = SynthesisPlan([(0, 3), (1, 3), (3, 4)], root=4)
        check_label("YZIXZ", 0.9, plan=plan)

    def test_plan_validation_wrong_support(self):
        string = PauliString.from_label("ZZ")
        plan = chain_plan([0, 1, 2])
        with pytest.raises(ValueError):
            pauli_rotation_gates(string, 0.1, plan)

    def test_plan_root_must_be_last_target(self):
        with pytest.raises(ValueError):
            SynthesisPlan([(0, 1)], root=0)

    def test_chain_plan_root_not_in_support(self):
        with pytest.raises(ValueError):
            chain_plan([0, 1], root=5)


class TestAlignedPlans:
    def test_shared_qubits_lead_the_chain(self):
        a = PauliString.from_label("ZZY")
        b = PauliString.from_label("ZZI")
        plan = aligned_chain_plan(a, b)
        # shared support {1, 2} must come before the unshared qubit 0
        first_controls = [plan.edges[0][0], plan.edges[0][1]]
        assert set(first_controls) <= {1, 2}
        check_label("ZZY", 0.3, plan=plan)

    def test_no_neighbor_falls_back_to_default(self):
        a = PauliString.from_label("XYZ")
        plan = aligned_chain_plan(a, None)
        assert plan.root == 2

    def test_paper_fig4a_cancellation(self):
        """ZZY then ZZI with aligned plans cancels 2 CNOTs (Figure 4a)."""
        from repro.circuit import QuantumCircuit
        from repro.transpile import optimize

        a = PauliString.from_label("ZZY")
        b = PauliString.from_label("ZZI")
        naive = QuantumCircuit(3)
        naive.extend(pauli_rotation_gates(a, 0.4, chain_plan(a.support)))
        naive.extend(pauli_rotation_gates(b, 0.8, chain_plan(b.support)))
        aligned = QuantumCircuit(3)
        aligned.extend(pauli_rotation_gates(a, 0.4, aligned_chain_plan(a, b)))
        aligned.extend(pauli_rotation_gates(b, 0.8, aligned_chain_plan(b, a)))

        naive_opt = optimize(naive)
        aligned_opt = optimize(aligned)
        assert aligned_opt.count_ops().get("cx", 0) <= naive_opt.count_ops().get("cx", 0) - 2
        # Semantics identical either way.
        assert equivalent_up_to_global_phase(
            circuit_unitary(aligned_opt), circuit_unitary(naive)
        )


class TestProgramSynthesis:
    def test_naive_program_circuit_semantics(self):
        prog = PauliProgram.from_hamiltonian(
            [("ZZ", 0.5), ("XI", -0.3)], parameter=0.7
        )
        circuit = naive_program_circuit(prog)
        expected = (
            exact_evolution("XI", -0.3 * 0.7) @ exact_evolution("ZZ", 0.5 * 0.7)
        )
        assert equivalent_up_to_global_phase(circuit_unitary(circuit), expected)

    def test_identity_terms_skipped(self):
        prog = PauliProgram.from_hamiltonian([("II", 5.0), ("ZZ", 1.0)])
        circuit = naive_program_circuit(prog)
        assert all(g.name != "rz" or g.qubits[0] in (0, 1) for g in circuit)
        assert circuit.count_ops()["rz"] == 1


@given(
    st.text(alphabet="IXYZ", min_size=1, max_size=5).filter(lambda s: set(s) != {"I"}),
    st.floats(-2.0, 2.0, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_synthesis_matches_expm_property(label, coefficient):
    check_label(label, coefficient)
