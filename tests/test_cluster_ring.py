"""Property tests for the cluster's consistent-hash ring.

The ring is the contract the whole fabric stands on:

* **determinism** — every process that builds a ring from the same
  member names maps every key to the same owner (the router restarts,
  the benchmark, and a debugging human must all agree on placement);
* **balance** — at 128 vnodes, no member owns more than ~2x the mean
  share of a large key population;
* **minimal remap** — removing a member moves *only* that member's
  keys; adding one moves keys only *to* the newcomer.  This is what
  keeps cache locality through membership churn.

Hypothesis drives membership/key generation; the determinism test
crosses a real process boundary (a fresh interpreter with its own
``PYTHONHASHSEED``) to prove nothing leans on Python's seeded ``hash``.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import HashRing

SRC = str(Path(__file__).resolve().parent.parent / "src")

names = st.lists(
    st.text(alphabet="abcdefghij-0123456789", min_size=1, max_size=12),
    min_size=1, max_size=8, unique=True,
)
keys = st.lists(st.text(min_size=1, max_size=40), min_size=1, max_size=50)


class TestBasics:
    def test_empty_ring_owns_nothing(self):
        ring = HashRing()
        assert ring.owner("anything") is None
        assert ring.preference("anything") == []
        assert len(ring) == 0

    def test_membership_bookkeeping(self):
        ring = HashRing(["b", "a"], vnodes=8)
        assert ring.members() == ("a", "b")
        assert "a" in ring and "c" not in ring
        ring.add("a")                     # idempotent
        assert len(ring) == 2
        ring.remove("c")                  # absent: no-op
        ring.remove("a")
        assert ring.members() == ("b",)
        assert ring.owner("k") == "b"

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
        with pytest.raises(ValueError):
            HashRing().add("")

    def test_preference_is_owner_first_and_distinct(self):
        ring = HashRing([f"node-{i}" for i in range(5)], vnodes=32)
        for key in (f"key-{i}" for i in range(64)):
            preferred = ring.preference(key)
            assert preferred[0] == ring.owner(key)
            assert len(preferred) == len(set(preferred)) == 5
            assert ring.preference(key, 2) == preferred[:2]
            assert ring.preference(key, 99) == preferred

    def test_rejoin_restores_the_exact_mapping(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        sample = [f"fp-{i:04d}" for i in range(300)]
        before = {k: ring.owner(k) for k in sample}
        ring.remove("b")
        ring.add("b")
        assert {k: ring.owner(k) for k in sample} == before


class TestProperties:
    @given(names=names, keys=keys)
    @settings(max_examples=50, deadline=None)
    def test_two_independent_rings_agree(self, names, keys):
        """Construction order must not matter: the mapping is a pure
        function of the member set."""
        forward = HashRing(names, vnodes=16)
        backward = HashRing(reversed(names), vnodes=16)
        for key in keys:
            assert forward.owner(key) == backward.owner(key)
            assert forward.preference(key) == backward.preference(key)

    @given(names=st.just(["node-0", "node-1", "node-2"]),
           departing=st.sampled_from(["node-0", "node-1", "node-2"]))
    @settings(max_examples=10, deadline=None)
    def test_leave_moves_only_the_departed_nodes_keys(self, names, departing):
        ring = HashRing(names, vnodes=64)
        sample = [f"fp-{i:05d}" for i in range(600)]
        before = {k: ring.owner(k) for k in sample}
        ring.remove(departing)
        for key in sample:
            after = ring.owner(key)
            if before[key] == departing:
                assert after != departing
            else:
                assert after == before[key], \
                    f"{key} moved {before[key]} -> {after} though " \
                    f"{departing} departed"

    def test_join_moves_keys_only_to_the_newcomer(self):
        ring = HashRing(["node-0", "node-1", "node-2"], vnodes=64)
        sample = [f"fp-{i:05d}" for i in range(600)]
        before = {k: ring.owner(k) for k in sample}
        ring.add("node-3")
        moved = 0
        for key in sample:
            after = ring.owner(key)
            if after != before[key]:
                assert after == "node-3"
                moved += 1
        # The newcomer takes a real share, roughly 1/4 of the keys.
        assert 0 < moved < len(sample) // 2

    def test_balance_within_2x_of_mean_at_128_vnodes(self):
        members = [f"node-{i}" for i in range(3)]
        ring = HashRing(members, vnodes=128)
        counts = {m: 0 for m in members}
        for i in range(10_000):
            counts[ring.owner(f"{i:02x}" + f"{i:062x}")] += 1
        mean = sum(counts.values()) / len(counts)
        assert max(counts.values()) <= 2.0 * mean, counts
        assert min(counts.values()) >= 0.3 * mean, counts


_CROSS_PROCESS_SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
from repro.service import HashRing

members = json.loads(sys.argv[1])
ring = HashRing(members, vnodes=32)
keys = [f"fp-{{i:04d}}" for i in range(200)]
print(json.dumps({{k: ring.preference(k, 2) for k in keys}}))
"""


class TestCrossProcessDeterminism:
    def test_fresh_interpreters_map_identically(self):
        """Two subprocesses with different hash seeds must produce the
        identical key -> (owner, failover) map; the router relies on this
        to rebuild routing after a restart without invalidating any
        node's cache."""
        members = ["alpha", "beta", "gamma", "delta"]
        script = _CROSS_PROCESS_SCRIPT.format(src=SRC)
        maps = []
        for seed in ("0", "12345"):
            out = subprocess.run(
                [sys.executable, "-c", script, json.dumps(members)],
                env={"PYTHONHASHSEED": seed, "PATH": ""},
                capture_output=True, text=True, timeout=120,
            )
            assert out.returncode == 0, out.stderr
            maps.append(json.loads(out.stdout))
        assert maps[0] == maps[1]
        # And the parent (this process) agrees with both.
        ring = HashRing(members, vnodes=32)
        for key, preferred in maps[0].items():
            assert ring.preference(key, 2) == preferred
