"""Tests for the Hubbard workload and expectation-value machinery."""

import math

import numpy as np
import pytest

from repro.circuit import simulate
from repro.core import compile_program
from repro.pauli import PauliString
from repro.workloads.fermion import PauliSum
from repro.workloads.hubbard import (
    bind_parameters,
    hubbard_hamiltonian,
    hubbard_trotter_program,
    hubbard_ucc_ansatz,
    two_site_ground_energy,
)


class TestPauliSumDense:
    def test_to_matrix_matches_terms(self):
        s = PauliSum.of(PauliString.from_label("XZ"), 2.0) + PauliSum.of(
            PauliString.from_label("II"), 1.0
        )
        expected = 2.0 * PauliString.from_label("XZ").to_matrix() + np.eye(4)
        assert np.allclose(s.to_matrix(), expected)

    def test_expectation_matches_dense(self):
        s = PauliSum.of(PauliString.from_label("ZI"), 0.7) + PauliSum.of(
            PauliString.from_label("XX"), -0.2
        )
        rng = np.random.default_rng(3)
        state = rng.normal(size=4) + 1j * rng.normal(size=4)
        state /= np.linalg.norm(state)
        dense = state.conj() @ s.to_matrix() @ state
        assert np.isclose(s.expectation(state), dense)

    def test_expectation_of_z_on_basis_state(self):
        s = PauliSum.of(PauliString.from_label("Z"), 1.0)
        zero = np.array([1.0, 0.0], dtype=complex)
        one = np.array([0.0, 1.0], dtype=complex)
        assert np.isclose(s.expectation(zero), 1.0)
        assert np.isclose(s.expectation(one), -1.0)


class TestHubbardHamiltonian:
    def test_hermitian(self):
        h = hubbard_hamiltonian(2)
        dense = h.to_matrix()
        assert np.allclose(dense, dense.conj().T)

    def test_two_site_spectrum_matches_analytic(self):
        # The closed form is the ground energy of the HALF-FILLED (N=2)
        # sector, so project the spectrum onto particle number 2.
        t, u = 1.0, 4.0
        h = hubbard_hamiltonian(2, hopping=t, interaction=u)
        eigenvalues, eigenvectors = np.linalg.eigh(h.to_matrix())
        half_filled = [
            e
            for e, v in zip(eigenvalues, eigenvectors.T)
            if np.isclose(
                sum(
                    abs(v[i]) ** 2 * bin(i).count("1") for i in range(16)
                ),
                2.0,
                atol=1e-8,
            )
        ]
        assert np.isclose(min(half_filled), two_site_ground_energy(t, u), atol=1e-10)

    def test_u_zero_is_free_fermions(self):
        # Free 2-site model: single-particle energies +-t; many-body ground
        # state fills both spin sectors' bonding orbitals: E0 = -2t.
        h = hubbard_hamiltonian(2, hopping=1.0, interaction=0.0)
        eigenvalues = np.linalg.eigvalsh(h.to_matrix())
        assert np.isclose(eigenvalues[0], -2.0, atol=1e-10)

    def test_particle_number_conserved(self):
        h = hubbard_hamiltonian(2).to_matrix()
        number = sum(
            PauliSum.of(PauliString.from_sparse(4, {q: "Z"}), -0.5).to_matrix()
            + 0.5 * np.eye(16)
            for q in range(4)
        )
        assert np.allclose(h @ number, number @ h)

    def test_rejects_single_site(self):
        with pytest.raises(ValueError):
            hubbard_hamiltonian(1)

    def test_periodic_adds_bond(self):
        open_chain = hubbard_hamiltonian(3, periodic=False)
        ring = hubbard_hamiltonian(3, periodic=True)
        assert len(ring.terms) > len(open_chain.terms)


class TestHubbardPrograms:
    def test_trotter_program_builds(self):
        prog = hubbard_trotter_program(2, dt=0.05)
        assert prog.num_qubits == 4
        assert prog.num_strings == len(
            [s for s in hubbard_hamiltonian(2).real_weighted_strings() if not s[0].is_identity]
        )

    def test_ansatz_blocks_commute(self):
        ansatz, k = hubbard_ucc_ansatz(2)
        assert k == ansatz.num_blocks
        for block in ansatz:
            assert block.is_mutually_commuting()

    def test_bind_parameters(self):
        ansatz, k = hubbard_ucc_ansatz(2)
        bound = bind_parameters(ansatz, [0.1] * k)
        assert all(b.parameter == 0.1 for b in bound)

    def test_bind_wrong_arity(self):
        ansatz, k = hubbard_ucc_ansatz(2)
        with pytest.raises(ValueError):
            bind_parameters(ansatz, [0.1] * (k + 1))

    def test_vqe_single_point_below_hf(self):
        # One hand-picked double-excitation angle lowers the energy below
        # the reference state's U.
        ansatz, k = hubbard_ucc_ansatz(2)
        values = [0.0] * k
        # The double excitation is the last block.
        values[-1] = 0.5
        bound = bind_parameters(ansatz, values)
        compiled = compile_program(bound, backend="ft")
        reference = np.zeros(16, dtype=complex)
        reference[0b0101] = 1.0
        state = simulate(compiled.circuit, reference)
        h = hubbard_hamiltonian(2)
        assert h.expectation(state).real < 4.0
