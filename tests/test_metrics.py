"""Unit tests for the gateway's metrics primitives.

The load-bearing regression here is :meth:`LatencyReservoir.summary`
taking its whole snapshot — counters *and* the sorted window — under a
single lock acquisition.  The old implementation acquired the lock three
times (once per percentile, once for the counters), so a ``record()``
landing between acquisitions produced a summary whose ``p50``/``p95``
described a different sample population than its ``count``/``mean``.
"""

import threading

from repro.service import GatewayMetrics, LatencyReservoir


class CountingLock:
    """A lock that counts how many times it was acquired."""

    def __init__(self):
        self._inner = threading.Lock()
        self.acquisitions = 0

    def __enter__(self):
        self._inner.acquire()
        self.acquisitions += 1
        return self

    def __exit__(self, *exc):
        self._inner.release()


class TestLatencyReservoir:
    def test_summary_takes_exactly_one_lock_acquisition(self):
        """Pin the single-snapshot property: if summary() ever goes back
        to per-percentile locking, this counts it."""
        reservoir = LatencyReservoir()
        for i in range(10):
            reservoir.record(i / 1000.0)
        lock = CountingLock()
        reservoir._lock = lock
        summary = reservoir.summary()
        assert lock.acquisitions == 1
        assert summary["count"] == 10

    def test_summary_is_internally_consistent_under_recording(self):
        """Hammer record() from threads while summarizing: every summary
        must be self-consistent — its percentiles and mean come from the
        same instant as its count (never a None p50 with count > 0, never
        p50 > max)."""
        reservoir = LatencyReservoir(capacity=64)
        stop = threading.Event()
        bad = []

        def recorder(seed: int):
            value = seed
            while not stop.is_set():
                value = (value * 1103515245 + 12345) & 0x7FFFFFFF
                reservoir.record((value % 1000) / 1e6)

        threads = [threading.Thread(target=recorder, args=(i + 1,))
                   for i in range(3)]
        for t in threads:
            t.start()
        try:
            for _ in range(300):
                summary = reservoir.summary()
                if summary["count"] == 0:
                    continue
                if summary["p50_ms"] is None or summary["p95_ms"] is None \
                        or summary["mean_ms"] is None \
                        or summary["max_ms"] is None:
                    bad.append(summary)
                elif not (summary["p50_ms"] <= summary["p95_ms"]
                          <= summary["max_ms"]):
                    bad.append(summary)
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not bad, bad[:3]

    def test_empty_and_single_sample_summaries(self):
        reservoir = LatencyReservoir()
        empty = reservoir.summary()
        assert empty["count"] == 0
        assert empty["p50_ms"] is None and empty["mean_ms"] is None
        reservoir.record(0.002)
        one = reservoir.summary()
        assert one["count"] == 1
        assert one["p50_ms"] == one["p95_ms"] == one["max_ms"] == 2.0

    def test_percentile_window_is_bounded_but_totals_are_exact(self):
        reservoir = LatencyReservoir(capacity=4)
        for i in range(100):
            reservoir.record(0.001)
        summary = reservoir.summary()
        assert summary["count"] == 100            # lifetime-exact
        assert reservoir.percentile(50) == 0.001  # over the window


class TestGatewayMetrics:
    def test_snapshot_shape_and_counter_isolation(self):
        metrics = GatewayMetrics()
        metrics.incr("received", 3)
        metrics.incr("completed", 2)
        metrics.incr("warm_hits")
        metrics.warm_latency.record(0.001)
        snap = metrics.snapshot()
        assert snap["requests"]["received"] == 3
        assert snap["requests"]["completed"] == 2
        assert snap["latency"]["warm"]["count"] == 1
        assert snap["latency"]["cold"]["count"] == 0
        assert metrics.get("warm_hits") == 1

    def test_incr_is_thread_exact(self):
        metrics = GatewayMetrics()
        threads = [
            threading.Thread(
                target=lambda: [metrics.incr("received") for _ in range(500)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.get("received") == 4000
