"""Shared test utilities: exact references for compiled circuits."""

from typing import List, Tuple

import numpy as np
import scipy.linalg

from repro.pauli import PauliString
from repro.transpile import Layout


def terms_unitary(terms: List[Tuple[PauliString, float]], num_qubits: int) -> np.ndarray:
    """Exact unitary of ``prod_k exp(i c_k P_k)`` with ``terms[0]`` applied
    first (i.e. rightmost in the operator product)."""
    dim = 2 ** num_qubits
    out = np.eye(dim, dtype=complex)
    for string, coefficient in terms:
        out = scipy.linalg.expm(1j * coefficient * string.to_matrix()) @ out
    return out


def layout_permutation(layout: Layout, num_qubits: int) -> np.ndarray:
    """Permutation matrix sending the logical basis to the physical basis.

    Physical qubit ``p`` carries logical qubit ``layout.logical(p)``; basis
    index bits are little-endian.  Requires a device exactly as wide as the
    program (tests use matched sizes).
    """
    dim = 2 ** num_qubits
    perm = np.zeros((dim, dim), dtype=complex)
    for logical_index in range(dim):
        physical_index = 0
        for p in range(num_qubits):
            logical_qubit = layout.logical(p)
            assert logical_qubit is not None, "test devices must be fully mapped"
            bit = (logical_index >> logical_qubit) & 1
            physical_index |= bit << p
        perm[physical_index, logical_index] = 1.0
    return perm
