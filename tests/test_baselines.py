"""Tests for the baseline compilers: tableau, TK, QAOA compiler, naive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    naive_compile,
    partition_commuting,
    qaoa_compile,
    simultaneous_diagonalize,
    tk_compile,
    zz_terms_of_program,
)
from repro.baselines.tableau import ConjugationTracker
from repro.circuit import QuantumCircuit, circuit_unitary, equivalent_up_to_global_phase
from repro.ir import PauliBlock, PauliProgram
from repro.pauli import PauliString
from repro.transpile import linear, ring, validate_routed

from helpers import layout_permutation, terms_unitary


def prog(*labels, parameter=0.5):
    return PauliProgram.from_hamiltonian([(l, 1.0) for l in labels], parameter=parameter)


# ----------------------------------------------------------------------
# Conjugation tracker
# ----------------------------------------------------------------------

class TestConjugationTracker:
    @pytest.mark.parametrize("gate", ["h", "s", "sdg", "x"])
    @pytest.mark.parametrize("label", ["X", "Y", "Z"])
    def test_single_qubit_conjugation_matches_matrices(self, gate, label):
        tracker = ConjugationTracker([PauliString.from_label(label)], 1)
        getattr(tracker, gate)(0)
        u = circuit_unitary(tracker.circuit)
        original = PauliString.from_label(label).to_matrix()
        tracked = tracker.signed(0)
        conjugated = tracked.sign * tracked.to_string().to_matrix()
        assert np.allclose(u @ original @ u.conj().T, conjugated)

    @pytest.mark.parametrize("label", ["XX", "XZ", "ZX", "YY", "XI", "IZ", "YZ", "ZY"])
    def test_cx_conjugation_matches_matrices(self, label):
        tracker = ConjugationTracker([PauliString.from_label(label)], 2)
        tracker.cx(0, 1)
        u = circuit_unitary(tracker.circuit)
        original = PauliString.from_label(label).to_matrix()
        tracked = tracker.signed(0)
        conjugated = tracked.sign * tracked.to_string().to_matrix()
        assert np.allclose(u @ original @ u.conj().T, conjugated)

    def test_swap_conjugation(self):
        tracker = ConjugationTracker([PauliString.from_label("XZ")], 2)
        tracker.swap(0, 1)
        assert tracker.signed(0).to_string().label == "ZX"

    def test_whole_batch_is_conjugated_at_once(self):
        labels = ["XI", "IZ", "YY", "ZX"]
        tracker = ConjugationTracker([PauliString.from_label(l) for l in labels], 2)
        tracker.h(0)
        tracker.cx(0, 1)
        u = circuit_unitary(tracker.circuit)
        for row, label in enumerate(labels):
            tracked = tracker.signed(row)
            assert np.allclose(
                u @ PauliString.from_label(label).to_matrix() @ u.conj().T,
                tracked.sign * tracked.to_string().to_matrix(),
            )

    @given(st.text(alphabet="IXYZ", min_size=2, max_size=3).filter(lambda s: set(s) != {"I"}),
           st.lists(st.sampled_from(["h0", "s0", "x1", "cx01", "cx10", "swap"]), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_random_conjugation_sequences(self, label, moves):
        n = len(label)
        tracker = ConjugationTracker([PauliString.from_label(label)], n)
        for move in moves:
            if move == "h0":
                tracker.h(0)
            elif move == "s0":
                tracker.s(0)
            elif move == "x1" and n > 1:
                tracker.x(1)
            elif move == "cx01" and n > 1:
                tracker.cx(0, 1)
            elif move == "cx10" and n > 1:
                tracker.cx(1, 0)
            elif move == "swap" and n > 1:
                tracker.swap(0, 1)
        u = circuit_unitary(tracker.circuit)
        original = PauliString.from_label(label).to_matrix()
        tracked = tracker.signed(0)
        conjugated = tracked.sign * tracked.to_string().to_matrix()
        assert np.allclose(u @ original @ u.conj().T, conjugated)


# ----------------------------------------------------------------------
# Simultaneous diagonalization
# ----------------------------------------------------------------------

class TestSimultaneousDiagonalization:
    @pytest.mark.parametrize("labels", [
        ["ZZ", "XX", "YY"],          # the Bell-basis commuting triple
        ["ZZI", "IZZ", "ZIZ"],       # dependent all-Z set
        ["XXX", "ZZI", "IZZ"],
        ["XX", "YY"],
        ["XXI", "IXX", "XIX"],
        ["YYZ", "ZZI"],
    ])
    def test_diagonalizes_commuting_sets(self, labels):
        strings = [PauliString.from_label(l) for l in labels]
        clifford, tracked = simultaneous_diagonalize(strings)
        u = circuit_unitary(clifford)
        for original, t in zip(strings, tracked):
            assert t.is_diagonal()
            lhs = u @ original.to_matrix() @ u.conj().T
            rhs = t.sign * t.to_string().to_matrix()
            assert np.allclose(lhs, rhs)

    def test_rejects_noncommuting(self):
        with pytest.raises(ValueError):
            simultaneous_diagonalize(
                [PauliString.from_label("X"), PauliString.from_label("Z")]
            )

    def test_already_diagonal_is_cheap(self):
        strings = [PauliString.from_label(l) for l in ["ZZ", "ZI"]]
        clifford, tracked = simultaneous_diagonalize(strings)
        assert len(clifford) == 0
        assert all(t.is_diagonal() for t in tracked)

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_random_commuting_sets(self, data):
        n = 3
        pool = data.draw(
            st.lists(
                st.text(alphabet="IXYZ", min_size=n, max_size=n).filter(lambda s: set(s) != {"I"}),
                min_size=1, max_size=6, unique=True,
            )
        )
        chosen = []
        for label in pool:
            p = PauliString.from_label(label)
            if all(p.commutes_with(q) for q in chosen):
                chosen.append(p)
        if not chosen:
            return
        clifford, tracked = simultaneous_diagonalize(chosen)
        u = circuit_unitary(clifford)
        for original, t in zip(chosen, tracked):
            assert t.is_diagonal()
            assert np.allclose(
                u @ original.to_matrix() @ u.conj().T,
                t.sign * t.to_string().to_matrix(),
            )


# ----------------------------------------------------------------------
# TK compile
# ----------------------------------------------------------------------

class TestTKCompile:
    def test_partition_preserves_terms(self):
        terms = [(PauliString.from_label(l), 0.5) for l in ["XX", "ZZ", "XI", "ZI"]]
        sets = partition_commuting(terms)
        flattened = [t for group in sets for t in group]
        assert sorted(s.label for s, _ in flattened) == ["XI", "XX", "ZI", "ZZ"]
        for group in sets:
            strings = [s for s, _ in group]
            assert all(
                a.commutes_with(b) for i, a in enumerate(strings) for b in strings[i + 1:]
            )

    @pytest.mark.parametrize("labels", [
        ["ZZ", "XX"],              # commuting pair in one set
        ["ZZ", "XI", "IX"],
        ["XYZ", "ZXY", "YZX"],
        ["ZII", "IZI", "IIZ", "XXX"],
    ])
    def test_tk_unitary_for_commuting_sets(self, labels):
        # When all terms commute, the compiled unitary must equal the exact
        # product regardless of set-internal ordering.
        p = prog(*labels, parameter=0.37)
        result = tk_compile(p)
        expected = terms_unitary(
            [(ws.string, ws.weight * 0.37) for ws, _ in p.all_weighted_strings()],
            p.num_qubits,
        )
        strings = [PauliString.from_label(l) for l in labels]
        all_commute = all(
            a.commutes_with(b) for i, a in enumerate(strings) for b in strings[i + 1:]
        )
        if all_commute:
            assert equivalent_up_to_global_phase(circuit_unitary(result.circuit), expected)

    def test_tk_noncommuting_respects_set_order(self):
        # X then Z do not commute; TK puts them in different sets applied in
        # order, so the unitary equals the ordered product.
        p = prog("XI", "ZI", parameter=0.4)
        result = tk_compile(p)
        expected = terms_unitary(
            [(PauliString.from_label("XI"), 0.4), (PauliString.from_label("ZI"), 0.4)], 2
        )
        assert equivalent_up_to_global_phase(circuit_unitary(result.circuit), expected)

    def test_tk_ising_overhead(self):
        # All-commuting Ising chain: diagonalization would add Clifford
        # overhead; the already-diagonal set should stay cheap, but the key
        # paper observation is TK >= PH here.
        from repro.core import ft_compile
        labels = ["ZZII", "IZZI", "IIZZ"]
        p = prog(*labels, parameter=0.3)
        tk = tk_compile(p)
        ph = ft_compile(p)
        assert ph.circuit.cnot_count <= tk.circuit.cnot_count

    def test_identity_skipped(self):
        p = prog("II", "ZZ")
        result = tk_compile(p)
        assert result.circuit.count_ops()["rz"] == 1

    @given(
        st.lists(
            st.text(alphabet="IXYZ", min_size=3, max_size=3).filter(lambda s: set(s) != {"I"}),
            min_size=1, max_size=5,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_tk_commuting_subsets_property(self, labels):
        """TK's circuit always equals the product over its own set order."""
        p = prog(*labels, parameter=0.21)
        result = tk_compile(p)
        ordered_terms = [t for group in result.sets for t in group]
        # Within a commuting set order is free; across sets order is fixed.
        # Since within-set terms commute, the product in recorded order is
        # exact.
        expected = terms_unitary(ordered_terms, 3)
        assert equivalent_up_to_global_phase(circuit_unitary(result.circuit), expected)


# ----------------------------------------------------------------------
# QAOA compiler
# ----------------------------------------------------------------------

class TestQAOACompiler:
    def qaoa_program(self, edges, n, gamma=0.4):
        strings = [
            (PauliString.from_sparse(n, {i: "Z", j: "Z"}), 1.0) for i, j in edges
        ]
        return PauliProgram([PauliBlock(strings, parameter=gamma)])

    def test_rejects_non_zz(self):
        p = prog("XX")
        with pytest.raises(ValueError):
            zz_terms_of_program(p)

    def test_extract_terms(self):
        p = self.qaoa_program([(0, 1), (1, 2)], 3)
        terms = zz_terms_of_program(p)
        assert [(i, j) for i, j, _ in terms] == [(0, 1), (1, 2)]

    def test_compiles_triangle_on_line(self):
        p = self.qaoa_program([(0, 1), (1, 2), (0, 2)], 3)
        cmap = linear(3)
        result = qaoa_compile(p, cmap, seeds=5)
        validate_routed(result.circuit, cmap)
        assert result.circuit.count_ops()["rz"] == 3

    def test_unitary_equivalence(self):
        p = self.qaoa_program([(0, 1), (1, 2), (0, 2)], 3, gamma=0.3)
        cmap = ring(3)
        result = qaoa_compile(p, cmap, seeds=3, run_peephole=True)
        u = circuit_unitary(result.circuit)
        terms = [
            (PauliString.from_sparse(3, {i: "Z", j: "Z"}), 0.3)
            for i, j in [(0, 1), (1, 2), (0, 2)]
        ]
        expected = terms_unitary(terms, 3)  # ZZ terms all commute
        s_init = layout_permutation(result.initial_layout, 3)
        s_final = layout_permutation(result.final_layout, 3)
        assert equivalent_up_to_global_phase(u, s_final @ expected @ s_init.conj().T)

    def test_more_seeds_no_worse(self):
        p = self.qaoa_program([(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)], 4)
        cmap = linear(4)
        few = qaoa_compile(p, cmap, seeds=1)
        many = qaoa_compile(p, cmap, seeds=10)
        assert many.circuit.cnot_count <= few.circuit.cnot_count


# ----------------------------------------------------------------------
# Naive
# ----------------------------------------------------------------------

class TestNaive:
    def test_unrouted(self):
        p = prog("ZZ", "XX")
        circuit = naive_compile(p)
        assert circuit.num_qubits == 2

    def test_routed_valid(self):
        p = prog("ZIZ", "XXI")
        cmap = linear(3)
        circuit = naive_compile(p, coupling=cmap)
        validate_routed(circuit, cmap)
