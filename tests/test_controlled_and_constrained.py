"""Tests for controlled evolution and constrained-QAOA extensions."""

import numpy as np
import pytest
import scipy.linalg

from repro.circuit import QuantumCircuit, circuit_unitary, equivalent_up_to_global_phase
from repro.core import do_schedule, ft_compile, gco_schedule, sc_compile
from repro.core.controlled import (
    controlled_pauli_evolution_circuit,
    controlled_pauli_rotation_gates,
    controlled_program_circuit,
    controlled_rz_gates,
)
from repro.ir import PauliProgram
from repro.pauli import PauliString
from repro.transpile import linear
from repro.workloads.qaoa_constrained import (
    constrained_qaoa_program,
    coloring_cost_block,
    xy_mixer_blocks,
)


def controlled_unitary(u: np.ndarray, control_last: bool = True) -> np.ndarray:
    """|0><0| (x) I + |1><1| (x) U with the control as the HIGHEST qubit."""
    dim = u.shape[0]
    out = np.zeros((2 * dim, 2 * dim), dtype=complex)
    out[:dim, :dim] = np.eye(dim)
    out[dim:, dim:] = u
    return out


class TestControlledRz:
    def test_matches_crz_matrix(self):
        qc = QuantumCircuit(2)
        qc.extend(controlled_rz_gates(0.7, control=1, target=0))
        u = circuit_unitary(qc)
        rz = scipy.linalg.expm(-1j * 0.35 * np.diag([1, -1]))
        expected = controlled_unitary(rz)
        assert equivalent_up_to_global_phase(u, expected)


class TestControlledPauli:
    @pytest.mark.parametrize("label", ["Z", "XX", "ZY", "XYZ"])
    def test_controlled_evolution_matrix(self, label):
        string = PauliString.from_label(label)
        coefficient = 0.43
        circuit = controlled_pauli_evolution_circuit(
            string, coefficient, control=string.num_qubits
        )
        u = circuit_unitary(circuit)
        base = scipy.linalg.expm(1j * coefficient * string.to_matrix())
        assert equivalent_up_to_global_phase(u, controlled_unitary(base))

    def test_control_cannot_overlap_support(self):
        with pytest.raises(ValueError):
            controlled_pauli_rotation_gates(PauliString.from_label("XZ"), 0.1, control=0)

    def test_identity_becomes_control_phase(self):
        gates = controlled_pauli_rotation_gates(PauliString.identity(2), 0.8, control=2)
        assert len(gates) == 1 and gates[0].name == "rz"

    def test_controlled_program_power(self):
        program = PauliProgram.from_hamiltonian([("ZZ", 0.5), ("XI", 0.3)], parameter=0.2)
        control = 2
        circuit = controlled_program_circuit(program, control, power=2)
        u = circuit_unitary(circuit)
        step = (
            scipy.linalg.expm(1j * 0.06 * PauliString.from_label("XI").to_matrix())
            @ scipy.linalg.expm(1j * 0.1 * PauliString.from_label("ZZ").to_matrix())
        )
        assert equivalent_up_to_global_phase(u, controlled_unitary(step @ step))

    def test_controlled_power_rejects_zero(self):
        program = PauliProgram.from_hamiltonian([("Z", 1.0)])
        with pytest.raises(ValueError):
            controlled_program_circuit(program, 1, power=0)


class TestConstrainedQAOA:
    def test_program_shape(self):
        prog = constrained_qaoa_program(3, 3, [(0, 1), (1, 2)])
        assert prog.num_qubits == 9
        # 1 cost block + 3 items x 3 slot pairs.
        assert prog.num_blocks == 1 + 9

    def test_mixer_blocks_are_two_string_bundles(self):
        for block in xy_mixer_blocks(2, 3, beta=0.4):
            labels = sorted(ws.string.label.replace("I", "") for ws in block)
            assert labels == ["XX", "YY"]
            assert block.parameter == 0.4
            assert block.is_mutually_commuting()

    def test_two_slot_groups_have_single_pair(self):
        blocks = xy_mixer_blocks(2, 2)
        assert len(blocks) == 2  # one swap pair per item

    def test_cost_block_counts(self):
        block = coloring_cost_block(3, 4, [(0, 1)])
        assert block.num_strings == 4  # one ZZ per slot

    def test_rejects_bad_conflicts(self):
        with pytest.raises(ValueError):
            coloring_cost_block(2, 2, [(0, 0)])
        with pytest.raises(ValueError):
            coloring_cost_block(2, 2, [])

    def test_schedulers_never_split_blocks(self):
        prog = constrained_qaoa_program(2, 3, [(0, 1)])
        for schedule in (gco_schedule(prog), do_schedule(prog)):
            scheduled_blocks = [block for layer in schedule for block in layer]
            bundles = [
                sorted(ws.string.label for ws in block)
                for block in scheduled_blocks
                if block.num_strings == 2
            ]
            original = [
                sorted(ws.string.label for ws in block)
                for block in prog
                if block.num_strings == 2
            ]
            assert sorted(map(tuple, bundles)) == sorted(map(tuple, original))

    def test_compiles_on_both_backends(self):
        prog = constrained_qaoa_program(2, 2, [(0, 1)])
        ft = ft_compile(prog)
        assert ft.circuit.cnot_count > 0
        sc = sc_compile(prog, linear(4))
        assert sc.circuit.cnot_count > 0

    def test_xy_mixer_preserves_one_hot_subspace(self):
        # The compiled XY block must keep amplitude inside the one-hot
        # subspace of each item group.
        from repro.circuit import simulate
        prog = PauliProgram(xy_mixer_blocks(1, 2, beta=0.7))
        result = ft_compile(prog)
        state = np.zeros(4, dtype=complex)
        state[0b01] = 1.0  # slot 0 occupied
        out = simulate(result.circuit, state)
        # Amplitude may rotate between |01> and |10> but never leak.
        leak = abs(out[0b00]) ** 2 + abs(out[0b11]) ** 2
        assert leak < 1e-10
