"""Unit and property tests for the Pauli algebra substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pauli import PauliString
from repro.pauli import operators as ops


def labels(min_size=1, max_size=6):
    return st.text(alphabet="IXYZ", min_size=min_size, max_size=max_size)


class TestConstruction:
    def test_from_label_indexing(self):
        p = PauliString.from_label("YZIXZ")
        assert p[4] == "Y"
        assert p[3] == "Z"
        assert p[2] == "I"
        assert p[1] == "X"
        assert p[0] == "Z"

    def test_label_round_trip(self):
        assert PauliString.from_label("XYZI").label == "XYZI"

    def test_from_sparse(self):
        p = PauliString.from_sparse(4, {0: "Z", 2: "X"})
        assert p.label == "IXIZ"

    def test_from_sparse_out_of_range(self):
        with pytest.raises(ValueError):
            PauliString.from_sparse(2, {5: "X"})

    def test_identity(self):
        p = PauliString.identity(3)
        assert p.is_identity
        assert p.support == ()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PauliString([])

    def test_bad_code_rejected(self):
        with pytest.raises(ValueError):
            PauliString([7])

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError):
            PauliString.from_label("XQ")


class TestQueries:
    def test_support_and_weight(self):
        p = PauliString.from_label("YZIXZ")
        assert p.support == (0, 1, 3, 4)
        assert p.weight == 4

    def test_len_and_iter(self):
        p = PauliString.from_label("XIZ")
        assert len(p) == 3
        assert list(p) == ["Z", "I", "X"]  # ascending qubit order

    def test_hash_and_eq(self):
        a = PauliString.from_label("XZ")
        b = PauliString.from_label("XZ")
        c = PauliString.from_label("ZX")
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_qubit_count_mismatch(self):
        with pytest.raises(ValueError):
            PauliString.from_label("XX").commutes_with(PauliString.from_label("X"))


class TestAlgebra:
    def test_commutes_simple(self):
        assert PauliString.from_label("XX").commutes_with(PauliString.from_label("ZZ"))
        assert not PauliString.from_label("XI").commutes_with(PauliString.from_label("ZI"))

    def test_compose_xy(self):
        phase, p = PauliString.from_label("X").compose(PauliString.from_label("Y"))
        assert p.label == "Z"
        assert phase == 1j

    def test_compose_matches_matrices(self):
        for a_lab, b_lab in [("XZ", "ZY"), ("YY", "XZ"), ("IZ", "XI")]:
            a = PauliString.from_label(a_lab)
            b = PauliString.from_label(b_lab)
            phase, p = a.compose(b)
            assert np.allclose(a.to_matrix() @ b.to_matrix(), phase * p.to_matrix())

    def test_overlap_counts_equal_ops_only(self):
        a = PauliString.from_label("ZZY")
        b = PauliString.from_label("ZZI")
        assert a.overlap(b) == 2
        assert a.shared_support(b) == (1, 2)

    def test_disjoint(self):
        a = PauliString.from_label("XIIX")
        b = PauliString.from_label("IZZI")
        assert a.disjoint_from(b)
        assert not a.disjoint_from(a)


class TestSymplectic:
    def test_bits_round_trip(self):
        p = PauliString.from_label("IXYZ")
        q = PauliString.from_bits(p.x_bits, p.z_bits)
        assert p == q

    def test_bit_values(self):
        p = PauliString.from_label("Y")
        assert p.x_bits[0] and p.z_bits[0]


class TestLexKey:
    def test_paper_order(self):
        # X < Y < Z < I per qubit, compared from the highest qubit down.
        x = PauliString.from_label("XI")
        y = PauliString.from_label("YI")
        z = PauliString.from_label("ZI")
        i = PauliString.from_label("II")
        keys = [p.lex_key() for p in (x, y, z, i)]
        assert keys == sorted(keys)

    def test_high_qubit_dominates(self):
        a = PauliString.from_label("XZ")  # q1=X
        b = PauliString.from_label("ZX")  # q1=Z
        assert a.lex_key() < b.lex_key()


class TestMatrix:
    def test_single_qubit_matrices(self):
        assert np.allclose(PauliString.from_label("X").to_matrix(), ops.matrix_of(ops.X))

    def test_tensor_order(self):
        # "XZ": X on q1, Z on q0 -> X (x) Z.
        expected = np.kron(ops.matrix_of(ops.X), ops.matrix_of(ops.Z))
        assert np.allclose(PauliString.from_label("XZ").to_matrix(), expected)

    def test_too_large_refused(self):
        with pytest.raises(ValueError):
            PauliString.identity(13).to_matrix()


@given(labels(), labels())
@settings(max_examples=60, deadline=None)
def test_commutation_matches_matrices(lab_a, lab_b):
    n = max(len(lab_a), len(lab_b))
    a = PauliString.from_label(lab_a.rjust(n, "I"))
    b = PauliString.from_label(lab_b.rjust(n, "I"))
    ma, mb = a.to_matrix(), b.to_matrix()
    commutes = np.allclose(ma @ mb, mb @ ma)
    assert a.commutes_with(b) == commutes


@given(labels())
@settings(max_examples=60, deadline=None)
def test_self_product_is_identity(lab):
    p = PauliString.from_label(lab)
    phase, prod = p.compose(p)
    assert prod.is_identity
    assert phase == 1


@given(labels(), labels(), labels())
@settings(max_examples=40, deadline=None)
def test_compose_associative(lab_a, lab_b, lab_c):
    n = max(len(lab_a), len(lab_b), len(lab_c))
    a = PauliString.from_label(lab_a.rjust(n, "I"))
    b = PauliString.from_label(lab_b.rjust(n, "I"))
    c = PauliString.from_label(lab_c.rjust(n, "I"))
    ph1, ab = a.compose(b)
    ph2, ab_c = ab.compose(c)
    ph3, bc = b.compose(c)
    ph4, a_bc = a.compose(bc)
    assert ab_c == a_bc
    assert np.isclose(ph1 * ph2, ph3 * ph4)


@given(labels())
@settings(max_examples=40, deadline=None)
def test_lex_key_total_order_consistent(lab):
    p = PauliString.from_label(lab)
    assert len(p.lex_key()) == len(lab)
