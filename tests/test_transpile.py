"""Tests for the generic transpilation substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Gate, QuantumCircuit, circuit_unitary, equivalent_up_to_global_phase
from repro.transpile import (
    CouplingMap,
    Layout,
    cancel_adjacent_pairs,
    commutative_cancel,
    dense_initial_layout,
    full,
    grid,
    heavy_hex,
    linear,
    manhattan_65,
    melbourne,
    merge_rotations,
    optimize,
    ring,
    route,
    transpile,
    trivial_layout,
    validate_routed,
)

from helpers import layout_permutation, terms_unitary


class TestCouplingMaps:
    def test_linear_edges(self):
        cmap = linear(4)
        assert cmap.edges == ((0, 1), (1, 2), (2, 3))
        assert cmap.distance(0, 3) == 3

    def test_ring_wraps(self):
        cmap = ring(5)
        assert cmap.distance(0, 4) == 1
        assert cmap.distance(0, 2) == 2

    def test_grid_dimensions(self):
        cmap = grid(3, 4)
        assert cmap.num_qubits == 12
        assert cmap.is_connected(0, 4)
        assert not cmap.is_connected(3, 4)

    def test_full(self):
        cmap = full(4)
        assert all(cmap.distance(i, j) <= 1 for i in range(4) for j in range(4))

    def test_manhattan_is_65_sparse(self):
        cmap = manhattan_65()
        assert cmap.num_qubits == 65
        import networkx as nx
        assert nx.is_connected(cmap.graph)
        assert max(dict(cmap.graph.degree).values()) <= 3  # heavy-hex property

    def test_melbourne_ladder(self):
        cmap = melbourne()
        assert cmap.num_qubits == 15
        assert cmap.is_connected(1, 13)
        assert cmap.is_connected(8, 7)

    def test_heavy_hex_parametric(self):
        cmap = heavy_hex(3, 7)
        import networkx as nx
        assert nx.is_connected(cmap.graph)

    def test_connected_component_within(self):
        cmap = linear(5)
        comp = cmap.connected_component_within(1, [0, 1, 3])
        assert comp == (0, 1)

    def test_bad_edges_rejected(self):
        with pytest.raises(ValueError):
            CouplingMap([(0, 9)], num_qubits=2)


class TestLayout:
    def test_bijection(self):
        layout = Layout({0: 5, 1: 3})
        assert layout.physical(0) == 5
        assert layout.logical(3) == 1
        assert layout.logical(7) is None

    def test_non_injective_rejected(self):
        with pytest.raises(ValueError):
            Layout({0: 1, 1: 1})

    def test_swap_physical(self):
        layout = Layout({0: 0, 1: 1})
        layout.swap_physical(0, 1)
        assert layout.physical(0) == 1
        assert layout.physical(1) == 0

    def test_swap_with_unmapped(self):
        layout = Layout({0: 0})
        layout.swap_physical(0, 5)
        assert layout.physical(0) == 5
        assert layout.logical(0) is None

    def test_dense_layout_connected(self):
        cmap = manhattan_65()
        layout = dense_initial_layout(cmap, 10)
        assert cmap.subgraph_is_connected(layout.physical_qubits())

    def test_dense_layout_too_big(self):
        with pytest.raises(ValueError):
            dense_initial_layout(linear(3), 4)

    def test_trivial(self):
        assert trivial_layout(3).as_dict() == {0: 0, 1: 1, 2: 2}


class TestPeephole:
    def test_cancel_hh(self):
        qc = QuantumCircuit(1)
        qc.h(0).h(0)
        out, removed = cancel_adjacent_pairs(qc)
        assert removed == 2 and len(out) == 0

    def test_cancel_cx_pair(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).cx(0, 1)
        out, removed = cancel_adjacent_pairs(qc)
        assert len(out) == 0

    def test_no_cancel_when_interleaved(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).h(1).cx(0, 1)
        out, removed = cancel_adjacent_pairs(qc)
        assert len(out) == 3

    def test_cascading_cancellation(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).h(1).h(1).cx(0, 1)
        out = optimize(qc)
        assert len(out) == 0

    def test_merge_rz(self):
        qc = QuantumCircuit(1)
        qc.rz(0.3, 0).rz(0.4, 0)
        out, _ = merge_rotations(qc)
        assert len(out) == 1
        assert np.isclose(out[0].params[0], 0.7)

    def test_merge_to_zero_drops(self):
        qc = QuantumCircuit(1)
        qc.rz(0.3, 0).rz(-0.3, 0)
        out, _ = merge_rotations(qc)
        assert len(out) == 0

    def test_s_pair_becomes_z_rotation(self):
        qc = QuantumCircuit(1)
        qc.s(0).s(0)
        out, _ = merge_rotations(qc)
        assert len(out) == 1
        u = circuit_unitary(out)
        assert equivalent_up_to_global_phase(u, np.diag([1, -1]).astype(complex))

    def test_commutative_cancel_through_rz(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).rz(0.5, 0).cx(0, 1)
        out, removed = commutative_cancel(qc)
        assert removed == 2
        assert [g.name for g in out] == ["rz"]

    def test_commutative_cancel_through_rx_on_target(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).rx(0.5, 1).cx(0, 1)
        out, removed = commutative_cancel(qc)
        assert removed == 2

    def test_commutative_no_cancel_h_blocks(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).h(0).cx(0, 1)
        out, removed = commutative_cancel(qc)
        assert removed == 0

    def test_optimize_preserves_unitary(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).rz(0.3, 1).cx(0, 1).h(0).cx(1, 2).cx(1, 2).s(2).sdg(2)
        out = optimize(qc)
        assert equivalent_up_to_global_phase(circuit_unitary(out), circuit_unitary(qc))
        assert len(out) < len(qc)


class TestRouting:
    def test_already_routable_unchanged_counts(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1).cx(1, 2)
        result = route(qc, linear(3), initial_layout=trivial_layout(3))
        assert result.swap_count == 0
        validate_routed(result.circuit, linear(3))

    def test_inserts_swaps_for_distant_pair(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 3)
        result = route(qc, linear(4), initial_layout=trivial_layout(4))
        assert result.swap_count >= 1
        validate_routed(result.circuit, linear(4))

    def test_routing_preserves_semantics(self):
        qc = QuantumCircuit(4)
        qc.h(0).cx(0, 3).rz(0.7, 3).cx(1, 2).cx(0, 2)
        cmap = linear(4)
        result = route(qc, cmap, initial_layout=trivial_layout(4))
        u_routed = circuit_unitary(result.circuit)
        s_init = layout_permutation(result.initial_layout, 4)
        s_final = layout_permutation(result.final_layout, 4)
        expected = s_final @ circuit_unitary(qc) @ s_init.conj().T
        assert equivalent_up_to_global_phase(u_routed, expected)

    def test_validate_catches_bad_gate(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 2)
        with pytest.raises(ValueError):
            validate_routed(qc, linear(3))


class TestPipeline:
    def test_level0_no_optimization(self):
        qc = QuantumCircuit(2)
        qc.h(0).h(0)
        assert len(transpile(qc, optimization_level=0)) == 2

    def test_level3_cleans_up(self):
        qc = QuantumCircuit(2)
        qc.h(0).h(0).cx(0, 1).cx(0, 1)
        assert len(transpile(qc, optimization_level=3)) == 0

    def test_level_1_2_monotone(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).rz(0.1, 0).cx(0, 1).h(1).h(1)
        l1 = transpile(qc, optimization_level=1)
        l2 = transpile(qc, optimization_level=2)
        assert len(l2) <= len(l1)

    def test_routed_output_valid(self):
        qc = QuantumCircuit(5)
        for i in range(5):
            for j in range(i + 1, 5):
                qc.cx(i, j)
        cmap = linear(5)
        out = transpile(qc, coupling=cmap)
        validate_routed(out, cmap)


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_optimize_random_circuits_preserve_unitary(data):
    n = 3
    qc = QuantumCircuit(n)
    num_gates = data.draw(st.integers(1, 15))
    for _ in range(num_gates):
        kind = data.draw(st.sampled_from(["h", "s", "rz", "cx", "yh", "x"]))
        q = data.draw(st.integers(0, n - 1))
        if kind == "cx":
            t = data.draw(st.integers(0, n - 1).filter(lambda x: x != q))
            qc.cx(q, t)
        elif kind == "rz":
            qc.rz(data.draw(st.floats(-3, 3, allow_nan=False)), q)
        else:
            qc.append(Gate(kind, (q,)))
    out = optimize(qc)
    assert len(out) <= len(qc)
    assert equivalent_up_to_global_phase(circuit_unitary(out), circuit_unitary(qc))


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_routing_random_circuits_valid_and_equivalent(data):
    n = 4
    qc = QuantumCircuit(n)
    num_gates = data.draw(st.integers(1, 10))
    for _ in range(num_gates):
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1).filter(lambda x: x != a))
        qc.cx(a, b)
    cmap = linear(n)
    result = route(qc, cmap, initial_layout=trivial_layout(n))
    validate_routed(result.circuit, cmap)
    s_init = layout_permutation(result.initial_layout, n)
    s_final = layout_permutation(result.final_layout, n)
    expected = s_final @ circuit_unitary(qc) @ s_init.conj().T
    assert equivalent_up_to_global_phase(circuit_unitary(result.circuit), expected)
