"""Soak test: 60 seconds of hostile traffic against a real gateway.

Run with ``-m slow`` (excluded from tier-1; the nightly CI job runs it).
``REPRO_SOAK_SECONDS`` shortens the churn window for local iteration.

One ``repro.cli serve`` subprocess (process-pool workers, on-disk cache,
unix socket) takes:

* churning well-behaved clients (connect, mixed warm/cold/stats/ping
  traffic, disconnect, reconnect);
* rude clients that send garbage frames or slam the connection shut with
  requests still in flight;
* an injector that SIGKILLs a random pool worker every few seconds —
  with speculation on, kills land during background opt-3 upgrades too,
  so the speculative ledger is audited under worker death.

Afterwards the gateway must still be coherent: queue drained, no leaked
in-flight work, a stats ledger that reconciles (every received request
has exactly one outcome), responses the clients actually got accounted
for, file descriptors back to idle, a clean SIGTERM exit, no orphaned
worker processes, and no partial artifacts in the store.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.service import GatewayClient

pytestmark = pytest.mark.slow

SRC = str(Path(__file__).resolve().parent.parent / "src")
SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "60"))

WARM_SPECS = [
    {"text": "{(XXI, 1.0), (YYI, 0.5), 0.3};", "label": "warm-a"},
    {"text": "{(IZZ, -0.25), 0.7};", "label": "warm-b"},
    {"benchmark": "Ising-1D", "scale": "small"},
]


def cold_spec(thread_id: int, sequence: int) -> dict:
    """A unique small program per (thread, sequence): always a cold miss."""
    paulis = "IXYZ"
    state = (thread_id * 7919 + sequence * 104729) & 0x7FFFFFFF
    label = "".join(paulis[(state >> (2 * q)) & 3] for q in range(5))
    if set(label) == {"I"}:
        label = "XY" + label[2:]
    return {
        "text": f"{{({label}, 1.0), 0.{1 + sequence % 9}}};",
        "label": f"cold-{thread_id}-{sequence}",
    }


class ClientLedger:
    """What the churn threads actually observed, summed at the end."""

    def __init__(self):
        self.lock = threading.Lock()
        self.ok = 0
        self.errors = 0
        self.send_failures = 0

    def add(self, ok: int, errors: int, send_failures: int = 0):
        with self.lock:
            self.ok += ok
            self.errors += errors
            self.send_failures += send_failures


def churn_client(socket_path: str, thread_id: int, deadline: float,
                 ledger: ClientLedger, rude: bool):
    """Loop: connect, run a small burst, disconnect; rude clients inject
    garbage and hang up without reading."""
    sequence = 0
    while time.monotonic() < deadline:
        try:
            responses = _one_session(socket_path, thread_id, sequence, rude)
        except (ConnectionError, OSError, asyncio.TimeoutError, TimeoutError):
            ledger.add(0, 0, 1)
            time.sleep(0.05)
            continue
        ok = sum(1 for r in responses if r.get("ok"))
        ledger.add(ok, len(responses) - ok)
        sequence += 10
        time.sleep(0.01)


def _one_session(socket_path: str, thread_id: int, base: int,
                 rude: bool) -> list:
    async def session():
        client = await GatewayClient.connect(socket_path=socket_path,
                                             timeout=20)
        responses = []
        try:
            if rude:
                client._writer.write(b'{"op": "compile"}\n')   # missing bits
                client._writer.write(b"pure garbage\n")
                await client._writer.drain()
                responses.append(await asyncio.wait_for(
                    client._read_frame(), 30))   # bad-request reply
                responses.append(await asyncio.wait_for(
                    client._read_frame(), 30))   # bad-frame reply
                # Launch a cold compile and slam the door mid-flight.
                await client._send({"op": "compile", "id": "orphan",
                                    "spec": cold_spec(thread_id, base + 99)})
                return [r for r in responses if True]
            for i in range(4):
                spec = (WARM_SPECS[(base + i) % len(WARM_SPECS)]
                        if i % 2 == 0 else cold_spec(thread_id, base + i))
                responses.append(await client.compile(
                    spec, f"s{thread_id}-{base + i}", timeout=120))
            # Speculative-lane churn: subscribe to the background
            # upgrade, then either cancel the subscription (withdrawing
            # the job when we were its only interest), briefly wait for
            # the push, or just hang up — the disconnect below must
            # withdraw it.  All three paths land in the spec ledger.
            upgrade_id = f"up{thread_id}-{base}"
            answered = await client.compile(
                cold_spec(thread_id, base + 7), upgrade_id,
                timeout=120, want_upgrade=True)
            responses.append(answered)
            if answered.get("ok"):
                mode = (thread_id + base) % 3
                if mode == 0:
                    responses.append(await client.cancel(upgrade_id))
                elif mode == 1:
                    try:
                        await client.wait_upgrade(upgrade_id, timeout=3)
                    except (TimeoutError, asyncio.TimeoutError):
                        pass   # starved by cold churn: fine, priority works
                # mode 2: disconnect with the subscription live.
            responses.append(await client.ping())
            stats = await client.stats()
            assert stats["queue"]["depth"] <= stats["queue"]["limit"]
            return responses
        finally:
            await client.close()

    return asyncio.run(session())


def worker_killer(socket_path: str, deadline: float, kills: list):
    """Every ~7s, SIGKILL one pool worker through the stats verb."""
    while time.monotonic() < deadline:
        time.sleep(7)
        if time.monotonic() >= deadline:
            return
        try:
            async def snipe():
                client = await GatewayClient.connect(
                    socket_path=socket_path, timeout=20)
                stats = await client.stats()
                await client.close()
                return stats["workers"]["pids"]

            pids = asyncio.run(snipe())
            if pids:
                os.kill(pids[0], signal.SIGKILL)
                kills.append(pids[0])
        except (ConnectionError, OSError, ProcessLookupError,
                asyncio.TimeoutError, TimeoutError):
            continue


@pytest.mark.slow
def test_gateway_soak(tmp_path):
    socket_path = str(tmp_path / "gw.sock")
    cache_dir = tmp_path / "cache"
    env = {**os.environ, "PYTHONPATH": SRC}
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--socket", socket_path, "--cache", str(cache_dir),
         "--workers", "2", "--queue-limit", "32",
         "--speculate", "--speculative-limit", "8"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        assert "listening" in server.stdout.readline()

        deadline = time.monotonic() + SOAK_SECONDS
        ledger = ClientLedger()
        kills: list = []
        threads = [
            threading.Thread(
                target=churn_client,
                args=(socket_path, i, deadline, ledger, i % 3 == 2),
                daemon=True)
            for i in range(6)
        ]
        threads.append(threading.Thread(
            target=worker_killer, args=(socket_path, deadline, kills),
            daemon=True))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=SOAK_SECONDS + 120)
            assert not t.is_alive(), "a churn thread wedged"

        # ------------------------------------------------------------------
        # Reconciliation: connect one calm client and audit the wreckage.
        # ------------------------------------------------------------------
        async def audit():
            client = await GatewayClient.connect(socket_path=socket_path,
                                                 timeout=30)
            # Wait for the queue to fully drain (rude clients may have
            # left compiles in flight moments ago).
            drain_deadline = time.monotonic() + 120
            while time.monotonic() < drain_deadline:
                stats = await client.stats()
                queue = stats["queue"]
                if queue["depth"] == 0 and queue["in_flight"] == 0 \
                        and queue["cold_fingerprints"] == 0:
                    break
                await asyncio.sleep(0.25)
            # The gateway must still do real work after the storm.
            post = await client.compile(
                {"text": "{(XYXYX, 1.0), 0.5};", "label": "post-soak"},
                "post", timeout=120)
            assert post["ok"]
            # Let the background lane settle (the post-soak cold above
            # speculated too) before freezing the ledger.
            settle_deadline = time.monotonic() + 120
            while time.monotonic() < settle_deadline:
                stats = await client.stats()
                spec = stats["speculative"]
                if spec["queued"] == 0 and spec["in_flight"] == 0:
                    break
                await asyncio.sleep(0.25)
            final = await client.stats()
            await client.close()
            return final

        final = asyncio.run(audit())

        queue = final["queue"]
        assert queue["depth"] == 0, queue
        assert queue["in_flight"] == 0, queue
        assert queue["cold_fingerprints"] == 0, queue

        req = final["requests"]
        outcomes = (req["warm_hits"] + req["completed"] + req["failed"]
                    + req["cancelled"] + req["rejected"] + req["bad_specs"])
        assert req["received"] == outcomes, req
        assert req["failed"] == 0, req

        # The speculative ledger reconciles through cancels, disconnects,
        # preemption, and workers SIGKILLed mid-upgrade: every enqueued
        # background job reached exactly one terminal outcome.
        spec = final["speculative"]
        spec_outcomes = (spec["spec_upgraded"] + spec["spec_stale"]
                         + spec["spec_cancelled"] + spec["spec_dropped"])
        assert spec["spec_enqueued"] == spec_outcomes, spec
        assert spec["spec_enqueued"] > 0, spec
        assert spec["queued"] == 0 and spec["in_flight"] == 0, spec
        # Every response a client actually received was really served.
        assert ledger.ok + ledger.errors <= req["received"] \
            + req["bad_requests"] + 10_000  # pings/stats excluded loosely
        assert ledger.ok > 50, f"suspiciously little traffic: {vars(ledger)}"
        # Worker-death injection really happened and was survived.
        assert len(kills) >= 1
        assert final["workers"]["restarts"] >= 1
        # Only the audit connection remains; every churn socket was reaped.
        assert final["connections"] == 1, final["connections"]
        # fd hygiene: bounded by baseline + workers + small slack, not by
        # the hundreds of sockets the churn opened.
        assert final["open_fds"] is None or final["open_fds"] < 64, final

        worker_pids = final["workers"]["pids"]

        # ------------------------------------------------------------------
        # Clean shutdown: SIGTERM -> drain -> exit 0, workers reaped,
        # no partial artifacts on disk.
        # ------------------------------------------------------------------
        server.send_signal(signal.SIGTERM)
        assert server.wait(timeout=90) == 0
        for pid in worker_pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)
        assert not os.path.exists(socket_path)
        assert not list(cache_dir.rglob("*.tmp"))
        for artifact in cache_dir.rglob("*.json"):
            json.loads(artifact.read_text())   # every artifact is whole
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
