"""Vectorized symplectic kernels vs the scalar PauliString reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pauli import (
    PauliString,
    PauliTable,
    batch_commutes,
    batch_lex_keys,
    batch_overlap,
    batch_shared_support,
    popcount,
)

labels_strategy = st.lists(
    st.text(alphabet="IXYZ", min_size=5, max_size=5),
    min_size=1,
    max_size=12,
)


def table_of(labels):
    return PauliTable.from_strings([PauliString.from_label(s) for s in labels])


class TestConstruction:
    def test_round_trip(self):
        labels = ["XYZI", "IIII", "ZZXX"]
        table = table_of(labels)
        assert [s.label for s in table.to_strings()] == labels

    def test_getitem_and_len(self):
        table = table_of(["XY", "ZI"])
        assert len(table) == 2
        assert table[1] == PauliString.from_label("ZI")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PauliTable.from_strings([])

    def test_rejects_mixed_widths(self):
        with pytest.raises(ValueError):
            PauliTable.from_strings(
                [PauliString.from_label("XX"), PauliString.from_label("XXX")]
            )

    def test_rejects_bad_codes(self):
        with pytest.raises(ValueError):
            PauliTable(np.array([[4]], dtype=np.uint8))

    def test_wide_rows_pack_into_multiple_bytes(self):
        # 20 qubits -> 3 packed bytes per row.
        p = PauliString.from_sparse(20, {0: "X", 9: "Y", 19: "Z"})
        table = PauliTable.from_strings([p])
        assert table.x.shape == (1, 3)
        assert table[0] == p


class TestRowReductions:
    def test_weights_match_scalar(self):
        labels = ["XYZI", "IIII", "ZZXX", "IXII"]
        table = table_of(labels)
        expected = [PauliString.from_label(s).weight for s in labels]
        assert table.weights().tolist() == expected

    def test_basis_change_counts(self):
        # X and Y need basis changes; Z and I do not.
        table = table_of(["XYZI"])
        assert table.basis_change_counts().tolist() == [2]

    def test_popcount(self):
        arr = np.array([[0xFF, 0x01], [0x00, 0x00]], dtype=np.uint8)
        assert popcount(arr).tolist() == [9, 0]


class TestOverlap:
    def test_matrix_matches_scalar(self):
        labels = ["XYZIZ", "XYIIZ", "ZZZZZ", "IIIII"]
        strings = [PauliString.from_label(s) for s in labels]
        matrix = batch_overlap(strings)
        for i, a in enumerate(strings):
            for j, b in enumerate(strings):
                assert matrix[i, j] == a.overlap(b)

    def test_row_matches_matrix(self):
        table = table_of(["XYZ", "XXZ", "IYZ"])
        matrix = table.overlap_matrix()
        for i in range(3):
            assert table.overlaps(i).tolist() == matrix[i].tolist()

    def test_consecutive_overlaps(self):
        strings = [PauliString.from_label(s) for s in ["XYZ", "XXZ", "IYZ"]]
        table = PauliTable.from_strings(strings)
        expected = [a.overlap(b) for a, b in zip(strings, strings[1:])]
        assert table.consecutive_overlaps().tolist() == expected


class TestCommutation:
    def test_matrix_matches_scalar(self):
        labels = ["XX", "ZZ", "XZ", "YI"]
        strings = [PauliString.from_label(s) for s in labels]
        matrix = batch_commutes(strings)
        for i, a in enumerate(strings):
            for j, b in enumerate(strings):
                assert matrix[i, j] == a.commutes_with(b)


class TestSharedSupportAndLex:
    def test_shared_support_matches_scalar(self):
        strings = [PauliString.from_label(s) for s in ["XYZIZ", "XYIZZ"]]
        assert batch_shared_support(strings, 0, 1) == strings[0].shared_support(
            strings[1]
        )

    def test_lex_keys_match_scalar(self):
        labels = ["ZZI", "XIY", "IYX"]
        strings = [PauliString.from_label(s) for s in labels]
        ranks = batch_lex_keys(strings)
        for row, string in zip(ranks, strings):
            assert tuple(row) == string.lex_key()

    def test_lex_argsort_matches_sorted(self):
        labels = ["ZZI", "XIY", "IYX", "XIY"]
        strings = [PauliString.from_label(s) for s in labels]
        table = PauliTable.from_strings(strings)
        order = table.lex_argsort()
        expected = sorted(range(len(strings)), key=lambda i: strings[i].lex_key())
        assert order.tolist() == expected


@given(labels_strategy)
@settings(max_examples=60, deadline=None)
def test_batch_kernels_match_scalar_reference(labels):
    strings = [PauliString.from_label(s) for s in labels]
    table = PauliTable.from_strings(strings)
    m = len(strings)
    overlap = table.overlap_matrix()
    commute = table.commutation_matrix()
    ranks = table.lex_ranks()
    for i in range(m):
        assert tuple(ranks[i]) == strings[i].lex_key()
        for j in range(m):
            assert overlap[i, j] == strings[i].overlap(strings[j])
            assert commute[i, j] == strings[i].commutes_with(strings[j])
            assert table.shared_support(i, j) == strings[i].shared_support(strings[j])
