"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_scales_to_width(self):
        text = bar_chart({"a": 2.0, "b": 1.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_baseline_tick(self):
        text = bar_chart({"a": 2.0, "b": 0.5}, width=20, baseline=1.0)
        # The small bar's line must show the reference tick beyond the bar.
        assert "|" in text.splitlines()[1]

    def test_values_printed(self):
        text = bar_chart({"x": 1.234}, unit="x")
        assert "1.23x" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_negative_clamped(self):
        text = bar_chart({"neg": -1.0, "pos": 1.0}, width=8)
        assert text.splitlines()[0].count("█") == 0

    def test_grouped(self):
        text = grouped_bar_chart(
            [("first", {"a": 1.0}), ("second", {"b": 2.0})]
        )
        assert "first:" in text and "second:" in text


class TestScheduleArt:
    def make_schedule(self):
        from repro.core import do_schedule
        from repro.ir import PauliBlock, PauliProgram

        prog = PauliProgram([
            PauliBlock(["IZZZ"], 0.1, name="big"),
            PauliBlock(["ZIII"], 0.1, name="small"),
        ])
        return do_schedule(prog)

    def test_renders_rows_per_qubit(self):
        from repro.analysis import render_schedule

        art = render_schedule(self.make_schedule())
        lines = art.splitlines()
        assert lines[0].startswith(" ")
        assert sum(1 for l in lines if l.startswith("q")) == 4

    def test_padding_block_in_same_band(self):
        from repro.analysis import render_schedule

        art = render_schedule(self.make_schedule())
        # One layer: the band holds two columns (primary + padding).
        q0_row = [l for l in art.splitlines() if l.startswith("q0")][0]
        assert "|" not in q0_row  # single layer only

    def test_empty_schedule_rejected(self):
        from repro.analysis import render_schedule
        import pytest

        with pytest.raises(ValueError):
            render_schedule([])

    def test_layer_truncation_note(self):
        from repro.analysis import render_schedule
        from repro.core import gco_schedule
        from repro.ir import PauliProgram

        prog = PauliProgram.from_hamiltonian(
            [("ZZ", 1.0)] * 20, parameter=0.1
        )
        art = render_schedule(gco_schedule(prog), max_layers=3)
        assert "more layers" in art
