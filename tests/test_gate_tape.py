"""Tests for the columnar gate tape substrate under QuantumCircuit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Gate, QuantumCircuit
from repro.circuit.gates import OP
from repro.circuit.tape import NO_SLOT, GateTape


def _random_circuit(data, n=4, max_gates=20):
    qc = QuantumCircuit(n)
    num_gates = data.draw(st.integers(0, max_gates))
    for _ in range(num_gates):
        kind = data.draw(st.sampled_from(["h", "s", "rz", "x", "cx", "cz", "swap"]))
        a = data.draw(st.integers(0, n - 1))
        if kind in ("cx", "cz", "swap"):
            b = data.draw(st.integers(0, n - 1).filter(lambda x: x != a))
            qc.append(Gate(kind, (a, b)))
        elif kind == "rz":
            qc.rz(data.draw(st.floats(-3, 3, allow_nan=False)), a)
        else:
            qc.append(Gate(kind, (a,)))
    return qc


class TestTapeStructure:
    def test_append_links_and_counts(self):
        tape = GateTape(3)
        s0 = tape.append(OP["h"], 0)
        s1 = tape.append(OP["cx"], 0, 1)
        s2 = tape.append(OP["rz"], 1, NO_SLOT, 0.5)
        assert tape.alive_count == 3
        assert tape.wire_sequence(0) == [s0, s1]
        assert tape.wire_sequence(1) == [s1, s2]
        assert tape.wire_sequence(2) == []
        assert tape.wire_next(s0, 0) == s1
        assert tape.wire_prev(s2, 1) == s1
        tape.check_invariants()

    def test_remove_splices_both_wires(self):
        tape = GateTape(2)
        s0 = tape.append(OP["h"], 0)
        s1 = tape.append(OP["cx"], 0, 1)
        s2 = tape.append(OP["h"], 1)
        tape.remove(s1)
        assert tape.wire_sequence(0) == [s0]
        assert tape.wire_sequence(1) == [s2]
        assert tape.alive_count == 2
        assert tape.counts[OP["cx"]] == 0
        tape.check_invariants()

    def test_set_two_qubit_op_swaps_roles(self):
        tape = GateTape(2)
        s0 = tape.append(OP["h"], 0)
        s1 = tape.append(OP["swap"], 0, 1)
        s2 = tape.append(OP["h"], 1)
        tape.ensure_links()
        tape.set_two_qubit_op(s1, OP["cx"], 1, 0)
        assert tape.q0[s1] == 1 and tape.q1[s1] == 0
        assert tape.wire_sequence(0) == [s0, s1]
        assert tape.wire_sequence(1) == [s1, s2]
        assert tape.counts[OP["swap"]] == 0 and tape.counts[OP["cx"]] == 1
        tape.check_invariants()

    def test_lazy_links_realize_after_appends(self):
        tape = GateTape(2)
        tape.append(OP["h"], 0)
        tape.append(OP["cx"], 0, 1)
        assert not tape._links_ready
        assert tape.wire_sequence(0) == [0, 1]
        assert tape._links_ready
        # appends after realization maintain links incrementally
        tape.append(OP["h"], 1)
        assert tape.wire_sequence(1) == [1, 2]
        tape.check_invariants()

    def test_compact_renumbers(self):
        tape = GateTape(2)
        tape.append(OP["h"], 0)
        s1 = tape.append(OP["x"], 0)
        tape.append(OP["cx"], 0, 1)
        tape.remove(s1)
        dense = tape.compact()
        assert dense.alive_count == 2
        assert [dense.op[s] for s in dense.iter_slots()] == [OP["h"], OP["cx"]]
        dense.check_invariants()


class TestCircuitContainerSemantics:
    def test_truncate_drops_tail(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).rz(0.3, 1).h(1)
        qc.truncate(2)
        assert [g.name for g in qc] == ["h", "cx"]
        assert qc.cnot_count == 1
        qc.tape.check_invariants()

    def test_truncate_is_rollback_safe(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        mark = len(qc)
        qc.cx(0, 1).swap(0, 1)
        qc.truncate(mark)
        assert len(qc) == 1
        qc.cx(1, 0)  # appending after rollback keeps wire order consistent
        assert [g.name for g in qc] == ["h", "cx"]
        assert qc[1].qubits == (1, 0)
        qc.tape.check_invariants()

    def test_getitem_slice_and_negative(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).s(1)
        assert qc[-1].name == "s"
        assert [g.name for g in qc[0:2]] == ["h", "cx"]

    def test_copy_is_independent(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        other = qc.copy()
        other.x(1)
        assert len(qc) == 2 and len(other) == 3
        assert qc.count_ops() == {"h": 1, "cx": 1}

    def test_depth_swap_weighting_matches_decomposition(self):
        qc = QuantumCircuit(3)
        qc.h(0).swap(0, 1).cx(1, 2).swap(2, 0)
        assert qc.depth(swap_depth=3) == qc.decompose_swaps().depth()
        assert qc.depth() == 4

    def test_builders_reject_duplicate_qubits(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).cx(1, 1)
        with pytest.raises(ValueError):
            QuantumCircuit(3).swap(2, 2)

    def test_remap_rejects_collapsing_map(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        with pytest.raises(ValueError):
            qc.remap_qubits({0: 0, 1: 0})


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_tape_invariants_hold_under_mutation(data):
    qc = _random_circuit(data)
    qc.tape.check_invariants()
    # wire sequences agree with a straight scan of the gate list
    for q in range(qc.num_qubits):
        scanned = [i for i, g in enumerate(qc) if q in g.qubits]
        slots = qc.tape.wire_sequence(q)
        order = {slot: idx for idx, slot in enumerate(qc.tape.iter_slots())}
        assert [order[s] for s in slots] == scanned
    # counts agree with a scan
    ops = {}
    for g in qc:
        ops[g.name] = ops.get(g.name, 0) + 1
    assert qc.count_ops() == ops
    if len(qc) > 1:
        cut = data.draw(st.integers(0, len(qc) - 1))
        kept = list(qc.gates)[:cut]
        qc.truncate(cut)
        assert list(qc.gates) == kept
        qc.tape.check_invariants()
