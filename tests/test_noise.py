"""Tests for the noise model, noisy sampler, and QAOA study glue."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.noise import (
    NoiseModel,
    esp,
    evaluate_qaoa,
    build_full_circuit,
    ideal_probabilities,
    noisy_probabilities,
    optimize_parameters,
    qaoa_logical_circuit,
    qaoa_study,
    success_probability,
)
from repro.transpile import linear, ring, melbourne


@pytest.fixture
def line3_model():
    return NoiseModel.uniform(linear(3), single_qubit=1e-3, two_qubit=2e-2, readout=3e-2)


class TestNoiseModel:
    def test_uniform_rates(self, line3_model):
        assert line3_model.gate_error("h", (0,)) == 1e-3
        assert line3_model.gate_error("cx", (0, 1)) == 2e-2

    def test_swap_is_three_cnots(self, line3_model):
        swap_err = line3_model.gate_error("swap", (0, 1))
        assert np.isclose(1.0 - swap_err, (1.0 - 2e-2) ** 3)

    def test_unknown_edge_raises(self, line3_model):
        with pytest.raises(ValueError):
            line3_model.gate_error("cx", (0, 2))

    def test_calibrated_is_seeded_and_spread(self):
        cmap = melbourne()
        a = NoiseModel.calibrated(cmap, seed=3)
        b = NoiseModel.calibrated(cmap, seed=3)
        assert a.two_qubit_error == b.two_qubit_error
        rates = list(a.two_qubit_error.values())
        assert max(rates) > min(rates)

    def test_edge_error_map(self, line3_model):
        assert set(line3_model.edge_error_map()) == {(0, 1), (1, 2)}


class TestESP:
    def test_empty_circuit(self, line3_model):
        assert esp(QuantumCircuit(3), line3_model) == 1.0

    def test_esp_decreases_with_gates(self, line3_model):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        one = esp(qc, line3_model)
        qc.cx(1, 2)
        two = esp(qc, line3_model)
        assert two < one < 1.0

    def test_readout_factor(self, line3_model):
        qc = QuantumCircuit(3)
        with_readout = esp(qc, line3_model, measured_qubits=[0, 1])
        assert np.isclose(with_readout, (1 - 3e-2) ** 2)


class TestSampler:
    def test_noiseless_limit_matches_ideal(self):
        cmap = linear(2)
        model = NoiseModel.uniform(cmap, single_qubit=0.0, two_qubit=0.0, readout=0.0)
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        noisy = noisy_probabilities(qc, model, trajectories=5)
        ideal = ideal_probabilities(qc)
        assert np.allclose(noisy, ideal)

    def test_noise_spreads_distribution(self):
        cmap = linear(2)
        model = NoiseModel.uniform(cmap, single_qubit=0.05, two_qubit=0.2, readout=0.0)
        qc = QuantumCircuit(2)
        qc.x(0).cx(0, 1)  # ideal output |11>
        noisy = noisy_probabilities(qc, model, trajectories=400, seed=5)
        assert noisy[3] < 1.0
        assert np.isclose(noisy.sum(), 1.0)

    def test_readout_channel_mixes(self):
        cmap = linear(1)
        model = NoiseModel.uniform(cmap, single_qubit=0.0, two_qubit=0.0, readout=0.25)
        qc = QuantumCircuit(1)
        qc.x(0)
        probs = noisy_probabilities(qc, model, trajectories=3, measured_qubits=[0])
        assert np.allclose(probs, [0.25, 0.75])

    def test_success_probability(self):
        probs = np.array([0.1, 0.2, 0.3, 0.4])
        assert np.isclose(success_probability(probs, [1, 3]), 0.6)


class TestQAOAStudy:
    @pytest.fixture
    def square(self):
        return nx.Graph([(0, 1), (1, 2), (2, 3), (3, 0)])

    def test_logical_circuit_structure(self, square):
        qc = qaoa_logical_circuit(square, 0.5, 0.3)
        ops = qc.count_ops()
        assert ops["h"] == 4
        assert ops["rx"] == 4
        assert ops["rz"] == 4  # one per edge

    def test_optimize_parameters_beats_random_guess(self, square):
        gamma, beta, score = optimize_parameters(square, resolution=5)
        # The square's optimal cut (alternating) should be strongly amplified.
        uniform = 2 / 16  # two optimal assignments out of 16
        assert score > uniform

    def test_full_circuit_runs_both_methods(self, square):
        cmap = ring(4)
        model = NoiseModel.uniform(cmap)
        for method in ("baseline", "ph"):
            run = build_full_circuit(square, 0.4, 0.3, cmap, model, method)
            assert run.circuit.num_qubits == 4
            assert set(run.measured) == {0, 1, 2, 3}

    def test_unknown_method(self, square):
        with pytest.raises(ValueError):
            build_full_circuit(square, 0.4, 0.3, ring(4), None, "magic")

    def test_evaluate_returns_metrics(self, square):
        cmap = ring(4)
        model = NoiseModel.uniform(cmap)
        run = build_full_circuit(square, 0.4, 0.3, cmap, model, "ph")
        metrics = evaluate_qaoa(run, square, model, trajectories=30)
        assert 0.0 <= metrics["rsp"] <= 1.0
        assert 0.0 < metrics["esp"] <= 1.0
        assert metrics["ideal_success"] > 0.0

    def test_noisy_success_below_ideal(self, square):
        cmap = ring(4)
        model = NoiseModel.uniform(cmap, single_qubit=5e-3, two_qubit=5e-2, readout=5e-2)
        run = build_full_circuit(square, *optimize_parameters(square, 4)[:2], cmap, model, "ph")
        metrics = evaluate_qaoa(run, square, model, trajectories=80)
        assert metrics["rsp"] < metrics["ideal_success"]

    def test_study_end_to_end_small(self, square):
        cmap = ring(4)
        model = NoiseModel.uniform(cmap)
        results = qaoa_study(square, cmap, model, resolution=3, trajectories=20)
        assert set(results) == {"baseline", "ph", "improvement"}
        assert results["improvement"]["esp"] > 0
