"""Functional tests for the cluster router (in-process, fast).

Everything runs on the test's own event loop: N thread-mode gateways
(``workers=0``) with pull-through peer stores, fronted by one
:class:`ClusterRouter` on a loopback TCP port.  No subprocesses — the
routing, quota, failover, and reconciliation logic is identical to the
supervised fleet, which ``test_cluster_soak.py`` exercises for real
behind ``-m slow``.
"""

import asyncio
import time

import pytest

from repro.service import (
    ClusterConfig,
    ClusterRouter,
    CompileGateway,
    GatewayClient,
    GatewayConfig,
    NodeSpec,
    plan_cluster,
)
from repro.service.protocol import (
    E_BAD_SPEC,
    E_CANCELLED,
    E_OVERLOADED,
    E_UNAVAILABLE,
)

SPEC_A = {"text": "{(XXI, 1.0), (YYI, 0.5), 0.3};", "label": "a"}
SPEC_B = {"text": "{(IZZ, -0.25), 0.7};", "label": "b"}
SLOW_SPEC = {"benchmark": "Rand-30", "scale": "paper", "label": "slow"}


def run(coro):
    return asyncio.run(coro)


async def make_cluster(tmp_path, nodes=3, **router_overrides):
    """N thread-mode gateways with peer stores + one router, all on the
    current loop.  Returns ``(router, gateways)``."""
    roots = [str(tmp_path / f"store-{i}") for i in range(nodes)]
    gateways = []
    for i in range(nodes):
        gateway = CompileGateway(GatewayConfig(
            cache_root=roots[i], workers=0, port=0,
            peer_stores=tuple(r for j, r in enumerate(roots) if j != i),
        ))
        await gateway.start()
        gateways.append(gateway)
    specs = tuple(
        NodeSpec(name=f"node-{i}", host="127.0.0.1",
                 port=gateways[i].port, cache_root=roots[i])
        for i in range(nodes)
    )
    router = ClusterRouter(ClusterConfig(nodes=specs, port=0,
                                         **router_overrides))
    await router.start()
    assert router.healthy_nodes() == tuple(s.name for s in specs)
    return router, gateways


async def teardown(router, gateways):
    await router.close(drain=False)
    for gateway in gateways:
        try:
            await gateway.close(drain=False)
        except Exception:
            pass


async def wait_until(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        await asyncio.sleep(0.02)
    pytest.fail(f"timed out waiting for {message}")


class TestConfig:
    def test_plan_cluster_layout(self, tmp_path):
        config = plan_cluster(tmp_path, nodes=3, workers=2, queue_limit=16,
                              vnodes=64, tenant_quotas={"acme": 4})
        assert len(config.nodes) == 3
        assert config.vnodes == 64
        assert config.tenant_quotas == {"acme": 4}
        assert config.socket_path == str(tmp_path / "router.sock")
        for i, spec in enumerate(config.nodes):
            assert spec.name == f"node-{i}"
            assert spec.socket_path == str(tmp_path / f"node-{i}.sock")
            assert spec.cache_root == str(tmp_path / f"store-{i}")
            assert spec.workers == 2
            # Trunk-as-one-client: the node-side per-client cap must not
            # throttle the whole cluster, so it defaults to queue_limit.
            assert spec.per_client_limit == spec.queue_limit == 16
            assert len(spec.peer_stores) == 2
            assert spec.cache_root not in spec.peer_stores

    def test_plan_cluster_rejects_zero_nodes(self, tmp_path):
        with pytest.raises(ValueError):
            plan_cluster(tmp_path, nodes=0)

    def test_router_rejects_bad_node_sets(self):
        with pytest.raises(ValueError):
            ClusterRouter(ClusterConfig(nodes=()))
        with pytest.raises(ValueError):
            ClusterRouter(ClusterConfig(nodes=(
                NodeSpec(name="dup"), NodeSpec(name="dup"))))


class TestRouting:
    def test_cold_then_warm_through_the_router(self, tmp_path):
        async def scenario():
            router, gateways = await make_cluster(tmp_path)
            client = await GatewayClient.connect(port=router.port)
            cold = await client.compile(SPEC_A, "r1", timeout=120)
            assert cold["ok"] and not cold["cached"]
            warm = await client.compile(SPEC_A, "r2", timeout=120)
            assert warm["ok"] and warm["cached"]
            assert warm["fingerprint"] == cold["fingerprint"]
            assert warm["metrics"] == cold["metrics"]
            # Sticky placement: both requests landed on the ring owner.
            owner = router.ring.owner(cold["fingerprint"])
            owner_index = int(owner.split("-")[1])
            node_stats = gateways[owner_index].stats()
            assert node_stats["requests"]["received"] == 2
            assert node_stats["requests"]["warm_hits"] == 1
            # Router ledger reconciles: 2 received, 1 warm + 1 completed.
            snap = router.router_stats()["requests"]
            assert snap["received"] == 2
            assert snap["warm_hits"] == 1 and snap["completed"] == 1
            await client.close()
            await teardown(router, gateways)

        run(scenario())

    def test_distinct_specs_spread_and_everyone_reconciles(self, tmp_path):
        async def scenario():
            router, gateways = await make_cluster(tmp_path)
            client = await GatewayClient.connect(port=router.port)
            specs = [{"text": f"{{(XZXZX, 1.0), 0.{i+1}}};"}
                     for i in range(8)]
            responses, _ = await client.run_specs(specs, window=8,
                                                  timeout=240)
            assert all(r and r["ok"] for r in responses)
            stats = await client.stats()
            assert set(stats) == {"router", "nodes", "cluster"}
            req = stats["router"]["requests"]
            outcomes = (req["warm_hits"] + req["completed"] + req["failed"]
                        + req["cancelled"] + req["rejected"]
                        + req["bad_specs"])
            assert req["received"] == outcomes == 8
            # Node sections carry real per-node snapshots; the cluster
            # section is their exact sum.
            assert len(stats["nodes"]) == 3
            node_received = sum(
                section["stats"]["requests"]["received"]
                for section in stats["nodes"].values())
            assert stats["cluster"]["requests"]["received"] == node_received
            assert node_received == 8
            assert "hit_rate" not in stats["cluster"]["cache"]
            assert stats["router"]["nodes_healthy"] == 3
            await client.close()
            await teardown(router, gateways)

        run(scenario())

    def test_bad_spec_rejected_at_the_router(self, tmp_path):
        async def scenario():
            router, gateways = await make_cluster(tmp_path, nodes=1)
            client = await GatewayClient.connect(port=router.port)
            bad = await client.compile({"benchmark": "No-Such"}, "r1")
            assert not bad["ok"] and bad["code"] == E_BAD_SPEC
            snap = router.router_stats()["requests"]
            assert snap["bad_specs"] == 1 and snap["received"] == 1
            # The fleet never saw it: the router fingerprints first.
            assert gateways[0].stats()["requests"]["received"] == 0
            await client.close()
            await teardown(router, gateways)

        run(scenario())

    def test_ping_and_disabled_shutdown(self, tmp_path):
        async def scenario():
            router, gateways = await make_cluster(tmp_path, nodes=1)
            client = await GatewayClient.connect(port=router.port)
            pong = await client.ping()
            assert pong["op"] == "pong" and pong["ok"]
            refused = await client.request({"op": "shutdown", "id": "x"})
            assert refused["ok"] is False
            assert not router.shutdown_requested.is_set()
            await client.close()
            await teardown(router, gateways)

        run(scenario())


class TestReplication:
    def test_pull_through_serves_a_dead_nodes_artifact(self, tmp_path):
        """The acceptance criterion: an artifact compiled on one node is
        served byte-identical by a peer after the owner dies — warm, via
        pull-through, without recompilation."""
        async def scenario():
            router, gateways = await make_cluster(tmp_path)
            client = await GatewayClient.connect(port=router.port)
            cold = await client.compile(SPEC_A, "r1", want="artifact",
                                        timeout=120)
            assert cold["ok"] and not cold["cached"]
            owner = router.ring.owner(cold["fingerprint"])
            owner_index = int(owner.split("-")[1])

            # Kill the owner (close its server + trunk: EOF at the
            # router) and wait for its ranges to fail over.
            await gateways[owner_index].close(drain=False)
            await wait_until(lambda: owner not in router.ring,
                             message="owner to leave the ring")
            survivor = router.ring.owner(cold["fingerprint"])
            assert survivor is not None and survivor != owner

            warm = await client.compile(SPEC_A, "r2", want="artifact",
                                        timeout=120)
            assert warm["ok"] and warm["cached"], warm
            assert warm["fingerprint"] == cold["fingerprint"]
            assert warm["artifact"] == cold["artifact"]
            # Served by replication, not recompilation: the survivor
            # pulled the bytes from the dead owner's store.
            survivor_cache = gateways[int(survivor.split("-")[1])].cache
            assert survivor_cache.stats.pulled == 1
            stats = await client.stats()
            assert stats["cluster"]["cache"]["pulled"] == 1
            await client.close()
            await teardown(router, gateways)

        run(scenario())


class TestQuotas:
    def test_tenant_quota_rejects_with_overloaded(self, tmp_path):
        async def scenario():
            router, gateways = await make_cluster(
                tmp_path, nodes=1, tenant_quotas={"acme": 0})
            client = await GatewayClient.connect(port=router.port)
            refused = await client.compile(SPEC_A, "r1", tenant="acme")
            assert not refused["ok"] and refused["code"] == E_OVERLOADED
            # Other tenants (and anonymous traffic) are unaffected.
            other = await client.compile(SPEC_A, "r2", tenant="beta",
                                         timeout=120)
            assert other["ok"]
            anonymous = await client.compile(SPEC_B, "r3", timeout=120)
            assert anonymous["ok"]
            snap = router.router_stats()
            assert snap["requests"]["rejected"] == 1
            assert snap["tenants"]["acme"] == {
                "received": 1, "outstanding": 0, "quota": 0}
            assert snap["tenants"]["beta"]["received"] == 1
            await client.close()
            await teardown(router, gateways)

        run(scenario())

    def test_default_tenant_quota_applies_to_unlisted_tenants(self, tmp_path):
        async def scenario():
            router, gateways = await make_cluster(
                tmp_path, nodes=1, default_tenant_quota=0,
                tenant_quotas={"vip": 8})
            client = await GatewayClient.connect(port=router.port)
            refused = await client.compile(SPEC_A, "r1", tenant="walk-in")
            assert not refused["ok"] and refused["code"] == E_OVERLOADED
            vip = await client.compile(SPEC_A, "r2", tenant="vip",
                                       timeout=120)
            assert vip["ok"]
            await client.close()
            await teardown(router, gateways)

        run(scenario())

    def test_router_per_client_limit(self, tmp_path):
        async def scenario():
            router, gateways = await make_cluster(
                tmp_path, nodes=1, per_client_limit=1)
            client = await GatewayClient.connect(port=router.port)
            await client._send({"op": "compile", "id": "slow",
                                "spec": SLOW_SPEC})
            # The cap counts *registered* forwards; wait until the slow
            # one is past fingerprinting before poking at the limit.
            await wait_until(
                lambda: router.router_stats()["outstanding"] == 1,
                message="slow compile to register")
            refused = await client.compile(SPEC_A, "fast", timeout=30)
            assert not refused["ok"] and refused["code"] == E_OVERLOADED
            slow = await client.request({"op": "ping", "id": "sync"},
                                        timeout=240)
            assert slow["ok"]
            snap = router.router_stats()["requests"]
            assert snap["rejected"] == 1
            await client.close()
            await teardown(router, gateways)

        run(scenario())


class TestFailover:
    def test_mid_flight_trunk_loss_retries_on_a_survivor(self, tmp_path):
        """A node dying with a compile in flight (trunk EOF, no answer)
        must not lose the request: the router replays it on the key's
        next preference and the client still gets a real result."""
        async def scenario():
            router, gateways = await make_cluster(tmp_path)
            client = await GatewayClient.connect(port=router.port)
            await client._send({"op": "compile", "id": "r1",
                                "spec": SLOW_SPEC})
            # Wait until the forward actually sits on a trunk.
            def forwarded():
                return any(node.trunk is not None and node.trunk.pending
                           for node in router._nodes.values())
            await wait_until(forwarded, message="forward to reach a node")
            victim = next(node for node in router._nodes.values()
                          if node.trunk is not None and node.trunk.pending)
            await router._drop_trunk(victim, victim.trunk)

            response = await asyncio.wait_for(client._read_frame(), 240)
            assert str(response.get("id")) == "r1"
            assert response["ok"], response
            snap = router.router_stats()["requests"]
            assert snap["received"] == 1 and snap["completed"] == 1
            await client.close()
            await teardown(router, gateways)

        run(scenario())

    def test_all_nodes_dead_is_a_clean_unavailable(self, tmp_path):
        async def scenario():
            router, gateways = await make_cluster(tmp_path, nodes=2)
            for gateway in gateways:
                await gateway.close(drain=False)
            await wait_until(lambda: len(router.ring) == 0,
                             message="ring to empty")
            client = await GatewayClient.connect(port=router.port)
            refused = await client.compile(SPEC_A, "r1", timeout=60)
            assert not refused["ok"]
            assert refused["code"] == E_UNAVAILABLE
            snap = router.router_stats()["requests"]
            assert snap["received"] == 1 and snap["rejected"] == 1
            assert router.router_stats()["nodes_healthy"] == 0
            await client.close()
            await teardown(router, gateways)

        run(scenario())

    def test_node_rejoin_heals_the_ring(self, tmp_path):
        """After a dead node's port comes back, the health loop reattaches
        it and the ring returns to full strength."""
        async def scenario():
            router, gateways = await make_cluster(
                tmp_path, nodes=2, health_interval=0.1)
            await gateways[1].close(drain=False)
            await wait_until(lambda: "node-1" not in router.ring,
                             message="node-1 to leave")
            # Resurrect it on the same port.
            reborn = CompileGateway(GatewayConfig(
                cache_root=str(tmp_path / "store-1"), workers=0,
                port=router._nodes["node-1"].spec.port))
            await reborn.start()
            gateways[1] = reborn
            await wait_until(lambda: "node-1" in router.ring,
                             timeout=60, message="node-1 to rejoin")
            assert router._nodes["node-1"].connects >= 2
            await teardown(router, gateways)

        run(scenario())


class TestCancellation:
    def test_cancel_travels_through_the_router(self, tmp_path):
        async def scenario():
            router, gateways = await make_cluster(tmp_path, nodes=1)
            client = await GatewayClient.connect(port=router.port)
            await client._send({"op": "compile", "id": "victim",
                                "spec": SLOW_SPEC})
            await wait_until(
                lambda: router.router_stats()["outstanding"] == 1,
                message="compile to register")
            await client._send({"op": "cancel", "id": "victim"})
            frames = []
            while len(frames) < 2:
                frames.append(
                    await asyncio.wait_for(client._read_frame(), 240))
            by_op = {frame["op"]: frame for frame in frames}
            assert by_op["cancel"]["ok"]
            compile_frame = by_op["compile"]
            # The node may have raced past the cancel; either way the
            # outcome is settled and the ledger reconciles.
            assert compile_frame["ok"] or \
                compile_frame["code"] == E_CANCELLED
            snap = router.router_stats()["requests"]
            outcomes = (snap["warm_hits"] + snap["completed"]
                        + snap["failed"] + snap["cancelled"]
                        + snap["rejected"] + snap["bad_specs"])
            assert snap["received"] == outcomes == 1
            await client.close()
            await teardown(router, gateways)

        run(scenario())

    def test_cancel_unknown_id_answers_not_found(self, tmp_path):
        async def scenario():
            router, gateways = await make_cluster(tmp_path, nodes=1)
            client = await GatewayClient.connect(port=router.port)
            ack = await client.cancel("ghost")
            assert ack["ok"] and ack["state"] == "not-found"
            await client.close()
            await teardown(router, gateways)

        run(scenario())

    def test_disconnect_releases_tenant_quota(self, tmp_path):
        """A client that walks away mid-compile must not pin its tenant's
        quota forever."""
        async def scenario():
            router, gateways = await make_cluster(
                tmp_path, nodes=1, tenant_quotas={"acme": 1})
            rude = await GatewayClient.connect(port=router.port)
            await rude._send({"op": "compile", "id": "r1",
                              "spec": SLOW_SPEC, "tenant": "acme"})
            await wait_until(
                lambda: router.router_stats()["outstanding"] == 1,
                message="compile to register")
            await rude.close()
            await wait_until(
                lambda: router.router_stats()["tenants"]
                .get("acme", {}).get("outstanding", 0) == 0,
                timeout=240, message="quota release")
            polite = await GatewayClient.connect(port=router.port)
            ok = await polite.compile(SPEC_A, "r1", tenant="acme",
                                      timeout=120)
            assert ok["ok"]
            await polite.close()
            await teardown(router, gateways)

        run(scenario())
