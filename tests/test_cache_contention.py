"""Concurrency property tests for the content-addressed cache.

The store's contract under contention: N threads sharing one
:class:`CompileCache` plus M separate *processes* opening the same disk
root may interleave get/put/discard/merge arbitrarily and

* never expose a torn artifact — every successful read is byte-identical
  to what some writer wrote for that key (content-addressing makes that
  value unique per key);
* never lose a write — after the storm, every key that was ever put is
  readable from the shared root;
* never miscount — each cache's stats ledger balances exactly against
  the operations performed on it, and merge counts are exact even when
  two mergers race on the same key.

Values are derived deterministically from keys so corruption is
detectable: ``value_for(key)`` embeds the key and enough padding to span
multiple filesystem blocks (torn writes would truncate mid-padding).
"""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.service import CacheStats, CompileCache

SRC = str(Path(__file__).resolve().parent.parent / "src")


def key_for(i: int) -> str:
    return f"{i:02x}" + f"{i:062x}"


def value_for(key: str) -> str:
    return json.dumps({"key": key, "pad": key * 40})


class TestThreadContention:
    def test_hammered_store_stays_exact(self, tmp_path):
        """8 threads x mixed get/put over 32 keys: no torn reads, no lost
        writes, stats ledger balances."""
        cache = CompileCache(tmp_path, memory_entries=8)
        keys = [key_for(i) for i in range(32)]
        ops_per_thread = 150
        threads = 8
        errors = []
        gets = puts = 0
        count_lock = threading.Lock()

        def worker(seed: int):
            nonlocal gets, puts
            my_gets = my_puts = 0
            state = seed
            for step in range(ops_per_thread):
                state = (state * 1103515245 + 12345) & 0x7FFFFFFF
                key = keys[state % len(keys)]
                if state % 3 == 0:
                    cache.put(key, value_for(key))
                    my_puts += 1
                else:
                    text = cache.get(key)
                    my_gets += 1
                    if text is not None and text != value_for(key):
                        errors.append((key, text[:80]))
            with count_lock:
                gets += my_gets
                puts += my_puts

        pool = [threading.Thread(target=worker, args=(i + 1,))
                for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

        assert not errors, f"torn/corrupt reads: {errors[:3]}"
        stats = cache.stats.as_dict()
        assert stats["puts"] == puts
        assert stats["lookups"] == gets
        assert stats["hits"] + stats["misses"] == gets
        # No lost writes: every key that was ever put reads back exactly.
        written = {k for k in keys if (tmp_path / k[:2] / f"{k[2:]}.json").exists()}
        for key in written:
            assert cache.get(key) == value_for(key)
        # No temp droppings left by the atomic publish path.
        assert not list(tmp_path.rglob("*.tmp"))

    def test_discard_and_clear_under_contention(self, tmp_path):
        """Adding discard/clear_memory to the mix: reads still see either
        the exact value or a clean miss, never garbage; the store stays
        structurally sound."""
        cache = CompileCache(tmp_path, memory_entries=4)
        keys = [key_for(i) for i in range(8)]
        errors = []

        def churn(seed: int):
            state = seed
            for _ in range(200):
                state = (state * 1103515245 + 12345) & 0x7FFFFFFF
                key = keys[state % len(keys)]
                action = state % 5
                if action <= 1:
                    cache.put(key, value_for(key))
                elif action == 2:
                    cache.discard(key)
                elif action == 3:
                    cache.clear_memory()
                else:
                    text = cache.get(key)
                    if text is not None and text != value_for(key):
                        errors.append(key)

        pool = [threading.Thread(target=churn, args=(i + 7,)) for i in range(6)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert not errors
        # Structural soundness: every surviving artifact parses and matches.
        for fingerprint in cache.iter_fingerprints():
            text = cache.get(fingerprint)
            if text is not None:   # a racing discard may still win
                assert text == value_for(fingerprint)
        assert not list(tmp_path.rglob("*.tmp"))

    def test_sweep_stale_tmp_removes_only_orphans(self, tmp_path):
        """A writer SIGKILLed between mkstemp and publish leaves a .tmp;
        the sweep removes aged orphans without touching fresh ones or
        published artifacts."""
        cache = CompileCache(tmp_path)
        key = key_for(1)
        cache.put(key, value_for(key))
        orphan = tmp_path / key[:2] / "dead-writer.tmp"
        orphan.write_text("half an artifa")
        os.utime(orphan, (1, 1))                       # ancient
        fresh = tmp_path / key[:2] / "live-writer.tmp"
        fresh.write_text("in flight")
        # Pid-attributed files: a live writer's survives any age cutoff, a
        # dead writer's goes immediately.
        live_pid = tmp_path / key[:2] / f"pub-{os.getpid()}-abc.tmp"
        live_pid.write_text("mine, in flight")
        os.utime(live_pid, (1, 1))
        dead_pid = tmp_path / key[:2] / "pub-999999999-abc.tmp"
        dead_pid.write_text("killed writer")
        assert cache.sweep_stale_tmp(max_age_seconds=60) == 2
        assert not orphan.exists() and not dead_pid.exists()
        assert fresh.exists() and live_pid.exists()
        assert cache.get(key) == value_for(key)
        assert cache.sweep_stale_tmp(max_age_seconds=0.0) == 1
        assert not fresh.exists() and live_pid.exists()

    def test_racing_adopts_count_exactly_one_put(self, tmp_path):
        """Regression: ``adopt`` used an ``exists()``-then-write probe, so
        two adopters racing through that window both wrote the key and
        both counted a ``put``.  Routed through the exclusive-link
        publish, N racers perform one disk write and count exactly one
        ``put`` between them — even across separate cache fronts sharing
        the root, where no in-process lock can help."""
        fronts = [CompileCache(tmp_path) for _ in range(4)]
        key = key_for(3)
        racers = 8
        barrier = threading.Barrier(racers)

        def adopter(n: int):
            barrier.wait()
            fronts[n % len(fronts)].adopt(key, value_for(key))

        pool = [threading.Thread(target=adopter, args=(n,))
                for n in range(racers)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert sum(front.stats.puts for front in fronts) == 1
        # Every front promoted the key regardless of who won the write.
        for front in fronts:
            assert front.get(key) == value_for(key)
            assert front.stats.puts + front.stats.hits >= 1
        assert not list(tmp_path.rglob("*.tmp"))

    def test_adopt_of_existing_key_counts_nothing(self, tmp_path):
        cache = CompileCache(tmp_path)
        key = key_for(4)
        cache.put(key, value_for(key))
        assert cache.stats.puts == 1
        cache.adopt(key, value_for(key))
        assert cache.stats.puts == 1          # existing bytes, no new put
        # Memory-only mode: same exactness without a disk tier.
        mem = CompileCache()
        mem.adopt(key, value_for(key))
        mem.adopt(key, value_for(key))
        assert mem.stats.puts == 1

    def test_stats_absorb_is_atomic_across_threads(self):
        """Concurrent absorb() calls must not lose increments."""
        total = CacheStats()
        per_thread = {"puts": 7, "misses": 3, "evictions": 2}
        threads = [
            threading.Thread(
                target=lambda: [total.absorb(per_thread) for _ in range(100)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert total.puts == 7 * 800
        assert total.misses == 3 * 800
        assert total.evictions == 2 * 800


_SUBPROCESS_SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
from repro.service import CompileCache

root, lo, hi = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])

def key_for(i):
    return f"{{i:02x}}" + f"{{i:062x}}"

def value_for(key):
    return json.dumps({{"key": key, "pad": key * 40}})

cache = CompileCache(root, memory_entries=4)
bad = 0
for round_ in range(6):
    for i in range(lo, hi):
        key = key_for(i)
        cache.put(key, value_for(key))
        text = cache.get(key)
        if text != value_for(key):
            bad += 1
print(json.dumps({{"bad": bad, **cache.stats.as_dict()}}))
"""


class TestProcessContention:
    def test_processes_sharing_one_root(self, tmp_path):
        """3 processes hammering one disk root with overlapping key
        ranges: byte-identical reads everywhere, full key coverage after
        the storm."""
        script = _SUBPROCESS_SCRIPT.format(src=SRC)
        ranges = [(0, 20), (10, 30), (5, 25)]   # deliberate overlap
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path), str(lo), str(hi)],
                stdout=subprocess.PIPE, text=True,
            )
            for lo, hi in ranges
        ]
        reports = []
        for proc in procs:
            out, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0
            reports.append(json.loads(out))
        assert all(r["bad"] == 0 for r in reports), reports
        survivor = CompileCache(tmp_path)
        seen = set(survivor.iter_fingerprints())
        assert seen == {key_for(i) for i in range(30)}
        for key in seen:
            assert survivor.get(key) == value_for(key)
        assert not list(tmp_path.rglob("*.tmp"))

    def test_racing_merges_count_each_copy_once(self, tmp_path):
        """Two threads merging the same source store into one destination:
        the artifacts land once and the merged counters sum to exactly the
        number of new keys (the exclusive-link publish keeps the count
        exact under the race)."""
        source = CompileCache(tmp_path / "source")
        for i in range(25):
            source.put(key_for(i), value_for(key_for(i)))

        dest = CompileCache(tmp_path / "dest")
        dest.put(key_for(0), value_for(key_for(0)))   # 1 pre-existing key
        counts = []

        def merge():
            counts.append(dest.merge_from(tmp_path / "source"))

        pool = [threading.Thread(target=merge) for _ in range(2)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert sum(counts) == 24
        assert dest.stats.merged == 24
        assert set(dest.iter_fingerprints()) == {key_for(i) for i in range(25)}
