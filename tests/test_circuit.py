"""Tests for the circuit substrate: gates, containers, simulation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    Gate,
    QuantumCircuit,
    circuit_unitary,
    equivalent_up_to_global_phase,
    gate_matrix,
    inverse_gate,
    simulate,
)


class TestGate:
    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            Gate("foo", (0,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (0,))
        with pytest.raises(ValueError):
            Gate("h", (0, 1))

    def test_rotation_needs_angle(self):
        with pytest.raises(ValueError):
            Gate("rz", (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))

    def test_inverse_of_rotation(self):
        g = Gate("rz", (0,), (0.3,))
        assert inverse_gate(g).params == (-0.3,)

    def test_inverse_of_s(self):
        assert inverse_gate(Gate("s", (0,))).name == "sdg"

    def test_self_inverse(self):
        for name in ("h", "x", "yh"):
            g = Gate(name, (0,))
            assert inverse_gate(g) == g

    def test_all_matrices_unitary(self):
        gates = [
            Gate("h", (0,)), Gate("x", (0,)), Gate("y", (0,)), Gate("z", (0,)),
            Gate("s", (0,)), Gate("sdg", (0,)), Gate("yh", (0,)),
            Gate("rx", (0,), (0.7,)), Gate("ry", (0,), (0.7,)), Gate("rz", (0,), (0.7,)),
            Gate("cx", (0, 1)), Gate("cz", (0, 1)), Gate("swap", (0, 1)),
        ]
        for g in gates:
            m = gate_matrix(g)
            assert np.allclose(m @ m.conj().T, np.eye(m.shape[0])), g

    def test_yh_maps_y_to_z(self):
        yh = gate_matrix(Gate("yh", (0,)))
        y = np.array([[0, -1j], [1j, 0]])
        z = np.diag([1, -1]).astype(complex)
        assert np.allclose(yh @ y @ yh.conj().T, z)
        assert np.allclose(yh @ yh, np.eye(2))


class TestCircuitContainer:
    def test_builders_and_counts(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).rz(0.5, 1).cx(0, 1).h(0).swap(1, 2)
        assert len(qc) == 6
        assert qc.count_ops() == {"h": 2, "cx": 2, "rz": 1, "swap": 1}
        assert qc.cnot_count == 2 + 3
        assert qc.single_qubit_count == 3
        assert qc.two_qubit_count == 3

    def test_out_of_range_qubit(self):
        with pytest.raises(ValueError):
            QuantumCircuit(1).cx(0, 1)

    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(4)
        qc.h(0).h(1).h(2).h(3)
        assert qc.depth() == 1
        qc.cx(0, 1).cx(2, 3)
        assert qc.depth() == 2
        qc.cx(1, 2)
        assert qc.depth() == 3

    def test_two_qubit_depth_ignores_singles(self):
        qc = QuantumCircuit(2)
        qc.h(0).h(0).h(0).cx(0, 1)
        assert qc.two_qubit_depth() == 1

    def test_inverse_reverses_and_inverts(self):
        qc = QuantumCircuit(2)
        qc.h(0).s(0).cx(0, 1).rz(0.4, 1)
        inv = qc.inverse()
        names = [g.name for g in inv]
        assert names == ["rz", "cx", "sdg", "h"]
        assert inv[0].params == (-0.4,)

    def test_decompose_swaps(self):
        qc = QuantumCircuit(2)
        qc.swap(0, 1)
        decomposed = qc.decompose_swaps()
        assert [g.name for g in decomposed] == ["cx", "cx", "cx"]
        u1 = circuit_unitary(qc)
        u2 = circuit_unitary(decomposed)
        assert equivalent_up_to_global_phase(u1, u2)

    def test_remap_qubits(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        remapped = qc.remap_qubits({0: 2, 1: 0}, num_qubits=3)
        assert remapped[0].qubits == (2, 0)

    def test_compose_mismatch(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).compose(QuantumCircuit(3))


class TestSimulation:
    def test_x_flips(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        state = simulate(qc)
        assert np.allclose(state, [0, 1])

    def test_bell_state(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        state = simulate(qc)
        expected = np.zeros(4)
        expected[0] = expected[3] = 1 / math.sqrt(2)
        assert np.allclose(state, expected)

    def test_cx_little_endian(self):
        # control q0, target q1: |01> (q0=1) -> |11> (index 3)
        qc = QuantumCircuit(2)
        qc.x(0).cx(0, 1)
        state = simulate(qc)
        assert np.isclose(abs(state[3]), 1.0)

    def test_cx_control_zero_is_noop(self):
        qc = QuantumCircuit(2)
        qc.x(1).cx(0, 1)
        state = simulate(qc)
        assert np.isclose(abs(state[2]), 1.0)

    def test_swap_moves_amplitude(self):
        qc = QuantumCircuit(2)
        qc.x(0).swap(0, 1)
        state = simulate(qc)
        assert np.isclose(abs(state[2]), 1.0)

    def test_unitary_of_empty_circuit(self):
        qc = QuantumCircuit(2)
        assert np.allclose(circuit_unitary(qc), np.eye(4))

    def test_initial_state_shape_checked(self):
        with pytest.raises(ValueError):
            simulate(QuantumCircuit(2), np.zeros(3))

    def test_rz_phases(self):
        qc = QuantumCircuit(1)
        qc.rz(0.8, 0)
        u = circuit_unitary(qc)
        assert np.allclose(u, np.diag([np.exp(-0.4j), np.exp(0.4j)]))


class TestGlobalPhaseComparison:
    def test_equal_up_to_phase(self):
        a = np.eye(2, dtype=complex)
        assert equivalent_up_to_global_phase(a, 1j * a)

    def test_unequal(self):
        a = np.eye(2, dtype=complex)
        b = np.diag([1, -1]).astype(complex)
        assert not equivalent_up_to_global_phase(a, b)

    def test_shape_mismatch(self):
        assert not equivalent_up_to_global_phase(np.eye(2), np.eye(4))

    # -- zero / near-zero norm guard (a degenerate input has no phase and
    # -- must never vacuously certify equivalence) -----------------------
    def test_zero_never_matches_anything(self):
        zero = np.zeros(4, dtype=complex)
        state = np.zeros(4, dtype=complex)
        state[0] = 1.0
        assert not equivalent_up_to_global_phase(zero, state)
        assert not equivalent_up_to_global_phase(state, zero)

    def test_zero_does_not_match_zero(self):
        zero = np.zeros((2, 2), dtype=complex)
        assert not equivalent_up_to_global_phase(zero, zero)

    def test_near_zero_below_atol_rejected(self):
        noise = np.full(4, 1e-10 + 0j)
        assert not equivalent_up_to_global_phase(noise, noise, atol=1e-8)
        state = np.zeros(4, dtype=complex)
        state[1] = 1.0
        assert not equivalent_up_to_global_phase(noise, state, atol=1e-8)

    def test_small_elements_above_norm_guard_still_match(self):
        # Every element below atol, but the norm above it: identical arrays
        # (and phase-rotated copies) must still compare as equivalent.
        a = np.full(64, 5e-9 + 0j)
        assert equivalent_up_to_global_phase(a, a, atol=1e-8)
        assert equivalent_up_to_global_phase(a, 1j * a, atol=1e-8)
        b = np.zeros(64, dtype=complex)
        b[0] = 1.0
        assert not equivalent_up_to_global_phase(a, b, atol=1e-8)

    def test_norm_just_above_atol_boundary_still_compares(self):
        # Tiny but non-degenerate vectors keep the exact phase semantics.
        a = np.zeros(4, dtype=complex)
        a[2] = 3e-8
        assert equivalent_up_to_global_phase(a, 1j * a, atol=1e-8)
        assert not equivalent_up_to_global_phase(a, -1e-7 * a, atol=1e-8)

    def test_atol_boundary_perturbation(self):
        a = np.zeros(4, dtype=complex)
        a[0] = 1.0
        b = a.copy()
        b[1] = 5e-9  # inside atol: still equivalent
        assert equivalent_up_to_global_phase(a, b, atol=1e-8)
        c = a.copy()
        c[1] = 1e-6  # far outside atol: not equivalent
        assert not equivalent_up_to_global_phase(a, c, atol=1e-8)


@given(st.lists(st.sampled_from(["h", "x", "s", "yh"]), min_size=1, max_size=8),
       st.integers(0, 2))
@settings(max_examples=30, deadline=None)
def test_circuit_times_inverse_is_identity(names, qubit):
    qc = QuantumCircuit(3)
    for name in names:
        qc.append(Gate(name, (qubit,)))
    total = qc.copy().compose(qc.inverse())
    assert equivalent_up_to_global_phase(circuit_unitary(total), np.eye(8))


@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)), min_size=1, max_size=6))
@settings(max_examples=30, deadline=None)
def test_cx_network_inverse(pairs):
    qc = QuantumCircuit(3)
    for a, b in pairs:
        if a != b:
            qc.cx(a, b)
    if len(qc) == 0:
        return
    total = qc.copy().compose(qc.inverse())
    assert np.allclose(circuit_unitary(total), np.eye(8))
