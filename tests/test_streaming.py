"""Streaming scheduler equivalence and memory-bound tests.

The streaming schedulers (``core/streaming.py``) are pinned against the
materialized references layer for layer: with the default window they must
reproduce ``gco_schedule`` / ``do_schedule`` exactly, and with a tiny
window they must still emit every term exactly once into qubit-disjoint
layers.  The closed-form Hubbard generator is pinned against the operator
expansion, and a tracemalloc ceiling checks the frontier actually bounds
scheduling memory.
"""

import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import do_schedule, gco_schedule, schedule_to_program
from repro.core.streaming import (
    DEFAULT_WINDOW,
    is_streaming_scheduler,
    scan_blocks,
    stream_schedule,
)
from repro.ir import PauliBlock, PauliProgram
from repro.workloads import (
    hubbard_hamiltonian,
    iter_hubbard_terms,
    scale_hubbard_program,
    scale_random_program,
)


def prog(*block_specs, parameter=1.0):
    blocks = [
        PauliBlock(labels if isinstance(labels, list) else [labels], parameter=parameter)
        for labels in block_specs
    ]
    return PauliProgram(blocks)


def signature(schedule):
    return [
        [tuple(ws.string.label for ws in block) for block in layer]
        for layer in schedule
    ]


_labels = st.text(alphabet="IXYZ", min_size=4, max_size=4).filter(
    lambda s: set(s) != {"I"}
)
_block_specs = st.lists(
    st.one_of(_labels, st.lists(_labels, min_size=2, max_size=3)),
    min_size=1,
    max_size=12,
)


# ----------------------------------------------------------------------
# Exact equivalence to the materialized schedulers (default window)
# ----------------------------------------------------------------------

@given(_block_specs)
@settings(max_examples=60, deadline=None)
def test_gco_stream_matches_materialized(specs):
    p = prog(*specs)
    assert signature(stream_schedule(p, "gco-stream")) == signature(gco_schedule(p))


@given(_block_specs)
@settings(max_examples=60, deadline=None)
def test_do_stream_matches_materialized(specs):
    p = prog(*specs)
    assert signature(stream_schedule(p, "do-stream")) == signature(do_schedule(p))


@pytest.mark.parametrize("scheduler,reference", [
    ("gco-stream", gco_schedule),
    ("do-stream", do_schedule),
])
def test_mid_scale_seeded_equivalence(scheduler, reference):
    """Layer-for-layer equality on seeded mid-scale programs: the paper's
    random k-local ensemble and a deep-Trotter Hubbard lattice."""
    for program in (
        scale_random_program(24, 400, seed=7),
        scale_hubbard_program(4, steps=3),
    ):
        assert signature(stream_schedule(program, scheduler)) == \
            signature(reference(program))


def test_generator_source_equals_program_source():
    """A one-shot block generator schedules identically to the program."""
    program = scale_random_program(16, 120, seed=11)
    for scheduler in ("gco-stream", "do-stream"):
        from_program = signature(stream_schedule(program, scheduler))
        from_generator = signature(
            stream_schedule((block for block in program), scheduler)
        )
        assert from_generator == from_program


# ----------------------------------------------------------------------
# Tiny windows: semantics survive even when the frontier truncates
# ----------------------------------------------------------------------

@given(_block_specs, st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_small_window_preserves_term_multiset(specs, window):
    p = prog(*specs, parameter=0.3)
    for scheduler in ("gco-stream", "do-stream"):
        layers = list(stream_schedule(p, scheduler, window=window))
        assert schedule_to_program(layers).multiset_of_terms() == \
            p.multiset_of_terms()


@given(_block_specs, st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_small_window_do_layers_qubit_disjoint(specs, window):
    p = prog(*specs)
    for layer in stream_schedule(p, "do-stream", window=window):
        seen = set()
        for block in layer:
            qubits = set(block.active_qubits)
            assert not (qubits & seen)
            seen |= qubits


# ----------------------------------------------------------------------
# Scan keys and dispatch
# ----------------------------------------------------------------------

def test_scan_keys_order_like_lex_keys():
    program = scale_random_program(20, 150, seed=3)
    blocks, keys, lengths, num_qubits = scan_blocks(program, chunk_strings=16)
    assert num_qubits == 20
    assert len(blocks) == len(keys) == len(lengths) == 150
    by_key = sorted(range(len(blocks)), key=keys.__getitem__)
    by_lex = sorted(range(len(blocks)), key=lambda i: blocks[i].view.lex_key)
    assert [blocks[i] for i in by_key] == [blocks[i] for i in by_lex]
    for block, length in zip(blocks, lengths):
        assert int(length) == block.active_length


def test_is_streaming_scheduler():
    assert is_streaming_scheduler("gco-stream")
    assert is_streaming_scheduler("do-stream")
    assert not is_streaming_scheduler("gco")
    assert not is_streaming_scheduler("do")
    assert not is_streaming_scheduler(None)


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError, match="unknown streaming scheduler"):
        list(stream_schedule(prog("XX"), "depth-stream"))


# ----------------------------------------------------------------------
# Closed-form Hubbard generator pin (promised in iter_hubbard_terms)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("num_sites", [2, 3, 4])
@pytest.mark.parametrize("periodic", [False, True])
def test_hubbard_generator_matches_operator_expansion(num_sites, periodic):
    expanded = {}
    for string, weight in hubbard_hamiltonian(
        num_sites, hopping=0.7, interaction=2.3, periodic=periodic
    ).real_weighted_strings():
        if not string.is_identity:
            expanded[string.label] = expanded.get(string.label, 0.0) + weight
    streamed = {}
    for string, weight in iter_hubbard_terms(
        num_sites, hopping=0.7, interaction=2.3, periodic=periodic
    ):
        streamed[string.label] = streamed.get(string.label, 0.0) + weight
    assert streamed.keys() == expanded.keys()
    for label, weight in expanded.items():
        assert streamed[label] == pytest.approx(weight, abs=1e-12)


# ----------------------------------------------------------------------
# Bounded memory: the frontier, not the program, sets the ceiling
# ----------------------------------------------------------------------

def test_do_stream_scheduling_memory_bounded():
    """A full ``do-stream`` drain of a mid-scale program must allocate far
    less than the materialized profile matrix would.

    8k blocks on 60 qubits materialized is 8k ``BlockView`` instances and
    an (8k, 3, 8) profile stack that is rescanned per layer; the streaming
    frontier realizes at most ``DEFAULT_WINDOW`` profile rows.  The 48 MB
    ceiling is ~6x the measured traced peak — tight enough to catch any
    return to whole-program materialization, loose enough for allocator
    noise.
    """
    program = scale_random_program(60, 8_000, seed=5)
    program.release_views()
    tracemalloc.start()
    blocks_seen = sum(
        len(layer) for layer in stream_schedule(program, "do-stream")
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert blocks_seen == 8_000
    assert DEFAULT_WINDOW < 8_000  # the frontier genuinely truncates here
    assert peak < 48 * 2**20, (
        f"do-stream traced peak {peak / 2**20:.1f} MB exceeds the 48 MB "
        f"scheduling ceiling"
    )
