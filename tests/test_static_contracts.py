"""Tests for the pass-contract static checker (repro.static.contracts).

Covers the contract algebra, the forward property-flow checker and its
diagnostics, the shipped-pipeline inventory (every FT/SC flow at every
optimization level must compose), and the integration points: PassPipeline
rejects a miscomposed sequence *before any gate is emitted*, and the
generic transpile sequences validate for all levels on both backends.
"""

import pytest

from repro.core.passes import PassPipeline, ft_pipeline, sc_pipeline
from repro.ir import PauliBlock, PauliProgram
from repro.static import (
    ALL,
    CONTRACTS,
    PassContract,
    PipelineChecker,
    PipelineContractError,
    VOCABULARY,
    contract_for,
    preserves_all_except,
    rules_for_level,
    shipped_pipelines,
)
from repro.static.contracts import register_callable
from repro.transpile import CouplingMap
from repro.transpile.pipeline import contract_sequence


def small_program():
    return PauliProgram([PauliBlock(["ZZI", "XXI"], 0.5),
                         PauliBlock(["IYY"], 0.25)])


class TestContractAlgebra:
    def test_vocabulary_is_closed(self):
        with pytest.raises(ValueError, match="unknown"):
            PassContract("bad", requires=frozenset({"totally_new_prop"}))
        with pytest.raises(ValueError, match="unknown"):
            preserves_all_except("not_a_property")

    def test_transfer_function(self):
        contract = PassContract(
            "t",
            establishes=frozenset({"no_dead_gates"}),
            preserves=preserves_all_except("canonical_angles"),
        )
        flowing = frozenset({"synthesized", "routed", "canonical_angles"})
        out = contract.apply(flowing)
        assert "no_dead_gates" in out
        assert "canonical_angles" not in out
        assert {"synthesized", "routed"} <= out

    def test_all_preserves_everything(self):
        assert ALL == VOCABULARY

    def test_builtin_contracts_mention_only_vocabulary(self):
        for contract in CONTRACTS.values():
            assert contract.requires <= VOCABULARY
            assert contract.establishes <= VOCABULARY
            assert contract.preserves <= VOCABULARY


class TestPipelineChecker:
    def test_valid_sequence_returns_final_properties(self):
        final = PipelineChecker().check(
            ["schedule_gco", "ft_synthesize", "peephole"],
            initial={"ir_valid"},
        )
        assert {"synthesized", "no_dead_gates", "canonical_angles"} <= final

    def test_reorder2q_after_routing_rejected_statically(self):
        # The miscomposition this layer exists to catch: a rule that
        # re-synthesizes two-qubit gates across wire pairs, run after
        # routing, silently un-routes the circuit.  The checker names the
        # pass that needed the property AND the pass that dropped it.
        with pytest.raises(PipelineContractError) as info:
            PipelineChecker().check(
                ["schedule_do", "sc_synthesize", "peephole_reorder2q",
                 "validate_routed"],
                initial={"ir_valid"},
                name="bad",
            )
        exc = info.value
        assert exc.pipeline == "bad"
        assert exc.pass_name == "validate_routed"
        assert exc.position == 3
        assert exc.unmet in {"routed", "coupling_respected"}
        assert exc.dropped_by == "peephole_reorder2q"
        message = str(exc)
        assert "validate_routed" in message
        assert "peephole_reorder2q" in message
        assert exc.unmet in message

    def test_never_established_property_names_the_gap(self):
        with pytest.raises(PipelineContractError) as info:
            PipelineChecker().check(
                ["ft_synthesize"], initial={"ir_valid"}, name="no-sched")
        exc = info.value
        assert exc.unmet == "scheduled"
        assert exc.dropped_by is None
        assert "no earlier pass establishes" in str(exc)
        assert "insert a pass" in str(exc)

    def test_unmet_goal_rejected(self):
        with pytest.raises(PipelineContractError) as info:
            PipelineChecker().check(
                ["schedule_gco", "ft_synthesize"],
                initial={"ir_valid"},
                goal={"routed"},
                name="wants-routing",
            )
        assert info.value.pass_name is None
        assert info.value.unmet == "routed"

    def test_unknown_initial_property_rejected(self):
        with pytest.raises(ValueError, match="initial"):
            PipelineChecker().check(["peephole"], initial={"nonsense"})

    def test_resolves_names_objects_and_callables(self):
        def my_pass(circuit):
            return circuit

        register_callable(my_pass, "peephole_cancel")
        checker = PipelineChecker()
        resolved = checker.resolve(
            ["route_sabre", CONTRACTS["peephole"], my_pass, lambda c: c])
        assert [c.name for c in resolved] == [
            "route_sabre", "peephole", "peephole_cancel", "circuit_opaque"]

    def test_register_callable_rejects_unknown_contract(self):
        with pytest.raises(ValueError, match="unknown contract"):
            register_callable(lambda c: c, "no_such_contract")

    def test_contract_for_falls_back_to_slot_default(self):
        assert contract_for(lambda c: c).name == "circuit_opaque"
        assert contract_for(lambda c: c, default="schedule_opaque").name \
            == "schedule_opaque"
        assert contract_for("peephole_merge").name == "peephole_merge"


class TestShippedPipelines:
    def test_inventory_covers_both_backends_all_levels(self):
        names = {p.name for p in shipped_pipelines()}
        for level in range(4):
            assert f"ft-gco-opt{level}" in names
            assert f"ft-do-opt{level}" in names
            assert f"sc-gco-opt{level}" in names
            assert f"sc-do-opt{level}" in names
            assert f"generic-opt{level}" in names

    def test_every_shipped_pipeline_composes(self):
        checker = PipelineChecker()
        for pipeline in shipped_pipelines():
            final = checker.check(
                pipeline.passes, initial=pipeline.initial,
                goal=pipeline.goal, name=pipeline.name,
            )
            assert pipeline.goal <= final

    def test_rules_for_level_mirror_transpile(self):
        assert rules_for_level(0) == []
        assert rules_for_level(1) == ["peephole_cancel", "peephole_merge"]
        assert "peephole_commute" in rules_for_level(2)
        assert "peephole_fuse" in rules_for_level(3)
        for level in range(4):
            assert contract_sequence(level, routed=False) == \
                rules_for_level(level)
            routed = contract_sequence(level, routed=True)
            assert "route_sabre" in routed
            assert routed[-1] == "validate_routed"


class TestPassPipelineIntegration:
    def test_ft_and_sc_factory_pipelines_validate(self):
        ft_pipeline().validate()
        ft_pipeline(scheduler="do", peephole=False).validate()
        coupling = CouplingMap([(i, i + 1) for i in range(4)])
        sc_pipeline(coupling).validate()
        sc_pipeline(coupling, scheduler="gco").validate()

    def test_miscomposed_pipeline_rejected_before_any_gate(self):
        # Plug the deliberately-unshipped cross-wire rule after SC
        # synthesis: run() must raise from the static check without ever
        # invoking the schedule pass, i.e. before a single gate exists.
        calls = []
        coupling = CouplingMap([(i, i + 1) for i in range(4)])
        pipeline = sc_pipeline(coupling)

        original_schedule = pipeline._schedule_pass

        def spying_schedule(program):
            calls.append("schedule")
            return original_schedule(program)

        pipeline._schedule_pass = spying_schedule
        pipeline.add_circuit_pass("peephole_reorder2q", lambda c: c)
        with pytest.raises(PipelineContractError) as info:
            pipeline.run(small_program())
        assert calls == []
        assert info.value.dropped_by == "peephole_reorder2q"
        assert info.value.unmet in {"routed", "coupling_respected"}

    def test_undeclared_circuit_pass_breaks_sc_goal(self):
        # An opaque (unregistered) circuit pass is assumed to destroy
        # routing, so appending one to the SC pipeline is a static error
        # even though the callable is in fact harmless.
        coupling = CouplingMap([(i, i + 1) for i in range(4)])
        pipeline = sc_pipeline(coupling)
        pipeline.add_circuit_pass("mystery", lambda c: c)
        with pytest.raises(PipelineContractError) as info:
            pipeline.validate()
        assert info.value.dropped_by == "circuit_opaque"

    def test_custom_opaque_passes_still_compose_for_ft(self):
        # The slot defaults keep undeclared schedule/synthesis callables
        # usable: trusted to do their slot's job, nothing more.
        pipeline = PassPipeline(
            name="custom",
            schedule_pass=lambda program: [[b] for b in program],
            synthesis_pass=ft_pipeline()._synthesis_pass,
            goal=frozenset({"synthesized"}),
        )
        pipeline.validate()
        result = pipeline.run(small_program())
        assert result.circuit.cnot_count > 0

    def test_import_time_self_check_guards_contract_table(self):
        # A broken contract table must fail _self_check the same way a
        # bad pipeline does — simulate the regression with a private
        # checker whose peephole table entry drops routing.
        broken = dict(CONTRACTS)
        broken["peephole_cancel"] = PassContract(
            "peephole_cancel",
            requires=frozenset({"synthesized"}),
            preserves=preserves_all_except("routed", "coupling_respected"),
        )
        checker = PipelineChecker(broken)
        pipeline = next(p for p in shipped_pipelines()
                        if p.name == "sc-do-opt1")
        with pytest.raises(PipelineContractError):
            checker.check(pipeline.passes, initial=pipeline.initial,
                          goal=pipeline.goal, name=pipeline.name)
