"""Functional tests for the async compile gateway.

Fast battery (tier-1): protocol parsing, warm/cold lanes, streaming,
in-flight dedupe, admission control, cancellation, disconnect cleanup,
stats reconciliation, and one process-pool round trip with worker-death
recovery.  The 60-second churn/soak battery lives in
``test_gateway_soak.py`` behind ``-m slow``.

Most tests run the gateway in thread mode (``workers=0``) inside the
test's own event loop — no subprocesses, millisecond setup — because the
admission/fairness/dedupe logic is identical in both modes; process mode
gets its own dedicated tests at the bottom.
"""

import asyncio
import json
import os
import signal
import time

import pytest

from repro.core import CompilationCancelled, compile_program
from repro.ir import parse_program
from repro.service import (
    CompileGateway,
    GatewayClient,
    GatewayConfig,
    ProtocolError,
    parse_request,
)
from repro.service.protocol import (
    E_BAD_SPEC,
    E_CANCELLED,
    E_OVERLOADED,
    E_UNSUPPORTED,
    decode_frame,
    encode_frame,
)

SPEC_A = {"text": "{(XXI, 1.0), (YYI, 0.5), 0.3};", "label": "a"}
SPEC_B = {"text": "{(IZZ, -0.25), 0.7};", "label": "b"}
#: Heavy enough that cancellation can land between passes (~1s in thread
#: mode: a wide random SC compile with restarts).
SLOW_SPEC = {
    "benchmark": "Rand-30", "scale": "paper", "label": "slow",
}


def run(coro):
    return asyncio.run(coro)


async def make_gateway(tmp_path, **overrides):
    kwargs = dict(cache_root=str(tmp_path / "cache"), workers=0, port=0)
    kwargs.update(overrides)
    gateway = CompileGateway(GatewayConfig(**kwargs))
    await gateway.start()
    return gateway


class TestProtocol:
    def test_roundtrip_and_validation(self):
        frame = decode_frame(encode_frame({"op": "ping", "id": 3}))
        request = parse_request(frame)
        assert request.op == "ping" and request.id == "3"

        request = parse_request(
            {"op": "compile", "id": "x", "spec": {"text": "t"}})
        assert request.want == "metrics" and request.spec == {"text": "t"}

    @pytest.mark.parametrize("bad", [
        b"not json\n",
        b"[1, 2]\n",
        b'{"op": "nope", "id": "1"}',
        b'{"op": "compile"}',                      # no id
        b'{"op": "compile", "id": "1"}',           # no spec
        b'{"op": "compile", "id": "1", "spec": 4}',
        b'{"op": "compile", "id": "1", "spec": {}, "want": "everything"}',
        b'{"op": "cancel"}',
        b'{"op": "compile", "id": {"a": 1}, "spec": {}}',
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ProtocolError):
            parse_request(bad)

    def test_salvages_request_id_for_error_correlation(self):
        try:
            parse_request(b'{"op": "warp", "id": "r9"}')
        except ProtocolError as exc:
            assert exc.request_id == "r9"
        else:  # pragma: no cover
            pytest.fail("expected ProtocolError")


class TestWarmColdLanes:
    def test_cold_then_warm_and_stats(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path)
            client = await GatewayClient.connect(port=gateway.port)
            cold = await client.compile(SPEC_A, "r1")
            assert cold["ok"] and not cold["cached"]
            assert cold["metrics"]["cnot"] > 0
            warm = await client.compile(SPEC_A, "r2")
            assert warm["ok"] and warm["cached"]
            assert warm["fingerprint"] == cold["fingerprint"]
            assert warm["metrics"] == cold["metrics"]

            stats = await client.stats()
            assert stats["requests"]["received"] == 2
            assert stats["requests"]["warm_hits"] == 1
            assert stats["requests"]["completed"] == 1
            assert stats["queue"]["depth"] == 0
            assert stats["cache"]["hit_rate"] == 0.5
            await client.close()
            await gateway.close()

        run(scenario())

    def test_artifact_want_round_trips(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path)
            client = await GatewayClient.connect(port=gateway.port)
            response = await client.compile(SPEC_A, "r1", want="artifact")
            assert response["ok"]
            from repro.service import result_from_dict

            result = result_from_dict(response["artifact"])
            direct = compile_program(parse_program(SPEC_A["text"]))
            assert result.metrics == direct.metrics
            ack = await client.compile(SPEC_A, "r2", want="ack")
            assert ack["ok"] and "metrics" not in ack
            await client.close()
            await gateway.close()

        run(scenario())

    def test_warm_hits_answer_while_cold_compile_runs(self, tmp_path):
        """The streaming property: a hit is never queued behind a miss."""
        async def scenario():
            gateway = await make_gateway(tmp_path)
            client = await GatewayClient.connect(port=gateway.port)
            await client.compile(SPEC_A, "seed")           # populate cache
            await client._send(
                {"op": "compile", "id": "cold", "spec": SLOW_SPEC})
            t0 = time.perf_counter()
            warm = await client.compile(SPEC_A, "warm", timeout=30)
            warm_latency = time.perf_counter() - t0
            assert warm["ok"] and warm["cached"]
            # The cold Rand-30 compile takes ~1s; the warm answer must
            # arrive while it still runs, not after it.
            assert warm_latency < 0.5
            cold = await client.request({"op": "ping", "id": "drain"},
                                        timeout=120)
            assert cold["op"] == "pong"
            slow = client._stash.pop("cold", None)
            if slow is None:
                slow = await client.request(
                    {"op": "compile", "id": "cold2", "spec": SLOW_SPEC},
                    timeout=120)
            assert slow["ok"]
            await client.close()
            await gateway.close()

        run(scenario())

    def test_corrupt_cached_artifact_heals_to_cold_compile(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path)
            client = await GatewayClient.connect(port=gateway.port)
            first = await client.compile(SPEC_A, "r1")
            gateway.cache.put(first["fingerprint"], "{ corrupt }")
            gateway._metrics_memo.clear()
            healed = await client.compile(SPEC_A, "r2")
            assert healed["ok"] and not healed["cached"]
            assert healed["metrics"] == first["metrics"]
            await client.close()
            await gateway.close()

        run(scenario())


class TestDedupeAndFairness:
    def test_identical_inflight_requests_compile_once(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path)
            client = await GatewayClient.connect(port=gateway.port)
            specs = [SPEC_B] * 6
            responses, _ = await client.run_specs(specs, window=6)
            assert all(r["ok"] for r in responses)
            fingerprints = {r["fingerprint"] for r in responses}
            assert len(fingerprints) == 1
            stats = await client.stats()
            # 6 admitted, 1 dispatch: the cache saw one miss and one put.
            assert stats["requests"]["admitted"] == 6
            assert stats["cache"]["puts"] == 1
            assert stats["requests"]["completed"] == 6
            await client.close()
            await gateway.close()

        run(scenario())

    def test_round_robin_interleaves_two_clients(self, tmp_path):
        """Client B's single job must not wait behind all of client A's
        queued flood (fairness: B's first dispatch happens before A's
        queue drains)."""
        async def scenario():
            gateway = await make_gateway(tmp_path, queue_limit=64)
            flooder = await GatewayClient.connect(port=gateway.port)
            light = await GatewayClient.connect(port=gateway.port)
            flood_specs = [
                {"text": f"{{(XYZII, 1.0), (ZZXII, 0.5), 0.{i+1}}};",
                 "label": f"flood{i}"}
                for i in range(5)
            ]
            for i, spec in enumerate(flood_specs):
                await flooder._send(
                    {"op": "compile", "id": f"f{i}", "spec": spec})
            response = await light.compile(SPEC_A, "light", timeout=60)
            assert response["ok"]
            completions = []

            async def drain_flood():
                got = 0
                while got < len(flood_specs):
                    frame = await flooder._read_frame()
                    if frame.get("op") == "compile":
                        completions.append(frame["id"])
                        got += 1

            await asyncio.wait_for(drain_flood(), 120)
            stats = await light.stats()
            assert stats["queue"]["depth"] == 0
            await flooder.close()
            await light.close()
            await gateway.close()

        run(scenario())


class TestAsyncSafety:
    """Regression tests for the event-loop discipline fixes flagged by
    ``tools/lint_repro.py`` (RS101): every disk touch in the gateway's
    async paths rides the executor, and the dedupe lane stays
    suspension-free between the in-flight probe and follower attach."""

    def test_disk_io_runs_off_the_event_loop(self, tmp_path):
        import threading

        async def scenario():
            loop_thread = threading.get_ident()
            threads = {}

            def spy(cache, name):
                original = getattr(cache, name)

                def wrapped(*args, _original=original, _name=name, **kwargs):
                    threads.setdefault(_name, set()).add(threading.get_ident())
                    return _original(*args, **kwargs)

                setattr(cache, name, wrapped)

            # First gateway: a cold compile exercises the publish path
            # (cache.put) and start/close exercise the tmp sweeps.
            gateway = CompileGateway(GatewayConfig(
                cache_root=str(tmp_path / "cache"), workers=0, port=0))
            for name in ("put", "get_disk", "sweep_stale_tmp"):
                spy(gateway.cache, name)
            await gateway.start()
            client = await GatewayClient.connect(port=gateway.port)
            cold = await client.compile(SPEC_A, "r1")
            assert cold["ok"] and not cold["cached"]
            await client.close()
            await gateway.close()

            # Second gateway on the same store: memory tier is empty, so
            # the warm answer must come from the disk tier (get_disk).
            gateway = CompileGateway(GatewayConfig(
                cache_root=str(tmp_path / "cache"), workers=0, port=0))
            for name in ("put", "get_disk", "sweep_stale_tmp"):
                spy(gateway.cache, name)
            await gateway.start()
            client = await GatewayClient.connect(port=gateway.port)
            warm = await client.compile(SPEC_A, "r2")
            assert warm["ok"] and warm["cached"]
            await client.close()
            await gateway.close()

            for name in ("put", "get_disk", "sweep_stale_tmp"):
                assert threads.get(name), f"{name} was never exercised"
                assert loop_thread not in threads[name], (
                    f"cache.{name} ran on the event-loop thread")

        run(scenario())

    def test_followers_skip_the_disk_probe(self, tmp_path):
        """In-flight dedupe must not pay (or block on) a disk probe: an
        in-flight fingerprint cannot be on disk yet, and awaiting the
        probe would let followers observe the compile finishing and be
        answered warm — breaking admission atomicity (admitted == 6)."""
        async def scenario():
            gateway = await make_gateway(tmp_path)
            probes = []
            original = gateway.cache.get_disk

            def counting(fingerprint):
                probes.append(fingerprint)
                return original(fingerprint)

            gateway.cache.get_disk = counting
            client = await GatewayClient.connect(port=gateway.port)
            responses, _ = await client.run_specs([SPEC_B] * 6, window=6)
            assert all(r and r["ok"] for r in responses)
            stats = await client.stats()
            assert stats["requests"]["admitted"] == 6
            assert stats["cache"]["puts"] == 1
            # Only the leader may probe the disk tier; the five followers
            # attach to the in-flight job without suspending.
            assert len(probes) <= 1
            await client.close()
            await gateway.close()

        run(scenario())

    def test_cancel_flag_withdrawal_offloaded(self, tmp_path):
        """The cancel-flag unlink in the dispatch/finish paths is disk
        I/O too; it must ride the executor, not run inline on the loop."""
        import threading

        from repro.service import gateway as gateway_module

        async def scenario():
            loop_thread = threading.get_ident()
            seen = set()
            original = gateway_module._withdraw_cancel_flag

            def recording(path):
                seen.add(threading.get_ident())
                return original(path)

            gateway_module._withdraw_cancel_flag = recording
            try:
                gateway = await make_gateway(tmp_path)
                client = await GatewayClient.connect(port=gateway.port)
                response = await client.compile(SPEC_A, "r1")
                assert response["ok"]
                await client.close()
                await gateway.close()
            finally:
                gateway_module._withdraw_cancel_flag = original
            assert seen, "cancel-flag withdrawal was never exercised"
            assert loop_thread not in seen

        run(scenario())


class TestAdmissionControl:
    def test_per_client_limit_rejects_with_overloaded(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(
                tmp_path, per_client_limit=2, queue_limit=64)
            client = await GatewayClient.connect(port=gateway.port)
            # Distinct cold programs so nothing dedupes; the first is slow
            # enough that the client's unanswered count stays at the cap
            # while the later frames arrive.
            await client._send({"op": "compile", "id": "r0",
                                "spec": SLOW_SPEC})
            for i in range(1, 3):
                await client._send({
                    "op": "compile", "id": f"r{i}",
                    "spec": {"text": f"{{(XXIII, 1.0), 0.{i+1}}};"},
                })
            rejected = None
            answered = 0
            while answered < 3:
                frame = await asyncio.wait_for(client._read_frame(), 60)
                if frame.get("op") != "compile":
                    continue
                answered += 1
                if not frame["ok"]:
                    rejected = frame
            assert rejected is not None
            assert rejected["code"] == E_OVERLOADED
            stats = await client.stats()
            assert stats["requests"]["rejected"] == 1
            assert stats["requests"]["admitted"] == 2
            await client.close()
            await gateway.close()

        run(scenario())

    def test_queue_limit_rejects_across_clients(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(
                tmp_path, queue_limit=1, per_client_limit=16)
            a = await GatewayClient.connect(port=gateway.port)
            b = await GatewayClient.connect(port=gateway.port)

            async def wait_for(predicate):
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    stats = await b.stats()
                    if predicate(stats["queue"]):
                        return
                    await asyncio.sleep(0.02)
                pytest.fail("queue never reached the expected state")

            await a._send({"op": "compile", "id": "a0", "spec": SLOW_SPEC})
            await wait_for(lambda q: q["in_flight"] == 1)
            await a._send({
                "op": "compile", "id": "a1",
                "spec": {"text": "{(YYYY, 1.0), 0.5};"},
            })
            await wait_for(lambda q: q["depth"] == 1)
            response = await b.compile(
                {"text": "{(ZZZZZ, 1.0), 0.5};"}, "b0", timeout=5)
            assert not response["ok"] and response["code"] == E_OVERLOADED
            await a.close()
            await b.close()
            await gateway.close()

        run(scenario())

    def test_cancel_frees_queue_capacity_immediately(self, tmp_path):
        """Regression: cancelled undispatched jobs must leave the queue at
        once, not squat on queue_limit until a compile slot frees."""
        async def scenario():
            gateway = await make_gateway(
                tmp_path, queue_limit=2, per_client_limit=16)
            a = await GatewayClient.connect(port=gateway.port)
            b = await GatewayClient.connect(port=gateway.port)

            await a._send({"op": "compile", "id": "busy", "spec": SLOW_SPEC})
            deadline = time.monotonic() + 60
            while (await b.stats())["queue"]["in_flight"] != 1:
                assert time.monotonic() < deadline
                await asyncio.sleep(0.02)
            # Fill the queue, then cancel everything in it.
            for i in range(2):
                await a._send({"op": "compile", "id": f"q{i}",
                               "spec": {"text": f"{{(XXYY, 1.0), 0.{i+1}}};"}})
            while (await b.stats())["queue"]["depth"] != 2:
                assert time.monotonic() < deadline
                await asyncio.sleep(0.02)
            for i in range(2):
                await a.cancel(f"q{i}")
            stats = await b.stats()
            assert stats["queue"]["depth"] == 0
            # Another client's request is admitted while `busy` still runs.
            response = await b.compile(
                {"text": "{(ZZXX, 1.0), 0.5};"}, "b0", timeout=120)
            assert response["ok"]
            await a.close()
            await b.close()
            await gateway.close()

        run(scenario())

    def test_bad_spec_is_answered_not_fatal(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path)
            client = await GatewayClient.connect(port=gateway.port)
            bad = await client.compile({"benchmark": "No-Such"}, "r1")
            assert not bad["ok"] and bad["code"] == E_BAD_SPEC
            bad2 = await client.compile({"label": "nothing"}, "r2")
            assert not bad2["ok"] and bad2["code"] == E_BAD_SPEC
            good = await client.compile(SPEC_A, "r3")
            assert good["ok"]
            await client.close()
            await gateway.close()

        run(scenario())

    def test_malformed_frame_keeps_connection_alive(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path)
            client = await GatewayClient.connect(port=gateway.port)
            client._writer.write(b"this is not json\n")
            await client._writer.drain()
            error = await asyncio.wait_for(client._read_frame(), 10)
            assert error["ok"] is False and error["code"] == "bad-frame"
            good = await client.compile(SPEC_A, "r1")
            assert good["ok"]
            await client.close()
            await gateway.close()

        run(scenario())


class TestCancellation:
    def test_cancel_verb_before_dispatch(self, tmp_path):
        async def scenario():
            # queue_limit high, but thread mode has one compile slot: the
            # second job sits queued long enough to cancel.
            gateway = await make_gateway(tmp_path)
            client = await GatewayClient.connect(port=gateway.port)
            await client._send({"op": "compile", "id": "busy",
                                "spec": SLOW_SPEC})
            await client._send({"op": "compile", "id": "victim",
                                "spec": {"text": "{(XXXXX, 1.0), 0.5};"}})
            ack = await client.cancel("victim")
            assert ack["ok"]
            victim = client._stash.pop("victim", None)
            while victim is None:
                frame = await asyncio.wait_for(client._read_frame(), 120)
                if str(frame.get("id")) == "victim":
                    victim = frame
                    break
            assert victim["ok"] is False and victim["code"] == E_CANCELLED
            # The busy job still completes.
            while True:
                busy = client._stash.pop("busy", None)
                if busy is not None:
                    break
                frame = await asyncio.wait_for(client._read_frame(), 120)
                if str(frame.get("id")) == "busy":
                    busy = frame
                    break
                client._stash[str(frame.get("id"))] = frame
            assert busy["ok"]
            stats = await client.stats()
            assert stats["requests"]["cancelled"] == 1
            await client.close()
            await gateway.close()

        run(scenario())

    def test_disconnect_cancels_pending_work(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path)
            rude = await GatewayClient.connect(port=gateway.port)
            await rude._send({"op": "compile", "id": "d0", "spec": SLOW_SPEC})
            await rude._send({
                "op": "compile", "id": "d1",
                "spec": {"text": "{(YYYYY, 1.0), 0.5};"},
            })
            await asyncio.sleep(0.1)
            await rude.close()   # walk away mid-compile

            watcher = await GatewayClient.connect(port=gateway.port)
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                stats = await watcher.stats()
                # Wait until the disconnect has been *observed* (the rude
                # client's frames may still be resolving) and everything
                # it abandoned has drained.
                if (stats["requests"]["disconnects"] >= 1
                        and stats["requests"]["cancelled"] >= 2
                        and stats["queue"]["depth"] == 0
                        and stats["queue"]["in_flight"] == 0):
                    break
                await asyncio.sleep(0.1)
            assert stats["queue"]["depth"] == 0
            assert stats["queue"]["in_flight"] == 0
            assert stats["requests"]["disconnects"] == 1
            assert stats["requests"]["cancelled"] == 2
            await watcher.close()
            await gateway.close()

        run(scenario())

    def test_compile_program_cancel_hook(self):
        program = parse_program(SPEC_A["text"])
        with pytest.raises(CompilationCancelled):
            compile_program(program, cancel=lambda: True)
        calls = []

        def cancel():
            calls.append(1)
            return False

        result = compile_program(program, cancel=cancel)
        assert result.circuit.cnot_count > 0
        assert len(calls) >= 2   # entry + at least one pass boundary

    def test_sc_cancel_between_restarts(self):
        from repro.core import sc_compile
        from repro.transpile import linear

        program = parse_program("{(ZIIZ, 1.0), 0.5};\n{(XXII, -0.5), 0.3};")
        fired = iter([False, False, True])
        with pytest.raises(CompilationCancelled):
            sc_compile(program, linear(4), restarts=50,
                       cancel=lambda: next(fired, True))


class TestShutdownVerb:
    def test_disabled_by_default(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path)
            client = await GatewayClient.connect(port=gateway.port)
            refused = await client.request({"op": "shutdown", "id": "x"})
            assert refused["ok"] is False
            assert refused["code"] == E_UNSUPPORTED
            assert not gateway.shutdown_requested.is_set()
            await client.close()
            await gateway.close()

        run(scenario())

    def test_allowed_when_configured(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path, allow_shutdown=True)
            client = await GatewayClient.connect(port=gateway.port)
            accepted = await client.request({"op": "shutdown", "id": "x"})
            assert accepted["ok"]
            await asyncio.wait_for(gateway.shutdown_requested.wait(), 5)
            await client.close()
            await gateway.close()

        run(scenario())


class TestStatsReconciliation:
    def test_every_received_request_has_exactly_one_outcome(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path, per_client_limit=2)
            client = await GatewayClient.connect(port=gateway.port)
            await client.compile(SPEC_A, "c1")          # cold -> completed
            await client.compile(SPEC_A, "c2")          # warm hit
            await client.compile({"text": "???"}, "c3")  # bad spec
            responses, _ = await client.run_specs(
                [{"text": f"{{(XZXZX, 1.0), 0.{i+1}}};"} for i in range(4)],
                window=4, id_prefix="burst",
            )   # 2 admitted, 2 rejected by per-client limit
            stats = await client.stats()
            req = stats["requests"]
            outcomes = (req["warm_hits"] + req["completed"] + req["failed"]
                        + req["cancelled"] + req["rejected"] + req["bad_specs"])
            assert req["received"] == outcomes
            assert stats["queue"]["depth"] == 0
            assert stats["queue"]["in_flight"] == 0
            await client.close()
            await gateway.close()

        run(scenario())


def spec_ledger(stats):
    """The speculative section's counters as a reconciliation tuple."""
    spec = stats["speculative"]
    outcomes = (spec["spec_upgraded"] + spec["spec_stale"]
                + spec["spec_cancelled"] + spec["spec_dropped"])
    return spec, outcomes


async def wait_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if await predicate():
            return
        await asyncio.sleep(0.02)
    raise TimeoutError("condition not reached")


class TestSpeculativeLane:
    """Tiered speculation: opt-1 now, opt-3 in the background.

    Thread mode (one compile slot) makes the lane's priority rules
    observable: the background job can only hold the slot when no cold
    work wants it.
    """

    def test_cold_answers_at_opt1_then_upgrade_lands(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path, speculate=True)
            client = await GatewayClient.connect(port=gateway.port)
            cold = await client.compile(SPEC_A, "r1", want_upgrade=True)
            assert cold["ok"] and not cold["cached"]
            assert cold["tier"] == "opt1"

            push = await client.wait_upgrade("r1", timeout=60)
            assert push["ok"] and push["tier"] == "full"
            assert push["fingerprint"] == cold["fingerprint"]
            assert push["upgrade_ms"] >= 0

            # The cache entry was upgraded in place: a warm hit now
            # serves the full artifact under the same fingerprint.
            warm = await client.compile(SPEC_A, "r2")
            assert warm["cached"]
            assert warm["fingerprint"] == cold["fingerprint"]
            assert warm["tier"] == "full"

            stats = await client.stats()
            spec, outcomes = spec_ledger(stats)
            assert spec["enabled"] and spec["spec_enqueued"] == 1
            assert spec["spec_upgraded"] == 1
            assert spec["spec_enqueued"] == outcomes
            assert stats["latency"]["upgrade"]["count"] == 1
            assert stats["cache"]["upgraded"] == 1
            # The request ledger is untouched by the background lane.
            req = stats["requests"]
            assert req["received"] == 2
            assert req["completed"] == 1 and req["warm_hits"] == 1
            await client.close()
            await gateway.close()

        run(scenario())

    def test_upgrade_frames_are_strictly_opt_in(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path, speculate=True)
            client = await GatewayClient.connect(port=gateway.port)
            cold = await client.compile(SPEC_A, "r1")   # no want_upgrade
            assert cold["tier"] == "opt1"

            async def upgraded():
                stats = await client.stats()
                return stats["speculative"]["spec_upgraded"] == 1

            await wait_until(upgraded)
            # The background job ran to completion, but this client never
            # subscribed: no upgrade frame may have been pushed at it
            # (a frame here would desynchronize pipelined clients).
            await client.ping()                         # flush the stream
            assert not any(k.startswith("upgrade:") for k in client._stash)
            await client.close()
            await gateway.close()

        run(scenario())

    def test_speculation_off_means_full_tier_and_no_jobs(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path)      # speculate=False
            client = await GatewayClient.connect(port=gateway.port)
            cold = await client.compile(SPEC_A, "r1", want_upgrade=True)
            assert cold["ok"] and cold["tier"] == "full"
            stats = await client.stats()
            spec, _ = spec_ledger(stats)
            assert not spec["enabled"] and spec["spec_enqueued"] == 0
            await client.close()
            await gateway.close()

        run(scenario())

    def test_cancel_mid_upgrade_withdraws_the_background_job(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path, speculate=True)
            client = await GatewayClient.connect(port=gateway.port)
            # A heavy program: the opt-3 recompile takes long enough that
            # the cancel lands while it is queued or mid-compile.
            cold = await client.compile(SLOW_SPEC, "r1", want_upgrade=True,
                                        timeout=240)
            assert cold["ok"] and cold["tier"] == "opt1"
            ack = await client.cancel("r1")
            assert ack["state"] == "upgrade-cancelled"

            async def settled():
                stats = await client.stats()
                spec, outcomes = spec_ledger(stats)
                return spec["spec_enqueued"] == outcomes and \
                    spec["in_flight"] == 0 and spec["queued"] == 0

            await wait_until(settled, timeout=120)
            stats = await client.stats()
            spec, _ = spec_ledger(stats)
            assert spec["spec_enqueued"] == 1
            assert spec["spec_cancelled"] == 1
            assert spec["spec_upgraded"] == 0
            await client.close()
            await gateway.close()

        run(scenario())

    def test_disconnect_withdraws_the_background_job(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path, speculate=True)
            client = await GatewayClient.connect(port=gateway.port)
            cold = await client.compile(SLOW_SPEC, "r1", want_upgrade=True,
                                        timeout=240)
            assert cold["tier"] == "opt1"
            await client.close()                        # walk away

            watcher = await GatewayClient.connect(port=gateway.port)

            async def settled():
                stats = await watcher.stats()
                spec, outcomes = spec_ledger(stats)
                return spec["spec_enqueued"] == outcomes and \
                    spec["in_flight"] == 0 and spec["queued"] == 0

            await wait_until(settled, timeout=120)
            stats = await watcher.stats()
            spec, _ = spec_ledger(stats)
            assert spec["spec_cancelled"] == 1
            assert spec["spec_upgraded"] == 0
            await watcher.close()
            await gateway.close()

        run(scenario())

    def test_cold_arrival_preempts_a_running_upgrade(self, tmp_path):
        """Strict priority in the single-slot thread mode: a cold request
        arriving while the background job holds the only compile slot
        must still complete (the upgrade yields and requeues), and the
        preempted job still reaches exactly one terminal outcome."""
        async def scenario():
            gateway = await make_gateway(tmp_path, speculate=True)
            client = await GatewayClient.connect(port=gateway.port)
            first = await client.compile(SLOW_SPEC, "r1", timeout=240)
            assert first["tier"] == "opt1"

            # Let the heavy background recompile claim the slot...
            async def spec_holds_slot():
                stats = await client.stats()
                return stats["speculative"]["in_flight"] == 1

            await wait_until(spec_holds_slot, timeout=60)
            # ...then demand cold service.  Without preemption this would
            # block for the whole opt-3 compile; with it the job yields.
            cold = await client.compile(SPEC_B, "r2", timeout=240)
            assert cold["ok"] and cold["tier"] == "opt1"

            async def settled():
                stats = await client.stats()
                spec, outcomes = spec_ledger(stats)
                return spec["spec_enqueued"] == outcomes and \
                    spec["in_flight"] == 0 and spec["queued"] == 0

            await wait_until(settled, timeout=240)
            stats = await client.stats()
            spec, outcomes = spec_ledger(stats)
            assert spec["spec_enqueued"] == 2           # r1's and r2's
            assert spec["spec_enqueued"] == outcomes
            assert stats["requests"]["completed"] == 2
            await client.close()
            await gateway.close()

        run(scenario())

    def test_budget_cap_drops_overflow_without_buffering(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path, speculate=True,
                                         speculative_limit=0)
            client = await GatewayClient.connect(port=gateway.port)
            cold = await client.compile(SPEC_A, "r1")
            assert cold["tier"] == "opt1"               # answer unaffected
            stats = await client.stats()
            spec, outcomes = spec_ledger(stats)
            assert spec["spec_enqueued"] == 1
            assert spec["spec_dropped"] == 1
            assert spec["spec_enqueued"] == outcomes
            assert spec["queued"] == 0
            await client.close()
            await gateway.close()

        run(scenario())

    def test_warm_hit_on_fast_artifact_respeculates(self, tmp_path):
        """An opt-1 artifact stranded in the cache (its upgrade was
        dropped) is re-speculated by the next warm hit, so the store
        converges to full tier without a cold miss."""
        async def scenario():
            gateway = await make_gateway(tmp_path, speculate=True,
                                         speculative_limit=0)
            client = await GatewayClient.connect(port=gateway.port)
            cold = await client.compile(SPEC_A, "r1")
            assert cold["tier"] == "opt1"               # upgrade dropped
            gateway.config.speculative_limit = 8        # budget restored
            warm = await client.compile(SPEC_A, "r2", want_upgrade=True)
            assert warm["cached"] and warm["tier"] == "opt1"
            push = await client.wait_upgrade("r2", timeout=60)
            assert push["ok"] and push["tier"] == "full"
            final = await client.compile(SPEC_A, "r3")
            assert final["cached"] and final["tier"] == "full"
            stats = await client.stats()
            spec, outcomes = spec_ledger(stats)
            assert spec["spec_enqueued"] == 2           # dropped + landed
            assert spec["spec_dropped"] == 1
            assert spec["spec_upgraded"] == 1
            assert spec["spec_enqueued"] == outcomes
            await client.close()
            await gateway.close()

        run(scenario())

    def test_duplicate_speculation_merges_into_one_job(self, tmp_path):
        """Two subscribed requests for one fingerprint share one
        background job — and both get their push frame."""
        async def scenario():
            gateway = await make_gateway(tmp_path, speculate=True)
            client = await GatewayClient.connect(port=gateway.port)
            cold = await client.compile(SLOW_SPEC, "r1", want_upgrade=True,
                                        timeout=240)
            assert cold["tier"] == "opt1"
            warm = await client.compile(SLOW_SPEC, "r2", want_upgrade=True,
                                        timeout=240)
            assert warm["cached"] and warm["tier"] == "opt1"
            first = await client.wait_upgrade("r1", timeout=240)
            second = await client.wait_upgrade("r2", timeout=240)
            assert first["ok"] and second["ok"]
            stats = await client.stats()
            spec, outcomes = spec_ledger(stats)
            assert spec["spec_upgraded"] == 1           # one shared job
            assert spec["spec_enqueued"] == outcomes
            await client.close()
            await gateway.close()

        run(scenario())


class TestProcessMode:
    """One spawn-pool round trip and the worker-death recovery path.

    Slower (pool spawn ≈ 1-2 s) so kept to two tests; the soak battery
    exercises this mode under churn.
    """

    def test_process_pool_compile_and_shared_store_stats(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path, workers=1)
            client = await GatewayClient.connect(port=gateway.port)
            cold = await client.compile(SPEC_A, "r1", timeout=240)
            assert cold["ok"] and not cold["cached"]
            warm = await client.compile(SPEC_A, "r2")
            assert warm["cached"]
            stats = await client.stats()
            assert stats["workers"]["mode"] == "process"
            assert stats["workers"]["pids"]
            assert stats["per_worker"]
            # Shared-store accounting: the worker's put was absorbed, the
            # parent only promoted (no double-counted put).
            assert stats["cache"]["puts"] == 1
            await client.close()
            await gateway.close()
            # Clean shutdown leaves no pool workers behind.
            for pid in stats["workers"]["pids"]:
                with pytest.raises(OSError):
                    os.kill(pid, 0)

        run(scenario())

    def test_shared_store_upgrade_lands_via_worker_cas(self, tmp_path):
        """Process mode: the worker performs the compare-and-swap against
        the shared store itself, and the parent detects a landed upgrade
        purely from the worker's ``upgraded`` counter delta."""
        async def scenario():
            gateway = await make_gateway(tmp_path, workers=1, speculate=True)
            client = await GatewayClient.connect(port=gateway.port)
            cold = await client.compile(SPEC_A, "r1", want_upgrade=True,
                                        timeout=240)
            assert cold["ok"] and cold["tier"] == "opt1"
            push = await client.wait_upgrade("r1", timeout=240)
            assert push["ok"] and push["tier"] == "full"
            warm = await client.compile(SPEC_A, "r2")
            assert warm["cached"] and warm["tier"] == "full"
            stats = await client.stats()
            spec, outcomes = spec_ledger(stats)
            assert spec["spec_upgraded"] == 1
            assert spec["spec_enqueued"] == outcomes
            # Shared-store ledger: one worker put (the opt-1 publish) and
            # one worker upgrade, each absorbed exactly once.
            assert stats["cache"]["puts"] == 1
            assert stats["cache"]["upgraded"] == 1
            await client.close()
            await gateway.close()

        run(scenario())

    def test_worker_death_recovers_and_is_counted(self, tmp_path):
        async def scenario():
            gateway = await make_gateway(tmp_path, workers=1)
            client = await GatewayClient.connect(port=gateway.port)
            await client.compile(SPEC_A, "r1", timeout=240)
            stats = await client.stats()
            os.kill(stats["workers"]["pids"][0], signal.SIGKILL)
            await asyncio.sleep(0.1)
            after = await client.compile(SPEC_B, "r2", timeout=240)
            assert after["ok"]
            stats = await client.stats()
            assert stats["requests"]["failed"] == 0
            assert stats["workers"]["restarts"] >= 1
            await client.close()
            await gateway.close()

        run(scenario())
