"""Cross-compiler integration tests.

Every compiler in the repository — Paulihedral FT, Paulihedral SC, the TK
baseline, naive synthesis, and the QAOA compiler — must agree on the
physics: for a program whose terms all commute, all of them implement the
*same* unitary regardless of ordering, mapping, or optimization.
"""

import numpy as np
import pytest

from repro.baselines import naive_compile, qaoa_compile, tk_compile
from repro.circuit import circuit_unitary, equivalent_up_to_global_phase
from repro.core import compile_program, ft_compile, sc_compile
from repro.ir import PauliBlock, PauliProgram
from repro.pauli import PauliString
from repro.transpile import linear, ring

from helpers import layout_permutation, terms_unitary


@pytest.fixture
def commuting_program():
    """A QAOA-style all-commuting program on 4 qubits."""
    labels = [("IIZZ", 0.8), ("IZZI", -0.5), ("ZZII", 0.3), ("ZIIZ", 1.1)]
    return PauliProgram([
        PauliBlock([(l, w)], parameter=0.4) for l, w in labels
    ])


@pytest.fixture
def expected_unitary(commuting_program):
    terms = [
        (ws.string, ws.weight * parameter)
        for ws, parameter in commuting_program.all_weighted_strings()
    ]
    return terms_unitary(terms, 4)


class TestAllCompilersAgree:
    def test_ph_ft(self, commuting_program, expected_unitary):
        for scheduler in ("gco", "do", "none"):
            result = ft_compile(commuting_program, scheduler=scheduler)
            assert equivalent_up_to_global_phase(
                circuit_unitary(result.circuit), expected_unitary
            ), scheduler

    def test_ph_sc(self, commuting_program, expected_unitary):
        cmap = linear(4)
        result = sc_compile(commuting_program, cmap)
        s_init = layout_permutation(result.initial_layout, 4)
        s_final = layout_permutation(result.final_layout, 4)
        assert equivalent_up_to_global_phase(
            circuit_unitary(result.circuit),
            s_final @ expected_unitary @ s_init.conj().T,
        )

    def test_ph_sc_with_restarts(self, commuting_program, expected_unitary):
        cmap = ring(4)
        result = sc_compile(commuting_program, cmap, restarts=4)
        s_init = layout_permutation(result.initial_layout, 4)
        s_final = layout_permutation(result.final_layout, 4)
        assert equivalent_up_to_global_phase(
            circuit_unitary(result.circuit),
            s_final @ expected_unitary @ s_init.conj().T,
        )

    def test_tk(self, commuting_program, expected_unitary):
        result = tk_compile(commuting_program)
        assert equivalent_up_to_global_phase(
            circuit_unitary(result.circuit), expected_unitary
        )

    def test_naive_unrouted(self, commuting_program, expected_unitary):
        circuit = naive_compile(commuting_program)
        assert equivalent_up_to_global_phase(circuit_unitary(circuit), expected_unitary)

    def test_qaoa_compiler(self, commuting_program, expected_unitary):
        cmap = ring(4)
        result = qaoa_compile(commuting_program, cmap, seeds=3)
        s_init = layout_permutation(result.initial_layout, 4)
        s_final = layout_permutation(result.final_layout, 4)
        assert equivalent_up_to_global_phase(
            circuit_unitary(result.circuit),
            s_final @ expected_unitary @ s_init.conj().T,
        )

    def test_compile_program_entry_point(self, commuting_program, expected_unitary):
        ft = compile_program(commuting_program, backend="ft")
        assert equivalent_up_to_global_phase(circuit_unitary(ft.circuit), expected_unitary)
        sc = compile_program(commuting_program, backend="sc", coupling=linear(4))
        s_init = layout_permutation(sc.initial_layout, 4)
        s_final = layout_permutation(sc.final_layout, 4)
        assert equivalent_up_to_global_phase(
            circuit_unitary(sc.circuit),
            s_final @ expected_unitary @ s_init.conj().T,
        )


class TestGateCountOrdering:
    """The paper's qualitative gate-count relationships on small instances."""

    def test_ph_never_worse_than_naive_ft(self):
        # UCCSD-style excitation blocks: PH must strictly win.
        from repro.workloads import uccsd_program
        program = uccsd_program(8)
        ph = ft_compile(program).circuit
        naive = naive_compile(program)
        assert ph.cnot_count < naive.cnot_count
        assert ph.cnot_count + ph.single_qubit_count < naive.cnot_count + naive.single_qubit_count

    def test_ph_sc_beats_naive_plus_routing_on_uccsd(self):
        from repro.transpile import grid, route
        from repro.core.synthesis import naive_program_circuit
        from repro.workloads import uccsd_program

        program = uccsd_program(8)
        cmap = grid(3, 3)
        ph = sc_compile(program, cmap)
        naive = route(naive_program_circuit(program), cmap)
        assert ph.circuit.cnot_count < naive.circuit.cnot_count

    def test_restart_determinism(self):
        from repro.workloads import build_benchmark
        program = build_benchmark("REG-20-4", "small")
        cmap = linear(12)
        a = sc_compile(program, cmap, restarts=4, seed=3)
        b = sc_compile(program, cmap, restarts=4, seed=3)
        assert a.circuit.gates == b.circuit.gates

    def test_restarts_never_hurt(self):
        from repro.workloads import build_benchmark
        program = build_benchmark("Rand-20-0.3", "small")
        cmap = linear(12)
        one = sc_compile(program, cmap, restarts=1)
        many = sc_compile(program, cmap, restarts=6)
        assert many.circuit.cnot_count <= one.circuit.cnot_count

    def test_bad_restart_count(self):
        with pytest.raises(ValueError):
            sc_compile(
                PauliProgram([PauliBlock(["ZZ"], 1.0)]), linear(2), restarts=0
            )
