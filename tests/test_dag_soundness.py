"""Adversarial soundness tests for the commutation DAG.

The key hazard: pairwise commutation is not transitive, so a gate that
commutes with its nearest predecessor may still conflict with an older one.
Every linear extension of the DAG must reproduce the original unitary.
"""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Gate, QuantumCircuit, circuit_unitary, equivalent_up_to_global_phase
from repro.circuit.dag import DAGCircuit


def all_linear_extensions(dag, limit=200):
    """Enumerate (up to ``limit``) topological orders of a small DAG."""
    preds = dag.predecessors()
    n = len(dag.gates)
    results = []

    def backtrack(order, remaining):
        if len(results) >= limit:
            return
        if not remaining:
            results.append(list(order))
            return
        for node in sorted(remaining):
            if all(p not in remaining for p in preds[node]):
                order.append(node)
                remaining.remove(node)
                backtrack(order, remaining)
                remaining.add(node)
                order.pop()

    backtrack([], set(range(n)))
    return results


def check_all_extensions(qc):
    dag = DAGCircuit.commutation_dag(qc)
    reference = circuit_unitary(qc)
    for order in all_linear_extensions(dag):
        rebuilt = dag.to_circuit(order)
        assert equivalent_up_to_global_phase(
            circuit_unitary(rebuilt), reference
        ), f"order {order} broke equivalence"


class TestNonTransitiveChains:
    def test_z_s_h_chain(self):
        # z and s commute; h conflicts with both: h must order after BOTH.
        qc = QuantumCircuit(1)
        qc.z(0).s(0).h(0)
        check_all_extensions(qc)

    def test_diag_sandwich(self):
        qc = QuantumCircuit(2)
        qc.rz(0.3, 0).cx(0, 1).rz(0.4, 0).h(0)
        check_all_extensions(qc)

    def test_cx_fanout_with_blockers(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1).cx(0, 2).h(0).cx(0, 1)
        check_all_extensions(qc)

    def test_x_axis_target_chain(self):
        qc = QuantumCircuit(2)
        qc.x(1).cx(0, 1).rx(0.2, 1).h(1)
        check_all_extensions(qc)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_every_topological_order_is_equivalent_property(data):
    qc = QuantumCircuit(2)
    n = data.draw(st.integers(2, 6))
    for _ in range(n):
        kind = data.draw(st.sampled_from(["h", "s", "z", "rz", "x", "cx", "cz"]))
        a = data.draw(st.integers(0, 1))
        if kind in ("cx", "cz"):
            qc.append(Gate(kind, (a, 1 - a)))
        elif kind == "rz":
            qc.rz(data.draw(st.floats(-2, 2, allow_nan=False)), a)
        else:
            qc.append(Gate(kind, (a,)))
    check_all_extensions(qc)
