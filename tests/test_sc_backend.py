"""Tests for the SC backend pass (Algorithm 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import circuit_unitary, equivalent_up_to_global_phase
from repro.core import EmbeddedTree, sc_compile
from repro.core.synthesis import naive_program_circuit
from repro.ir import PauliBlock, PauliProgram
from repro.transpile import CouplingMap, linear, ring, grid, full, route, validate_routed

from helpers import layout_permutation, terms_unitary


def prog(*block_specs, parameter=0.5):
    blocks = [
        PauliBlock(labels if isinstance(labels, list) else [labels], parameter=parameter)
        for labels in block_specs
    ]
    return PauliProgram(blocks)


def check_sc_equivalence(program, coupling, scheduler="do"):
    """Compile for SC and verify full unitary equivalence:

    circuit == S_final . U(emitted terms) . S_initial^dagger  (up to phase)
    """
    result = sc_compile(program, coupling, scheduler=scheduler)
    validate_routed(result.circuit, coupling)
    u_circ = circuit_unitary(result.circuit)
    u_terms = terms_unitary(result.emitted_terms, program.num_qubits)
    s_init = layout_permutation(result.initial_layout, coupling.num_qubits)
    s_final = layout_permutation(result.final_layout, coupling.num_qubits)
    expected = s_final @ u_terms @ s_init.conj().T
    assert equivalent_up_to_global_phase(u_circ, expected), "SC compilation broke semantics"
    return result


class TestEmbeddedTree:
    def test_bfs_tree_structure(self):
        cmap = linear(4)
        tree = EmbeddedTree.bfs(cmap, [0, 1, 2, 3], root=1)
        assert tree.depth == {1: 0, 0: 1, 2: 1, 3: 2}
        assert tree.parent[3] == 2

    def test_disconnected_nodes_rejected(self):
        cmap = linear(4)
        with pytest.raises(ValueError):
            EmbeddedTree.bfs(cmap, [0, 3], root=0)

    def test_root_must_be_member(self):
        with pytest.raises(ValueError):
            EmbeddedTree.bfs(linear(3), [0, 1], root=2)

    def test_depth_desc_order(self):
        cmap = linear(5)
        tree = EmbeddedTree.bfs(cmap, [0, 1, 2, 3, 4], root=0)
        order = tree.nodes_by_depth_desc()
        depths = [tree.depth[n] for n in order]
        assert depths == sorted(depths, reverse=True)


class TestSCCorrectness:
    def test_single_block_on_line(self):
        check_sc_equivalence(prog("ZZZ"), linear(3))

    def test_multi_block_on_line(self):
        check_sc_equivalence(prog("ZZI", "IXX", "YIY"), linear(3))

    def test_blocks_with_multiple_strings(self):
        check_sc_equivalence(prog(["ZZI", "IZZ"], ["XXI", "IXX"]), linear(3))

    def test_on_ring(self):
        check_sc_equivalence(prog("ZZZZ", "XXII", "IIYY"), ring(4))

    def test_on_grid(self):
        check_sc_equivalence(prog("ZIIZ", "IZZI", "XXXX"), grid(2, 2))

    def test_single_qubit_strings(self):
        check_sc_equivalence(prog("IIX", "IZI", "YII"), linear(3))

    def test_gco_scheduler(self):
        check_sc_equivalence(prog("ZZI", "ZIZ", "XXI"), linear(3), scheduler="gco")

    def test_distant_logicals_placed_adjacent(self):
        # Z..Z on logicals 0 and 3: the interaction-aware initial layout
        # places them on adjacent physical qubits, so no swaps are needed.
        result = check_sc_equivalence(prog("ZIIZ"), linear(4))
        assert result.circuit.count_ops().get("swap", 0) == 0
        p0 = result.initial_layout.physical(0)
        p3 = result.initial_layout.physical(3)
        assert abs(p0 - p3) == 1

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            sc_compile(prog("ZZ"), linear(2), scheduler="bogus")


class TestSCQuality:
    def test_all_gates_respect_coupling(self):
        p = prog("ZZIII", "IZZII", "IIZZI", "IIIZZ", "XIIIX")
        result = sc_compile(p, linear(5))
        validate_routed(result.circuit, linear(5))

    def test_competitive_with_naive_routing_on_qaoa_like(self):
        # Ring-of-ZZ QAOA-like workload on a line: the ring's wrap edge
        # forces movement for everyone; PH must stay within a small margin
        # of synth-then-SABRE here (it wins decisively on 2-D topologies —
        # see benchmarks/bench_ablations.py D3).
        labels = ["ZZIIII", "IZZIII", "IIZZII", "IIIZZI", "IIIIZZ", "ZIIIIZ"]
        p = prog(*labels)
        cmap = linear(6)
        ph = sc_compile(p, cmap)
        naive = naive_program_circuit(p)
        routed = route(naive, cmap)
        assert ph.circuit.cnot_count <= routed.circuit.cnot_count * 1.25

    def test_paper_fig4b_no_swap_needed(self):
        # ZZZ on a line with mapping q1,q0,q2: flexible root avoids SWAPs.
        p = prog("ZZZ")
        result = sc_compile(p, linear(3))
        assert result.circuit.count_ops().get("swap", 0) == 0


@given(
    st.lists(
        st.text(alphabet="IXYZ", min_size=3, max_size=3).filter(lambda s: set(s) != {"I"}),
        min_size=1,
        max_size=5,
    ),
    st.sampled_from(["do", "gco"]),
)
@settings(max_examples=25, deadline=None)
def test_sc_line_always_equivalent(labels, scheduler):
    check_sc_equivalence(prog(*labels, parameter=0.23), linear(3), scheduler=scheduler)


@given(
    st.lists(
        st.text(alphabet="IXYZ", min_size=4, max_size=4).filter(lambda s: set(s) != {"I"}),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=15, deadline=None)
def test_sc_ring_always_equivalent(labels):
    check_sc_equivalence(prog(*labels, parameter=0.41), ring(4))
