"""Tests for Pauli IR static validation."""

import pytest

from repro.ir import PauliBlock, PauliProgram
from repro.ir.validation import Diagnostic, validate_program


def program_of(*blocks):
    return PauliProgram(list(blocks))


class TestValidateProgram:
    def test_clean_program_ok(self):
        report = validate_program(program_of(PauliBlock(["ZZ", "XX"], 0.5)))
        assert report.ok
        assert not report.diagnostics
        assert str(report) == "program OK"

    def test_identity_only_block_is_error(self):
        report = validate_program(program_of(PauliBlock(["II"], 0.5)))
        assert not report.ok
        assert "identity" in report.errors[0].message

    def test_zero_weight_is_error(self):
        report = validate_program(program_of(PauliBlock([("ZZ", 0.0)], 0.5)))
        assert not report.ok
        assert "zero weight" in report.errors[0].message

    def test_duplicate_strings_warn(self):
        report = validate_program(program_of(PauliBlock(["ZZ", "ZZ"], 0.5)))
        assert report.ok
        assert any("duplicate" in d.message for d in report.warnings)

    def test_noncommuting_block_warns(self):
        report = validate_program(program_of(PauliBlock(["XI", "ZI"], 0.5)))
        assert report.ok
        assert any("commute" in d.message for d in report.warnings)

    def test_zero_parameter_warns(self):
        report = validate_program(program_of(PauliBlock(["ZZ"], 0.0)))
        assert any("parameter is zero" in d.message for d in report.warnings)

    def test_raise_on_error(self):
        report = validate_program(program_of(PauliBlock(["II"], 1.0)))
        with pytest.raises(ValueError):
            report.raise_on_error()

    def test_diagnostic_str(self):
        d = Diagnostic("warning", 3, "something")
        assert "block 3" in str(d)
        assert "warning" in str(d)

    def test_workload_generators_emit_clean_programs(self):
        from repro.workloads import (
            build_benchmark,
            heisenberg_program,
            ising_program,
            uccsd_program,
        )
        for program in (
            uccsd_program(8),
            ising_program([8]),
            heisenberg_program([3, 3]),
            build_benchmark("REG-20-4", "small"),
            build_benchmark("TSP-4", "small"),
            build_benchmark("N2", "small"),
        ):
            report = validate_program(program)
            assert report.ok, f"{program.name}: {report}"
