"""Equivalence of the tape-based transpile stages against the seed oracle.

The worklist peephole engine and the incremental SABRE router replaced the
seed rebuild-the-world implementations, which are kept verbatim in
``repro.transpile.reference``.  These tests pin the contract:

* every peephole pass produces a circuit unitarily equivalent to the seed
  pass's output (and with the same gate counts at the fixpoint);
* the router produces *gate-for-gate identical* output;

on random circuits and on the tier-1 workload emissions (FT and QAOA
families, both schedulers).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Gate, QuantumCircuit, circuit_unitary, equivalent_up_to_global_phase
from repro.circuit.statevector import simulate
from repro.core import ft_compile
from repro.transpile import (
    cancel_adjacent_pairs,
    commutative_cancel,
    fuse_swap_cx,
    linear,
    manhattan_65,
    merge_rotations,
    optimize,
    route,
    trivial_layout,
)
from repro.transpile.reference import (
    seed_cancel_adjacent_pairs,
    seed_commutative_cancel,
    seed_fuse_swap_cx,
    seed_merge_rotations,
    seed_optimize,
    seed_route,
)
from repro.workloads import build_benchmark

WORKLOADS = ["Ising-1D", "Heisen-1D", "N2", "UCCSD-8", "REG-20-4"]

PASS_PAIRS = [
    (cancel_adjacent_pairs, seed_cancel_adjacent_pairs),
    (merge_rotations, seed_merge_rotations),
    (commutative_cancel, seed_commutative_cancel),
    (fuse_swap_cx, seed_fuse_swap_cx),
]


def _random_state(num_qubits, seed=11):
    rng = np.random.default_rng(seed)
    dim = 2 ** num_qubits
    state = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return state / np.linalg.norm(state)


def _draw_circuit(data, n, num_gates):
    qc = QuantumCircuit(n)
    for _ in range(num_gates):
        kind = data.draw(st.sampled_from(
            ["h", "s", "sdg", "x", "y", "z", "yh", "rz", "rx", "ry",
             "cx", "cz", "swap"]
        ))
        a = data.draw(st.integers(0, n - 1))
        if kind in ("cx", "cz", "swap"):
            b = data.draw(st.integers(0, n - 1).filter(lambda x: x != a))
            qc.append(Gate(kind, (a, b)))
        elif kind in ("rz", "rx", "ry"):
            qc.append(Gate(kind, (a,), (data.draw(st.floats(-3, 3, allow_nan=False)),)))
        else:
            qc.append(Gate(kind, (a,)))
    return qc


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_each_pass_equivalent_to_seed_on_random_circuits(data):
    qc = _draw_circuit(data, 3, data.draw(st.integers(1, 14)))
    reference_unitary = circuit_unitary(qc)
    for tape_pass, seed_pass in PASS_PAIRS:
        tape_out, _ = tape_pass(qc)
        seed_out, _ = seed_pass(qc)
        u_tape = circuit_unitary(tape_out)
        assert equivalent_up_to_global_phase(u_tape, reference_unitary)
        assert equivalent_up_to_global_phase(u_tape, circuit_unitary(seed_out))


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_optimize_fixpoint_matches_seed_on_random_circuits(data):
    qc = _draw_circuit(data, 3, data.draw(st.integers(1, 16)))
    tape_out = optimize(qc)
    seed_out = seed_optimize(qc)
    # Both run their rules to a fixpoint: the circuits must be equivalent
    # and equally small.
    assert len(tape_out) <= len(seed_out)
    assert equivalent_up_to_global_phase(
        circuit_unitary(tape_out), circuit_unitary(qc)
    )


def test_fuse_does_not_steal_pending_cancellation():
    """Regression: fuse must not fire on [swap, cx, cx] before the cx/cx
    pair cancels — the shrinking rules have global priority, matching the
    seed's cancel-before-fuse pass order."""
    qc = QuantumCircuit(2)
    qc.swap(1, 0).cx(0, 1).cx(0, 1)
    tape_out = optimize(qc)
    seed_out = seed_optimize(qc)
    assert len(seed_out) == 1
    assert len(tape_out) == 1
    assert equivalent_up_to_global_phase(
        circuit_unitary(tape_out), circuit_unitary(qc)
    )


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_router_identical_to_seed_on_random_circuits(data):
    n = 4
    qc = QuantumCircuit(n)
    for _ in range(data.draw(st.integers(1, 12))):
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1).filter(lambda x: x != a))
        qc.cx(a, b)
    cmap = linear(n)
    seed_circuit, seed_init, seed_final, seed_swaps = seed_route(
        qc, cmap, initial_layout=trivial_layout(n)
    )
    result = route(qc, cmap, initial_layout=trivial_layout(n))
    assert list(result.circuit.gates) == list(seed_circuit.gates)
    assert result.swap_count == seed_swaps
    assert result.final_layout == seed_final
    assert result.initial_layout == seed_init


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("scheduler", ["do", "gco"])
def test_optimize_equivalent_to_seed_on_workloads(name, scheduler):
    program = build_benchmark(name, "small")
    emission = ft_compile(program, scheduler=scheduler, run_peephole=False).circuit
    tape_out = optimize(emission)
    seed_out = seed_optimize(emission)
    assert len(tape_out) == len(seed_out)
    assert tape_out.count_ops() == seed_out.count_ops()
    if emission.num_qubits <= 12:
        state = _random_state(emission.num_qubits)
        assert equivalent_up_to_global_phase(
            simulate(tape_out, state), simulate(seed_out, state)
        )


@pytest.mark.parametrize("name", WORKLOADS)
def test_router_identical_to_seed_on_workloads(name):
    program = build_benchmark(name, "small")
    emission = ft_compile(program, scheduler="do", run_peephole=False).circuit
    optimized = optimize(emission)
    cmap = manhattan_65()
    seed_circuit, _, _, seed_swaps = seed_route(optimized, cmap)
    result = route(optimized, cmap)
    assert list(result.circuit.gates) == list(seed_circuit.gates)
    assert result.swap_count == seed_swaps
