"""Tests for the repo-specific AST linter (tools/lint_repro.py).

Each rule family gets positive fixtures (the violation fires), negative
fixtures (idiomatic code stays clean), and a pragma fixture (in-place
suppression works).  The final test is the one CI relies on: the actual
source tree under ``src/repro`` must lint clean.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import lint_repro  # noqa: E402  (path set up above)


def findings_for(tmp_path, source, display="src/repro/service/mod.py"):
    path = tmp_path / Path(display).name
    path.write_text(textwrap.dedent(source))
    return lint_repro.lint_file(path, display)


def rules(found):
    return [finding.rule for finding in found]


class TestAsyncBlocking:
    def test_blocking_call_in_async_service_def_flagged(self, tmp_path):
        found = findings_for(tmp_path, """
            import time
            async def handler():
                time.sleep(1)
        """)
        assert rules(found) == ["RS101"]
        assert "time.sleep" in found[0].message
        assert "run_in_executor" in found[0].message

    @pytest.mark.parametrize("call", [
        "os.unlink('x')",
        "shutil.rmtree('d')",
        "tempfile.mkdtemp()",
        "open('f')",
        "path.read_text()",
        "cache.sweep_stale_tmp()",
        "self.cache.get_disk(fp)",
    ])
    def test_known_blocking_shapes_flagged(self, tmp_path, call):
        found = findings_for(tmp_path, f"""
            import os, shutil, tempfile
            async def handler(path, cache, fp):
                {call}
        """)
        assert rules(found) == ["RS101"]

    def test_sync_def_and_non_service_paths_exempt(self, tmp_path):
        clean = """
            import time
            def worker():
                time.sleep(1)
        """
        assert findings_for(tmp_path, clean) == []
        # Same blocking call in an async def, but outside service/.
        found = findings_for(tmp_path, """
            import time
            async def handler():
                time.sleep(1)
        """, display="src/repro/core/mod.py")
        assert found == []

    def test_lambda_and_nested_def_are_executor_boundaries(self, tmp_path):
        # The idiom the rule pushes you toward must itself be clean.
        found = findings_for(tmp_path, """
            import asyncio, tempfile
            async def handler(cache, fp):
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, lambda: tempfile.mkdtemp())
                await loop.run_in_executor(None, cache.get_disk, fp)
                def hop():
                    return open("f").read()
                await loop.run_in_executor(None, hop)
        """)
        assert found == []

    def test_pragma_silences_on_the_flagged_line(self, tmp_path):
        found = findings_for(tmp_path, """
            import time
            async def handler():
                time.sleep(0)  # lint: allow-blocking
        """)
        assert found == []


class TestLockDiscipline:
    def test_unlocked_mutation_in_locked_class_flagged(self, tmp_path):
        found = findings_for(tmp_path, """
            import threading
            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0
                def bump(self):
                    self.hits += 1
        """)
        assert rules(found) == ["RS102"]
        assert "self.hits" in found[0].message

    def test_locked_mutation_and_init_exempt(self, tmp_path):
        found = findings_for(tmp_path, """
            import threading
            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0
                def bump(self):
                    with self._lock:
                        self.hits += 1
                        self.table["k"] = 1
        """)
        assert found == []

    def test_lockless_class_exempt(self, tmp_path):
        found = findings_for(tmp_path, """
            class Plain:
                def bump(self):
                    self.hits = 1
        """)
        assert found == []

    def test_pragma_for_caller_held_lock(self, tmp_path):
        found = findings_for(tmp_path, """
            import threading
            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                def _bump_locked(self):
                    self.hits = 1  # lint: caller-holds-lock
        """)
        assert found == []


class TestTapeEncapsulation:
    def test_column_write_outside_tape_module_flagged(self, tmp_path):
        found = findings_for(tmp_path, """
            def kill(tape, slot):
                tape.alive[slot] = False
        """, display="src/repro/transpile/peephole.py")
        assert rules(found) == ["RS103"]
        assert ".alive[...]" in found[0].message

    def test_bookkeeping_attr_write_flagged(self, tmp_path):
        found = findings_for(tmp_path, """
            def drift(tape):
                tape.alive_count += 1
        """, display="src/repro/transpile/peephole.py")
        assert rules(found) == ["RS103"]

    def test_tape_module_itself_exempt(self, tmp_path):
        found = findings_for(tmp_path, """
            class GateTape:
                def remove(self, slot):
                    self.alive[slot] = False
                    self.alive_count -= 1
        """, display="src/repro/circuit/tape.py")
        assert found == []

    def test_reads_and_unrelated_receivers_clean(self, tmp_path):
        found = findings_for(tmp_path, """
            def inspect(tape, table, slot):
                value = tape.alive[slot]
                table.counts[slot] = 1
                return value
        """, display="src/repro/transpile/peephole.py")
        assert found == []


class TestFloatEquality:
    def test_angle_equality_flagged(self, tmp_path):
        found = findings_for(tmp_path, """
            def same(gate):
                return gate.param == 0.0
        """, display="src/repro/core/mod.py")
        assert rules(found) == ["RS104"]

    def test_inequality_and_bare_weight_flagged(self, tmp_path):
        found = findings_for(tmp_path, """
            def differ(weight, other):
                return weight != other
        """, display="src/repro/core/mod.py")
        assert rules(found) == ["RS104"]

    def test_comparisons_and_other_names_clean(self, tmp_path):
        found = findings_for(tmp_path, """
            def fine(gate, count):
                return gate.param < 1e-9 or count == 3
        """, display="src/repro/core/mod.py")
        assert found == []

    def test_pragma_for_structural_identity(self, tmp_path):
        found = findings_for(tmp_path, """
            def eq(self, other):
                return self.weight == other.weight  # lint: allow-float-eq
        """, display="src/repro/core/mod.py")
        assert found == []


class TestHarness:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        found = findings_for(tmp_path, "def broken(:\n")
        assert rules(found) == ["RS100"]

    def test_blanket_ignore_pragma(self, tmp_path):
        found = findings_for(tmp_path, """
            import time
            async def handler():
                time.sleep(0)  # lint: ignore
        """)
        assert found == []

    def test_main_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        # Path must route through service/ detection via display name —
        # lint a file directly, so use a tape write, which is path-keyed
        # only by *not* being tape.py.
        dirty.write_text("def f(tape, s):\n    tape.alive[s] = 0\n")
        assert lint_repro.main([str(dirty)]) == 1
        out = capsys.readouterr()
        assert "RS103" in out.out
        assert lint_repro.main([str(tmp_path / "missing.py")]) == 2

    def test_repo_source_tree_is_clean(self):
        # The CI contract: the shipped tree has zero findings.
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "lint_repro.py"),
             str(REPO / "src" / "repro")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout
