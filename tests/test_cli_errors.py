"""CLI exit codes and malformed-input paths.

Contract: 0 = success, 1 = the work ran but something failed
(verification mismatch, failed job), 2 = the invocation itself was bad
(unreadable specs, unknown benchmark, busy port, no server).  These are
what CI scripts and the nightly soak wrapper branch on, so they get
pinned here; all tests drive ``repro.cli.main`` in-process for speed.
"""

import json
import socket

import pytest

from repro.cli import main
from repro.service import (
    CompileCache,
    canonical_options,
    compile_fingerprint,
)
from repro.ir import parse_program

GOOD_SPEC = {"text": "{(XXI, 1.0), (YYI, 0.5), 0.3};", "label": "a"}


def write_specs(path, rows):
    with open(path, "w") as handle:
        for row in rows:
            handle.write((row if isinstance(row, str) else json.dumps(row)) + "\n")
    return str(path)


class TestCompileBatchErrors:
    def test_truncated_jsonl_exits_2(self, tmp_path, capsys):
        specs = write_specs(tmp_path / "specs.jsonl", [
            GOOD_SPEC,
            '{"text": "{(XX, 1.0), 0.5};", "lab',   # truncated mid-object
        ])
        assert main(["compile-batch", specs]) == 2
        assert "cannot read spec file" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["compile-batch", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read spec file" in capsys.readouterr().err

    def test_empty_file_exits_2(self, tmp_path, capsys):
        specs = write_specs(tmp_path / "empty.jsonl", ["# only a comment"])
        assert main(["compile-batch", specs]) == 2
        assert "no job specs" in capsys.readouterr().err

    def test_unresolvable_spec_exits_2(self, tmp_path, capsys):
        specs = write_specs(tmp_path / "bad.jsonl", [{"label": "keyless"}])
        assert main(["compile-batch", specs]) == 2
        assert "bad job spec" in capsys.readouterr().err

    def test_good_batch_exits_0(self, tmp_path, capsys):
        specs = write_specs(tmp_path / "ok.jsonl", [GOOD_SPEC])
        out = str(tmp_path / "artifacts.jsonl")
        assert main(["compile-batch", specs, "--out", out]) == 0
        assert len(open(out).readlines()) == 1


class TestVerifyErrors:
    def test_missing_cache_entry_exits_1_without_allow_missing(
            self, tmp_path, capsys):
        specs = write_specs(tmp_path / "specs.jsonl", [GOOD_SPEC])
        empty = str(tmp_path / "cache")
        assert main(["verify", specs, "--cache", empty]) == 1
        assert "missing" in capsys.readouterr().err
        assert main(["verify", specs, "--cache", empty, "--allow-missing"]) == 0

    def test_corrupt_artifact_exits_1(self, tmp_path, capsys):
        specs = write_specs(tmp_path / "specs.jsonl", [GOOD_SPEC])
        cache = CompileCache(tmp_path / "cache")
        fingerprint = compile_fingerprint(
            parse_program(GOOD_SPEC["text"]), canonical_options("ft", "gco"))
        cache.put(fingerprint, '{"version": 1, "kind": "garbage"')
        assert main(["verify", specs, "--cache", str(tmp_path / "cache")]) == 1
        assert "corrupt" in capsys.readouterr().out

    def test_verified_artifact_exits_0(self, tmp_path):
        specs = write_specs(tmp_path / "specs.jsonl", [GOOD_SPEC])
        cache_dir = str(tmp_path / "cache")
        assert main(["compile-batch", specs, "--cache", cache_dir]) == 0
        assert main(["verify", specs, "--cache", cache_dir]) == 0


class TestCheckErrors:
    """Exit-code pins for the static-analysis subcommand: 0 = every
    checked invariant holds, 1 = a named invariant is broken, 2 = the
    invocation itself was bad."""

    def test_pipeline_contract_mode_exits_0(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "well-composed" in out
        assert "sc-do-opt3" in out

    def test_clean_artifact_exits_0_and_reports_ok(self, tmp_path, capsys):
        specs = write_specs(tmp_path / "specs.jsonl", [GOOD_SPEC])
        cache_dir = str(tmp_path / "cache")
        assert main(["compile-batch", specs, "--cache", cache_dir]) == 0
        capsys.readouterr()
        assert main(["check", specs, "--cache", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "FAIL" not in out

    def test_corrupt_artifact_exits_1_naming_the_invariant(
            self, tmp_path, capsys):
        specs = write_specs(tmp_path / "specs.jsonl", [GOOD_SPEC])
        cache = CompileCache(tmp_path / "cache")
        fingerprint = compile_fingerprint(
            parse_program(GOOD_SPEC["text"]), canonical_options("ft", "gco"))
        cache.put(fingerprint, '{"version": 1, "kind": "garbage"')
        assert main(["check", specs, "--cache", str(tmp_path / "cache")]) == 1
        out = capsys.readouterr().out
        assert "artifact.decode" in out
        assert "FAIL" in out

    def test_broken_invariant_in_stored_artifact_is_named(
            self, tmp_path, capsys):
        # A well-formed artifact whose tape violates a structural
        # invariant the decoder does not police: round-trip a real
        # compile, then collapse one CNOT onto identical operands.
        from repro.core import compile_program
        from repro.service import dumps_artifact

        specs = write_specs(tmp_path / "specs.jsonl", [GOOD_SPEC])
        result = compile_program(parse_program(GOOD_SPEC["text"]))
        tape = result.circuit.tape
        slot = next(s for s in range(len(tape.op)) if tape.q1[s] >= 0)
        tape.q1[slot] = tape.q0[slot]
        cache = CompileCache(tmp_path / "cache")
        fingerprint = compile_fingerprint(
            parse_program(GOOD_SPEC["text"]), canonical_options("ft", "gco"))
        cache.put(fingerprint, dumps_artifact(result))
        assert main(["check", specs, "--cache", str(tmp_path / "cache")]) == 1
        out = capsys.readouterr().out
        assert "tape.operand-arity" in out

    def test_missing_artifact_exits_1_without_allow_missing(
            self, tmp_path, capsys):
        specs = write_specs(tmp_path / "specs.jsonl", [GOOD_SPEC])
        empty = str(tmp_path / "cache")
        assert main(["check", specs, "--cache", empty]) == 1
        assert "missing" in capsys.readouterr().err
        assert main(["check", specs, "--cache", empty,
                     "--allow-missing"]) == 0

    def test_specs_without_cache_exits_2(self, tmp_path, capsys):
        specs = write_specs(tmp_path / "specs.jsonl", [GOOD_SPEC])
        assert main(["check", specs]) == 2
        assert "--cache" in capsys.readouterr().err

    def test_unresolvable_spec_exits_2(self, tmp_path, capsys):
        specs = write_specs(tmp_path / "bad.jsonl", [{"label": "keyless"}])
        assert main(["check", specs, "--cache", str(tmp_path / "c")]) == 2
        assert "bad job spec" in capsys.readouterr().err


class TestCompileErrors:
    def test_unknown_benchmark_exits_2(self, capsys):
        assert main(["compile", "No-Such-Benchmark"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestServeErrors:
    def test_busy_tcp_port_exits_2(self, capsys):
        squatter = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            squatter.bind(("127.0.0.1", 0))
            squatter.listen(1)
            port = squatter.getsockname()[1]
            assert main(["serve", "--port", str(port), "--workers", "0"]) == 2
            assert "cannot bind gateway" in capsys.readouterr().err
        finally:
            squatter.close()

    def test_busy_unix_socket_exits_2(self, tmp_path, capsys):
        path = str(tmp_path / "gw.sock")
        squatter = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            squatter.bind(path)
            squatter.listen(1)
            assert main(["serve", "--socket", path, "--workers", "0"]) == 2
            assert "cannot bind gateway" in capsys.readouterr().err
        finally:
            squatter.close()

    def test_stale_unix_socket_is_reclaimed(self, tmp_path):
        """A dead gateway's leftover socket file must not wedge restarts:
        prepare_unix_path unlinks it when nothing is listening."""
        from repro.service import prepare_unix_path

        path = tmp_path / "stale.sock"
        dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        dead.bind(str(path))
        dead.close()               # socket file left behind, no listener
        assert path.exists()
        prepare_unix_path(str(path))
        assert not path.exists()


class TestClientErrors:
    def test_no_server_exits_2(self, tmp_path, capsys):
        specs = write_specs(tmp_path / "specs.jsonl", [GOOD_SPEC])
        # Grab a port that is definitely closed.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["client", specs, "--port", str(port)]) == 2
        assert "cannot connect" in capsys.readouterr().err

    def test_no_specs_and_no_stats_exits_2(self, capsys):
        assert main(["client"]) == 2
        assert "SPECS.jsonl" in capsys.readouterr().err

    def test_truncated_specs_exit_2(self, tmp_path, capsys):
        specs = write_specs(tmp_path / "specs.jsonl", ['{"text": "{(X'])
        assert main(["client", specs, "--port", "1"]) == 2
        assert "cannot read spec file" in capsys.readouterr().err
