"""Tests for the reconfigurable pass pipeline."""

import pytest

from repro.circuit import circuit_unitary, equivalent_up_to_global_phase
from repro.core.passes import PassPipeline, ft_pipeline, sc_pipeline
from repro.ir import PauliProgram
from repro.transpile import linear, validate_routed

from helpers import layout_permutation, terms_unitary


@pytest.fixture
def program():
    return PauliProgram.from_hamiltonian(
        [("ZZI", 0.5), ("IXX", -0.3), ("YIY", 0.2)], parameter=0.4
    )


class TestFTPipeline:
    def test_matches_ft_compile(self, program):
        from repro.core import ft_compile

        result = ft_pipeline("gco").run(program)
        reference = ft_compile(program, scheduler="gco")
        assert result.circuit.gates == reference.circuit.gates

    def test_stage_sizes_recorded(self, program):
        result = ft_pipeline("gco").run(program)
        assert "synthesize" in result.stage_sizes
        assert "peephole" in result.stage_sizes
        assert result.stage_sizes["peephole"] <= result.stage_sizes["synthesize"]

    def test_no_peephole_option(self, program):
        with_ = ft_pipeline("gco", peephole=True).run(program)
        without = ft_pipeline("gco", peephole=False).run(program)
        assert with_.circuit.size <= without.circuit.size

    def test_unknown_scheduler(self):
        with pytest.raises(ValueError):
            ft_pipeline("bogus")

    def test_unitary_correct(self, program):
        result = ft_pipeline("do").run(program)
        expected = terms_unitary(result.metadata["emitted_terms"], 3)
        assert equivalent_up_to_global_phase(circuit_unitary(result.circuit), expected)


class TestSCPipeline:
    def test_routed_output(self, program):
        cmap = linear(3)
        result = sc_pipeline(cmap).run(program)
        validate_routed(result.circuit, cmap)

    def test_unitary_with_layouts(self, program):
        cmap = linear(3)
        result = sc_pipeline(cmap).run(program)
        expected = terms_unitary(result.metadata["emitted_terms"], 3)
        s_init = layout_permutation(result.metadata["initial_layout"], 3)
        s_final = layout_permutation(result.metadata["final_layout"], 3)
        assert equivalent_up_to_global_phase(
            circuit_unitary(result.circuit),
            s_final @ expected @ s_init.conj().T,
        )


class TestCustomPasses:
    def test_user_pass_inserted(self, program):
        calls = []

        def spy_pass(circuit):
            calls.append(circuit.size)
            return circuit

        pipeline = ft_pipeline("gco").add_circuit_pass("spy", spy_pass)
        assert pipeline.pass_names == ["schedule", "synthesize", "peephole", "spy"]
        pipeline.run(program)
        assert len(calls) == 1

    def test_custom_synthesis_pass(self, program):
        # A trivial backend: naive synthesis of the flattened schedule.
        from repro.core.synthesis import naive_program_circuit
        from repro.core.scheduling import gco_schedule, schedule_to_program

        def synthesis(schedule, prog):
            return naive_program_circuit(schedule_to_program(schedule)), {}

        pipeline = PassPipeline("naive", gco_schedule, synthesis)
        result = pipeline.run(program)
        assert result.circuit.size > 0
