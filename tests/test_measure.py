"""Tests for measurement grouping and sampled expectation estimation."""

import random

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, simulate
from repro.measure import MeasurementPlan, estimate_expectation, measurement_plans, sample_counts
from repro.pauli import PauliString
from repro.workloads.fermion import PauliSum
from repro.workloads.hubbard import hubbard_hamiltonian


def make_terms(*pairs):
    return [(PauliString.from_label(label), weight) for label, weight in pairs]


class TestMeasurementPlans:
    def test_commuting_terms_share_one_plan(self):
        terms = make_terms(("ZZ", 1.0), ("ZI", 0.5), ("IZ", -0.5))
        plans = measurement_plans(terms, 2)
        assert len(plans) == 1
        assert len(plans[0].masks) == 3

    def test_noncommuting_terms_split(self):
        terms = make_terms(("XI", 1.0), ("ZI", 1.0))
        plans = measurement_plans(terms, 1 + 1)
        assert len(plans) == 2

    def test_identity_folded_into_constant_plan(self):
        terms = make_terms(("II", 2.5), ("ZZ", 1.0))
        plans = measurement_plans(terms, 2)
        constants = [p for p in plans if all(m == 0 for _, _, m in p.masks)]
        assert len(constants) == 1
        assert constants[0].masks[0][0] == 2.5

    def test_diagonal_strings_need_no_basis_change(self):
        terms = make_terms(("ZZ", 1.0), ("IZ", 1.0))
        plans = measurement_plans(terms, 2)
        assert len(plans[0].circuit) == 0


class TestEstimation:
    def test_z_on_computational_states(self):
        terms = make_terms(("Z", 1.0))
        plans = measurement_plans(terms, 1)
        zero = np.array([1.0, 0.0], dtype=complex)
        one = np.array([0.0, 1.0], dtype=complex)
        assert estimate_expectation(plans, zero, shots=512) == pytest.approx(1.0)
        assert estimate_expectation(plans, one, shots=512) == pytest.approx(-1.0)

    def test_x_on_plus_state(self):
        terms = make_terms(("X", 1.0))
        plans = measurement_plans(terms, 1)
        plus = np.array([1.0, 1.0], dtype=complex) / np.sqrt(2)
        assert estimate_expectation(plans, plus, shots=2048) == pytest.approx(1.0, abs=0.05)

    def test_matches_exact_expectation_statistically(self):
        terms = make_terms(("ZZ", 0.7), ("XX", -0.4), ("ZI", 0.2))
        plans = measurement_plans(terms, 2)
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).rz(0.3, 1)
        state = simulate(qc)
        observable = PauliSum(2, {s: w for s, w in terms})
        exact = observable.expectation(state).real
        sampled = estimate_expectation(plans, state, shots=20000, seed=5)
        assert sampled == pytest.approx(exact, abs=0.05)

    def test_hubbard_energy_estimate(self):
        h = hubbard_hamiltonian(2)
        terms = h.real_weighted_strings()
        plans = measurement_plans(terms, 4)
        # Reference half-filled state |0101>.
        state = np.zeros(16, dtype=complex)
        state[0b0101] = 1.0
        exact = h.expectation(state).real
        sampled = estimate_expectation(plans, state, shots=8000, seed=3)
        assert sampled == pytest.approx(exact, abs=0.15)

    def test_sample_counts_total(self):
        rng = random.Random(0)
        counts = sample_counts(np.array([0.5, 0.5]), 100, rng)
        assert sum(counts.values()) == 100

    def test_empty_counts_rejected(self):
        plan = MeasurementPlan(QuantumCircuit(1), [(1.0, 1, 1)])
        with pytest.raises(ValueError):
            plan.estimate_from_counts({})
