"""Tests for the FT backend pass (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import circuit_unitary, equivalent_up_to_global_phase
from repro.core import (
    ft_compile,
    ft_synthesize,
    most_overlap_sort,
    naive_program_circuit,
    plan_junctions,
)
from repro.core.ft_backend import _better_neighbor
from repro.ir import PauliBlock, PauliProgram
from repro.pauli import PauliString
from repro.transpile import optimize
from repro.workloads import build_benchmark

from helpers import terms_unitary


def prog(*block_specs, parameter=0.5):
    blocks = [
        PauliBlock(labels if isinstance(labels, list) else [labels], parameter=parameter)
        for labels in block_specs
    ]
    return PauliProgram(blocks)


class TestMostOverlapSort:
    def test_chains_by_overlap(self):
        terms = [
            (PauliString.from_label("ZZZ"), 1.0),
            (PauliString.from_label("XXX"), 1.0),
            (PauliString.from_label("ZZX"), 1.0),
        ]
        ordered = most_overlap_sort(terms)
        labels = [t[0].label for t in ordered]
        assert labels == ["ZZZ", "ZZX", "XXX"]

    def test_short_lists_unchanged(self):
        terms = [(PauliString.from_label("X"), 1.0)]
        assert most_overlap_sort(terms) == terms


class TestFTCorrectness:
    @pytest.mark.parametrize("scheduler", ["gco", "do", "none"])
    def test_unitary_matches_emitted_terms(self, scheduler):
        p = prog("ZZI", "IXX", ["YYI", "IZZ"], "XIX", parameter=0.31)
        result = ft_compile(p, scheduler=scheduler)
        expected = terms_unitary(result.emitted_terms, p.num_qubits)
        assert equivalent_up_to_global_phase(circuit_unitary(result.circuit), expected)

    def test_emitted_terms_cover_program(self):
        p = prog("ZZ", ["XX", "YY"], parameter=0.2)
        result = ft_compile(p)
        emitted = sorted((s.label, c) for s, c in result.emitted_terms)
        assert emitted == [("XX", 0.2), ("YY", 0.2), ("ZZ", 0.2)]

    def test_commuting_program_matches_program_semantics(self):
        # All-Z strings commute, so any emission order equals the program
        # order product exactly.
        p = prog("ZZI", "IZZ", "ZIZ", parameter=0.4)
        result = ft_compile(p)
        expected = terms_unitary(
            [(ws.string, ws.weight * 0.4) for ws, _ in
             ((ws, None) for block in p for ws in block)],
            p.num_qubits,
        )
        assert equivalent_up_to_global_phase(circuit_unitary(result.circuit), expected)

    def test_identity_strings_ignored(self):
        p = prog("III", "ZZZ")
        result = ft_compile(p)
        assert len(result.emitted_terms) == 1


class TestFTEffectiveness:
    def test_beats_naive_on_uccsd_like_block(self):
        # Mutually-commuting excitation-style strings share many operators.
        p = prog(
            ["XXXY", "XXYX", "XYXX", "YXXX"],
            ["XXYY", "YYXX"],
            parameter=0.7,
        )
        ph = ft_compile(p)
        naive = naive_program_circuit(p)
        assert ph.circuit.cnot_count < naive.cnot_count

    def test_gco_groups_similar_strings(self):
        p = prog("ZZII", "XXII", "ZZII", "XXII", parameter=0.3)
        result = ft_compile(p, scheduler="gco")
        labels = [s.label for s, _ in result.emitted_terms]
        assert labels == ["XXII", "XXII", "ZZII", "ZZII"]
        # Identical adjacent strings collapse into single rotations.
        assert result.circuit.count_ops()["rz"] == 2
        assert result.circuit.count_ops().get("cx", 0) == 4

    def test_peephole_toggle(self):
        p = prog("ZZII", "ZZII")
        with_opt = ft_compile(p, run_peephole=True)
        without = ft_compile(p, run_peephole=False)
        assert with_opt.circuit.size <= without.circuit.size


class TestJunctionPlanning:
    def test_zero_overlap_neighbors_align_nothing(self):
        strings = [PauliString.from_label(s) for s in ("ZZI", "IXX")]
        # overlap(ZZI, IXX) == 0: neither string should devote its leaf end.
        assert plan_junctions(strings) == [None, None]

    def test_better_neighbor_rejects_zero_overlap(self):
        string = PauliString.from_label("ZZI")
        other = PauliString.from_label("IXX")
        # A zero-overlap neighbour must not win just because the other side
        # is missing (the old -1 sentinel made overlap 0 look attractive).
        assert _better_neighbor(string, None, other) is None
        assert _better_neighbor(string, other, None) is None
        assert _better_neighbor(string, None, None) is None

    def test_pairwise_consistent_selection(self):
        # Shared-Z counts between neighbours are [3, 4, 3], i.e. CNOT
        # cancellations [4, 6, 4].  The one-sided rule realizes only the
        # middle junction (both sides pick it), saving 6 CNOTs; the
        # pairwise planner takes the outer two for 8, mutually aligned.
        labels = ["ZZZIIIII", "ZZZZZZZI", "IIIZZZZZ", "IIIIIZZZ"]
        strings = [PauliString.from_label(s) for s in labels]
        aligned = plan_junctions(strings)
        assert aligned == [1, 0, 3, 2]

    def test_adjacent_junctions_never_both_selected(self):
        strings = [PauliString.from_label(s) for s in ("ZZZ", "ZZX", "ZXX", "XXX")]
        aligned = plan_junctions(strings)
        for i, k in enumerate(aligned):
            if k is not None:
                assert aligned[k] == i, "junction alignment must be mutual"

    def test_paired_beats_onesided_on_staggered_overlaps(self):
        # Non-nested shared sets [3, 4, 3]: one-sided realizes only the
        # middle junction (6 CNOTs); paired takes the outer two (8).
        labels = ["ZZZIIIII", "ZZZZZZZI", "IIIZZZZZ", "IIIIIZZZ"]
        terms = [(PauliString.from_label(s), 0.3) for s in labels]
        paired = optimize(ft_synthesize(terms, 8, junction_policy="paired"))
        onesided = optimize(ft_synthesize(terms, 8, junction_policy="onesided"))
        assert paired.cnot_count < onesided.cnot_count

    def test_policies_unitary_equivalent(self):
        labels = ["ZZZIIIII", "ZZZZZZZI", "IIIZZZZZ", "IIIIIZZZ", "YIYIIIII"]
        terms = [(PauliString.from_label(s), 0.21) for s in labels]
        expected = terms_unitary(terms, 8)
        for policy in ("paired", "onesided"):
            circuit = ft_synthesize(terms, 8, junction_policy=policy)
            assert equivalent_up_to_global_phase(circuit_unitary(circuit), expected)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ft_synthesize([(PauliString.from_label("Z"), 0.1)], 1, junction_policy="x")

    @pytest.mark.parametrize("name", ["Ising-1D", "Ising-2D", "Heisen-1D", "Heisen-2D"])
    @pytest.mark.parametrize("scheduler", ["do", "gco"])
    def test_cnot_never_worse_than_onesided(self, name, scheduler):
        program = build_benchmark(name, "small")
        paired = ft_compile(program, scheduler=scheduler, junction_policy="paired")
        onesided = ft_compile(program, scheduler=scheduler, junction_policy="onesided")
        assert paired.circuit.cnot_count <= onesided.circuit.cnot_count


@given(
    st.lists(
        st.text(alphabet="IXYZ", min_size=3, max_size=3).filter(lambda s: set(s) != {"I"}),
        min_size=1,
        max_size=6,
    ),
    st.sampled_from(["gco", "do", "none"]),
)
@settings(max_examples=40, deadline=None)
def test_ft_always_unitary_equivalent(labels, scheduler):
    p = prog(*labels, parameter=0.17)
    result = ft_compile(p, scheduler=scheduler)
    expected = terms_unitary(result.emitted_terms, 3)
    assert equivalent_up_to_global_phase(circuit_unitary(result.circuit), expected)


@given(
    st.lists(
        st.text(alphabet="IXYZ", min_size=4, max_size=4).filter(lambda s: set(s) != {"I"}),
        min_size=2,
        max_size=6,
    )
)
@settings(max_examples=30, deadline=None)
def test_paired_synthesis_always_unitary_equivalent(labels):
    terms = [(PauliString.from_label(s), 0.13) for s in labels]
    circuit = ft_synthesize(terms, 4, junction_policy="paired")
    assert equivalent_up_to_global_phase(
        circuit_unitary(circuit), terms_unitary(terms, 4)
    )
