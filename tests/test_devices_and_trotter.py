"""Tests for the extra devices and second-order Trotterization."""

import networkx as nx
import numpy as np
import pytest
import scipy.linalg

from repro.circuit import circuit_unitary, equivalent_up_to_global_phase
from repro.core import ft_compile, sc_compile, symmetric_trotterize, trotterize
from repro.ir import PauliProgram
from repro.transpile import falcon_27, ion_trap, melbourne, sycamore_like


class TestDevices:
    def test_falcon_is_heavy_hex(self):
        cmap = falcon_27()
        assert cmap.num_qubits == 27
        assert nx.is_connected(cmap.graph)
        assert max(dict(cmap.graph.degree).values()) <= 3

    def test_sycamore_degree(self):
        cmap = sycamore_like(4, 4)
        assert nx.is_connected(cmap.graph)
        assert max(dict(cmap.graph.degree).values()) <= 4

    def test_ion_trap_all_to_all(self):
        cmap = ion_trap(5)
        assert all(cmap.distance(i, j) <= 1 for i in range(5) for j in range(5))

    @pytest.mark.parametrize("factory", [falcon_27, lambda: sycamore_like(3, 4), lambda: ion_trap(8)])
    def test_compilation_targets(self, factory):
        cmap = factory()
        program = PauliProgram.from_hamiltonian(
            [("IIZZ", 1.0), ("ZZII", 1.0), ("XXII", 0.5)], parameter=0.3
        )
        result = sc_compile(program, cmap)
        assert result.circuit.cnot_count > 0

    def test_ion_trap_needs_no_swaps(self):
        program = PauliProgram.from_hamiltonian([("ZIIZ", 1.0), ("IZZI", 0.7)])
        result = sc_compile(program, ion_trap(4))
        assert result.circuit.count_ops().get("swap", 0) == 0


class TestSymmetricTrotter:
    @pytest.fixture
    def step(self):
        return PauliProgram.from_hamiltonian([("XI", 0.4), ("ZZ", 0.6)], parameter=0.3)

    def test_palindromic_structure(self, step):
        program = symmetric_trotterize(step, 1)
        params = [block.parameter for block in program]
        assert params == [0.15, 0.15, 0.15, 0.15]
        labels = [block.pauli_strings[0].label for block in program]
        assert labels == ["XI", "ZZ", "ZZ", "XI"]

    def test_rejects_bad_count(self, step):
        with pytest.raises(ValueError):
            symmetric_trotterize(step, 0)

    def test_second_order_more_accurate(self, step):
        # Compare both splittings against the exact exponential of the sum.
        h = step.to_hamiltonian()
        exact = scipy.linalg.expm(1j * h)
        steps = 4

        def error(program, scale):
            scaled = PauliProgram(
                [b.__class__(b.strings, parameter=b.parameter * scale) for b in program]
            )
            circuit = ft_compile(scaled, scheduler="none").circuit
            u = circuit_unitary(circuit)
            # strip global phase by aligning the largest element
            idx = np.unravel_index(np.argmax(np.abs(exact)), exact.shape)
            phase = exact[idx] / u[idx]
            return np.linalg.norm(u * phase - exact)

        # One unit of time split into `steps` steps: scale parameters so the
        # total integrated time matches (step parameter is 0.3).
        scale = (1.0 / 0.3) / steps
        first = error(trotterize(step, steps), scale)
        second = error(symmetric_trotterize(step, steps), scale)
        assert second < first

    def test_symmetric_compiles_cheaper_per_step(self, step):
        # The palindromic midpoints collapse under junction cancellation.
        program = symmetric_trotterize(step, 2)
        compiled = ft_compile(program, scheduler="none").circuit
        naive_count = 2 * 2 * 2 * 2  # 2 steps x 2 sweeps x 2 strings x 2 CNOTs
        assert compiled.cnot_count < naive_count
