"""The paper's worked examples, reproduced as executable tests.

* Figure 2 — synthesis of exp(i Y4 Z3 I2 X1 Z0 theta/2) with three
  different tree choices.
* Figure 4 — the optimization opportunities: (a) alternative-synthesis gate
  cancellation, (b) mapping without SWAPs, (c) semantics-preserving
  reordering at the IR level.
* Figure 6 — the three example IR programs parse and type-check.
* Figure 8 — block scheduling on the 10-block example: lexicographic GCO
  order, active-length sorting, and DO layer packing.
"""

import numpy as np
import pytest
import scipy.linalg

from repro.circuit import QuantumCircuit, circuit_unitary, equivalent_up_to_global_phase
from repro.core import (
    SynthesisPlan,
    chain_plan,
    do_schedule,
    ft_compile,
    gco_schedule,
    pauli_evolution_circuit,
    pauli_rotation_gates,
    sc_compile,
)
from repro.ir import PauliBlock, PauliProgram, parse_program
from repro.pauli import PauliString
from repro.transpile import linear, optimize


class TestFigure2:
    """Three valid CNOT trees for exp(i Y4 Z3 I2 X1 Z0 theta/2)."""

    STRING = PauliString.from_label("YZIXZ")
    THETA = 0.73

    def exact(self):
        return scipy.linalg.expm(1j * (self.THETA / 2.0) * self.STRING.to_matrix())

    def check(self, plan):
        circuit = QuantumCircuit(5)
        # exp(i P theta/2) -> coefficient theta/2.
        circuit.extend(pauli_rotation_gates(self.STRING, -self.THETA, plan))
        assert equivalent_up_to_global_phase(circuit_unitary(circuit), self.exact())

    def test_chain_root_q4(self):
        # Figure 2 (1): chain 0 -> 1 -> 3 -> 4, root q4.
        self.check(SynthesisPlan([(0, 1), (1, 3), (3, 4)], root=4))

    def test_balanced_tree_root_q4(self):
        # Figure 2 (2): 0 and 1 feed 3, then 3 feeds 4.
        self.check(SynthesisPlan([(0, 3), (1, 3), (3, 4)], root=4))

    def test_star_root_q1(self):
        # Figure 2 (3): root q1.
        self.check(SynthesisPlan([(0, 1), (4, 3), (3, 1)], root=1))

    def test_single_qubit_gate_placement(self):
        gates = pauli_rotation_gates(self.STRING, 0.5)
        h_qubits = {g.qubits[0] for g in gates if g.name == "h"}
        yh_qubits = {g.qubits[0] for g in gates if g.name == "yh"}
        assert h_qubits == {1}   # X on q1
        assert yh_qubits == {4}  # Y on q4


class TestFigure4a:
    """ZZY then ZZI: alternative synthesis cancels two CNOTs."""

    def test_cancellation(self):
        a = PauliString.from_label("ZZY")
        b = PauliString.from_label("ZZI")
        program = PauliProgram([PauliBlock([a], 0.4), PauliBlock([b], 0.8)])
        result = ft_compile(program, scheduler="none")
        naive = QuantumCircuit(3)
        naive.extend(pauli_rotation_gates(a, -0.8, chain_plan(a.support)))
        naive.extend(pauli_rotation_gates(b, -1.6, chain_plan(b.support)))
        assert result.circuit.count_ops().get("cx", 0) <= optimize(naive).count_ops().get("cx", 0)
        assert result.circuit.count_ops().get("cx", 0) <= 4  # paper: 6 - 2 cancelled


class TestFigure4b:
    """ZZZ on a line: a good root choice avoids all SWAPs."""

    def test_no_swaps(self):
        program = PauliProgram([PauliBlock(["ZZZ"], 0.5)])
        result = sc_compile(program, linear(3))
        assert result.circuit.count_ops().get("swap", 0) == 0


class TestFigure4c:
    """Reordering ZZI past ZXI is illegal at gate level but free in the IR."""

    def test_ir_reorder_preserves_semantics(self):
        program = PauliProgram(
            [PauliBlock(["ZZY"], 0.3), PauliBlock(["ZXI"], 0.5), PauliBlock(["ZZI"], 0.7)]
        )
        reordered = program.with_blocks(
            [program[0], program[2], program[1]]  # bring ZZI next to ZZY
        )
        assert program.multiset_of_terms() == reordered.multiset_of_terms()
        assert np.allclose(program.to_hamiltonian(), reordered.to_hamiltonian())

    def test_gate_level_reorder_differs(self):
        # exp(i ZZI a) exp(i ZXI b) != exp(i ZXI b) exp(i ZZI a): the gate
        # sequences are NOT equivalent, which is why the compiler must
        # reorder at the IR level, not the gate level.
        zzi = PauliString.from_label("ZZI").to_matrix()
        zxi = PauliString.from_label("ZXI").to_matrix()
        u1 = scipy.linalg.expm(1j * 0.3 * zzi) @ scipy.linalg.expm(1j * 0.5 * zxi)
        u2 = scipy.linalg.expm(1j * 0.5 * zxi) @ scipy.linalg.expm(1j * 0.3 * zzi)
        assert not np.allclose(u1, u2)


class TestFigure6:
    def test_h2_simulation_program(self):
        text = """
        {(IIIZ, 0.214), 0.1};
        {(IIZI, -0.37), 0.1};
        {(XXXX, 0.042), 0.1};
        {(YYXX, 0.042), 0.1};
        {(ZIZI, 0.186), 0.1};
        {(ZZII, 0.134), 0.1};
        """
        prog = parse_program(text)
        assert prog.num_blocks == 6
        assert all(block.num_strings == 1 for block in prog)

    def test_uccsd_style_program(self):
        text = "{(IIXY, 0.5), (IIYX, -0.5), theta1};{(XYII, -0.5), (YXII, 0.5), theta2};"
        prog = parse_program(text, parameters={"theta1": 0.3, "theta2": 0.6})
        assert prog[0].parameter == 0.3
        assert prog[1].parameter == 0.6
        assert prog[0].is_mutually_commuting()

    def test_qaoa_style_program(self):
        text = "{(IIIIZZ, 1.0), (IIIZIZ, 2.0), (ZZIIII, 0.5), gamma};"
        prog = parse_program(text, parameters={"gamma": 0.9})
        assert prog.num_blocks == 1
        assert prog[0].num_strings == 3


class TestFigure8:
    """The 10-block scheduling example (qubits stylized)."""

    @pytest.fixture
    def blocks(self):
        # Blocks with varying active lengths on 8 qubits, echoing Figure 8:
        # four large (length 4), two medium, four small (length 2).
        labels = {
            1: ["IIIIXYXX", "IIIIXXYX"],       # large, on q0-3
            2: ["ZZXXIIII", "ZZYYIIII"],       # large, on q4-7
            3: ["IIXXYYII"],                    # large middle
            8: ["XYZZIIII", "YXZZIIII"],       # large, on q4-7
            4: ["IIIIIXYI"],
            5: ["IIIIIIYX"],
            6: ["YZIIIIII"],
            7: ["XZIIIIII"],
            9: ["IXYIIIII"],
            10: ["IIZYIIII"],
        }
        return {k: PauliBlock(v, parameter=0.1, name=str(k)) for k, v in labels.items()}

    def test_gco_is_lexicographic(self, blocks):
        program = PauliProgram(list(blocks.values()))
        schedule = gco_schedule(program)
        keys = [layer[0].lex_key() for layer in schedule]
        assert keys == sorted(keys)

    def test_do_sorts_by_active_length_first(self, blocks):
        program = PauliProgram(list(blocks.values()))
        schedule = do_schedule(program)
        # The first layer's primary must be one of the large blocks.
        assert schedule[0][0].active_length == max(
            b.active_length for b in blocks.values()
        )

    def test_do_packs_disjoint_small_blocks(self, blocks):
        program = PauliProgram(list(blocks.values()))
        schedule = do_schedule(program)
        assert len(schedule) < program.num_blocks  # real packing happened
        for layer in schedule:
            primary_qubits = set(layer[0].active_qubits)
            for small in layer[1:]:
                assert not (set(small.active_qubits) & primary_qubits)

    def test_do_reduces_depth_estimate(self, blocks):
        from repro.core import schedule_depth_estimate
        program = PauliProgram(list(blocks.values()))
        do_depth = schedule_depth_estimate(do_schedule(program))
        gco_depth = schedule_depth_estimate(gco_schedule(program))
        assert do_depth < gco_depth
