"""VQE UCCSD ansatz compilation for the fault-tolerant backend.

The chemistry scenario from the paper's intro: a UCCSD ansatz whose blocks
(one per excitation, strings sharing a variational parameter) are exactly
the constraint structure Pauli IR encodes.  Compares Paulihedral's
block-wise FT flow against the TK (simultaneous diagonalization) baseline
and naive synthesis, and shows the DO/GCO scheduling trade-off.

Run:  python examples/vqe_uccsd.py
"""

import time

from repro.analysis import circuit_metrics, format_table
from repro.baselines import naive_compile, tk_compile
from repro.core import ft_compile
from repro.transpile import transpile
from repro.workloads import uccsd_program


def main() -> None:
    program = uccsd_program(8, include_singles=True)
    print(f"ansatz: {program}")
    print(f"blocks: {program.num_blocks} excitations, {program.num_strings} Pauli strings\n")

    rows = []
    for label, compile_fn in [
        ("PH gate-count-oriented", lambda: ft_compile(program, scheduler="gco").circuit),
        ("PH depth-oriented", lambda: ft_compile(program, scheduler="do").circuit),
        ("TK (simult. diag.) + L3", lambda: transpile(tk_compile(program).circuit)),
        ("naive + L3", lambda: naive_compile(program)),
    ]:
        start = time.perf_counter()
        circuit = compile_fn()
        rows.append([label, f"{time.perf_counter() - start:.2f}", circuit_metrics(circuit)])

    print(format_table(
        ["Compiler", "Time (s)", "CNOT", "Single", "Total", "Depth"],
        [[label, sec, m["cnot"], m["single"], m["total"], m["depth"]] for label, sec, m in rows],
    ))

    gco, do = rows[0][2], rows[1][2]
    print(f"\nGCO vs DO: gate count {gco['total']} vs {do['total']}, "
          f"depth {gco['depth']} vs {do['depth']}")
    print("(GCO favours cancellations, DO favours parallelism — paper Section 6.3)")


if __name__ == "__main__":
    main()
