"""Quickstart: compile a small quantum simulation kernel with Paulihedral.

Walks the full pipeline on a toy Hamiltonian:

1. write a Pauli IR program (one block per Trotter term);
2. compile for the fault-tolerant backend (scheduling + adaptive synthesis);
3. compile for a superconducting line (tree-embedded mapping);
4. verify semantics by exact simulation.

Run:  python examples/quickstart.py
"""

import numpy as np
import scipy.linalg

from repro import PauliProgram
from repro.circuit import circuit_unitary, equivalent_up_to_global_phase
from repro.core import compile_program
from repro.transpile import linear


def main() -> None:
    # A 4-qubit transverse-field Ising Trotter step:
    #   H = sum ZZ on the chain + 0.5 * sum X, simulated for dt = 0.2.
    terms = [
        ("IIZZ", 1.0), ("IZZI", 1.0), ("ZZII", 1.0),
        ("IIIX", 0.5), ("IIXI", 0.5), ("IXII", 0.5), ("XIII", 0.5),
    ]
    program = PauliProgram.from_hamiltonian(terms, parameter=0.2, name="tfim-4")
    print(f"input: {program}")

    # --- Fault-tolerant backend -------------------------------------
    ft = compile_program(program, backend="ft")
    print(f"FT circuit:  {ft.metrics}")

    # --- Superconducting backend (linear coupling) --------------------
    sc = compile_program(program, backend="sc", coupling=linear(4))
    print(f"SC circuit:  {sc.metrics}")
    print(f"initial layout: {sc.initial_layout}")
    print(f"final layout:   {sc.final_layout}")

    # --- Verify the FT circuit against the exact product --------------
    expected = np.eye(16, dtype=complex)
    for string, coefficient in ft.emitted_terms:
        expected = scipy.linalg.expm(1j * coefficient * string.to_matrix()) @ expected
    assert equivalent_up_to_global_phase(circuit_unitary(ft.circuit), expected)
    print("FT circuit verified against exp(i c P) products — OK")


if __name__ == "__main__":
    main()
