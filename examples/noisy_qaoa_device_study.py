"""End-to-end QAOA success-probability study on a noisy device (Figure 11).

Reproduces the paper's real-system experiment offline: 1-level QAOA MaxCut
on the Melbourne coupling map with a calibrated noise model.  Parameters are
optimized on the ideal simulator, then the same ansatz is compiled with the
default baseline and with Paulihedral, executed under stochastic Pauli
noise, and scored by the probability of measuring an optimal cut.

Run:  python examples/noisy_qaoa_device_study.py
"""

from repro.analysis import format_table, geomean
from repro.noise import NoiseModel, qaoa_study
from repro.transpile import melbourne
from repro.workloads import random_graph, regular_graph


def main() -> None:
    coupling = melbourne()
    model = NoiseModel.calibrated(coupling, seed=11)
    graphs = {
        "REG-n7-d4": regular_graph(7, 4, seed=7),
        "RD-n7-p0.5": random_graph(7, 0.5, seed=7),
        "REG-n8-d4": regular_graph(8, 4, seed=8),
    }

    rows = []
    for name, graph in graphs.items():
        results = qaoa_study(graph, coupling, model, resolution=4, trajectories=100)
        rows.append([
            name,
            f"{results['improvement']['esp']:.2f}x",
            f"{results['improvement']['rsp']:.2f}x",
            results["ph"]["cnot"], results["baseline"]["cnot"],
            f"{results['ph']['rsp']:.3f}", f"{results['baseline']['rsp']:.3f}",
        ])

    print(format_table(
        ["Graph", "ESP gain", "RSP gain", "PH CNOT", "Base CNOT", "PH RSP", "Base RSP"],
        rows,
    ))
    esp_geo = geomean([float(r[1][:-1]) for r in rows])
    print(f"\ngeomean ESP improvement: {esp_geo:.2f}x "
          "(paper reports 2.11x ESP / 1.24x RSP on real hardware)")


if __name__ == "__main__":
    main()
