"""QAOA MaxCut compilation on a heavy-hex superconducting device.

The scenario that motivates the paper's SC backend: a 20-node MaxCut QAOA
cost layer compiled onto the Manhattan-65 heavy-hex coupling map.  Compares
Paulihedral's tree-embedded compilation against the naive-synthesis + SABRE
baseline and against the algorithm-specific QAOA compiler (Table 3's cast).

Run:  python examples/qaoa_maxcut.py
"""

import time

from repro.analysis import circuit_metrics, format_table
from repro.baselines import naive_compile, qaoa_compile
from repro.core import sc_compile
from repro.transpile import manhattan_65
from repro.workloads import maxcut_program, regular_graph


def main() -> None:
    graph = regular_graph(20, 4, seed=7)
    program = maxcut_program(graph, gamma=0.8)
    coupling = manhattan_65()
    print(f"graph: 20 nodes, {graph.number_of_edges()} edges -> {program.num_strings} ZZ strings")
    print(f"device: {coupling}")

    rows = []

    start = time.perf_counter()
    ph = sc_compile(program, coupling, scheduler="do")
    rows.append(["Paulihedral (Alg. 3)", time.perf_counter() - start,
                 circuit_metrics(ph.circuit)])

    start = time.perf_counter()
    baseline = naive_compile(program, coupling=coupling)
    rows.append(["naive + SABRE + peephole", time.perf_counter() - start,
                 circuit_metrics(baseline)])

    start = time.perf_counter()
    qaoa = qaoa_compile(program, coupling, seeds=20)
    rows.append(["QAOA compiler (20 seeds)", time.perf_counter() - start,
                 circuit_metrics(qaoa.circuit)])

    print(format_table(
        ["Compiler", "Time (s)", "CNOT", "Single", "Total", "Depth"],
        [
            [name, f"{sec:.2f}", m["cnot"], m["single"], m["total"], m["depth"]]
            for name, sec, m in rows
        ],
    ))

    ph_cnot = rows[0][2]["cnot"]
    base_cnot = rows[1][2]["cnot"]
    print(f"\nPH CNOT reduction vs baseline: {100 * (1 - ph_cnot / base_cnot):.1f}%")


if __name__ == "__main__":
    main()
