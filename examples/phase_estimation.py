"""Quantum phase estimation over a compiled simulation kernel.

The paper defines the simulation kernel as "(controlled-)exp(iHt)" and names
phase estimation as the natural extension target (Section 7).  This example
estimates an eigenphase of ``U = exp(iHt)`` for a 2-qubit Hamiltonian using
3 ancilla qubits, with every controlled power of ``U`` built by
``controlled_program_circuit`` (Paulihedral's adaptive synthesis with
controlled central rotations).

Run:  python examples/phase_estimation.py
"""

import math

import numpy as np
import scipy.linalg

from repro.circuit import QuantumCircuit, simulate
from repro.core.controlled import controlled_program_circuit, controlled_rz_gates
from repro.ir import PauliProgram
from repro.pauli import PauliString


def inverse_qft(circuit: QuantumCircuit, qubits) -> None:
    """Textbook inverse QFT on the given ancilla qubits."""
    qubits = list(qubits)
    for i in reversed(range(len(qubits))):
        for j in reversed(range(i + 1, len(qubits))):
            angle = -math.pi / (2 ** (j - i))
            circuit.extend(controlled_rz_gates(angle, qubits[j], qubits[i]))
            circuit.rz(angle / 2.0, qubits[j])  # upgrade CRz to controlled-phase
        circuit.h(qubits[i])


def main() -> None:
    # H = 0.3 ZZ + 0.2 XI; t chosen so the target eigenphase is resolvable.
    program = PauliProgram.from_hamiltonian(
        [("ZZ", 0.3), ("XI", 0.2)], parameter=1.0, name="H"
    )
    h_matrix = (
        0.3 * PauliString.from_label("ZZ").to_matrix()
        + 0.2 * PauliString.from_label("XI").to_matrix()
    )
    eigenvalues, eigenvectors = np.linalg.eigh(h_matrix)
    target_index = 3  # estimate the largest eigenvalue
    eigenvalue = eigenvalues[target_index]
    eigenvector = eigenvectors[:, target_index]
    # U = exp(iH) has eigenphase theta = eigenvalue / (2 pi) mod 1.
    true_phase = (eigenvalue / (2 * math.pi)) % 1.0
    print(f"H eigenvalues: {np.round(eigenvalues, 4)}")
    print(f"target eigenvalue {eigenvalue:.4f} -> phase {true_phase:.4f}")

    n_system, n_ancilla = 2, 3
    total = n_system + n_ancilla
    ancillas = [n_system + k for k in range(n_ancilla)]

    circuit = QuantumCircuit(total)
    for a in ancillas:
        circuit.h(a)
    # Controlled powers U^(2^k), each compiled from the Pauli IR program.
    for k, a in enumerate(ancillas):
        # The controlled circuit already addresses system wires 0..1 and the
        # control at its real index, so its gates embed directly.
        powered = controlled_program_circuit(program, control=a, power=2 ** k)
        circuit.extend(powered.gates)
    inverse_qft(circuit, ancillas)

    # Prepare |eigenvector> (x) |+++> by running on the exact initial state.
    init = np.zeros(2 ** total, dtype=complex)
    init[: 2 ** n_system] = eigenvector  # ancillas |000>, H gates in circuit
    state = simulate(circuit, init)

    probabilities = np.abs(state) ** 2
    ancilla_probs = np.zeros(2 ** n_ancilla)
    for index, p in enumerate(probabilities):
        ancilla_probs[index >> n_system] += p
    best = int(np.argmax(ancilla_probs))
    estimate = best / 2 ** n_ancilla
    print(f"ancilla distribution: {np.round(ancilla_probs, 3)}")
    print(f"estimated phase: {estimate:.4f}  (true {true_phase:.4f})")
    resolution = 1.0 / 2 ** n_ancilla
    error = min(abs(estimate - true_phase), 1 - abs(estimate - true_phase))
    assert error <= resolution, "phase estimate outside QPE resolution"
    print(f"within QPE resolution ({resolution:.3f}) — controlled kernels verified")


if __name__ == "__main__":
    main()
