"""Trotterized Heisenberg-chain dynamics: accuracy vs compiled cost.

Simulates real-time dynamics of a 4-site Heisenberg chain with first- and
second-order (Strang) Trotter splittings, showing the accuracy/gate-count
trade-off and how Paulihedral's junction cancellation keeps the per-step
cost of repeated kernels sub-linear.

Run:  python examples/trotter_dynamics.py
"""

import numpy as np
import scipy.linalg

from repro.analysis import format_table
from repro.circuit import circuit_unitary, simulate
from repro.core import ft_compile, symmetric_trotterize, trotter_error_bound, trotterize
from repro.ir import PauliBlock, PauliProgram
from repro.workloads import heisenberg_program


def scaled(program: PauliProgram, factor: float) -> PauliProgram:
    return program.with_blocks([
        PauliBlock(b.strings, parameter=b.parameter * factor, name=b.name)
        for b in program
    ])


def main() -> None:
    total_time = 1.0
    chain = heisenberg_program([4], dt=1.0)  # parameter folded per splitting
    exact = scipy.linalg.expm(1j * total_time * chain.to_hamiltonian())

    print(f"workload: {chain} over t = {total_time}")
    print(f"first-order commutator bound at 4 steps: "
          f"{trotter_error_bound(chain, total_time, 4):.3f}\n")

    rows = []
    for steps in (2, 4, 8):
        first = trotterize(scaled(chain, total_time / steps), steps)
        second = symmetric_trotterize(scaled(chain, total_time / steps), steps)
        for label, program in ((f"1st order, {steps} steps", first),
                               (f"2nd order, {steps} steps", second)):
            compiled = ft_compile(program, scheduler="none")
            u = circuit_unitary(compiled.circuit)
            # remove global phase before comparing
            idx = np.unravel_index(np.argmax(np.abs(exact)), exact.shape)
            u = u * (exact[idx] / u[idx])
            error = np.linalg.norm(u - exact, 2)
            rows.append([label, compiled.circuit.cnot_count,
                         compiled.circuit.depth(), f"{error:.4f}"])

    print(format_table(["Splitting", "CNOT", "Depth", "||U - exact||"], rows))

    # Step-preserving compilation (scheduler="none") still cancels gates at
    # step boundaries: the last string of step k aligns with the first
    # string of step k+1.
    one = ft_compile(trotterize(chain, 1), scheduler="none").circuit.cnot_count
    eight = ft_compile(trotterize(chain, 8), scheduler="none").circuit.cnot_count
    print(f"\nstep-preserving cost: 1 step = {one} CNOTs, 8 steps = {eight} "
          f"({eight / one:.2f}x <= 8x via boundary cancellation)")

    # The scheduler-is-free caveat: GCO may merge identical terms across
    # steps (legal for the IR's Hamiltonian semantics, but it collapses the
    # multi-step approximation back to one coarse step — see
    # repro.core.trotter docs).
    merged = ft_compile(trotterize(chain, 8), scheduler="gco").circuit.cnot_count
    print(f"GCO-scheduled 8 steps: {merged} CNOTs — terms merged across steps; "
          "use scheduler='none' when step order matters")


if __name__ == "__main__":
    main()
