"""Full-stack VQE on the 2-site Fermi-Hubbard model.

Exercises every layer of the repository on a problem with a closed-form
answer:

1. the Hubbard Hamiltonian is built *exactly* (Jordan-Wigner with signs)
   from the fermionic-operator substrate;
2. a UCC-style ansatz becomes a Pauli IR program whose blocks share
   variational parameters;
3. every parameter evaluation compiles the bound ansatz with Paulihedral
   and runs it on the exact statevector simulator;
4. the energy landscape is minimized with scipy and checked against the
   analytic ground energy (U - sqrt(U^2 + 16 t^2)) / 2.

Run:  python examples/vqe_hubbard.py
"""

import numpy as np
import scipy.optimize

from repro.circuit import simulate
from repro.core import compile_program
from repro.workloads.hubbard import (
    bind_parameters,
    hubbard_hamiltonian,
    hubbard_ucc_ansatz,
    two_site_ground_energy,
)


def main() -> None:
    t, u = 1.0, 4.0
    num_sites = 2
    hamiltonian = hubbard_hamiltonian(num_sites, hopping=t, interaction=u)
    exact = two_site_ground_energy(t, u)
    print(f"2-site Hubbard, t={t}, U={u}")
    print(f"Hamiltonian: {len(hamiltonian.terms)} Pauli terms on {hamiltonian.num_qubits} qubits")
    print(f"analytic ground energy: {exact:.6f}\n")

    ansatz, num_params = hubbard_ucc_ansatz(num_sites)
    print(f"ansatz: {ansatz.num_blocks} excitation blocks, {num_params} parameters")

    # Reference state: half filling — occupy site-0 up and site-0 down
    # (modes 0 and 2 -> basis index 0b0101 = 5).
    n_qubits = hamiltonian.num_qubits
    reference = np.zeros(2 ** n_qubits, dtype=complex)
    reference[0b0101] = 1.0

    evaluations = {"count": 0}

    def energy(parameters: np.ndarray) -> float:
        bound = bind_parameters(ansatz, list(parameters))
        compiled = compile_program(bound, backend="ft")
        state = simulate(compiled.circuit, reference)
        evaluations["count"] += 1
        return float(hamiltonian.expectation(state).real)

    initial = np.zeros(num_params)
    print(f"initial (Hartree-Fock) energy: {energy(initial):.6f}")

    result = scipy.optimize.minimize(
        energy, initial, method="COBYLA", options={"maxiter": 150, "rhobeg": 0.4}
    )
    print(f"\nVQE converged energy: {result.fun:.6f}  "
          f"({evaluations['count']} circuit evaluations)")
    print(f"error vs analytic:    {abs(result.fun - exact):.2e}")
    assert abs(result.fun - exact) < 1e-2, "VQE failed to reach the ground state"
    print("ground state reached — full stack verified")


if __name__ == "__main__":
    main()
