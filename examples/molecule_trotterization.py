"""Trotterized molecular Hamiltonian simulation on the FT backend.

The paper's molecule benchmarks at a laptop-friendly size: a synthetic
N2-style Hamiltonian (see repro.workloads.molecules for the substitution
note), scheduled with both passes and compiled with block-wise adaptive
synthesis.  Also demonstrates the textual Pauli IR round-trip.

Run:  python examples/molecule_trotterization.py
"""

from repro.analysis import circuit_metrics, format_table
from repro.baselines import naive_compile
from repro.core import do_schedule, ft_compile, gco_schedule, schedule_depth_estimate
from repro.ir import format_program
from repro.workloads import molecule_program


def main() -> None:
    program = molecule_program("N2", num_strings=150)
    print(f"Hamiltonian: {program}")
    print("first three IR blocks:")
    preview = format_program(program).splitlines()[:3]
    print("  " + "\n  ".join(preview) + "\n  ...\n")

    gco = gco_schedule(program)
    do = do_schedule(program)
    print(f"GCO: {len(gco)} layers, estimated depth {schedule_depth_estimate(gco)}")
    print(f"DO:  {len(do)} layers, estimated depth {schedule_depth_estimate(do)}\n")

    rows = []
    for label, circuit in [
        ("PH (GCO + block-wise)", ft_compile(program, scheduler="gco").circuit),
        ("PH (DO + block-wise)", ft_compile(program, scheduler="do").circuit),
        ("naive + L3", naive_compile(program)),
    ]:
        rows.append([label, circuit_metrics(circuit)])

    print(format_table(
        ["Compiler", "CNOT", "Single", "Total", "Depth"],
        [[label, m["cnot"], m["single"], m["total"], m["depth"]] for label, m in rows],
    ))


if __name__ == "__main__":
    main()
