"""Condensed-matter lattice Hamiltonians: Ising and Heisenberg (Table 1).

The paper's Ising-kD / Heisen-kD benchmarks are 30-qubit nearest-neighbour
models on 1-D chains, 2-D grids (5 x 6) and 3-D blocks (2 x 3 x 5):

* Ising:      ``H = sum_<uv> J Z_u Z_v`` (29/49/61 edges -> strings);
* Heisenberg: ``H = sum_<uv> (Jx X_u X_v + Jy Y_u Y_v + Jz Z_u Z_v)``.

Both use one string per block (plain Trotter form, Figure 6a).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..ir import PauliProgram
from ..pauli import PauliString

__all__ = ["lattice_edges", "ising_program", "heisenberg_program"]


def lattice_edges(dimensions: Sequence[int]) -> List[Tuple[int, int]]:
    """Nearest-neighbour edges of a row-major hyper-rectangular lattice."""
    dims = list(dimensions)
    if not dims or any(d <= 0 for d in dims):
        raise ValueError("dimensions must be positive")
    num_sites = 1
    for d in dims:
        num_sites *= d

    strides = [1] * len(dims)
    for axis in range(len(dims) - 2, -1, -1):
        strides[axis] = strides[axis + 1] * dims[axis + 1]

    def coords(site: int) -> List[int]:
        out = []
        for axis in range(len(dims)):
            out.append((site // strides[axis]) % dims[axis])
        return out

    edges = []
    for site in range(num_sites):
        c = coords(site)
        for axis in range(len(dims)):
            if c[axis] + 1 < dims[axis]:
                edges.append((site, site + strides[axis]))
    return edges


def ising_program(
    dimensions: Sequence[int],
    coupling: float = 1.0,
    dt: float = 0.1,
    name: str = "",
) -> PauliProgram:
    """Nearest-neighbour Ising model ``sum J Z_u Z_v`` as a Trotter step."""
    edges = lattice_edges(dimensions)
    n = 1
    for d in dimensions:
        n *= d
    terms = [
        (PauliString.from_sparse(n, {u: "Z", v: "Z"}), coupling) for u, v in edges
    ]
    label = "x".join(str(d) for d in dimensions)
    return PauliProgram.from_hamiltonian(terms, parameter=dt, name=name or f"Ising-{label}")


def heisenberg_program(
    dimensions: Sequence[int],
    couplings: Tuple[float, float, float] = (1.0, 1.0, 1.0),
    dt: float = 0.1,
    name: str = "",
) -> PauliProgram:
    """Nearest-neighbour Heisenberg model (XX + YY + ZZ per edge)."""
    edges = lattice_edges(dimensions)
    n = 1
    for d in dimensions:
        n *= d
    jx, jy, jz = couplings
    terms = []
    for u, v in edges:
        terms.append((PauliString.from_sparse(n, {u: "X", v: "X"}), jx))
        terms.append((PauliString.from_sparse(n, {u: "Y", v: "Y"}), jy))
        terms.append((PauliString.from_sparse(n, {u: "Z", v: "Z"}), jz))
    label = "x".join(str(d) for d in dimensions)
    return PauliProgram.from_hamiltonian(
        terms, parameter=dt, name=name or f"Heisen-{label}"
    )
