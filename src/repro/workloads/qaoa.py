"""QAOA workloads: MaxCut on regular/random graphs and TSP (Table 1).

The cost layer of a 1-level QAOA ansatz is a single Pauli block — all
strings share the variational parameter ``gamma`` (paper Figure 6c).

* :func:`maxcut_program` — ``exp(i gamma w_ij Z_i Z_j)`` per edge.
* :func:`regular_graph` / :func:`random_graph` — the paper's REG-n-d and
  Rand-n-p instances (seeded).
* :func:`tsp_program` — one-hot encoded traveling-salesman QAOA with
  distance cost plus one-city-per-slot / one-slot-per-city penalties;
  matches Table 1's counts (TSP-4: 112 strings, TSP-5: 225).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..ir import PauliBlock, PauliProgram
from ..pauli import PauliString

__all__ = [
    "regular_graph",
    "random_graph",
    "maxcut_program",
    "tsp_program",
    "maxcut_value",
    "best_maxcut_bitstrings",
]


def regular_graph(num_nodes: int, degree: int, seed: int = 7) -> nx.Graph:
    """Random ``degree``-regular graph (paper's REG-n-d)."""
    return nx.random_regular_graph(degree, num_nodes, seed=seed)


def random_graph(num_nodes: int, edge_probability: float, seed: int = 7) -> nx.Graph:
    """Erdos-Renyi graph (paper's Rand-n-p)."""
    return nx.gnp_random_graph(num_nodes, edge_probability, seed=seed)


def maxcut_program(
    graph: nx.Graph,
    gamma: float = 1.0,
    weights: Optional[Dict[Tuple[int, int], float]] = None,
    name: str = "",
) -> PauliProgram:
    """MaxCut cost layer: one block of ZZ strings sharing ``gamma``."""
    n = graph.number_of_nodes()
    if n == 0:
        raise ValueError("graph must have nodes")
    terms = []
    for u, v in sorted(tuple(sorted(e)) for e in graph.edges()):
        weight = (weights or {}).get((u, v), 1.0)
        terms.append((PauliString.from_sparse(n, {u: "Z", v: "Z"}), weight))
    if not terms:
        raise ValueError("graph must have edges")
    block = PauliBlock(terms, parameter=gamma, name="cost")
    return PauliProgram([block], name=name or f"maxcut-{n}")


def tsp_program(
    num_cities: int,
    gamma: float = 1.0,
    penalty: float = 2.0,
    seed: int = 7,
    name: str = "",
) -> PauliProgram:
    """One-hot TSP QAOA cost layer on ``num_cities ** 2`` qubits.

    Qubit ``city * n + slot`` is 1 when ``city`` is visited at time
    ``slot``.  Binary variables expand as ``x = (1 - Z)/2``; constant terms
    are dropped, yielding:

    * ``ZZ`` distance couplings for consecutive slots,
    * ``ZZ`` penalty couplings inside each one-hot group (city rows and
      slot columns),
    * single-``Z`` bias terms.
    """
    import random

    n = num_cities
    rng = random.Random(seed)
    distance = {
        (i, j): rng.uniform(1.0, 10.0) for i in range(n) for j in range(n) if i != j
    }
    num_qubits = n * n

    def q(city: int, slot: int) -> int:
        return city * n + slot

    linear: Dict[int, float] = {}
    quadratic: Dict[Tuple[int, int], float] = {}

    def add_quadratic(a: int, b: int, coeff: float) -> None:
        key = (min(a, b), max(a, b))
        quadratic[key] = quadratic.get(key, 0.0) + coeff

    def add_linear(a: int, coeff: float) -> None:
        linear[a] = linear.get(a, 0.0) + coeff

    # Distance cost: sum_{i != j, p} d(i, j) x_{i,p} x_{j,p+1}.
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            for p in range(n):
                a, b = q(i, p), q(j, (p + 1) % n)
                d = distance[(i, j)]
                # x_a x_b = (1 - Z_a - Z_b + Z_a Z_b) / 4
                add_quadratic(a, b, d / 4.0)
                add_linear(a, -d / 4.0)
                add_linear(b, -d / 4.0)
    # Penalties: P (sum_a x_a - 1)^2 = P (2 sum_{a<b} x_a x_b - sum_a x_a + 1)
    # over city rows and slot columns.  With x = (1 - Z)/2 each pair (a, b)
    # contributes +P/2 ZZ and -P/2 to both Z biases; the -P sum_a x_a part
    # adds +P/2 per Z bias; constants are dropped.
    groups = [[q(i, p) for p in range(n)] for i in range(n)]
    groups += [[q(i, p) for i in range(n)] for p in range(n)]
    for group in groups:
        for idx, a in enumerate(group):
            add_linear(a, penalty / 2.0)
            for b in group[idx + 1:]:
                add_quadratic(a, b, penalty / 2.0)
                add_linear(a, -penalty / 2.0)
                add_linear(b, -penalty / 2.0)

    terms: List[Tuple[PauliString, float]] = []
    for (a, b), coeff in sorted(quadratic.items()):
        if abs(coeff) > 1e-12:
            terms.append((PauliString.from_sparse(num_qubits, {a: "Z", b: "Z"}), coeff))
    for a, coeff in sorted(linear.items()):
        if abs(coeff) > 1e-12:
            terms.append((PauliString.from_sparse(num_qubits, {a: "Z"}), coeff))
    block = PauliBlock(terms, parameter=gamma, name="tsp-cost")
    return PauliProgram([block], name=name or f"TSP-{n}")


# ----------------------------------------------------------------------
# MaxCut ground truth (for the Figure 11 success-probability study)
# ----------------------------------------------------------------------

def maxcut_value(graph: nx.Graph, bitstring: int) -> int:
    """Cut value of an integer-encoded assignment (bit i = side of node i)."""
    return sum(
        1
        for u, v in graph.edges()
        if ((bitstring >> u) & 1) != ((bitstring >> v) & 1)
    )


def best_maxcut_bitstrings(graph: nx.Graph) -> Tuple[int, List[int]]:
    """Exhaustive optimum: ``(best_value, all optimal assignments)``."""
    n = graph.number_of_nodes()
    if n > 20:
        raise ValueError("exhaustive MaxCut is only for small graphs")
    best = -1
    winners: List[int] = []
    for assignment in range(2 ** n):
        value = maxcut_value(graph, assignment)
        if value > best:
            best = value
            winners = [assignment]
        elif value == best:
            winners.append(assignment)
    return best, winners
