"""UCCSD ansatz generator (paper's VQE benchmarks, Table 1 'UCCSD-n').

The unitary coupled-cluster singles-doubles ansatz on ``n`` spin orbitals
(= qubits) at half filling.  Excitation generators are expanded through the
exact Jordan-Wigner substrate (:mod:`repro.workloads.fermion`), so every
block is a genuine mutually-commuting string set sharing one variational
parameter — precisely the constraint structure Pauli IR encodes
(paper Figure 6b).

Spin convention: modes ``0 .. n/2-1`` are spin-up, ``n/2 .. n-1`` spin-down;
the lowest half of each spin sector is occupied.

The paper's Table 1 string counts (e.g. UCCSD-8 = 144 Paulis = 18 double
excitations x 8 strings) correspond to the doubles-only enumeration, so
``include_singles`` defaults to ``False`` for benchmark parity; flip it on
for a physically complete ansatz.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir import PauliBlock, PauliProgram
from .fermion import excitation_terms

__all__ = ["uccsd_program", "uccsd_excitations"]


def _spin_sectors(num_qubits: int):
    if num_qubits % 4 != 0:
        raise ValueError("UCCSD benchmark sizes must be multiples of 4 (half filling)")
    half = num_qubits // 2
    occ_up = list(range(half // 2))
    virt_up = list(range(half // 2, half))
    occ_dn = [q + half for q in occ_up]
    virt_dn = [q + half for q in virt_up]
    return occ_up, virt_up, occ_dn, virt_dn


def uccsd_excitations(num_qubits: int, include_singles: bool = False):
    """Enumerate (annihilate, create) index pairs of the ansatz."""
    occ_up, virt_up, occ_dn, virt_dn = _spin_sectors(num_qubits)
    excitations = []
    if include_singles:
        for occ, virt in ((occ_up, virt_up), (occ_dn, virt_dn)):
            for i in occ:
                for a in virt:
                    excitations.append(([i], [a]))
    # Same-spin doubles.
    for occ, virt in ((occ_up, virt_up), (occ_dn, virt_dn)):
        for idx_i, i in enumerate(occ):
            for j in occ[idx_i + 1:]:
                for idx_a, a in enumerate(virt):
                    for b in virt[idx_a + 1:]:
                        excitations.append(([i, j], [a, b]))
    # Opposite-spin doubles.
    for i in occ_up:
        for j in occ_dn:
            for a in virt_up:
                for b in virt_dn:
                    excitations.append(([i, j], [a, b]))
    return excitations


def uccsd_program(
    num_qubits: int,
    include_singles: bool = False,
    parameters: Optional[Sequence[float]] = None,
    name: str = "",
) -> PauliProgram:
    """Build the UCCSD ansatz as a Pauli IR program.

    Each excitation becomes one block whose strings share the excitation's
    variational parameter (default 1.0 for all, or ``parameters[k]``).
    """
    excitations = uccsd_excitations(num_qubits, include_singles)
    blocks: List[PauliBlock] = []
    for k, (annihilate, create) in enumerate(excitations):
        terms = excitation_terms(num_qubits, annihilate, create)
        parameter = parameters[k] if parameters is not None else 1.0
        blocks.append(
            PauliBlock(terms, parameter=parameter, name=f"t{k}")
        )
    return PauliProgram(blocks, name=name or f"UCCSD-{num_qubits}")
