"""Random Hamiltonians exactly per the paper's recipe (Section 6.1).

"For a Hamiltonian of n qubits, we prepare 5 n^2 Pauli strings.  In each
Pauli string, we first randomly select one integer m between 1 and n.  Then
we randomly select m qubits and assign random Pauli operators to them.  The
rest n - m qubits will be assigned with the identity."
"""

from __future__ import annotations

import random
from typing import Optional

from ..ir import PauliProgram
from ..pauli import PauliString

__all__ = ["random_hamiltonian_program", "random_string"]


def random_string(num_qubits: int, rng: random.Random) -> PauliString:
    """One string of the paper's random ensemble."""
    m = rng.randint(1, num_qubits)
    qubits = rng.sample(range(num_qubits), m)
    return PauliString.from_sparse(
        num_qubits, {q: rng.choice("XYZ") for q in qubits}
    )


def random_hamiltonian_program(
    num_qubits: int,
    num_strings: Optional[int] = None,
    seed: int = 2022,
    dt: float = 0.1,
    name: str = "",
) -> PauliProgram:
    """The paper's Rand-n benchmark (default ``5 n^2`` strings).

    ``num_strings`` overrides the count for scaled-down runs.
    """
    rng = random.Random(seed)
    count = num_strings if num_strings is not None else 5 * num_qubits * num_qubits
    terms = [
        (random_string(num_qubits, rng), rng.uniform(-1.0, 1.0))
        for _ in range(count)
    ]
    return PauliProgram.from_hamiltonian(
        terms, parameter=dt, name=name or f"Rand-{num_qubits}"
    )
