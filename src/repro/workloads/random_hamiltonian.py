"""Random Hamiltonians exactly per the paper's recipe (Section 6.1).

"For a Hamiltonian of n qubits, we prepare 5 n^2 Pauli strings.  In each
Pauli string, we first randomly select one integer m between 1 and n.  Then
we randomly select m qubits and assign random Pauli operators to them.  The
rest n - m qubits will be assigned with the identity."
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Tuple

from ..ir import PauliProgram
from ..pauli import PauliString

__all__ = [
    "random_hamiltonian_program",
    "random_string",
    "iter_klocal_terms",
    "scale_random_program",
]


def random_string(num_qubits: int, rng: random.Random) -> PauliString:
    """One string of the paper's random ensemble."""
    m = rng.randint(1, num_qubits)
    qubits = rng.sample(range(num_qubits), m)
    return PauliString.from_sparse(
        num_qubits, {q: rng.choice("XYZ") for q in qubits}
    )


def random_hamiltonian_program(
    num_qubits: int,
    num_strings: Optional[int] = None,
    seed: int = 2022,
    dt: float = 0.1,
    name: str = "",
) -> PauliProgram:
    """The paper's Rand-n benchmark (default ``5 n^2`` strings).

    ``num_strings`` overrides the count for scaled-down runs.
    """
    rng = random.Random(seed)
    count = num_strings if num_strings is not None else 5 * num_qubits * num_qubits
    terms = [
        (random_string(num_qubits, rng), rng.uniform(-1.0, 1.0))
        for _ in range(count)
    ]
    return PauliProgram.from_hamiltonian(
        terms, parameter=dt, name=name or f"Rand-{num_qubits}"
    )


# ----------------------------------------------------------------------
# Large-scale generators (100-500 qubits, 10^5-10^6 terms)
# ----------------------------------------------------------------------

def iter_klocal_terms(
    num_qubits: int,
    num_terms: int,
    locality: int = 4,
    seed: int = 2022,
) -> Iterator[Tuple[PauliString, float]]:
    """Stream ``num_terms`` random k-local terms without materializing them.

    The paper's Rand-n recipe draws string weight uniformly up to ``n``,
    which is unphysical at hundreds of qubits; real large-scale
    Hamiltonians (molecular, lattice, spin-glass) are k-local.  Each term
    here touches 2..``locality`` random qubits with random X/Y/Z and a
    uniform coefficient in ``[-1, 1]``.  Generator-based: O(1) memory, so
    a 10^6-term workload can feed
    :meth:`~repro.ir.PauliProgram.from_hamiltonian` or the streaming
    scheduler directly.
    """
    if locality < 1 or locality > num_qubits:
        raise ValueError(
            f"locality must be in [1, {num_qubits}], got {locality}"
        )
    rng = random.Random(seed)
    low = min(2, locality)
    for _ in range(num_terms):
        weight = rng.randint(low, locality)
        qubits = rng.sample(range(num_qubits), weight)
        yield (
            PauliString.from_sparse(
                num_qubits, {q: rng.choice("XYZ") for q in qubits}
            ),
            rng.uniform(-1.0, 1.0),
        )


def scale_random_program(
    num_qubits: int,
    num_terms: int,
    locality: int = 4,
    seed: int = 2022,
    dt: float = 0.05,
    name: str = "",
) -> PauliProgram:
    """A 100-500q / 10^5-10^6-term random k-local program, built in one
    streaming pass over :func:`iter_klocal_terms`."""
    return PauliProgram.from_hamiltonian(
        iter_klocal_terms(num_qubits, num_terms, locality=locality, seed=seed),
        parameter=dt,
        name=name or f"ScaleRand-{num_qubits}x{num_terms}",
    )
