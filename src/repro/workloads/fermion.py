"""Fermionic operators and the Jordan-Wigner transform.

A tiny second-quantization substrate so UCCSD excitation operators can be
expanded into Pauli strings *exactly* (signs included) instead of pattern
matching:  ``a_p = Z_{p-1} ... Z_0 (X_p + i Y_p)/2`` and products are
carried out with the phase-exact :meth:`PauliString.compose`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..pauli import PauliString

__all__ = ["PauliSum", "annihilation", "creation", "excitation_terms"]


class PauliSum:
    """A complex-weighted sum of Pauli strings on a fixed qubit count."""

    def __init__(self, num_qubits: int, terms: Dict[PauliString, complex] = None):
        self.num_qubits = num_qubits
        self.terms: Dict[PauliString, complex] = dict(terms or {})

    @classmethod
    def zero(cls, num_qubits: int) -> "PauliSum":
        return cls(num_qubits)

    @classmethod
    def of(cls, string: PauliString, coefficient: complex = 1.0) -> "PauliSum":
        return cls(string.num_qubits, {string: complex(coefficient)})

    def __add__(self, other: "PauliSum") -> "PauliSum":
        self._check(other)
        out = dict(self.terms)
        for string, coeff in other.terms.items():
            out[string] = out.get(string, 0.0) + coeff
        return PauliSum(self.num_qubits, out)

    def __sub__(self, other: "PauliSum") -> "PauliSum":
        return self + (other * -1.0)

    def __mul__(self, scalar: complex) -> "PauliSum":
        return PauliSum(
            self.num_qubits, {s: c * scalar for s, c in self.terms.items()}
        )

    __rmul__ = __mul__

    def __matmul__(self, other: "PauliSum") -> "PauliSum":
        """Operator product, expanded and collected."""
        self._check(other)
        out: Dict[PauliString, complex] = {}
        for s1, c1 in self.terms.items():
            for s2, c2 in other.terms.items():
                phase, prod = s1.compose(s2)
                out[prod] = out.get(prod, 0.0) + c1 * c2 * phase
        return PauliSum(self.num_qubits, out)

    def dagger(self) -> "PauliSum":
        """Hermitian adjoint (strings are Hermitian; conjugate coefficients)."""
        return PauliSum(
            self.num_qubits, {s: c.conjugate() for s, c in self.terms.items()}
        )

    def simplified(self, atol: float = 1e-12) -> "PauliSum":
        return PauliSum(
            self.num_qubits,
            {s: c for s, c in self.terms.items() if abs(c) > atol},
        )

    def to_matrix(self):
        """Dense matrix of the operator (small qubit counts only)."""
        import numpy as np

        dim = 2 ** self.num_qubits
        out = np.zeros((dim, dim), dtype=complex)
        for string, coeff in self.terms.items():
            out += coeff * string.to_matrix()
        return out

    def expectation(self, state) -> complex:
        """``<state| O |state>`` for a dense statevector.

        Computed term by term through the statevector simulator, so it works
        without materializing the operator matrix.
        """
        import numpy as np

        from ..circuit import Gate, apply_gate

        state = np.asarray(state, dtype=complex)
        total = 0.0 + 0.0j
        name_of = {"X": "x", "Y": "y", "Z": "z"}
        for string, coeff in self.terms.items():
            transformed = state
            for qubit in string.support:
                gate = Gate(name_of[string[qubit]], (qubit,))
                transformed = apply_gate(transformed, gate, self.num_qubits)
            total += coeff * np.vdot(state, transformed)
        return total

    def real_weighted_strings(self, atol: float = 1e-10) -> List[Tuple[PauliString, float]]:
        """Return ``(string, w)`` with all coefficients verified real.

        Used for Hermitian sums (or ``i *`` anti-Hermitian generators).
        """
        out = []
        for string, coeff in self.simplified(atol).terms.items():
            if abs(coeff.imag) > atol:
                raise ValueError(f"coefficient of {string.label} is not real: {coeff}")
            out.append((string, coeff.real))
        return out

    def _check(self, other: "PauliSum") -> None:
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit-count mismatch between Pauli sums")


def annihilation(num_qubits: int, mode: int) -> PauliSum:
    """Jordan-Wigner ``a_mode``: ``Z``-chain below, ``(X + iY)/2`` on mode."""
    if not 0 <= mode < num_qubits:
        raise ValueError(f"mode {mode} out of range")
    chain = {q: "Z" for q in range(mode)}
    x_string = PauliString.from_sparse(num_qubits, {**chain, mode: "X"})
    y_string = PauliString.from_sparse(num_qubits, {**chain, mode: "Y"})
    return PauliSum(num_qubits, {x_string: 0.5, y_string: 0.5j})


def creation(num_qubits: int, mode: int) -> PauliSum:
    """Jordan-Wigner ``a†_mode``."""
    return annihilation(num_qubits, mode).dagger()


def excitation_terms(num_qubits: int, annihilate: List[int], create: List[int]) -> List[Tuple[PauliString, float]]:
    """Pauli expansion of the anti-Hermitian excitation generator.

    ``T = prod a†_c prod a_a``;  returns the real-weighted strings of
    ``i (T - T†)``, which exponentiates to the UCCSD rotation
    ``exp(theta (T - T†)) = exp(-i theta * i(T - T†))`` — the caller folds
    the sign convention into the block parameter.
    """
    op = PauliSum.of(PauliString.identity(num_qubits))
    for mode in create:
        op = op @ creation(num_qubits, mode)
    for mode in annihilate:
        op = op @ annihilation(num_qubits, mode)
    generator = (op - op.dagger()) * 1j
    return generator.real_weighted_strings()
