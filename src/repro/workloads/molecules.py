"""Synthetic molecular Hamiltonians (substitute for the paper's PySCF set).

The paper generates N2, H2S, MgO, CO2 and NaCl Hamiltonians with PySCF,
which is unavailable offline.  What drives *compilation* behaviour is not
chemistry but the Pauli-string structure of a Jordan-Wigner molecular
Hamiltonian:

* diagonal terms — ``Z_p`` and ``Z_p Z_q`` number/Coulomb strings;
* one-body excitations — ``X/Y`` on two modes joined by a ``Z`` chain;
* two-body excitations — ``X/Y`` on four modes with ``Z`` chains inside the
  pairs (the ``hpqrs`` terms), in the 8-fold XXXX/XXYY/... patterns.

This generator reproduces that ensemble with the paper's qubit and string
counts (Table 1), seeded for determinism.  Coefficients follow the familiar
heavy-tailed molecular spread (few large diagonal terms, many small
excitations).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..ir import PauliProgram
from ..pauli import PauliString

__all__ = ["molecule_program", "MOLECULE_SPECS"]

#: Paper Table 1 molecule sizes: name -> (qubits, pauli_count).
MOLECULE_SPECS: Dict[str, Tuple[int, int]] = {
    "N2": (20, 2951),
    "H2S": (22, 4582),
    "MgO": (28, 24239),
    "CO2": (30, 16154),
    "NaCl": (36, 67667),
}

_XY = "XY"


def _diagonal_term(n: int, rng: random.Random) -> PauliString:
    if rng.random() < 0.4:
        return PauliString.from_sparse(n, {rng.randrange(n): "Z"})
    p, q = rng.sample(range(n), 2)
    return PauliString.from_sparse(n, {p: "Z", q: "Z"})


def _one_body_term(n: int, rng: random.Random) -> PauliString:
    p, q = sorted(rng.sample(range(n), 2))
    sigma = rng.choice(_XY)
    tau = rng.choice(_XY)
    ops = {p: sigma, q: tau}
    for z in range(p + 1, q):
        ops[z] = "Z"
    return PauliString.from_sparse(n, ops)


def _two_body_term(n: int, rng: random.Random) -> PauliString:
    modes = sorted(rng.sample(range(n), 4))
    p, q, r, s = modes
    ops = {m: rng.choice(_XY) for m in modes}
    # JW Z-chains run inside the (p, q) and (r, s) pairs.
    for z in range(p + 1, q):
        ops.setdefault(z, "Z")
    for z in range(r + 1, s):
        ops.setdefault(z, "Z")
    return PauliString.from_sparse(n, ops)


def molecule_program(
    name: str,
    num_strings: Optional[int] = None,
    seed: int = 2022,
    dt: float = 0.1,
) -> PauliProgram:
    """Synthetic Hamiltonian for one of the paper's molecules.

    ``num_strings`` overrides the Table 1 count for scaled-down runs.
    """
    if name not in MOLECULE_SPECS:
        raise ValueError(
            f"unknown molecule {name!r}; expected one of {sorted(MOLECULE_SPECS)}"
        )
    num_qubits, paper_count = MOLECULE_SPECS[name]
    count = num_strings if num_strings is not None else paper_count
    rng = random.Random(seed * 31 + hash(name) % 1000)

    seen = set()
    terms: List[Tuple[PauliString, float]] = []
    while len(terms) < count:
        roll = rng.random()
        if roll < 0.15:
            string = _diagonal_term(num_qubits, rng)
            scale = 1.0
        elif roll < 0.45:
            string = _one_body_term(num_qubits, rng)
            scale = 0.2
        else:
            string = _two_body_term(num_qubits, rng)
            scale = 0.05
        if string in seen:
            continue
        seen.add(string)
        weight = rng.gauss(0.0, scale)
        terms.append((string, weight or scale))
    return PauliProgram.from_hamiltonian(terms, parameter=dt, name=name)
