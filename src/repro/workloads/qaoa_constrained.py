"""Constrained-optimization QAOA with XY mixers (paper reference [33]).

The paper's key IR feature is the ``pauli_block``: strings that an
algorithm requires to stay together (parameter sharing, symmetry
preservation) are grouped and the schedulers move them as one unit.  The
canonical real workload with that constraint is *constrained QAOA*:
one-hot-encoded problems whose mixer must preserve the one-hot subspace,
so each mixer term is the two-string bundle ``(X_a X_b + Y_a Y_b)/2``
that must never be split.

This module builds graph-colouring style instances:

* ``num_items`` items each choose one of ``num_slots`` slots (one-hot);
* conflicts ``(i, j)`` penalize equal slots (ZZ cost strings);
* XY ring mixers act inside each item's one-hot group — one block per
  swap pair, both strings sharing the mixer angle ``beta``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..ir import PauliBlock, PauliProgram
from ..pauli import PauliString

__all__ = ["coloring_cost_block", "xy_mixer_blocks", "constrained_qaoa_program"]


def _qubit(item: int, slot: int, num_slots: int) -> int:
    return item * num_slots + slot


def coloring_cost_block(
    num_items: int,
    num_slots: int,
    conflicts: Sequence[Tuple[int, int]],
    gamma: float = 1.0,
) -> PauliBlock:
    """Cost block: ``ZZ`` between same-slot qubits of conflicting items."""
    n = num_items * num_slots
    terms = []
    for i, j in conflicts:
        if not (0 <= i < num_items and 0 <= j < num_items) or i == j:
            raise ValueError(f"bad conflict pair ({i}, {j})")
        for slot in range(num_slots):
            a = _qubit(i, slot, num_slots)
            b = _qubit(j, slot, num_slots)
            terms.append((PauliString.from_sparse(n, {a: "Z", b: "Z"}), 0.25))
    if not terms:
        raise ValueError("no conflicts given")
    return PauliBlock(terms, parameter=gamma, name="cost")


def xy_mixer_blocks(
    num_items: int,
    num_slots: int,
    beta: float = 1.0,
) -> List[PauliBlock]:
    """One XY block per adjacent slot pair inside each item's group.

    Each block is ``{(XX, 0.5), (YY, 0.5), beta}`` — the two strings form
    one algorithmic unit (they generate the one-hot-preserving partial swap)
    and share the parameter, exactly the constraint Pauli IR encodes.
    """
    n = num_items * num_slots
    blocks = []
    for item in range(num_items):
        for slot in range(num_slots):
            nxt = (slot + 1) % num_slots
            if num_slots == 2 and slot == 1:
                break  # avoid the duplicate (1, 0) pair on 2 slots
            a = _qubit(item, slot, num_slots)
            b = _qubit(item, nxt, num_slots)
            blocks.append(
                PauliBlock(
                    [
                        (PauliString.from_sparse(n, {a: "X", b: "X"}), 0.5),
                        (PauliString.from_sparse(n, {a: "Y", b: "Y"}), 0.5),
                    ],
                    parameter=beta,
                    name=f"xy-{item}-{slot}",
                )
            )
    return blocks


def constrained_qaoa_program(
    num_items: int,
    num_slots: int,
    conflicts: Sequence[Tuple[int, int]],
    gamma: float = 1.0,
    beta: float = 0.5,
    name: str = "",
) -> PauliProgram:
    """One constrained-QAOA level: cost block followed by XY mixer blocks."""
    blocks = [coloring_cost_block(num_items, num_slots, conflicts, gamma)]
    blocks.extend(xy_mixer_blocks(num_items, num_slots, beta))
    return PauliProgram(
        blocks, name=name or f"cqaoa-{num_items}x{num_slots}"
    )
