"""Fermi-Hubbard model workloads, built exactly from the fermion substrate.

The Hubbard Hamiltonian on ``L`` sites (spin orbitals: mode ``i`` = site i
spin-up, mode ``L + i`` = site i spin-down):

.. math::

    H = -t \\sum_{<ij>, s} (c^+_{is} c_{js} + h.c.)
        + U \\sum_i n_{iu} n_{id}

Everything is expanded through Jordan-Wigner with exact signs, so the
resulting :class:`~repro.workloads.fermion.PauliSum` diagonalizes to the
textbook spectrum (checked in tests: the half-filled 2-site ground energy
is ``(U - sqrt(U^2 + 16 t^2)) / 2``).

These workloads exercise the full stack end to end: Hamiltonian -> Pauli
IR -> Paulihedral compilation -> exact simulation -> energy expectation
(the VQE loop of ``examples/vqe_hubbard.py``).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..ir import PauliBlock, PauliProgram
from ..pauli import PauliString
from .fermion import PauliSum, annihilation, creation, excitation_terms

__all__ = [
    "hubbard_hamiltonian",
    "hubbard_trotter_program",
    "hubbard_ucc_ansatz",
    "two_site_ground_energy",
]


def _number_operator(num_qubits: int, mode: int) -> PauliSum:
    return creation(num_qubits, mode) @ annihilation(num_qubits, mode)


def hubbard_hamiltonian(
    num_sites: int,
    hopping: float = 1.0,
    interaction: float = 4.0,
    periodic: bool = False,
) -> PauliSum:
    """The Hubbard Hamiltonian as an exact Pauli sum on ``2 * num_sites``
    qubits."""
    if num_sites < 2:
        raise ValueError("need at least two sites")
    n = 2 * num_sites

    def up(i: int) -> int:
        return i

    def down(i: int) -> int:
        return num_sites + i

    hamiltonian = PauliSum.zero(n)
    bonds = [(i, i + 1) for i in range(num_sites - 1)]
    if periodic and num_sites > 2:
        bonds.append((num_sites - 1, 0))
    for i, j in bonds:
        for mode_of in (up, down):
            a, b = mode_of(i), mode_of(j)
            hop = creation(n, a) @ annihilation(n, b)
            hamiltonian = hamiltonian + (hop + hop.dagger()) * (-hopping)
    for i in range(num_sites):
        hamiltonian = hamiltonian + (
            _number_operator(n, up(i)) @ _number_operator(n, down(i))
        ) * interaction
    return hamiltonian.simplified()


def hubbard_trotter_program(
    num_sites: int,
    hopping: float = 1.0,
    interaction: float = 4.0,
    dt: float = 0.1,
) -> PauliProgram:
    """One Trotter step of Hubbard dynamics as a Pauli IR program."""
    hamiltonian = hubbard_hamiltonian(num_sites, hopping, interaction)
    terms = [
        (string, weight)
        for string, weight in hamiltonian.real_weighted_strings()
        if not string.is_identity
    ]
    return PauliProgram.from_hamiltonian(
        terms, parameter=dt, name=f"hubbard-{num_sites}"
    )


def hubbard_ucc_ansatz(num_sites: int) -> Tuple[PauliProgram, int]:
    """A UCC-style ansatz for the half-filled Hubbard model.

    Returns ``(program, num_parameters)``; each excitation block's
    ``parameter`` field is a placeholder scaled at bind time via
    :func:`bind_parameters`.
    """
    n = 2 * num_sites
    half = num_sites // 2 or 1
    occ_up = list(range(half))
    virt_up = list(range(half, num_sites))
    occ_dn = [q + num_sites for q in occ_up]
    virt_dn = [q + num_sites for q in virt_up]

    blocks: List[PauliBlock] = []
    for occ, virt in ((occ_up, virt_up), (occ_dn, virt_dn)):
        for i in occ:
            for a in virt:
                blocks.append(PauliBlock(excitation_terms(n, [i], [a]), 1.0))
    for i in occ_up:
        for j in occ_dn:
            for a in virt_up:
                for b in virt_dn:
                    blocks.append(
                        PauliBlock(excitation_terms(n, [i, j], [a, b]), 1.0)
                    )
    return PauliProgram(blocks, name=f"hubbard-ucc-{num_sites}"), len(blocks)


def bind_parameters(ansatz: PauliProgram, values: Sequence[float]) -> PauliProgram:
    """Return the ansatz with block parameters set to ``values``."""
    if len(values) != ansatz.num_blocks:
        raise ValueError(
            f"expected {ansatz.num_blocks} parameters, got {len(values)}"
        )
    blocks = [
        PauliBlock(block.strings, parameter=value, name=block.name)
        for block, value in zip(ansatz, values)
    ]
    return ansatz.with_blocks(blocks)


def two_site_ground_energy(hopping: float, interaction: float) -> float:
    """Closed-form half-filled 2-site Hubbard ground energy."""
    return (interaction - math.sqrt(interaction ** 2 + 16.0 * hopping ** 2)) / 2.0
