"""Fermi-Hubbard model workloads, built exactly from the fermion substrate.

The Hubbard Hamiltonian on ``L`` sites (spin orbitals: mode ``i`` = site i
spin-up, mode ``L + i`` = site i spin-down):

.. math::

    H = -t \\sum_{<ij>, s} (c^+_{is} c_{js} + h.c.)
        + U \\sum_i n_{iu} n_{id}

Everything is expanded through Jordan-Wigner with exact signs, so the
resulting :class:`~repro.workloads.fermion.PauliSum` diagonalizes to the
textbook spectrum (checked in tests: the half-filled 2-site ground energy
is ``(U - sqrt(U^2 + 16 t^2)) / 2``).

These workloads exercise the full stack end to end: Hamiltonian -> Pauli
IR -> Paulihedral compilation -> exact simulation -> energy expectation
(the VQE loop of ``examples/vqe_hubbard.py``).
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

from ..ir import PauliBlock, PauliProgram
from ..pauli import PauliString
from .fermion import PauliSum, annihilation, creation, excitation_terms

__all__ = [
    "hubbard_hamiltonian",
    "hubbard_trotter_program",
    "hubbard_ucc_ansatz",
    "two_site_ground_energy",
    "iter_hubbard_terms",
    "scale_hubbard_program",
]


def _number_operator(num_qubits: int, mode: int) -> PauliSum:
    return creation(num_qubits, mode) @ annihilation(num_qubits, mode)


def hubbard_hamiltonian(
    num_sites: int,
    hopping: float = 1.0,
    interaction: float = 4.0,
    periodic: bool = False,
) -> PauliSum:
    """The Hubbard Hamiltonian as an exact Pauli sum on ``2 * num_sites``
    qubits."""
    if num_sites < 2:
        raise ValueError("need at least two sites")
    n = 2 * num_sites

    def up(i: int) -> int:
        return i

    def down(i: int) -> int:
        return num_sites + i

    hamiltonian = PauliSum.zero(n)
    bonds = [(i, i + 1) for i in range(num_sites - 1)]
    if periodic and num_sites > 2:
        bonds.append((num_sites - 1, 0))
    for i, j in bonds:
        for mode_of in (up, down):
            a, b = mode_of(i), mode_of(j)
            hop = creation(n, a) @ annihilation(n, b)
            hamiltonian = hamiltonian + (hop + hop.dagger()) * (-hopping)
    for i in range(num_sites):
        hamiltonian = hamiltonian + (
            _number_operator(n, up(i)) @ _number_operator(n, down(i))
        ) * interaction
    return hamiltonian.simplified()


def hubbard_trotter_program(
    num_sites: int,
    hopping: float = 1.0,
    interaction: float = 4.0,
    dt: float = 0.1,
) -> PauliProgram:
    """One Trotter step of Hubbard dynamics as a Pauli IR program."""
    hamiltonian = hubbard_hamiltonian(num_sites, hopping, interaction)
    terms = [
        (string, weight)
        for string, weight in hamiltonian.real_weighted_strings()
        if not string.is_identity
    ]
    return PauliProgram.from_hamiltonian(
        terms, parameter=dt, name=f"hubbard-{num_sites}"
    )


def iter_hubbard_terms(
    num_sites: int,
    hopping: float = 1.0,
    interaction: float = 4.0,
    periodic: bool = False,
) -> Iterator[Tuple[PauliString, float]]:
    """Stream the Hubbard Hamiltonian's Pauli terms in closed form.

    :func:`hubbard_hamiltonian` expands everything through operator
    products and collects a dict — quadratic work and whole-Hamiltonian
    memory.  At hundreds of sites the Jordan-Wigner images are known in
    closed form, so this generator emits them directly, O(1) memory:

    * hopping between adjacent modes ``a < b``:
      ``-t/2 (X_a Z_{a+1..b-1} X_b + Y_a Z_{a+1..b-1} Y_b)``;
    * on-site interaction ``U n_up n_down``:
      ``U/4 (Z_a Z_b - Z_a - Z_b)`` (identity dropped).

    Pinned equal to ``hubbard_hamiltonian().real_weighted_strings()`` on
    small lattices in tests/test_streaming.py.
    """
    if num_sites < 2:
        raise ValueError("need at least two sites")
    n = 2 * num_sites

    def hop_pair(a: int, b: int) -> Iterator[Tuple[PauliString, float]]:
        a, b = min(a, b), max(a, b)
        chain = {q: "Z" for q in range(a + 1, b)}
        for op in ("X", "Y"):
            yield (
                PauliString.from_sparse(n, {**chain, a: op, b: op}),
                -hopping / 2.0,
            )

    bonds = [(i, i + 1) for i in range(num_sites - 1)]
    if periodic and num_sites > 2:
        bonds.append((num_sites - 1, 0))
    for i, j in bonds:
        # spin-up modes are sites 0..L-1, spin-down modes L..2L-1
        yield from hop_pair(i, j)
        yield from hop_pair(num_sites + i, num_sites + j)
    quarter = interaction / 4.0
    for i in range(num_sites):
        up, down = i, num_sites + i
        yield PauliString.from_sparse(n, {up: "Z"}), -quarter
        yield PauliString.from_sparse(n, {down: "Z"}), -quarter
        yield PauliString.from_sparse(n, {up: "Z", down: "Z"}), quarter


def scale_hubbard_program(
    num_sites: int,
    steps: int = 1,
    hopping: float = 1.0,
    interaction: float = 4.0,
    dt: float = 0.05,
    periodic: bool = True,
    name: str = "",
) -> PauliProgram:
    """``steps`` first-order Trotter steps of large-lattice Hubbard
    dynamics, streamed straight from :func:`iter_hubbard_terms`.

    Deep Trotterization is how simulation programs reach 10^5-10^6 terms
    at fixed width: a 250-site (500-qubit) lattice is ~1.8k terms per
    step, so ~550 steps give a million-term program — built here without
    ever materializing the term list.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")

    def stream() -> Iterator[Tuple[PauliString, float]]:
        for _ in range(steps):
            yield from iter_hubbard_terms(
                num_sites, hopping, interaction, periodic=periodic
            )

    return PauliProgram.from_hamiltonian(
        stream(),
        parameter=dt,
        name=name or f"ScaleHubbard-{num_sites}x{steps}",
    )


def hubbard_ucc_ansatz(num_sites: int) -> Tuple[PauliProgram, int]:
    """A UCC-style ansatz for the half-filled Hubbard model.

    Returns ``(program, num_parameters)``; each excitation block's
    ``parameter`` field is a placeholder scaled at bind time via
    :func:`bind_parameters`.
    """
    n = 2 * num_sites
    half = num_sites // 2 or 1
    occ_up = list(range(half))
    virt_up = list(range(half, num_sites))
    occ_dn = [q + num_sites for q in occ_up]
    virt_dn = [q + num_sites for q in virt_up]

    blocks: List[PauliBlock] = []
    for occ, virt in ((occ_up, virt_up), (occ_dn, virt_dn)):
        for i in occ:
            for a in virt:
                blocks.append(PauliBlock(excitation_terms(n, [i], [a]), 1.0))
    for i in occ_up:
        for j in occ_dn:
            for a in virt_up:
                for b in virt_dn:
                    blocks.append(
                        PauliBlock(excitation_terms(n, [i, j], [a, b]), 1.0)
                    )
    return PauliProgram(blocks, name=f"hubbard-ucc-{num_sites}"), len(blocks)


def bind_parameters(ansatz: PauliProgram, values: Sequence[float]) -> PauliProgram:
    """Return the ansatz with block parameters set to ``values``."""
    if len(values) != ansatz.num_blocks:
        raise ValueError(
            f"expected {ansatz.num_blocks} parameters, got {len(values)}"
        )
    blocks = [
        PauliBlock(block.strings, parameter=value, name=block.name)
        for block, value in zip(ansatz, values)
    ]
    return ansatz.with_blocks(blocks)


def two_site_ground_energy(hopping: float, interaction: float) -> float:
    """Closed-form half-filled 2-site Hubbard ground energy."""
    return (interaction - math.sqrt(interaction ** 2 + 16.0 * hopping ** 2)) / 2.0
