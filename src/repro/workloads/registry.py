"""Benchmark registry: the paper's 31 Table 1 workloads, by name.

Every benchmark is available at two scales:

* ``"paper"`` — the exact Table 1 size (string counts in the tens of
  thousands for the largest entries; expect long compile times, just as the
  paper reports hours for tket on these);
* ``"small"`` — a structurally identical scaled-down instance for CI and
  laptop benchmarking (same generator, fewer strings / qubits).

``naive_gate_counts`` reproduces Table 1's CNOT/single columns: the gate
counts of the unoptimized one-string-at-a-time synthesis, ignoring mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..ir import PauliProgram
from ..pauli.symplectic import PauliTable
from .hubbard import scale_hubbard_program
from .lattices import heisenberg_program, ising_program
from .molecules import MOLECULE_SPECS, molecule_program
from .qaoa import maxcut_program, random_graph, regular_graph, tsp_program
from .random_hamiltonian import random_hamiltonian_program, scale_random_program
from .uccsd import uccsd_program

__all__ = [
    "BenchmarkSpec",
    "BENCHMARKS",
    "build_benchmark",
    "naive_gate_counts",
    "naive_gate_counts_from_table",
    "benchmark_names",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table 1 row: identity plus builders for both scales."""

    name: str
    backend: str       # "sc" or "ft"
    family: str        # UCCSD / QAOA / Ising / Heisenberg / Molecule / Random
    paper_builder: Callable[[], PauliProgram]
    small_builder: Callable[[], PauliProgram]

    def build(self, scale: str = "small") -> PauliProgram:
        if scale == "paper":
            return self.paper_builder()
        if scale == "small":
            return self.small_builder()
        raise ValueError(f"unknown scale {scale!r}; expected 'paper' or 'small'")


def _uccsd(n: int) -> Callable[[], PauliProgram]:
    return lambda: uccsd_program(n, name=f"UCCSD-{n}")


def _maxcut_reg(n: int, d: int) -> Callable[[], PauliProgram]:
    return lambda: maxcut_program(regular_graph(n, d), name=f"REG-{n}-{d}")


def _maxcut_rand(n: int, p: float) -> Callable[[], PauliProgram]:
    return lambda: maxcut_program(random_graph(n, p), name=f"Rand-{n}-{p}")


def _tsp(n: int) -> Callable[[], PauliProgram]:
    return lambda: tsp_program(n, name=f"TSP-{n}")


def _ising(dims) -> Callable[[], PauliProgram]:
    return lambda: ising_program(dims)


def _heisenberg(dims) -> Callable[[], PauliProgram]:
    return lambda: heisenberg_program(dims)


def _molecule(name: str, num_strings: Optional[int] = None) -> Callable[[], PauliProgram]:
    return lambda: molecule_program(name, num_strings=num_strings)


def _random(n: int, num_strings: Optional[int] = None) -> Callable[[], PauliProgram]:
    return lambda: random_hamiltonian_program(n, num_strings=num_strings)


BENCHMARKS: Dict[str, BenchmarkSpec] = {}


def _register(name: str, backend: str, family: str, paper, small) -> None:
    BENCHMARKS[name] = BenchmarkSpec(name, backend, family, paper, small)


# --- SC backend: UCCSD ------------------------------------------------
for _n in (8, 12, 16, 20, 24, 28):
    _register(
        f"UCCSD-{_n}", "sc", "UCCSD",
        _uccsd(_n),
        _uccsd(8) if _n > 12 else _uccsd(_n),
    )

# --- SC backend: QAOA --------------------------------------------------
for _d in (4, 8, 12):
    _register(
        f"REG-20-{_d}", "sc", "QAOA",
        _maxcut_reg(20, _d),
        _maxcut_reg(12, min(_d, 4)),
    )
for _p in (0.1, 0.3, 0.5):
    _register(
        f"Rand-20-{_p}", "sc", "QAOA",
        _maxcut_rand(20, _p),
        _maxcut_rand(12, _p),
    )
_register("TSP-4", "sc", "QAOA", _tsp(4), _tsp(3))
_register("TSP-5", "sc", "QAOA", _tsp(5), _tsp(3))

# --- FT backend: lattices ----------------------------------------------
_register("Ising-1D", "ft", "Ising", _ising([30]), _ising([12]))
_register("Ising-2D", "ft", "Ising", _ising([5, 6]), _ising([3, 4]))
_register("Ising-3D", "ft", "Ising", _ising([2, 3, 5]), _ising([2, 2, 3]))
_register("Heisen-1D", "ft", "Heisenberg", _heisenberg([30]), _heisenberg([12]))
_register("Heisen-2D", "ft", "Heisenberg", _heisenberg([5, 6]), _heisenberg([3, 4]))
_register("Heisen-3D", "ft", "Heisenberg", _heisenberg([2, 3, 5]), _heisenberg([2, 2, 3]))

# --- FT backend: molecules (synthetic; see repro.workloads.molecules) ---
for _mol in MOLECULE_SPECS:
    _register(_mol, "ft", "Molecule", _molecule(_mol), _molecule(_mol, num_strings=300))

# --- FT backend: random Hamiltonians ------------------------------------
for _n in (30, 40, 50, 60, 70, 80):
    _register(
        f"Rand-{_n}", "ft", "Random",
        _random(_n),
        _random(min(_n, 30), num_strings=200),
    )


# --- FT backend: large-scale streaming workloads -------------------------
# Beyond Table 1: the 100-500 qubit / 10^5-10^6-term regime targeted by
# the streaming scheduler (core/streaming.py).  Generator-backed builders
# (iter_klocal_terms / iter_hubbard_terms) never materialize a term list;
# compile these with scheduler="gco-stream" / "do-stream".
def _scale_rand(n: int, terms: int) -> Callable[[], PauliProgram]:
    return lambda: scale_random_program(n, terms)


def _scale_hubbard(sites: int, steps: int) -> Callable[[], PauliProgram]:
    return lambda: scale_hubbard_program(sites, steps=steps)


for _n, _terms in ((100, 10_000), (200, 100_000), (500, 1_000_000)):
    _register(
        f"ScaleRand-{_n}", "ft", "Scale",
        _scale_rand(_n, _terms),
        _scale_rand(min(_n, 40), 1_000),
    )
for _sites, _steps in ((50, 30), (250, 560)):
    _register(
        f"ScaleHubbard-{2 * _sites}", "ft", "Scale",
        _scale_hubbard(_sites, _steps),
        _scale_hubbard(6, 4),
    )


def benchmark_names(backend: Optional[str] = None, family: Optional[str] = None) -> List[str]:
    """Registry lookup, optionally filtered by backend and/or family."""
    return [
        name
        for name, spec in BENCHMARKS.items()
        if (backend is None or spec.backend == backend)
        and (family is None or spec.family == family)
    ]


def build_benchmark(name: str, scale: str = "small") -> PauliProgram:
    """Instantiate a benchmark program by Table 1 name."""
    try:
        spec = BENCHMARKS[name]
    except KeyError:
        raise ValueError(f"unknown benchmark {name!r}") from None
    return spec.build(scale)


def naive_gate_counts(program: PauliProgram) -> Tuple[int, int]:
    """Table 1's naive (CNOT, single-qubit) counts, computed analytically.

    A weight-``w`` string costs ``2 (w - 1)`` CNOTs; single-qubit gates are
    one ``Rz`` plus two basis-change gates per X/Y operator.  Both counts
    come from the batch symplectic kernels (weights are support popcounts,
    basis changes are X-part popcounts).
    """
    return naive_gate_counts_from_table(
        PauliTable.from_strings(
            ws.string for ws, _ in program.all_weighted_strings()
        )
    )


def naive_gate_counts_from_table(table: PauliTable) -> Tuple[int, int]:
    """:func:`naive_gate_counts` on an already-built :class:`PauliTable`."""
    weights = table.weights()
    active = weights > 0
    cnots = int((2 * (weights[active] - 1)).sum())
    singles = int(active.sum() + 2 * table.basis_change_counts()[active].sum())
    return cnots, singles
