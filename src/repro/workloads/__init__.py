"""Benchmark workload generators (the paper's Table 1 suite)."""

from .fermion import PauliSum, annihilation, creation, excitation_terms
from .lattices import heisenberg_program, ising_program, lattice_edges
from .molecules import MOLECULE_SPECS, molecule_program
from .qaoa import (
    best_maxcut_bitstrings,
    maxcut_program,
    maxcut_value,
    random_graph,
    regular_graph,
    tsp_program,
)
from .random_hamiltonian import (
    iter_klocal_terms,
    random_hamiltonian_program,
    random_string,
    scale_random_program,
)
from .registry import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark_names,
    build_benchmark,
    naive_gate_counts,
    naive_gate_counts_from_table,
)
from .uccsd import uccsd_excitations, uccsd_program

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "MOLECULE_SPECS",
    "PauliSum",
    "annihilation",
    "benchmark_names",
    "best_maxcut_bitstrings",
    "build_benchmark",
    "creation",
    "excitation_terms",
    "heisenberg_program",
    "ising_program",
    "iter_klocal_terms",
    "scale_random_program",
    "lattice_edges",
    "maxcut_program",
    "maxcut_value",
    "molecule_program",
    "naive_gate_counts",
    "naive_gate_counts_from_table",
    "random_graph",
    "random_hamiltonian_program",
    "random_string",
    "regular_graph",
    "tsp_program",
    "uccsd_excitations",
    "uccsd_program",
]

from .hubbard import (
    bind_parameters,
    hubbard_hamiltonian,
    hubbard_trotter_program,
    hubbard_ucc_ansatz,
    iter_hubbard_terms,
    scale_hubbard_program,
    two_site_ground_energy,
)

__all__ += [
    "bind_parameters",
    "hubbard_hamiltonian",
    "hubbard_trotter_program",
    "hubbard_ucc_ansatz",
    "iter_hubbard_terms",
    "scale_hubbard_program",
    "two_site_ground_energy",
]
