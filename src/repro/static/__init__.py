"""Static analysis: pass contracts, IR invariants, and pipeline checking.

The eighth architectural layer.  Everything here runs *before* (or
instead of) a compile: the contract checker proves a pass pipeline is
well-composed without emitting a gate, and the invariant analyzer
machine-checks the structural properties the passes silently rely on.
The dynamic counterpart — the Pauli-propagation verifier in
:mod:`repro.verify` — catches miscompilations after the fact; this layer
catches miscompositions before any of that work is spent.

* :mod:`repro.static.contracts` — the ``requires`` / ``preserves`` /
  ``establishes`` property vocabulary, per-pass :class:`PassContract`
  declarations for every built-in pass, and the :class:`PipelineChecker`
  that validates pass-order composition (all shipped pipelines are
  checked at import time).
* :mod:`repro.static.invariants` — cheap structural checkers for
  :class:`~repro.circuit.tape.GateTape` and Pauli IR programs, runnable
  between passes under ``REPRO_CHECK_INVARIANTS=1`` and as the
  ``repro check`` CLI subcommand.

The repository linter (``tools/lint_repro.py``) is the third leg: an
AST-based tool enforcing repo-specific discipline (no blocking calls in
the gateway's event loop, no gate-tape column mutation outside
``circuit/tape.py``, CacheStats lock discipline, no float equality on
angles).  It is a standalone stdlib-only script so CI can run it without
installing the compiler's dependencies.
"""

from .contracts import (
    ALL,
    CONTRACTS,
    PassContract,
    PipelineChecker,
    PipelineContractError,
    VOCABULARY,
    contract_for,
    preserves_all_except,
    rules_for_level,
    shipped_pipelines,
)
from .invariants import (
    Diagnostic,
    InvariantIssue,
    InvariantReport,
    InvariantViolation,
    ValidationReport,
    check_program,
    check_result,
    check_tape,
    debug_check,
    debug_invariants_enabled,
    validate_program,
)

__all__ = [
    "ALL",
    "CONTRACTS",
    "VOCABULARY",
    "PassContract",
    "PipelineChecker",
    "PipelineContractError",
    "contract_for",
    "preserves_all_except",
    "rules_for_level",
    "shipped_pipelines",
    "Diagnostic",
    "InvariantIssue",
    "InvariantReport",
    "InvariantViolation",
    "ValidationReport",
    "check_program",
    "check_result",
    "check_tape",
    "debug_check",
    "debug_invariants_enabled",
    "validate_program",
]
