"""IR and gate-tape invariant analysis: the machine-checked half of the
static layer.

Where :mod:`repro.static.contracts` proves a pass *ordering* sound, this
module checks the structural invariants each pass silently relies on —
the facts that, when broken, produce miscompilations the dynamic
verifier can only diagnose after a full compile:

* **Gate tape** (:func:`check_tape`): parallel-column shape, opcode and
  qubit-operand bounds, operand arity, parameter finiteness, the alive
  column vs ``alive_count`` / per-opcode ``counts``, the per-wire
  doubly-linked lists against program order, and (given a coupling map)
  post-routing edge conformance.
* **Pauli IR** (:func:`check_program`): coefficient and parameter
  finiteness, symplectic row widths of every block's packed table,
  per-string qubit-count consistency, plus the legacy well-formedness
  diagnostics folded in from the retired ``ir/validation.py`` —
  identity-only blocks, zero weights, duplicate strings, non-commuting
  blocks, zero parameters.

Every finding carries a stable dotted **invariant name** (for example
``tape.wire-links`` or ``program.coefficient-finite``) so callers — the
``repro check`` CLI, the debug hook, tests — can branch on *which*
invariant failed instead of parsing prose.

Checks collect findings into an :class:`InvariantReport` rather than
asserting, so one corrupted artifact yields a full damage report.  The
:func:`debug_check` hook gives the compile paths an opt-in between-pass
sweep: export ``REPRO_CHECK_INVARIANTS=1`` and every backend validates
its tape after each pass, raising :class:`InvariantViolation` at the
first broken stage.

``validate_program`` remains the single program-validation entry point
(``repro.ir`` lazily re-exports it); it is now an alias of
:func:`check_program`.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import List, Optional

from ..circuit.gates import OP_ROTATION, OP_SINGLE, OP_TWO, OPCODES
from ..circuit.tape import NO_SLOT, GateTape

__all__ = [
    "Diagnostic",
    "InvariantIssue",
    "InvariantReport",
    "InvariantViolation",
    "ValidationReport",
    "check_program",
    "check_result",
    "check_tape",
    "debug_check",
    "debug_invariants_enabled",
    "validate_program",
]

#: Environment flag: when truthy, the compile paths run :func:`debug_check`
#: between passes.
DEBUG_ENV = "REPRO_CHECK_INVARIANTS"


@dataclass(frozen=True)
class InvariantIssue:
    """One finding: which named invariant broke, where, and how."""

    severity: str          # "error" | "warning"
    invariant: str         # dotted name, e.g. "tape.wire-links"
    location: str          # e.g. "slot 12", "block 3", "wire 5", "program"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.invariant} @ {self.location}: {self.message}"


def Diagnostic(severity: str, block_index: int, message: str) -> InvariantIssue:
    """Legacy ``ir.validation.Diagnostic`` constructor, kept for
    compatibility: builds a program-structure :class:`InvariantIssue`."""
    location = f"block {block_index}" if block_index >= 0 else "program"
    return InvariantIssue(severity, "program.structure", location, message)


@dataclass
class InvariantReport:
    """All findings from one check run over one subject."""

    subject: str = "program"
    issues: List[InvariantIssue] = field(default_factory=list)

    def add(self, severity: str, invariant: str, location: str, message: str) -> None:
        self.issues.append(InvariantIssue(severity, invariant, location, message))

    @property
    def diagnostics(self) -> List[InvariantIssue]:
        """Legacy alias for :attr:`issues` (the old ValidationReport name)."""
        return self.issues

    @property
    def errors(self) -> List[InvariantIssue]:
        return [issue for issue in self.issues if issue.severity == "error"]

    @property
    def warnings(self) -> List[InvariantIssue]:
        return [issue for issue in self.issues if issue.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def merge(self, other: "InvariantReport") -> "InvariantReport":
        self.issues.extend(other.issues)
        return self

    def raise_on_error(self) -> None:
        if not self.ok:
            raise InvariantViolation(self)

    def __str__(self) -> str:
        if not self.issues:
            return f"{self.subject} OK"
        return "\n".join(str(issue) for issue in self.issues)


#: Legacy alias: the old ``ir.validation.ValidationReport``.
ValidationReport = InvariantReport


class InvariantViolation(ValueError):
    """An invariant check found errors; carries the full report."""

    def __init__(self, report: InvariantReport):
        first = report.errors[0]
        more = len(report.errors) - 1
        tail = f" (+{more} more)" if more else ""
        super().__init__(
            f"invalid {report.subject}: invariant {first.invariant!r} broken "
            f"at {first.location}: {first.message}{tail}"
        )
        self.report = report

    @property
    def invariant(self) -> str:
        return self.report.errors[0].invariant


# ---------------------------------------------------------------------------
# Gate tape
# ---------------------------------------------------------------------------

def check_tape(tape, coupling=None, subject: str = "tape") -> InvariantReport:
    """Structural sweep over a :class:`GateTape` (or a circuit carrying one).

    Cheap — one pass over the rows plus one pass over the wires — so it is
    safe to run between passes under the debug flag.  With ``coupling``,
    also checks post-routing edge conformance of every live two-qubit gate.
    """
    if not isinstance(tape, GateTape):  # accept QuantumCircuit too
        tape = tape.tape
    report = InvariantReport(subject=subject)

    rows = len(tape.op)
    for name in ("q0", "q1", "param", "alive"):
        column = getattr(tape, name)
        if len(column) != rows:
            report.add(
                "error", "tape.column-shape", f"column {name}",
                f"length {len(column)} != op column length {rows}",
            )
    if report.errors:
        return report  # ragged columns make row iteration meaningless

    n_ops = len(OPCODES)
    n_qubits = tape.num_qubits
    alive_seen = 0
    counts = [0] * n_ops
    for slot in range(rows):
        if not tape.alive[slot]:
            continue
        alive_seen += 1
        code = tape.op[slot]
        where = f"slot {slot}"
        if not 0 <= code < n_ops:
            report.add(
                "error", "tape.opcode-range", where,
                f"opcode {code} outside [0, {n_ops})",
            )
            continue
        counts[code] += 1
        q0, q1 = tape.q0[slot], tape.q1[slot]
        if not 0 <= q0 < n_qubits:
            report.add(
                "error", "tape.qubit-bounds", where,
                f"q0={q0} outside [0, {n_qubits}) for {OPCODES[code]!r}",
            )
        if code in OP_TWO:
            if not 0 <= q1 < n_qubits:
                report.add(
                    "error", "tape.qubit-bounds", where,
                    f"q1={q1} outside [0, {n_qubits}) for {OPCODES[code]!r}",
                )
            elif q0 == q1:
                report.add(
                    "error", "tape.operand-arity", where,
                    f"two-qubit {OPCODES[code]!r} with identical operands q{q0}",
                )
            elif coupling is not None and not coupling.is_connected(q0, q1):
                report.add(
                    "error", "tape.coupling", where,
                    f"{OPCODES[code]!r} on uncoupled pair ({q0}, {q1})",
                )
        elif code in OP_SINGLE and q1 != NO_SLOT:
            report.add(
                "error", "tape.operand-arity", where,
                f"single-qubit {OPCODES[code]!r} carries q1={q1}",
            )
        param = tape.param[slot]
        if not math.isfinite(param):
            report.add(
                "error", "tape.param-finite", where,
                f"{OPCODES[code]!r} parameter is {param!r}",
            )
        elif code not in OP_ROTATION and param != 0.0:  # lint: allow-float-eq
            report.add(
                "warning", "tape.param-finite", where,
                f"non-rotation {OPCODES[code]!r} carries parameter {param!r}",
            )

    if alive_seen != tape.alive_count:
        report.add(
            "error", "tape.alive-count", "tape",
            f"alive column sums to {alive_seen}, alive_count says {tape.alive_count}",
        )
    if counts != tape.counts and not any(
        issue.invariant == "tape.opcode-range" for issue in report.issues
    ):
        for code in range(n_ops):
            if counts[code] != tape.counts[code]:
                report.add(
                    "error", "tape.opcode-counts", f"opcode {OPCODES[code]!r}",
                    f"live rows count {counts[code]}, counts column says "
                    f"{tape.counts[code]}",
                )

    if not report.errors:
        _check_wire_links(tape, report)
    return report


def _check_wire_links(tape: GateTape, report: InvariantReport) -> None:
    """Per-wire linked lists vs the alive column and program order."""
    tape.ensure_links()
    if len(tape.head) != tape.num_qubits or len(tape.tail) != tape.num_qubits:
        report.add(
            "error", "tape.column-shape", "head/tail",
            f"head/tail lengths ({len(tape.head)}, {len(tape.tail)}) != "
            f"num_qubits {tape.num_qubits}",
        )
        return
    order = {slot: pos for pos, slot in enumerate(tape.iter_slots())}
    for wire in range(tape.num_qubits):
        where = f"wire {wire}"
        sequence = []
        slot = tape.head[wire]
        hops = 0
        limit = len(tape.op) + 1
        while slot != NO_SLOT:
            hops += 1
            if hops > limit:
                report.add(
                    "error", "tape.wire-links", where,
                    "next-link cycle detected",
                )
                return
            sequence.append(slot)
            if not tape.alive[slot]:
                report.add(
                    "error", "tape.wire-links", where,
                    f"dead slot {slot} still linked",
                )
            slot = tape.wire_next(slot, wire)
        positions = [order.get(s) for s in sequence if s in order]
        if positions != sorted(positions):
            report.add(
                "error", "tape.wire-links", where,
                "wire order diverged from program order",
            )
        previous = NO_SLOT
        for s in sequence:
            back = tape.wire_prev(s, wire)
            if back != previous:
                report.add(
                    "error", "tape.wire-links", where,
                    f"slot {s} prev-link points at {back}, expected {previous}",
                )
                break
            previous = s
        expected_tail = sequence[-1] if sequence else NO_SLOT
        if tape.tail[wire] != expected_tail:
            report.add(
                "error", "tape.wire-links", where,
                f"tail says {tape.tail[wire]}, last linked slot is {expected_tail}",
            )


# ---------------------------------------------------------------------------
# Pauli IR
# ---------------------------------------------------------------------------

def check_program(program, subject: str = "Pauli IR program") -> InvariantReport:
    """Structural sweep over a ``PauliProgram`` (duck-typed: any iterable
    of blocks with ``parameter`` and weighted strings works).

    Subsumes the retired ``ir.validation.validate_program``: the legacy
    well-formedness diagnostics keep their severities and wording, with
    coefficient-finiteness and symplectic-width checks on top.
    """
    report = InvariantReport(subject=subject)
    program_qubits = getattr(program, "num_qubits", None)
    for index, block in enumerate(program):
        where = f"block {index}"
        strings = [ws.string for ws in block]

        if all(string.is_identity for string in strings):
            report.add(
                "error", "program.structure", where,
                "block contains only identity strings and compiles to nothing",
            )

        zero_weights = 0
        for ws in block:
            if not math.isfinite(ws.weight):
                report.add(
                    "error", "program.coefficient-finite", where,
                    f"string {ws.string.label} has non-finite weight {ws.weight!r}",
                )
            elif ws.weight == 0.0:  # lint: allow-float-eq
                zero_weights += 1
        if zero_weights:
            report.add(
                "error", "program.structure", where,
                f"{zero_weights} string(s) have zero weight and silently vanish",
            )

        if program_qubits is not None:
            for ws in block:
                if ws.string.num_qubits != program_qubits:
                    report.add(
                        "error", "program.qubit-width", where,
                        f"string {ws.string.label} spans {ws.string.num_qubits} "
                        f"qubits, program declares {program_qubits}",
                    )

        _check_symplectic_widths(block, where, report)

        seen = {}
        for ws in block:
            seen[ws.string] = seen.get(ws.string, 0) + 1
        duplicates = {s: c for s, c in seen.items() if c > 1}
        if duplicates:
            labels = ", ".join(s.label for s in duplicates)
            report.add(
                "warning", "program.structure", where,
                f"duplicate strings within the block could be merged: {labels}",
            )

        if len(strings) > 1 and not block.is_mutually_commuting():
            report.add(
                "warning", "program.structure", where,
                "strings in this block do not mutually commute; the GCO "
                "representative-string heuristic may mis-order it",
            )

        parameter = block.parameter
        if not math.isfinite(parameter):
            report.add(
                "error", "program.coefficient-finite", where,
                f"block parameter is {parameter!r}",
            )
        elif parameter == 0.0:  # lint: allow-float-eq
            report.add(
                "warning", "program.structure", where,
                "block parameter is zero; the block is a no-op",
            )
    return report


def _check_symplectic_widths(block, where: str, report: InvariantReport) -> None:
    """The block's packed symplectic table must span exactly
    ``ceil(num_qubits / 8)`` bytes per row, one row per string."""
    try:
        table = block.view.table
    except Exception as exc:  # view construction itself blew up
        report.add(
            "error", "program.symplectic-width", where,
            f"cannot build symplectic view: {exc}",
        )
        return
    expected_bytes = (block.num_qubits + 7) // 8
    for name in ("x", "z"):
        rows = getattr(table, name)
        if rows.shape != (len(block), expected_bytes):
            report.add(
                "error", "program.symplectic-width", where,
                f"packed {name} rows have shape {tuple(rows.shape)}, expected "
                f"({len(block)}, {expected_bytes})",
            )


#: The single program-validation entry point (legacy name preserved;
#: ``repro.ir`` re-exports it lazily).
validate_program = check_program


# ---------------------------------------------------------------------------
# Compilation results and the debug hook
# ---------------------------------------------------------------------------

def check_result(result, coupling=None) -> InvariantReport:
    """Sweep a ``CompilationResult`` (or anything with ``circuit`` and
    ``emitted_terms``): tape invariants plus emitted-coefficient
    finiteness.  ``coupling`` enables the post-routing edge check."""
    report = check_tape(result.circuit, coupling=coupling, subject="compiled circuit")
    for position, (string, coefficient) in enumerate(getattr(result, "emitted_terms", ())):
        if not math.isfinite(coefficient):
            report.add(
                "error", "result.coefficient-finite", f"term {position}",
                f"emitted {string.label} with non-finite coefficient "
                f"{coefficient!r}",
            )
    return report


def debug_invariants_enabled() -> bool:
    """True when ``REPRO_CHECK_INVARIANTS`` is set to a truthy value."""
    return os.environ.get(DEBUG_ENV, "").strip().lower() in {"1", "true", "yes", "on"}


def debug_check(stage: str, tape=None, program=None, coupling=None) -> None:
    """Between-pass invariant sweep, active only under the debug flag.

    Backends call this after each pass with whatever artifacts exist at
    that point; on a broken invariant it raises :class:`InvariantViolation`
    whose message names the stage, so a corrupting pass is caught at its
    own boundary instead of three passes later.
    """
    if not debug_invariants_enabled():
        return
    if program is not None:
        report = check_program(program, subject=f"Pauli IR program ({stage})")
        report.raise_on_error()
    if tape is not None:
        report = check_tape(tape, coupling=coupling, subject=f"tape ({stage})")
        report.raise_on_error()
