"""Pass contracts and the pipeline composition checker.

Paulihedral's passes compose safely only because each pass preserves the
semantic properties the next pass assumes — the scheduler leaves blocks
mutually commuting within a layer, SC synthesis leaves every two-qubit
gate on a coupled edge, the peephole rules never move a gate across
wires.  Until now those assumptions were implicit.  This module makes
them declarations: every pass carries a :class:`PassContract` stating
which properties it ``requires`` on entry, which it ``establishes`` on
exit, and which it ``preserves`` (everything else is conservatively
assumed destroyed).  :class:`PipelineChecker` then runs a simple forward
dataflow over a pass sequence and rejects any ordering whose
requirements cannot be met, *before any gate is emitted*, with a
diagnostic naming the offending pass, the unmet property, and the pass
that dropped it.

The module is deliberately **stdlib-only and imports nothing from the
rest of the package** — it is pure metadata, so the pipeline drivers in
:mod:`repro.core.passes` and :mod:`repro.transpile.pipeline` can import
it without layering cycles.  Those drivers bind their callables to
contract names via :func:`register_callable` at their own import time.

All shipped pipelines (FT and SC backends at optimization levels 0-3,
plus the generic routed transpile sequences) are validated when this
module is imported; a contract regression therefore fails every test
run at collection time rather than surfacing as a miscompiled circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "VOCABULARY",
    "ALL",
    "PassContract",
    "PipelineContractError",
    "PipelineChecker",
    "CONTRACTS",
    "preserves_all_except",
    "contract_for",
    "register_callable",
    "rules_for_level",
    "shipped_pipelines",
    "TIER_LEVELS",
    "pipeline_for_tier",
]

#: The closed property vocabulary.  Contracts may only mention these
#: names; a typo in a contract is itself a static error.
VOCABULARY: FrozenSet[str] = frozenset(
    {
        # IR-level properties.
        "ir_valid",                   # Pauli program passed the invariant analyzer
        "scheduled",                  # blocks grouped into an ordered layer schedule
        "blocks_commuting_grouped",   # blocks within each layer mutually commute
        # Circuit-level properties.
        "synthesized",                # a gate circuit exists
        "terms_recorded",             # emitted (string, coefficient) order captured
        "routed",                     # circuit mapped onto physical qubits
        "coupling_respected",         # every 2q gate sits on a coupled edge
        "no_dead_gates",              # peephole fixpoint: no adjacent inverse pairs
        "canonical_angles",           # rotations folded mod 2*pi, zero-angle dropped
    }
)


def preserves_all_except(*dropped: str) -> FrozenSet[str]:
    """Preservation set for a pass that keeps every property except ``dropped``."""
    unknown = set(dropped) - VOCABULARY
    if unknown:
        raise ValueError(f"unknown properties {sorted(unknown)!r}")
    return VOCABULARY - set(dropped)


#: A pass that touches nothing it does not explicitly establish.
ALL: FrozenSet[str] = preserves_all_except()


@dataclass(frozen=True)
class PassContract:
    """What a pass assumes, guarantees, and leaves alone.

    The transfer function is ``out = (in & preserves) | establishes``; a
    sequence is well-composed when every pass's ``requires`` is a subset
    of the properties flowing into it.
    """

    name: str
    requires: FrozenSet[str] = frozenset()
    establishes: FrozenSet[str] = frozenset()
    preserves: FrozenSet[str] = ALL
    description: str = ""

    def __post_init__(self) -> None:
        for kind in ("requires", "establishes", "preserves"):
            names = getattr(self, kind)
            object.__setattr__(self, kind, frozenset(names))
            unknown = frozenset(names) - VOCABULARY
            if unknown:
                raise ValueError(
                    f"contract {self.name!r}: {kind} mentions unknown "
                    f"properties {sorted(unknown)!r}"
                )

    def apply(self, properties: FrozenSet[str]) -> FrozenSet[str]:
        return (properties & self.preserves) | self.establishes


class PipelineContractError(ValueError):
    """A pass sequence is statically miscomposed.

    Carries the pipeline name, the offending pass (``None`` when the
    *goal* is unmet rather than a pass requirement), the unmet property,
    and the pass that dropped it (``None`` when it was never
    established), so tests and tools can assert on structure instead of
    parsing the message.
    """

    def __init__(
        self,
        pipeline: str,
        unmet: str,
        pass_name: Optional[str],
        position: Optional[int],
        dropped_by: Optional[str],
        message: str,
    ):
        super().__init__(message)
        self.pipeline = pipeline
        self.unmet = unmet
        self.pass_name = pass_name
        self.position = position
        self.dropped_by = dropped_by


# ---------------------------------------------------------------------------
# Built-in contracts
# ---------------------------------------------------------------------------

def _contract_table() -> Dict[str, PassContract]:
    table: Dict[str, PassContract] = {}

    def add(contract: PassContract) -> None:
        table[contract.name] = contract

    # -- scheduling passes (PauliProgram -> Schedule) -----------------------
    add(PassContract(
        "schedule_gco",
        establishes=frozenset({"scheduled", "blocks_commuting_grouped"}),
        description="Gate-count-oriented lexicographic scheduling (Algorithm 1).",
    ))
    add(PassContract(
        "schedule_do",
        establishes=frozenset({"scheduled", "blocks_commuting_grouped"}),
        description="Depth-oriented layered scheduling (Section 4.2).",
    ))
    add(PassContract(
        "schedule_gco_stream",
        establishes=frozenset({"scheduled", "blocks_commuting_grouped"}),
        description="Streaming gate-count-oriented scheduling: compact-key "
                    "sort plus incremental emission, O(window) realized "
                    "profiles (core/streaming.py).",
    ))
    add(PassContract(
        "schedule_do_stream",
        establishes=frozenset({"scheduled", "blocks_commuting_grouped"}),
        description="Streaming depth-oriented scheduling: bounded frontier "
                    "window over the Algorithm 1 layering, O(window) "
                    "realized profiles (core/streaming.py).",
    ))
    add(PassContract(
        "schedule_none",
        establishes=frozenset({"scheduled"}),
        description="Program order passthrough (ablation baseline); layers "
                    "are singletons, so no commuting-group guarantee.",
    ))

    # -- synthesis passes (Schedule -> QuantumCircuit) ----------------------
    # Synthesis creates the circuit, so circuit-level properties from any
    # earlier life are meaningless afterwards: preserve only IR facts.
    ir_only = preserves_all_except(
        "synthesized", "terms_recorded", "routed", "coupling_respected",
        "no_dead_gates", "canonical_angles",
    )
    add(PassContract(
        "ft_synthesize",
        requires=frozenset({"scheduled"}),
        establishes=frozenset({"synthesized", "terms_recorded"}),
        preserves=ir_only,
        description="Adaptive FT synthesis (Algorithm 2): all-to-all target, "
                    "junction-aligned chains.",
    ))
    add(PassContract(
        "sc_synthesize",
        requires=frozenset({"scheduled"}),
        establishes=frozenset({
            "synthesized", "terms_recorded", "routed", "coupling_respected",
        }),
        preserves=ir_only,
        description="Coupling-constrained tree-embedded SC synthesis "
                    "(Section 5.2); emits only coupled-edge CNOTs.",
    ))
    add(PassContract(
        "sc_synthesize_noise",
        requires=frozenset({"scheduled"}),
        establishes=frozenset({
            "synthesized", "terms_recorded", "routed", "coupling_respected",
        }),
        preserves=ir_only,
        description="SC synthesis with calibration-weighted path selection: "
                    "qubit movement follows lowest swap-failure paths "
                    "(3 * -log(1-e) edge cost) instead of hop counts; same "
                    "guarantees as sc_synthesize.",
    ))

    # -- gate-level peephole rules -----------------------------------------
    # The shipped rules are local: they delete or fuse gates in place and
    # never move a gate to a new wire pair, so routing survives them.
    add(PassContract(
        "peephole_cancel",
        requires=frozenset({"synthesized"}),
        establishes=frozenset({"no_dead_gates"}),
        description="Remove adjacent inverse pairs (coupling-safe: deletes only).",
    ))
    add(PassContract(
        "peephole_merge",
        requires=frozenset({"synthesized"}),
        establishes=frozenset({"canonical_angles"}),
        description="Fuse equal-axis rotation runs mod 2*pi; single-qubit only.",
    ))
    add(PassContract(
        "peephole_commute",
        requires=frozenset({"synthesized"}),
        preserves=preserves_all_except("canonical_angles"),
        description="Cancel CNOT pairs through commuting interiors; the "
                    "closing cancellation can expose new mergeable runs.",
    ))
    add(PassContract(
        "peephole_fuse",
        requires=frozenset({"synthesized"}),
        preserves=preserves_all_except("no_dead_gates"),
        description="Absorb a CNOT into an adjacent same-pair SWAP; the "
                    "replacement can form a fresh adjacent inverse pair.",
    ))
    add(PassContract(
        "peephole",
        requires=frozenset({"synthesized"}),
        establishes=frozenset({"no_dead_gates", "canonical_angles"}),
        description="All rules to a joint fixpoint (transpile.optimize).",
    ))
    # A rule class the repository intentionally does NOT ship after
    # routing: anything that re-synthesizes or reorders two-qubit gates
    # across wire pairs (template matching, KAK resynthesis, mirror-gate
    # commutation).  Its contract exists so pipelines that try to run one
    # post-routing are rejected statically -- see the miscomposition tests.
    add(PassContract(
        "peephole_reorder2q",
        requires=frozenset({"synthesized"}),
        establishes=frozenset({"no_dead_gates"}),
        preserves=preserves_all_except("routed", "coupling_respected"),
        description="Cross-wire two-qubit resynthesis: may emit gates on "
                    "uncoupled pairs, so it invalidates routing.",
    ))

    # -- routing and validation --------------------------------------------
    add(PassContract(
        "route_sabre",
        requires=frozenset({"synthesized"}),
        establishes=frozenset({"routed", "coupling_respected"}),
        preserves=preserves_all_except("no_dead_gates", "canonical_angles"),
        description="SABRE-style routing; inserted SWAPs create new "
                    "cancellation opportunities.",
    ))
    add(PassContract(
        "route_sabre_noise",
        requires=frozenset({"synthesized"}),
        establishes=frozenset({"routed", "coupling_respected"}),
        preserves=preserves_all_except("no_dead_gates", "canonical_angles"),
        description="Reliability-weighted SABRE: swaps scored against the "
                    "all-pairs 3 * -log(1-e) cost matrix with a noise-seeded "
                    "dense layout; same structural guarantees as route_sabre "
                    "(falls back to it for uniform/absent calibrations).",
    ))
    add(PassContract(
        "validate_routed",
        requires=frozenset({"routed", "coupling_respected"}),
        description="Pure check: every 2q gate on a coupled edge.",
    ))

    # -- slot defaults for unregistered callables --------------------------
    # Custom passes plugged into PassPipeline without a declared contract
    # are trusted to do their slot's job but nothing more: an opaque
    # circuit pass is assumed to destroy routing, peephole fixpoints and
    # angle canonicalization, which is exactly what makes an undeclared
    # post-routing pass before validate_routed a static error.
    add(PassContract(
        "schedule_opaque",
        establishes=frozenset({"scheduled"}),
        description="Unregistered schedule pass: trusted to schedule, "
                    "commuting-group guarantee not assumed.",
    ))
    add(PassContract(
        "synthesize_opaque",
        requires=frozenset({"scheduled"}),
        establishes=frozenset({"synthesized"}),
        preserves=ir_only,
        description="Unregistered synthesis pass: trusted to emit a circuit, "
                    "routing and term recording not assumed.",
    ))
    add(PassContract(
        "circuit_opaque",
        requires=frozenset({"synthesized"}),
        preserves=preserves_all_except(
            "routed", "coupling_respected", "no_dead_gates", "canonical_angles",
        ),
        description="Unregistered circuit pass: assumed to rewrite gates "
                    "arbitrarily, so only IR/synthesis facts survive.",
    ))
    return table


CONTRACTS: Dict[str, PassContract] = _contract_table()

#: Attribute stamped on pass callables by :func:`register_callable`.
#: (An id()-keyed registry would be unsound: ids are reused after GC,
#: and the pipeline factories build fresh closures per call.)
_CONTRACT_ATTR = "__pass_contract__"


def register_callable(fn: Callable, contract_name: str) -> Callable:
    """Bind a pass callable to a contract name for :func:`contract_for`;
    returns the callable so it can wrap a definition."""
    if contract_name not in CONTRACTS:
        raise ValueError(f"unknown contract {contract_name!r}")
    setattr(fn, _CONTRACT_ATTR, contract_name)
    return fn


def contract_for(obj, default: str = "circuit_opaque") -> PassContract:
    """Resolve a pass (by contract name or registered callable) to its
    contract, falling back to the named slot default."""
    if isinstance(obj, str):
        contract = CONTRACTS.get(obj)
        if contract is not None:
            return contract
    else:
        name = getattr(obj, _CONTRACT_ATTR, None)
        if name is not None and name in CONTRACTS:
            return CONTRACTS[name]
    return CONTRACTS[default]


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------

class PipelineChecker:
    """Forward property-flow analysis over a pass sequence.

    ``check`` walks the sequence applying each contract's transfer
    function and raises :class:`PipelineContractError` at the first pass
    whose ``requires`` set is not satisfied, or — after the walk — when
    the pipeline's declared ``goal`` is not met.  The diagnostic names
    the property, the pass that needed it, and the pass that dropped it
    (or states it was never established), which is the actionable part:
    the fix is always "move/remove the dropper" or "insert an
    establisher".
    """

    def __init__(self, contracts: Optional[Dict[str, PassContract]] = None):
        self._contracts = contracts if contracts is not None else CONTRACTS

    def resolve(self, sequence: Sequence) -> List[PassContract]:
        resolved: List[PassContract] = []
        for entry in sequence:
            if isinstance(entry, PassContract):
                resolved.append(entry)
            elif isinstance(entry, str) and entry in self._contracts:
                resolved.append(self._contracts[entry])
            else:
                resolved.append(contract_for(entry))
        return resolved

    def check(
        self,
        sequence: Sequence,
        initial: Iterable[str] = (),
        goal: Iterable[str] = (),
        name: str = "pipeline",
    ) -> FrozenSet[str]:
        """Validate a pass sequence; returns the final property set.

        ``sequence`` entries may be contract names, :class:`PassContract`
        objects, or callables previously passed to
        :func:`register_callable`.
        """
        contracts = self.resolve(sequence)
        properties = frozenset(initial)
        unknown = properties - VOCABULARY
        if unknown:
            raise ValueError(f"unknown initial properties {sorted(unknown)!r}")
        # Last pass to drop each property; None means never established.
        dropped_by: Dict[str, Optional[str]] = {}
        for position, contract in enumerate(contracts):
            missing = contract.requires - properties
            if missing:
                unmet = min(missing)  # deterministic pick for the message
                raise PipelineContractError(
                    name, unmet, contract.name, position,
                    dropped_by.get(unmet),
                    self._explain(name, unmet, contract.name, position,
                                  dropped_by.get(unmet)),
                )
            after = contract.apply(properties)
            for prop in properties - after:
                dropped_by[prop] = contract.name
            properties = after
        missing_goal = frozenset(goal) - properties
        if missing_goal:
            unmet = min(missing_goal)
            raise PipelineContractError(
                name, unmet, None, None, dropped_by.get(unmet),
                self._explain(name, unmet, None, None, dropped_by.get(unmet)),
            )
        return properties

    @staticmethod
    def _explain(
        pipeline: str,
        unmet: str,
        pass_name: Optional[str],
        position: Optional[int],
        dropper: Optional[str],
    ) -> str:
        if pass_name is not None:
            head = (
                f"pipeline {pipeline!r} is miscomposed: pass #{position} "
                f"({pass_name!r}) requires property {unmet!r}"
            )
        else:
            head = (
                f"pipeline {pipeline!r} is miscomposed: its goal requires "
                f"property {unmet!r}"
            )
        if dropper is not None:
            cause = (
                f", which pass {dropper!r} dropped; run {dropper!r} earlier "
                f"or re-establish {unmet!r} after it"
            )
        else:
            cause = (
                f", which no earlier pass establishes; insert a pass that "
                f"establishes {unmet!r} first"
            )
        return head + cause


# ---------------------------------------------------------------------------
# Shipped pipelines
# ---------------------------------------------------------------------------

def rules_for_level(level: int) -> List[str]:
    """The peephole rule subset the generic pipeline runs at ``level``
    (mirrors ``transpile.pipeline._optimize_at_level``)."""
    if level <= 0:
        return []
    rules = ["peephole_cancel", "peephole_merge"]
    if level >= 2:
        rules.append("peephole_commute")
    if level >= 3:
        rules.append("peephole_fuse")
    return rules


#: Serving-layer artifact quality tiers mapped onto the peephole
#: optimization level whose shipped pipeline produced them.  The
#: gateway's speculative lane answers at ``opt1`` and upgrades to
#: ``full``; the contracts below guarantee that upgrade is monotone —
#: each level's rule set is a superset of the level below, so a
#: higher-tier recompile can only add simplifications, never lose the
#: guarantees the fast artifact already carried.
TIER_LEVELS: Dict[str, int] = {
    "opt0": 0, "opt1": 1, "opt2": 2, "opt3": 3, "full": 3,
}


def pipeline_for_tier(backend: str, scheduler: str, tier: str) -> str:
    """Name of the shipped pipeline that produces a ``tier``-quality
    artifact for ``backend`` (``ft``/``sc``) under ``scheduler``.

    This is the serving layer's provenance hook: an artifact stamped
    ``tier="opt1"`` was compiled by the pipeline this function names, and
    the self-check below asserts that pipeline is actually shipped (and
    contract-valid), so a tier string in the cache always corresponds to
    a statically validated pass sequence.
    """
    if tier not in TIER_LEVELS:
        raise ValueError(
            f"unknown tier {tier!r}; expected one of {sorted(TIER_LEVELS)}"
        )
    return f"{backend}-{scheduler}-opt{TIER_LEVELS[tier]}"


@dataclass(frozen=True)
class ShippedPipeline:
    """A built-in pass sequence with its entry assumptions and goal."""

    name: str
    passes: Tuple[str, ...]
    initial: FrozenSet[str] = frozenset()
    goal: FrozenSet[str] = frozenset()


def shipped_pipelines() -> List[ShippedPipeline]:
    """Every built-in pipeline: FT and SC flows at optimization levels
    0-3, plus the generic routed/unrouted transpile sequences."""
    pipelines: List[ShippedPipeline] = []
    ir = frozenset({"ir_valid"})
    for level in range(4):
        rules = rules_for_level(level)
        for scheduler in ("gco", "do", "none", "gco-stream", "do-stream"):
            pipelines.append(ShippedPipeline(
                f"ft-{scheduler}-opt{level}",
                (f"schedule_{scheduler.replace('-', '_')}",
                 "ft_synthesize", *rules),
                initial=ir,
                goal=frozenset({"synthesized", "terms_recorded"}),
            ))
        for scheduler in ("gco", "do", "gco-stream", "do-stream"):
            pipelines.append(ShippedPipeline(
                f"sc-{scheduler}-opt{level}",
                (f"schedule_{scheduler.replace('-', '_')}",
                 "sc_synthesize", *rules,
                 "validate_routed"),
                initial=ir,
                goal=frozenset({
                    "synthesized", "routed", "coupling_respected",
                }),
            ))
        # SC flow with calibration-weighted path selection (the
        # noise-aware variant the device registry drives).
        pipelines.append(ShippedPipeline(
            f"sc-noise-do-opt{level}",
            ("schedule_do", "sc_synthesize_noise", *rules, "validate_routed"),
            initial=ir,
            goal=frozenset({
                "synthesized", "routed", "coupling_respected",
            }),
        ))
        # Generic transpile over an already-synthesized circuit
        # (optimize, route, re-optimize, validate).
        pipelines.append(ShippedPipeline(
            f"generic-opt{level}",
            (*rules, "route_sabre", *rules, "validate_routed"),
            initial=frozenset({"synthesized"}),
            goal=frozenset({"synthesized", "routed", "coupling_respected"}),
        ))
        pipelines.append(ShippedPipeline(
            f"generic-noise-opt{level}",
            (*rules, "route_sabre_noise", *rules, "validate_routed"),
            initial=frozenset({"synthesized"}),
            goal=frozenset({"synthesized", "routed", "coupling_respected"}),
        ))
        pipelines.append(ShippedPipeline(
            f"generic-alltoall-opt{level}",
            tuple(rules),
            initial=frozenset({"synthesized"}),
            goal=frozenset({"synthesized"}),
        ))
    return pipelines


def _self_check() -> None:
    """Validate every shipped pipeline; runs at import time, so a contract
    regression fails the whole suite at collection rather than shipping a
    miscomposed default."""
    checker = PipelineChecker()
    shipped = {p.name for p in shipped_pipelines()}
    for pipeline in shipped_pipelines():
        checker.check(
            pipeline.passes,
            initial=pipeline.initial,
            goal=pipeline.goal,
            name=pipeline.name,
        )
    # Tier provenance: every serving-layer tier must resolve to a shipped
    # (hence contract-validated) pipeline for both backends.
    for tier in TIER_LEVELS:
        for backend in ("ft", "sc"):
            for scheduler in ("gco", "do"):
                name = pipeline_for_tier(backend, scheduler, tier)
                if name not in shipped:
                    raise AssertionError(
                        f"tier {tier!r} maps to unshipped pipeline {name!r}"
                    )
    # Upgrade monotonicity: a higher optimization level runs a superset
    # of the rules below it, so a background opt-3 recompile of an opt-1
    # artifact can only add simplifications.  Without this, the
    # speculative lane's "upgrade" could silently regress circuit
    # quality.
    for level in range(3):
        lower, higher = set(rules_for_level(level)), set(rules_for_level(level + 1))
        if not lower <= higher:
            raise AssertionError(
                f"peephole rules are not monotone: level {level} runs "
                f"{sorted(lower - higher)} which level {level + 1} drops"
            )


_self_check()
