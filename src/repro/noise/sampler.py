"""Stochastic-Pauli noisy execution (the offline stand-in for real hardware).

Each trajectory runs the circuit on a dense statevector; after every gate,
with probability equal to the gate's error rate, a uniformly random
non-identity Pauli error is injected on the gate's qubits (the standard
depolarizing-channel unravelling).  Readout error is applied analytically as
independent per-qubit bit-flip channels on the averaged distribution.

Averaging a few hundred trajectories approximates the depolarized output
distribution well enough to reproduce the paper's RSP comparisons (which are
themselves single-device snapshots).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..circuit import Gate, QuantumCircuit, apply_gate
from .model import NoiseModel

__all__ = ["noisy_probabilities", "ideal_probabilities", "success_probability"]

_PAULI_1Q = ("x", "y", "z")


def _inject_1q(state: np.ndarray, qubit: int, num_qubits: int, rng: random.Random) -> np.ndarray:
    name = rng.choice(_PAULI_1Q)
    return apply_gate(state, Gate(name, (qubit,)), num_qubits)


def _inject_2q(state: np.ndarray, qubits, num_qubits: int, rng: random.Random) -> np.ndarray:
    # Uniform over the 15 non-identity two-qubit Paulis.
    while True:
        a = rng.randrange(4)
        b = rng.randrange(4)
        if a or b:
            break
    for code, qubit in ((a, qubits[0]), (b, qubits[1])):
        if code:
            name = _PAULI_1Q[code - 1]
            state = apply_gate(state, Gate(name, (qubit,)), num_qubits)
    return state


def ideal_probabilities(circuit: QuantumCircuit, initial_state: Optional[np.ndarray] = None) -> np.ndarray:
    """Noise-free output distribution."""
    from ..circuit import simulate

    state = simulate(circuit, initial_state)
    return np.abs(state) ** 2


def noisy_probabilities(
    circuit: QuantumCircuit,
    model: NoiseModel,
    trajectories: int = 200,
    seed: int = 17,
    measured_qubits: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Monte-Carlo average output distribution under stochastic Pauli noise."""
    n = circuit.num_qubits
    dim = 2 ** n
    rng = random.Random(seed)
    total = np.zeros(dim)
    for _ in range(trajectories):
        state = np.zeros(dim, dtype=complex)
        state[0] = 1.0
        for gate in circuit:
            state = apply_gate(state, gate, n)
            rate = model.gate_error(gate.name, gate.qubits)
            if rate > 0.0 and rng.random() < rate:
                if len(gate.qubits) == 1:
                    state = _inject_1q(state, gate.qubits[0], n, rng)
                else:
                    state = _inject_2q(state, gate.qubits, n, rng)
        total += np.abs(state) ** 2
    probabilities = total / trajectories
    if measured_qubits is not None:
        for q in measured_qubits:
            rate = model.readout_error.get(q, 0.0)
            if rate > 0.0:
                probabilities = _bitflip_channel(probabilities, q, rate, n)
    return probabilities


def _bitflip_channel(probabilities: np.ndarray, qubit: int, rate: float, num_qubits: int) -> np.ndarray:
    """Mix each basis state with its qubit-flipped partner."""
    tensor = probabilities.reshape((2,) * num_qubits)
    axis = num_qubits - 1 - qubit
    flipped = np.flip(tensor, axis=axis)
    return ((1.0 - rate) * tensor + rate * flipped).reshape(-1)


def success_probability(
    probabilities: np.ndarray,
    winning_outcomes: Iterable[int],
) -> float:
    """Total probability mass on the winning basis states."""
    return float(sum(probabilities[w] for w in winning_outcomes))
