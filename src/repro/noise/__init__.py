"""Noise models, ESP estimation, and noisy execution (Figure 11 substrate)."""

from .model import NoiseModel, esp
from .qaoa_study import (
    QAOARun,
    build_full_circuit,
    compile_qaoa_cost,
    evaluate_qaoa,
    optimize_parameters,
    qaoa_logical_circuit,
    qaoa_study,
)
from .sampler import ideal_probabilities, noisy_probabilities, success_probability

__all__ = [
    "NoiseModel",
    "QAOARun",
    "build_full_circuit",
    "compile_qaoa_cost",
    "esp",
    "evaluate_qaoa",
    "ideal_probabilities",
    "noisy_probabilities",
    "optimize_parameters",
    "qaoa_logical_circuit",
    "qaoa_study",
    "success_probability",
]
