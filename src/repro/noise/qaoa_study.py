"""End-to-end QAOA success-probability study (paper Section 6.4, Figure 11).

Pipeline, mirroring the paper:

1. build the 1-level QAOA MaxCut ansatz for a graph;
2. optimize ``(gamma, beta)`` on the ideal simulator (grid search over the
   logical ansatz — parameters belong to the algorithm, not the mapping);
3. compile the cost layer for the device twice — baseline (naive synthesis
   in adjacency order + SABRE routing + peephole, the 'Qiskit_L3 default')
   and Paulihedral (Algorithm 3 with noise-aware paths);
4. report ESP from the noise model and RSP from noisy simulation, counting
   a shot as a success when it measures an optimal cut.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..circuit import QuantumCircuit
from ..core import sc_compile
from ..ir import PauliProgram
from ..baselines import naive_compile
from ..transpile import CouplingMap, Layout, dense_initial_layout, route, optimize as peephole
from ..core.synthesis import naive_program_circuit
from ..workloads import best_maxcut_bitstrings, maxcut_program
from .model import NoiseModel, esp
from .sampler import ideal_probabilities, noisy_probabilities, success_probability

__all__ = [
    "QAOARun",
    "qaoa_logical_circuit",
    "optimize_parameters",
    "compile_qaoa_cost",
    "evaluate_qaoa",
    "qaoa_study",
]


@dataclass
class QAOARun:
    """One compiled QAOA executable plus its measurement mapping."""

    circuit: QuantumCircuit
    measured: Dict[int, int]   # logical qubit -> physical qubit at readout
    method: str


def qaoa_logical_circuit(graph: nx.Graph, gamma: float, beta: float) -> QuantumCircuit:
    """The ideal (unmapped) 1-level QAOA circuit: H, cost, mixer."""
    n = graph.number_of_nodes()
    program = maxcut_program(graph, gamma=-gamma)  # exp(-i gamma C)
    circuit = QuantumCircuit(n)
    for q in range(n):
        circuit.h(q)
    circuit.compose(naive_program_circuit(program))
    for q in range(n):
        circuit.rx(2.0 * beta, q)
    return circuit


def optimize_parameters(
    graph: nx.Graph,
    resolution: int = 8,
) -> Tuple[float, float, float]:
    """Grid-search ``(gamma, beta)`` maximizing ideal success probability.

    Returns ``(gamma, beta, ideal_success)``.
    """
    _, winners = best_maxcut_bitstrings(graph)
    best = (-1.0, 0.0, 0.0)
    for gamma in np.linspace(0.1, math.pi / 2, resolution):
        for beta in np.linspace(0.1, math.pi / 2, resolution):
            probs = ideal_probabilities(qaoa_logical_circuit(graph, gamma, beta))
            score = success_probability(probs, winners)
            if score > best[0]:
                best = (score, float(gamma), float(beta))
    score, gamma, beta = best
    return gamma, beta, score


def compile_qaoa_cost(
    graph: nx.Graph,
    gamma: float,
    coupling: CouplingMap,
    noise_model: Optional[NoiseModel],
    method: str,
) -> Tuple[QuantumCircuit, Layout, Layout]:
    """Compile the cost layer; returns (circuit, initial_layout, final_layout)."""
    program = maxcut_program(graph, gamma=-gamma)
    if method == "ph":
        edge_error = noise_model.edge_error_map() if noise_model else None
        result = sc_compile(program, coupling, scheduler="do", edge_error=edge_error)
        return result.circuit, result.initial_layout, result.final_layout
    if method == "baseline":
        logical = naive_program_circuit(program)
        initial = dense_initial_layout(coupling, program.num_qubits)
        routed = route(logical, coupling, initial_layout=initial)
        return peephole(routed.circuit), routed.initial_layout, routed.final_layout
    raise ValueError(f"unknown method {method!r}")


def build_full_circuit(
    graph: nx.Graph,
    gamma: float,
    beta: float,
    coupling: CouplingMap,
    noise_model: Optional[NoiseModel],
    method: str,
) -> QAOARun:
    """Full physical executable: H layer + compiled cost + mixer layer."""
    n = graph.number_of_nodes()
    cost, initial, final = compile_qaoa_cost(graph, gamma, coupling, noise_model, method)
    full = QuantumCircuit(coupling.num_qubits)
    for logical in range(n):
        full.h(initial.physical(logical))
    full.compose(cost)
    for logical in range(n):
        full.rx(2.0 * beta, final.physical(logical))
    measured = {logical: final.physical(logical) for logical in range(n)}
    return QAOARun(full, measured, method)


def _logical_distribution(
    probabilities: np.ndarray,
    measured: Dict[int, int],
    num_physical: int,
    num_logical: int,
) -> np.ndarray:
    """Marginalize a physical-basis distribution onto the logical register."""
    out = np.zeros(2 ** num_logical)
    physical_positions = [measured[l] for l in range(num_logical)]
    for index, p in enumerate(probabilities):
        if p == 0.0:
            continue
        logical_index = 0
        for l, pos in enumerate(physical_positions):
            logical_index |= ((index >> pos) & 1) << l
        out[logical_index] += p
    return out


def evaluate_qaoa(
    run: QAOARun,
    graph: nx.Graph,
    noise_model: NoiseModel,
    trajectories: int = 150,
    seed: int = 23,
) -> Dict[str, float]:
    """ESP and RSP (noisy-simulated) success metrics for one executable."""
    _, winners = best_maxcut_bitstrings(graph)
    measured_physical = list(run.measured.values())
    esp_value = esp(run.circuit, noise_model, measured_qubits=measured_physical)

    probs = noisy_probabilities(
        run.circuit, noise_model, trajectories=trajectories, seed=seed,
        measured_qubits=measured_physical,
    )
    logical = _logical_distribution(
        probs, run.measured, run.circuit.num_qubits, graph.number_of_nodes()
    )
    rsp = success_probability(logical, winners)

    ideal = ideal_probabilities(run.circuit)
    ideal_logical = _logical_distribution(
        ideal, run.measured, run.circuit.num_qubits, graph.number_of_nodes()
    )
    return {
        "esp": esp_value,
        "rsp": rsp,
        "ideal_success": success_probability(ideal_logical, winners),
        "cnot": run.circuit.cnot_count,
        "depth": run.circuit.depth(),
    }


def qaoa_study(
    graph: nx.Graph,
    coupling: CouplingMap,
    noise_model: NoiseModel,
    resolution: int = 6,
    trajectories: int = 150,
    seed: int = 23,
) -> Dict[str, Dict[str, float]]:
    """Full Figure 11 comparison for one graph: baseline vs Paulihedral."""
    gamma, beta, _ = optimize_parameters(graph, resolution=resolution)
    results = {}
    for method in ("baseline", "ph"):
        run = build_full_circuit(graph, gamma, beta, coupling, noise_model, method)
        results[method] = evaluate_qaoa(
            run, graph, noise_model, trajectories=trajectories, seed=seed
        )
    results["improvement"] = {
        "esp": results["ph"]["esp"] / max(results["baseline"]["esp"], 1e-12),
        "rsp": results["ph"]["rsp"] / max(results["baseline"]["rsp"], 1e-12),
    }
    return results
