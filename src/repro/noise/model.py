"""Device noise models and Estimated Success Probability (ESP).

The paper's Figure 11 uses two success metrics:

* **ESP** — the standard compiler-guidance estimate (Murali et al. ASPLOS
  2019; Nishio et al. 2020): the product of per-gate success rates and
  per-qubit readout success rates,
  ``ESP = prod_g (1 - e_g) * prod_q (1 - r_q)``;
* **RSP** — real-system success probability, which we obtain from the
  stochastic-Pauli noisy simulator (:mod:`repro.noise.sampler`) since no
  hardware is available offline.

Calibration data is modelled on the public ibmq_16_melbourne numbers:
CNOT error a few percent, single-qubit error ~0.1%, readout error a few
percent, with seeded per-qubit/per-edge spread.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Optional, Tuple

from ..circuit import QuantumCircuit
from ..transpile import CouplingMap

__all__ = ["NoiseModel", "esp"]

#: Rates are quantized to this many decimal digits wherever the model
#: enters a cache identity (see :meth:`NoiseModel.quantized_spec`): raw
#: calibration floats jitter in their low bits between snapshots, and a
#: sub-1e-6 rate change cannot move any routing decision worth a recompile.
_QUANTIZE_DIGITS = 6


class NoiseModel:
    """Per-gate and per-qubit error rates for a device."""

    def __init__(
        self,
        single_qubit_error: Dict[int, float],
        two_qubit_error: Dict[Tuple[int, int], float],
        readout_error: Dict[int, float],
    ):
        self.single_qubit_error = dict(single_qubit_error)
        self.two_qubit_error = {
            tuple(sorted(edge)): rate for edge, rate in two_qubit_error.items()
        }
        self.readout_error = dict(readout_error)
        for label, rates in (
            ("single-qubit", self.single_qubit_error.values()),
            ("two-qubit", self.two_qubit_error.values()),
            ("readout", self.readout_error.values()),
        ):
            for rate in rates:
                if not 0.0 <= rate < 1.0:
                    raise ValueError(
                        f"{label} error rate {rate!r} outside [0, 1)"
                    )

    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        coupling: CouplingMap,
        single_qubit: float = 1e-3,
        two_qubit: float = 2e-2,
        readout: float = 3e-2,
    ) -> "NoiseModel":
        return cls(
            {q: single_qubit for q in range(coupling.num_qubits)},
            {edge: two_qubit for edge in coupling.edges},
            {q: readout for q in range(coupling.num_qubits)},
        )

    @classmethod
    def calibrated(
        cls,
        coupling: CouplingMap,
        seed: int = 11,
        single_qubit_mean: float = 1.2e-3,
        two_qubit_mean: float = 2.5e-2,
        readout_mean: float = 4.0e-2,
        spread: float = 0.5,
    ) -> "NoiseModel":
        """Melbourne-style calibration: rates jittered around device means.

        ``spread`` is the relative half-width of the uniform jitter.
        """
        rng = random.Random(seed)

        def jitter(mean: float) -> float:
            return mean * (1.0 + spread * (2.0 * rng.random() - 1.0))

        return cls(
            {q: jitter(single_qubit_mean) for q in range(coupling.num_qubits)},
            {edge: jitter(two_qubit_mean) for edge in coupling.edges},
            {q: jitter(readout_mean) for q in range(coupling.num_qubits)},
        )

    # ------------------------------------------------------------------
    def gate_error(
        self, name: str, qubits: Tuple[int, ...], strict: bool = True
    ) -> float:
        """Error rate of one gate application (SWAP counts as 3 CNOTs).

        ``strict`` controls what a *missing* calibration entry means, the
        same way on both arities: strict (default) raises ``ValueError``
        naming the uncalibrated qubit or edge, lenient returns 0.0.  (The
        historical behaviour — unknown single-qubit indices silently 0.0
        while unknown edges raised — under-reported bad 1q indices and
        crashed FT all-to-all circuits in :func:`esp`.)
        """
        if len(qubits) == 1:
            rate = self.single_qubit_error.get(qubits[0])
            if rate is None:
                if strict:
                    raise ValueError(
                        f"no single-qubit calibration for qubit {qubits[0]}"
                    )
                return 0.0
            return rate
        edge = tuple(sorted(qubits))
        rate = self.two_qubit_error.get(edge)
        if rate is None:
            if strict:
                raise ValueError(f"no calibration for edge {edge}")
            return 0.0
        if name == "swap":
            # SWAP = 3 CNOTs: success = (1 - e)^3.
            return 1.0 - (1.0 - rate) ** 3
        return rate

    def edge_error_map(self) -> Dict[Tuple[int, int], float]:
        """For the SC pass's lowest-error path selection."""
        return dict(self.two_qubit_error)

    def swap_cost(self, a: int, b: int) -> float:
        """Reliability cost of one SWAP on edge ``(a, b)``.

        The additive form of swap success probability: a SWAP is 3 CNOTs,
        so its cost is ``-log((1 - e)^3) = 3 * -log(1 - e)``.  Summing
        these along a path is exactly minimizing the product of swap
        failure-free probabilities — the Section 5.2 "low-error path".
        Raises ``ValueError`` for an uncalibrated edge.
        """
        edge = (a, b) if a < b else (b, a)
        rate = self.two_qubit_error.get(edge)
        if rate is None:
            raise ValueError(f"no calibration for edge {edge}")
        return 3.0 * -math.log(1.0 - rate)

    @property
    def is_uniform(self) -> bool:
        """True when every two-qubit edge carries the same error rate.

        A uniform model contains no routing signal: every path of equal
        hop count has equal reliability, so the noise-aware passes fall
        back to plain hop distance (which also keeps them gate-identical
        to the distance-only reference, see the router tests).
        """
        rates = set(self.two_qubit_error.values())
        return len(rates) <= 1

    # ------------------------------------------------------------------
    # Serialization (device registry snapshots + cache identity)
    # ------------------------------------------------------------------
    def to_calibration(self) -> Dict:
        """JSON-able calibration snapshot (exact rates, sorted entries)."""
        return {
            "single_qubit_error": [
                [q, rate] for q, rate in sorted(self.single_qubit_error.items())
            ],
            "two_qubit_error": [
                [a, b, rate]
                for (a, b), rate in sorted(self.two_qubit_error.items())
            ],
            "readout_error": [
                [q, rate] for q, rate in sorted(self.readout_error.items())
            ],
        }

    @classmethod
    def from_calibration(cls, payload: Dict) -> "NoiseModel":
        """Rebuild a model from :meth:`to_calibration` output."""
        return cls(
            {int(q): float(r) for q, r in payload.get("single_qubit_error", [])},
            {(int(a), int(b)): float(r)
             for a, b, r in payload.get("two_qubit_error", [])},
            {int(q): float(r) for q, r in payload.get("readout_error", [])},
        )

    def quantized_spec(self) -> List:
        """Canonical JSON-able identity of this model for fingerprints.

        Rates are rounded to ``1e-6`` so calibration noise below routing
        relevance cannot thrash the compile cache, while any real
        recalibration (rates move by >= 1e-6) produces a distinct spec.
        """
        q = _QUANTIZE_DIGITS
        return [
            [[a, round(r, q)] for a, r in sorted(self.single_qubit_error.items())],
            [[a, b, round(r, q)]
             for (a, b), r in sorted(self.two_qubit_error.items())],
            [[a, round(r, q)] for a, r in sorted(self.readout_error.items())],
        ]


def esp(
    circuit: QuantumCircuit,
    model: NoiseModel,
    measured_qubits: Optional[Iterable[int]] = None,
    strict: bool = True,
) -> float:
    """Estimated Success Probability of a compiled circuit.

    ``strict`` (default) raises ``ValueError`` on the first gate whose
    qubit or edge has no calibration entry — the right default for routed
    circuits, where every operand must sit on calibrated hardware.  Pass
    ``strict=False`` for the documented *lenient* mode: uncalibrated
    operands are treated as error-free (rate 0.0), which is what an FT
    all-to-all circuit scored against a device model needs (its virtual
    long-range edges have no physical calibration).  Readout is lenient in
    both modes: unmeasured or uncalibrated qubits contribute no factor.
    """
    prob = 1.0
    for gate in circuit:
        prob *= 1.0 - model.gate_error(gate.name, gate.qubits, strict=strict)
    if measured_qubits is not None:
        for q in measured_qubits:
            prob *= 1.0 - model.readout_error.get(q, 0.0)
    return prob
