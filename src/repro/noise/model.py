"""Device noise models and Estimated Success Probability (ESP).

The paper's Figure 11 uses two success metrics:

* **ESP** — the standard compiler-guidance estimate (Murali et al. ASPLOS
  2019; Nishio et al. 2020): the product of per-gate success rates and
  per-qubit readout success rates,
  ``ESP = prod_g (1 - e_g) * prod_q (1 - r_q)``;
* **RSP** — real-system success probability, which we obtain from the
  stochastic-Pauli noisy simulator (:mod:`repro.noise.sampler`) since no
  hardware is available offline.

Calibration data is modelled on the public ibmq_16_melbourne numbers:
CNOT error a few percent, single-qubit error ~0.1%, readout error a few
percent, with seeded per-qubit/per-edge spread.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional, Tuple

from ..circuit import QuantumCircuit
from ..transpile import CouplingMap

__all__ = ["NoiseModel", "esp"]


class NoiseModel:
    """Per-gate and per-qubit error rates for a device."""

    def __init__(
        self,
        single_qubit_error: Dict[int, float],
        two_qubit_error: Dict[Tuple[int, int], float],
        readout_error: Dict[int, float],
    ):
        self.single_qubit_error = dict(single_qubit_error)
        self.two_qubit_error = {
            tuple(sorted(edge)): rate for edge, rate in two_qubit_error.items()
        }
        self.readout_error = dict(readout_error)

    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        coupling: CouplingMap,
        single_qubit: float = 1e-3,
        two_qubit: float = 2e-2,
        readout: float = 3e-2,
    ) -> "NoiseModel":
        return cls(
            {q: single_qubit for q in range(coupling.num_qubits)},
            {edge: two_qubit for edge in coupling.edges},
            {q: readout for q in range(coupling.num_qubits)},
        )

    @classmethod
    def calibrated(
        cls,
        coupling: CouplingMap,
        seed: int = 11,
        single_qubit_mean: float = 1.2e-3,
        two_qubit_mean: float = 2.5e-2,
        readout_mean: float = 4.0e-2,
        spread: float = 0.5,
    ) -> "NoiseModel":
        """Melbourne-style calibration: rates jittered around device means.

        ``spread`` is the relative half-width of the uniform jitter.
        """
        rng = random.Random(seed)

        def jitter(mean: float) -> float:
            return mean * (1.0 + spread * (2.0 * rng.random() - 1.0))

        return cls(
            {q: jitter(single_qubit_mean) for q in range(coupling.num_qubits)},
            {edge: jitter(two_qubit_mean) for edge in coupling.edges},
            {q: jitter(readout_mean) for q in range(coupling.num_qubits)},
        )

    # ------------------------------------------------------------------
    def gate_error(self, name: str, qubits: Tuple[int, ...]) -> float:
        """Error rate of one gate application (SWAP counts as 3 CNOTs)."""
        if len(qubits) == 1:
            return self.single_qubit_error.get(qubits[0], 0.0)
        edge = tuple(sorted(qubits))
        rate = self.two_qubit_error.get(edge)
        if rate is None:
            raise ValueError(f"no calibration for edge {edge}")
        if name == "swap":
            # SWAP = 3 CNOTs: success = (1 - e)^3.
            return 1.0 - (1.0 - rate) ** 3
        return rate

    def edge_error_map(self) -> Dict[Tuple[int, int], float]:
        """For the SC pass's lowest-error path selection."""
        return dict(self.two_qubit_error)


def esp(
    circuit: QuantumCircuit,
    model: NoiseModel,
    measured_qubits: Optional[Iterable[int]] = None,
) -> float:
    """Estimated Success Probability of a compiled circuit."""
    prob = 1.0
    for gate in circuit:
        prob *= 1.0 - model.gate_error(gate.name, gate.qubits)
    if measured_qubits is not None:
        for q in measured_qubits:
            prob *= 1.0 - model.readout_error.get(q, 0.0)
    return prob
