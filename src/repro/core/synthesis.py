"""Synthesis of ``exp(i * coefficient * P)`` into basic gates.

This implements the circuit template of Figure 2 in the paper: a layer of
basis-change gates (``H`` for X, the Y-basis Hadamard ``yh`` for Y), a left
CNOT tree accumulating the parity of all active qubits onto a *root*, a
central ``Rz`` on the root, the mirrored right CNOT tree, and the mirrored
basis-change layer.

The key freedom Paulihedral exploits (Section 2.1, Figure 4) is the *plan*:
which CNOT tree to use and which qubit is the root.  A :class:`SynthesisPlan`
pins that choice down; the FT pass picks plans that put operators shared with
a neighbouring string at the **leaf end** of a chain so that the junction
gates cancel.

Sign convention: the emitted circuit implements ``exp(-i * angle/2 * P)``
where ``angle`` is the ``Rz`` angle, so :func:`pauli_evolution_circuit`
passes ``angle = -2 * coefficient`` to realize ``exp(i * coefficient * P)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..circuit import Gate, QuantumCircuit
from ..pauli import PauliString
from ..pauli import operators as ops

__all__ = [
    "SynthesisPlan",
    "chain_plan",
    "aligned_chain_plan",
    "pauli_rotation_gates",
    "pauli_evolution_circuit",
    "naive_program_circuit",
]


class SynthesisPlan:
    """A concrete CNOT-tree choice for one Pauli string.

    Parameters
    ----------
    edges:
        Left-tree CNOT edges ``(control, target)`` in emission order.  The
        parity must flow so that after all edges the total parity sits on
        ``root`` (for a chain ``[a, b, c]`` the edges are
        ``[(a, b), (b, c)]`` and the root is ``c``).
    root:
        The qubit carrying the central ``Rz``.
    """

    __slots__ = ("edges", "root")

    def __init__(self, edges: Sequence[Tuple[int, int]], root: int):
        self.edges = tuple((int(c), int(t)) for c, t in edges)
        self.root = int(root)
        targets = [t for _, t in self.edges]
        if self.edges and targets[-1] != self.root:
            raise ValueError("the last CNOT of a plan must target the root")

    def __repr__(self) -> str:
        return f"SynthesisPlan(root={self.root}, edges={list(self.edges)})"


def chain_plan(support: Sequence[int], root: Optional[int] = None) -> SynthesisPlan:
    """Simple chain plan over ``support`` in the given order.

    ``root`` defaults to the last qubit of the order; if given, the order is
    rotated so that ``root`` comes last.
    """
    order = list(support)
    if not order:
        raise ValueError("cannot synthesize an identity string")
    if root is not None:
        if root not in order:
            raise ValueError(f"root {root} not in support {order}")
        order.remove(root)
        order.append(root)
    edges = [(order[i], order[i + 1]) for i in range(len(order) - 1)]
    return SynthesisPlan(edges, order[-1])


def aligned_chain_plan(
    string: PauliString,
    neighbor: Optional[PauliString] = None,
    secondary: Optional[PauliString] = None,
) -> SynthesisPlan:
    """Chain plan that maximizes junction cancellation with ``neighbor``.

    Qubits where ``string`` and ``neighbor`` carry the *same* non-identity
    operator are placed at the leaf end of the chain in canonical (ascending)
    order; the remaining support follows, also ascending.  Two adjacent
    strings planned against each other therefore open/close with identical
    gate prefixes, which the peephole pass cancels (paper Figure 4a).

    ``secondary`` (the string's other neighbour, when it has two) only
    orders the *remaining* support: qubits it shares come right after the
    ``neighbor``-shared prefix.  That cannot disturb the primary junction —
    the common prefix is untouched — but when the secondary's shared set
    nests inside the primary's, the other junction picks up the same
    cancellations for free.
    """
    support = list(string.support)
    if neighbor is None and secondary is None:
        return chain_plan(support)
    shared = set(string.shared_support(neighbor)) if neighbor is not None else set()
    shared2 = (
        set(string.shared_support(secondary)) - shared
        if secondary is not None
        else set()
    )
    order = (
        sorted(q for q in support if q in shared)
        + sorted(q for q in support if q in shared2)
        + sorted(q for q in support if q not in shared and q not in shared2)
    )
    return chain_plan(order)


def _basis_change_gates(string: PauliString) -> List[Gate]:
    gates: List[Gate] = []
    for qubit in string.support:
        code = string.code_at(qubit)
        if code == ops.X:
            gates.append(Gate("h", (qubit,)))
        elif code == ops.Y:
            gates.append(Gate("yh", (qubit,)))
    return gates


def pauli_rotation_gates(
    string: PauliString,
    angle: float,
    plan: Optional[SynthesisPlan] = None,
) -> List[Gate]:
    """Gate list implementing ``exp(-i * angle/2 * P)``.

    Identity strings produce an empty list (a global phase).
    """
    support = string.support
    if not support:
        return []
    if plan is None:
        plan = chain_plan(support)
    _validate_plan(string, plan)

    basis = _basis_change_gates(string)
    left = [Gate("cx", edge) for edge in plan.edges]
    middle = [Gate("rz", (plan.root,), (angle,))]
    right = [Gate("cx", edge) for edge in reversed(plan.edges)]
    return basis + left + middle + right + list(reversed(basis))


def pauli_evolution_circuit(
    string: PauliString,
    coefficient: float,
    plan: Optional[SynthesisPlan] = None,
) -> QuantumCircuit:
    """Circuit implementing ``exp(i * coefficient * P)``."""
    circuit = QuantumCircuit(string.num_qubits)
    circuit.extend(pauli_rotation_gates(string, -2.0 * coefficient, plan))
    return circuit


def naive_program_circuit(program) -> QuantumCircuit:
    """Baseline synthesis: every string in program order with default chain
    plans and no cross-string optimization (paper's 'naive synthesis')."""
    circuit = QuantumCircuit(program.num_qubits)
    for ws, parameter in program.all_weighted_strings():
        if ws.string.is_identity:
            continue
        circuit.extend(
            pauli_rotation_gates(ws.string, -2.0 * ws.weight * parameter)
        )
    return circuit


def _validate_plan(string: PauliString, plan: SynthesisPlan) -> None:
    support = set(string.support)
    touched = set()
    for control, target in plan.edges:
        touched.update((control, target))
    if plan.edges:
        if touched != support:
            raise ValueError(
                f"plan touches qubits {sorted(touched)} but support is {sorted(support)}"
            )
    elif support != {plan.root}:
        raise ValueError("empty plan requires a single-qubit support equal to the root")
    if plan.root not in support:
        raise ValueError(f"root {plan.root} is not in the support of {string.label}")
