"""Top-level Paulihedral entry point.

``compile_program`` wires the technology-independent scheduling passes
(Section 4) to the technology-dependent block-wise optimization passes
(Section 5), mirroring Figure 1's flow:

.. code-block:: text

    Pauli IR --(scheduling)--> layers --(block-wise opt)--> gate sequence

Backends:

* ``"ft"`` — fault-tolerant: all-to-all connectivity, gate-cancellation
  maximizing synthesis (Algorithm 2); default scheduler ``gco``.
* ``"sc"`` — superconducting: coupling-constrained tree-embedded synthesis
  (Algorithm 3); requires a coupling map; default scheduler ``do``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuit import QuantumCircuit
from ..ir import PauliProgram
from ..pauli import PauliString
from ..transpile import CouplingMap, Layout
from .ft_backend import ft_compile
from .sc_backend import sc_compile

__all__ = ["CompilationResult", "compile_program"]


@dataclass
class CompilationResult:
    """Everything a caller needs from one Paulihedral compilation."""

    circuit: QuantumCircuit
    backend: str
    scheduler: str
    emitted_terms: List[Tuple[PauliString, float]] = field(default_factory=list)
    initial_layout: Optional[Layout] = None
    final_layout: Optional[Layout] = None

    @property
    def metrics(self) -> Dict[str, int]:
        """Paper metrics: CNOT / single-qubit / total gate count and depth."""
        return {
            "cnot": self.circuit.cnot_count,
            "single": self.circuit.single_qubit_count,
            "total": self.circuit.cnot_count + self.circuit.single_qubit_count,
            "depth": self.circuit.depth(),
        }


def compile_program(
    program: PauliProgram,
    backend: str = "ft",
    scheduler: Optional[str] = None,
    coupling: Optional[CouplingMap] = None,
    edge_error: Optional[Dict[Tuple[int, int], float]] = None,
    run_peephole: bool = True,
    restarts: int = 1,
) -> CompilationResult:
    """Compile a Pauli IR program with Paulihedral.

    Parameters
    ----------
    program:
        The Pauli IR input.
    backend:
        ``"ft"`` or ``"sc"``.
    scheduler:
        ``"gco"``, ``"do"`` or ``"none"``; defaults to the backend's
        preferred pass (``gco`` for FT, ``do`` for SC).
    coupling:
        Device coupling map; required for the SC backend.
    edge_error:
        Optional per-edge error rates guiding SC path selection.
    run_peephole:
        Apply the generic peephole cleanup after synthesis (the paper always
        runs a generic compiler after Paulihedral).
    restarts:
        SC backend only: number of jittered initial-placement attempts; the
        lowest-CNOT result wins (deterministic, first attempt unjittered).
    """
    if backend == "ft":
        result = ft_compile(
            program, scheduler=scheduler or "gco", run_peephole=run_peephole
        )
        return CompilationResult(
            circuit=result.circuit,
            backend="ft",
            scheduler=scheduler or "gco",
            emitted_terms=result.emitted_terms,
        )
    if backend == "sc":
        if coupling is None:
            raise ValueError("the SC backend requires a coupling map")
        result = sc_compile(
            program,
            coupling,
            scheduler=scheduler or "do",
            edge_error=edge_error,
            run_peephole=run_peephole,
            restarts=restarts,
        )
        return CompilationResult(
            circuit=result.circuit,
            backend="sc",
            scheduler=scheduler or "do",
            emitted_terms=result.emitted_terms,
            initial_layout=result.initial_layout,
            final_layout=result.final_layout,
        )
    raise ValueError(f"unknown backend {backend!r}; expected 'ft' or 'sc'")
