"""Top-level Paulihedral entry point.

``compile_program`` wires the technology-independent scheduling passes
(Section 4) to the technology-dependent block-wise optimization passes
(Section 5), mirroring Figure 1's flow:

.. code-block:: text

    Pauli IR --(scheduling)--> layers --(block-wise opt)--> gate sequence

Backends:

* ``"ft"`` — fault-tolerant: all-to-all connectivity, gate-cancellation
  maximizing synthesis (Algorithm 2); default scheduler ``gco``.
* ``"sc"`` — superconducting: coupling-constrained tree-embedded synthesis
  (Algorithm 3); requires a coupling map; default scheduler ``do``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..circuit import QuantumCircuit
from ..ir import PauliProgram
from ..pauli import PauliString
from ..static.invariants import debug_check
from ..transpile import CouplingMap, DeviceSpec, Layout, get_device
from .cancellation import CompilationCancelled, check_cancel
from .ft_backend import ft_compile
from .sc_backend import sc_compile

if TYPE_CHECKING:  # deferred at runtime: repro.service imports this module
    from ..noise.model import NoiseModel
    from ..service.cache import CompileCache
    from ..verify import VerificationReport

__all__ = [
    "CompilationCancelled",
    "CompilationResult",
    "compile_program",
    "resolve_target",
]


def resolve_target(
    coupling: Optional[CouplingMap] = None,
    edge_error: Optional[Dict[Tuple[int, int], float]] = None,
    device: Optional["DeviceSpec | str"] = None,
    noise_model: Optional["NoiseModel"] = None,
) -> Tuple[
    Optional[CouplingMap],
    Optional[Dict[Tuple[int, int], float]],
    Optional["NoiseModel"],
    Optional[str],
]:
    """Resolve device/noise shorthand into concrete compile inputs.

    Returns ``(coupling, edge_error, noise_model, device_name)``.  Shared
    by :func:`compile_program` and the batch layer's fingerprinting so the
    cache key and the actual compilation can never disagree about what a
    ``device`` means.
    """
    device_name: Optional[str] = None
    if device is not None:
        spec = get_device(device) if isinstance(device, str) else device
        if coupling is not None:
            raise ValueError("pass either a device or a coupling map, not both")
        coupling = spec.coupling
        device_name = spec.name
        if noise_model is None:
            noise_model = spec.noise_model
    if noise_model is not None and edge_error is None:
        edge_error = noise_model.edge_error_map()
    return coupling, edge_error, noise_model, device_name


@dataclass
class CompilationResult:
    """Everything a caller needs from one Paulihedral compilation."""

    circuit: QuantumCircuit
    backend: str
    scheduler: str
    emitted_terms: List[Tuple[PauliString, float]] = field(default_factory=list)
    initial_layout: Optional[Layout] = None
    final_layout: Optional[Layout] = None
    #: Content hash of (program, options); set when compiled with a cache.
    fingerprint: Optional[str] = None
    #: True when this result was served from a cache rather than compiled.
    from_cache: bool = False
    #: Pauli-propagation report; set when compiled with ``verify=True``.
    verification: Optional["VerificationReport"] = None
    #: Registry name of the target device; set when compiled with one.
    device: Optional[str] = None
    #: Quality tier this result was compiled at ("full" unless a
    #: ``peephole_level`` override lowered the effort).  Execution
    #: effort only — never part of the cache fingerprint.
    tier: str = "full"
    #: Provenance: the shipped pipeline this compilation corresponds to
    #: (e.g. ``"ft-gco-opt3"``); ``None`` for results built by hand.
    pipeline: Optional[str] = None

    @property
    def metrics(self) -> Dict[str, int]:
        """Paper metrics: CNOT / single-qubit / total gate count and depth."""
        return {
            "cnot": self.circuit.cnot_count,
            "single": self.circuit.single_qubit_count,
            "total": self.circuit.cnot_count + self.circuit.single_qubit_count,
            "depth": self.circuit.depth(),
        }

    def esp(
        self,
        noise_model: "NoiseModel",
        measured_qubits: Optional[List[int]] = None,
        strict: Optional[bool] = None,
    ) -> float:
        """Estimated Success Probability of the compiled circuit.

        ``strict`` defaults per backend: SC circuits are routed, so every
        operand must be calibrated (strict); FT circuits act on virtual
        all-to-all edges with no physical calibration, so they score
        lenient (uncalibrated operands are error-free).  See
        :func:`repro.noise.model.esp`.
        """
        # Deferred import: repro.noise sits above the core compiler.
        from ..noise.model import esp as _esp

        if strict is None:
            strict = self.backend == "sc"
        return _esp(
            self.circuit, noise_model,
            measured_qubits=measured_qubits, strict=strict,
        )


def compile_program(
    program: PauliProgram,
    backend: str = "ft",
    scheduler: Optional[str] = None,
    coupling: Optional[CouplingMap] = None,
    edge_error: Optional[Dict[Tuple[int, int], float]] = None,
    run_peephole: bool = True,
    restarts: int = 1,
    device: Optional["DeviceSpec | str"] = None,
    noise_model: Optional["NoiseModel"] = None,
    cache: Optional["CompileCache"] = None,
    verify: bool = False,
    cancel: Optional[Callable[[], bool]] = None,
    peephole_level: Optional[int] = None,
) -> CompilationResult:
    """Compile a Pauli IR program with Paulihedral.

    Parameters
    ----------
    program:
        The Pauli IR input.
    backend:
        ``"ft"`` or ``"sc"``.
    scheduler:
        ``"gco"``, ``"do"``, ``"none"``, or a streaming variant
        ``"gco-stream"`` / ``"do-stream"`` (bounded-memory scheduling for
        10^5+-term programs, see :mod:`repro.core.streaming`); defaults
        to the backend's preferred pass (``gco`` for FT, ``do`` for SC).
    coupling:
        Device coupling map; required for the SC backend.  Mutually
        exclusive with ``device``, which bundles its own.
    edge_error:
        Optional per-edge error rates guiding SC path selection; defaults
        to the noise model's edge map when one is supplied.
    device:
        A :class:`~repro.transpile.DeviceSpec` or a registry name
        (``repro.transpile.get_device``).  Supplies both the coupling map
        and the noise model, names the compile target for the cache
        fingerprint, and lands on ``result.device``.
    noise_model:
        Calibration for reliability-weighted path selection and ESP
        reporting; part of the cache identity (quantized rates).
        Defaults to the device's model when ``device`` is given.
    run_peephole:
        Apply the generic peephole cleanup after synthesis (the paper always
        runs a generic compiler after Paulihedral).
    restarts:
        SC backend only: number of jittered initial-placement attempts; the
        lowest-CNOT result wins (deterministic, first attempt unjittered).
    cache:
        Optional :class:`~repro.service.cache.CompileCache`.  The program
        and options are content-fingerprinted; on a hit the stored artifact
        is deserialized and returned (``result.from_cache`` is ``True``),
        on a miss the compilation runs and its artifact is stored.
    verify:
        Run the Pauli-propagation verifier (:mod:`repro.verify`) on the
        result — including cache hits, so a corrupted artifact can never
        be served silently.  The report lands on ``result.verification``;
        a failed check raises :class:`~repro.verify.VerificationError`.
        Verification is a check, not a compile option, so it does not
        enter the cache fingerprint.
    cancel:
        Optional zero-argument callable polled at pass boundaries (after
        scheduling, between SC restarts, before peephole); returning
        ``True`` raises :class:`CompilationCancelled`.  Cancellation is a
        caller-liveness signal, not a compile option — it never enters
        the fingerprint.  A cache hit is returned even when ``cancel``
        already fires (serving it is cheaper than checking).
    peephole_level:
        Execution-effort override for the speculative fast tier.  ``None``
        (the default) runs the full peephole fixpoint when
        ``run_peephole`` is set; an integer runs only the level's rule
        subset (see :func:`repro.static.contracts.rules_for_level`), so
        level 1 is cancel+merge only.  Like ``cancel``, this is effort
        and not identity: it never enters the fingerprint.  A result
        produced at a reduced level carries ``tier="opt<level>"`` and is
        stored tier-aware (:meth:`CompileCache.put_tiered`), so it can
        only ever be *upgraded*, never served in place of a stored
        higher-tier artifact — a cache hit below the requested tier is
        treated as a miss and recompiled.
    """
    coupling, edge_error, noise_model, device_name = resolve_target(
        coupling=coupling, edge_error=edge_error,
        device=device, noise_model=noise_model,
    )

    if backend == "ft":
        resolved_scheduler = scheduler or "gco"
    elif backend == "sc":
        if coupling is None:
            raise ValueError("the SC backend requires a coupling map")
        resolved_scheduler = scheduler or "do"
    else:
        raise ValueError(f"unknown backend {backend!r}; expected 'ft' or 'sc'")

    # Effort level actually executed: 0 with peephole off, the override
    # when one is given, else the full fixpoint (level 3).
    if not run_peephole:
        effort = 0
    elif peephole_level is None:
        effort = 3
    else:
        effort = max(0, min(3, int(peephole_level)))
    tier = "full" if effort >= 3 or not run_peephole else f"opt{effort}"

    fingerprint: Optional[str] = None
    if cache is not None:
        # Deferred import: repro.service depends on this module.
        from ..service.artifact import dumps_artifact, loads_artifact, tier_rank
        from ..service.fingerprint import canonical_options, compile_fingerprint

        fingerprint = compile_fingerprint(
            program,
            canonical_options(
                backend=backend,
                scheduler=resolved_scheduler,
                coupling=coupling,
                edge_error=edge_error,
                run_peephole=run_peephole,
                restarts=restarts,
                noise_model=noise_model,
                device=device_name,
            ),
        )
        stored = cache.get(fingerprint)
        if stored is not None:
            try:
                result = loads_artifact(stored)
            except (ValueError, KeyError, TypeError, AttributeError):
                # Stale artifact version or corrupted entry: a cache hit
                # must never be worse than a miss — recompile and overwrite.
                result = None
            if result is not None and tier_rank(result.tier) < tier_rank(tier):
                # The stored artifact is a lower tier than this call wants
                # (e.g. a speculative opt-1 placeholder found by the full
                # background recompile): treat it as a miss.
                result = None
            if result is not None:
                result.fingerprint = fingerprint
                result.from_cache = True
                return _maybe_verify(program, result, verify)

    check_cancel(cancel, "before scheduling")
    debug_check("compile: input program", program=program)

    if backend == "ft":
        ft_result = ft_compile(
            program, scheduler=resolved_scheduler, run_peephole=run_peephole,
            cancel=cancel, peephole_level=peephole_level,
        )
        result = CompilationResult(
            circuit=ft_result.circuit,
            backend="ft",
            scheduler=resolved_scheduler,
            emitted_terms=ft_result.emitted_terms,
            device=device_name,
        )
    else:
        sc_result = sc_compile(
            program,
            coupling,
            scheduler=resolved_scheduler,
            edge_error=edge_error,
            run_peephole=run_peephole,
            restarts=restarts,
            cancel=cancel,
            peephole_level=peephole_level,
        )
        result = CompilationResult(
            circuit=sc_result.circuit,
            backend="sc",
            scheduler=resolved_scheduler,
            emitted_terms=sc_result.emitted_terms,
            initial_layout=sc_result.initial_layout,
            final_layout=sc_result.final_layout,
            device=device_name,
        )
    result.fingerprint = fingerprint
    result.tier = tier
    result.pipeline = f"{backend}-{resolved_scheduler}-opt{effort}"
    if cache is not None:
        if tier == "full":
            cache.put(fingerprint, dumps_artifact(result))
        else:
            # Reduced-tier results publish through the never-downgrade
            # path: a concurrent full compile must not be clobbered by a
            # speculative placeholder.
            cache.put_tiered(fingerprint, dumps_artifact(result), tier)
    return _maybe_verify(program, result, verify)


def _maybe_verify(
    program: PauliProgram, result: CompilationResult, verify: bool
) -> CompilationResult:
    if verify:
        # Deferred import: repro.verify sits above the core compiler.
        from ..verify import verify_result

        result.verification = verify_result(program, result)
        result.verification.raise_if_failed()
    return result
