"""Block-wise optimization for the fault-tolerant backend (Section 5.1).

On the FT backend, mapping overhead is negligible (error correction gives an
effectively all-to-all topology), so the whole game is *gate cancellation*
through adaptive synthesis-plan selection (Algorithm 2).

The pass works in three stages:

1. **String ordering.**  Within each block the strings are re-ordered by
   greedy most-overlap chaining (``most_overlap_sort`` of Algorithm 2), then
   layers are flattened in schedule order.  The greedy chain runs on the
   block's packed :class:`~repro.pauli.symplectic.PauliTable`: each step is
   one vectorized overlap row against all remaining strings instead of a
   Python max() over scalar ``overlap`` calls.
2. **Junction planning.**  Each *junction* (adjacent term pair) is planned
   once, pairwise-consistently: a junction is realized only when *both*
   sides devote their chain's leaf end to the shared operators, so the
   closing gates of one term are the exact inverses of the opening gates of
   the next.  A string has a single leaf end, so realizable junctions form
   an independent set on the junction path graph; :func:`plan_junctions`
   picks the maximum-overlap such set by dynamic programming.  (The old
   one-sided rule — each string aligning with whichever neighbour shares
   more operators — only cancelled a junction when both sides happened to
   pick each other, and its greedy choices were dominated by the DP set.)
3. **Peephole cleanup** to realize the cancellations in the gate counts.

The emitted ``(string, coefficient)`` order is recorded so tests can verify
unitary equivalence against the exact product of exponentials.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..circuit import QuantumCircuit
from ..ir import PauliProgram
from ..pauli import PauliString
from ..pauli.symplectic import PauliTable, popcount
from ..static.invariants import debug_check
from ..transpile import optimize, run_rules
from .cancellation import check_cancel
from .scheduling import Schedule, do_schedule, gco_schedule
from .streaming import is_streaming_scheduler, stream_schedule
from .synthesis import SynthesisPlan, aligned_chain_plan, pauli_rotation_gates

__all__ = [
    "FTResult",
    "most_overlap_sort",
    "plan_junctions",
    "ft_synthesize",
    "ft_compile",
]

#: Above this many terms, the greedy chain computes overlap rows on demand
#: instead of materializing the full (m, m) overlap matrix.
_MATRIX_LIMIT = 4096


class FTResult:
    """Output of the FT pass: circuit plus the emitted term order."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        emitted_terms: List[Tuple[PauliString, float]],
    ):
        self.circuit = circuit
        self.emitted_terms = emitted_terms


def most_overlap_sort(strings: List[Tuple[PauliString, float]]) -> List[Tuple[PauliString, float]]:
    """Greedy chain ordering: start from the first string, repeatedly append
    the remaining string sharing the most operators with the current tail.
    (Algorithm 2's ``most_overlap_sort``, on the vectorized overlap kernel.)"""
    if len(strings) <= 2:
        return list(strings)
    table = PauliTable.from_strings([string for string, _ in strings])
    m = table.num_strings
    order = [0]
    if m <= _MATRIX_LIMIT:
        # Dense path: one pairwise matrix, then each greedy step is a row
        # argmax; consumed strings have their whole column knocked to -1.
        matrix = table.overlap_matrix()
        matrix[:, 0] = -1
        for _ in range(m - 1):
            # argmax returns the first maximum, matching max() over the
            # remaining list in its original order.
            best = int(np.argmax(matrix[order[-1]]))
            order.append(best)
            matrix[:, best] = -1
    else:
        # Huge blocks: compute one overlap row per step instead of holding
        # an (m, m) matrix.
        alive = np.ones(m, dtype=bool)
        alive[0] = False
        for _ in range(m - 1):
            row = np.where(alive, table.overlaps(order[-1]), -1)
            best = int(np.argmax(row))
            order.append(best)
            alive[best] = False
    return [strings[i] for i in order]


def _flatten_schedule(
    schedule: Schedule, release: bool = False
) -> List[Tuple[PauliString, float]]:
    """Flatten a schedule into an ordered term list with per-block
    most-overlap string ordering.

    Accepts any layer iterable, including the incremental iterators from
    :mod:`repro.core.streaming`; with ``release=True`` each block's
    memoized view is dropped as soon as its terms are extracted, so a
    streamed million-term schedule never accumulates realized views.
    """
    terms: List[Tuple[PauliString, float]] = []
    for layer in schedule:
        for block in layer:
            block_terms = [
                (ws.string, ws.weight * block.parameter)
                for ws in block
                if not ws.string.is_identity
            ]
            terms.extend(most_overlap_sort(block_terms))
            if release:
                block.release_view()
    return terms


def plan_junctions(strings: List[PauliString]) -> List[Optional[int]]:
    """Assign each string the neighbour index its chain plan aligns with.

    Junction ``j`` sits between ``strings[j]`` and ``strings[j + 1]`` and
    cancels only when both sides put their shared operators at the leaf end
    of their chains — each string can do that for at most one junction, so
    the chosen junctions must be pairwise non-adjacent.  This picks the
    best such independent set by dynamic programming on the junction path,
    weighting each junction by the gates it actually cancels: ``2 (s - 1)``
    CNOTs for ``s`` shared operators (the leaf chain's edges), then
    ``2 b`` basis-change gates for ``b`` shared X/Y operators as a
    tie-break, so the CNOT count can never lose to any one-junction-per-
    string scheme (the legacy one-sided rule realizes an independent set
    too, so its cancellation total is dominated).  Returns per string the
    aligned neighbour's index (``i - 1``, ``i + 1``, or ``None``).
    """
    m = len(strings)
    aligned: List[Optional[int]] = [None] * m
    if m < 2:
        return aligned
    table = PauliTable.from_strings(strings)
    shared = table.consecutive_shared_masks()
    cnot_gain = 2 * np.maximum(popcount(shared) - 1, 0)
    basis_gain = 2 * popcount(shared & table.x[:-1])  # X/Y <=> x-bit set

    # dp[j] = lexicographic-max (cancelled CNOTs, cancelled basis gates)
    # over non-adjacent subsets of junctions 0..j.
    zero = (0, 0)
    gains = [
        (int(c), int(b)) if c + b > 0 else None
        for c, b in zip(cnot_gain, basis_gain)
    ]
    dp: List[Tuple[int, int]] = [zero] * (m - 1)
    for j in range(m - 1):
        skip = dp[j - 1] if j >= 1 else zero
        if gains[j] is None:
            dp[j] = skip
            continue
        prev2 = dp[j - 2] if j >= 2 else zero
        join = (prev2[0] + gains[j][0], prev2[1] + gains[j][1])
        dp[j] = max(skip, join)
    j = m - 2
    while j >= 0:
        if gains[j] is not None:
            prev2 = dp[j - 2] if j >= 2 else zero
            join = (prev2[0] + gains[j][0], prev2[1] + gains[j][1])
            # Prefer taking the junction on DP ties: equal cancellation
            # total, but one more junction actually realized.
            if dp[j] == join:
                aligned[j] = j + 1
                aligned[j + 1] = j
                j -= 2
                continue
        j -= 1
    return aligned


def ft_synthesize(
    terms: List[Tuple[PauliString, float]],
    num_qubits: int,
    junction_policy: str = "paired",
) -> QuantumCircuit:
    """Adaptive synthesis of an ordered term list (Algorithm 2 cores).

    ``junction_policy`` selects the alignment planner: ``"paired"`` (the
    default) plans every junction once, pairwise-consistently, via
    :func:`plan_junctions`; ``"onesided"`` is the legacy rule where each
    string independently aligns with its higher-overlap neighbour (kept for
    ablation — it only cancels a junction when both sides happen to pick
    each other).
    """
    strings = [string for string, _ in terms]
    if junction_policy == "paired":
        plans = _paired_plans(strings)
    elif junction_policy == "onesided":
        plans = _onesided_plans(strings)
    else:
        raise ValueError(f"unknown junction policy {junction_policy!r}")
    circuit = QuantumCircuit(num_qubits)
    for (string, coefficient), plan in zip(terms, plans):
        circuit.extend(pauli_rotation_gates(string, -2.0 * coefficient, plan))
    return circuit


def _paired_plans(strings: List[PauliString]) -> List[Optional[SynthesisPlan]]:
    """Pairwise-consistent plans, guaranteed no worse than the one-sided
    rule's.

    The DP's one-junction-per-string model undercounts when adjacent
    junctions' shared sets nest (a single leaf prefix then serves both), so
    both candidate plan sets are scored with the exact junction-prefix
    cancellation predictor and the better one is kept (ties go to the
    pairwise DP plans).
    """
    dp_plans = _dp_plans(strings)
    os_plans = _onesided_plans(strings)
    if _predicted_cancellation(os_plans, strings) > _predicted_cancellation(
        dp_plans, strings
    ):
        return os_plans
    return dp_plans


def _dp_plans(strings: List[PauliString]) -> List[Optional[SynthesisPlan]]:
    aligned = plan_junctions(strings)
    plans: List[Optional[SynthesisPlan]] = []
    for idx, k in enumerate(aligned):
        prev_string = strings[idx - 1] if idx > 0 else None
        next_string = strings[idx + 1] if idx + 1 < len(strings) else None
        if k is not None:
            primary = strings[k]
            # The other neighbour orders the rest of the chain (free: the
            # junction prefix is untouched).
            secondary = prev_string if k == idx + 1 else next_string
        else:
            # Leaf end not devoted to any planned junction: fall back to
            # the one-sided rule so nested shared sets still line up.
            primary = _better_neighbor(strings[idx], prev_string, next_string)
            secondary = None
            if primary is not None:
                secondary = prev_string if primary is next_string else next_string
        plans.append(_plan_for(strings[idx], primary, secondary))
    return plans


def _onesided_plans(strings: List[PauliString]) -> List[Optional[SynthesisPlan]]:
    plans: List[Optional[SynthesisPlan]] = []
    for idx, string in enumerate(strings):
        prev_string = strings[idx - 1] if idx > 0 else None
        next_string = strings[idx + 1] if idx + 1 < len(strings) else None
        plans.append(
            _plan_for(string, _better_neighbor(string, prev_string, next_string))
        )
    return plans


def _plan_order(plan: Optional[SynthesisPlan]) -> List[int]:
    """Chain order (leaf to root) realized by a plan."""
    if plan is None:
        return []
    if not plan.edges:
        return [plan.root]
    return [plan.edges[0][0]] + [target for _, target in plan.edges]


def _predicted_cancellation(
    plans: List[Optional[SynthesisPlan]], strings: List[PauliString]
) -> Tuple[int, int]:
    """Exact ``(CNOTs, basis gates)`` the peephole pass cancels at the
    junctions of a plan set.

    Junction ``j`` cancels along the longest common *prefix* of the two
    chain orders whose qubits carry identical operators on both sides:
    ``2 (p - 1)`` CNOTs (the prefix chain's edges, closed by one string and
    reopened by the next) plus two basis-change gates per X/Y prefix qubit.
    """
    total_cnot = 0
    total_basis = 0
    for j in range(len(plans) - 1):
        left = _plan_order(plans[j])
        right = _plan_order(plans[j + 1])
        shared = set(strings[j].shared_support(strings[j + 1]))
        prefix = 0
        for a, b in zip(left, right):
            if a != b or a not in shared:
                break
            prefix += 1
        if prefix:
            total_cnot += 2 * (prefix - 1)
            total_basis += 2 * sum(
                1 for q in left[:prefix] if strings[j].code_at(q) & 1
            )
    return total_cnot, total_basis


def _plan_for(
    string: PauliString,
    neighbor: Optional[PauliString],
    secondary: Optional[PauliString] = None,
) -> Optional[SynthesisPlan]:
    if string.is_identity:
        return None  # emits no gates
    return aligned_chain_plan(string, neighbor, secondary)


def _better_neighbor(
    string: PauliString,
    prev_string: Optional[PauliString],
    next_string: Optional[PauliString],
) -> Optional[PauliString]:
    prev_overlap = string.overlap(prev_string) if prev_string is not None else 0
    next_overlap = string.overlap(next_string) if next_string is not None else 0
    if prev_overlap <= 0 and next_overlap <= 0:
        # No operator shared with either neighbour: aligning is pointless,
        # so keep the canonical ascending chain (a zero-overlap neighbour
        # must not win just because the other side is missing).
        return None
    return prev_string if prev_overlap >= next_overlap else next_string


def ft_compile(
    program: PauliProgram,
    scheduler: str = "gco",
    run_peephole: bool = True,
    junction_policy: str = "paired",
    cancel: Optional[Callable[[], bool]] = None,
    peephole_level: Optional[int] = None,
) -> FTResult:
    """Full FT flow: schedule, adaptively synthesize, peephole-optimize.

    ``scheduler`` is ``"gco"`` (gate-count-oriented, the FT default),
    ``"do"`` (depth-oriented), ``"none"`` (program order, for ablations),
    or a streaming variant ``"gco-stream"`` / ``"do-stream"`` that
    schedules through :mod:`repro.core.streaming` in O(window) profile
    memory and releases each block's view after its terms are flattened
    — the path for 10^5-10^6-term programs.  ``junction_policy`` is
    forwarded to :func:`ft_synthesize`; ``cancel`` is polled between
    passes (see :mod:`repro.core.cancellation`).  ``peephole_level``
    (``None`` = full fixpoint) restricts the cleanup to the level's rule
    subset — the speculative fast tier compiles at level 1
    (cancel+merge, no commute/fuse search).
    """
    streaming = is_streaming_scheduler(scheduler)
    if streaming:
        schedule = stream_schedule(program, scheduler)
    elif scheduler == "gco":
        schedule = gco_schedule(program)
    elif scheduler == "do":
        schedule = do_schedule(program)
    elif scheduler == "none":
        schedule = [[block] for block in program]
    else:
        raise ValueError(f"unknown scheduler {scheduler!r}")
    check_cancel(cancel, "after scheduling")
    debug_check("ft: schedule", program=program)
    terms = _flatten_schedule(schedule, release=streaming)
    circuit = ft_synthesize(terms, program.num_qubits, junction_policy=junction_policy)
    check_cancel(cancel, "after synthesis")
    debug_check("ft: synthesize", tape=circuit.tape)
    if run_peephole:
        circuit = _peephole(circuit, peephole_level)
        debug_check("ft: peephole", tape=circuit.tape)
    return FTResult(circuit, terms)


def _peephole(
    circuit: QuantumCircuit, level: Optional[int]
) -> QuantumCircuit:
    """Full fixpoint at ``level=None``/``>=3``, else the level's subset."""
    if level is None or level >= 3:
        return optimize(circuit)
    if level <= 0:
        return circuit
    out, _ = run_rules(
        circuit, cancel=True, merge=True, commute=level >= 2, fuse=False
    )
    return out
