"""Block-wise optimization for the fault-tolerant backend (Section 5.1).

On the FT backend, mapping overhead is negligible (error correction gives an
effectively all-to-all topology), so the whole game is *gate cancellation*
through adaptive synthesis-plan selection (Algorithm 2).

The pass works in three stages:

1. **String ordering.**  Within each block the strings are re-ordered by
   greedy most-overlap chaining (``most_overlap_sort`` of Algorithm 2), then
   layers are flattened in schedule order.  Layer pairing by overlap
   (Algorithm 2 lines 1-5) decides *which junctions receive overlap-aware
   synthesis*; because this implementation plans every junction adaptively
   (each string aligns with whichever neighbour shares more operators —
   Algorithm 2's left-vs-right-neighbour rule), the pairing step is subsumed
   while preserving its effect.
2. **Adaptive synthesis.**  Each string gets an aligned chain plan that puts
   the operators shared with the chosen neighbour at the leaf end of the
   CNOT chain, so junction gates are exact inverses.
3. **Peephole cleanup** to realize the cancellations in the gate counts.

The emitted ``(string, coefficient)`` order is recorded so tests can verify
unitary equivalence against the exact product of exponentials.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..circuit import QuantumCircuit
from ..ir import PauliProgram
from ..pauli import PauliString
from ..transpile import optimize
from .scheduling import Schedule, do_schedule, gco_schedule
from .synthesis import aligned_chain_plan, pauli_rotation_gates

__all__ = ["FTResult", "most_overlap_sort", "ft_synthesize", "ft_compile"]


class FTResult:
    """Output of the FT pass: circuit plus the emitted term order."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        emitted_terms: List[Tuple[PauliString, float]],
    ):
        self.circuit = circuit
        self.emitted_terms = emitted_terms


def most_overlap_sort(strings: List[Tuple[PauliString, float]]) -> List[Tuple[PauliString, float]]:
    """Greedy chain ordering: start from the first string, repeatedly append
    the remaining string sharing the most operators with the current tail.
    (Algorithm 2's ``most_overlap_sort``.)"""
    if len(strings) <= 2:
        return list(strings)
    remaining = list(strings)
    ordered = [remaining.pop(0)]
    while remaining:
        tail = ordered[-1][0]
        best = max(remaining, key=lambda term: tail.overlap(term[0]))
        remaining.remove(best)
        ordered.append(best)
    return ordered


def _flatten_schedule(schedule: Schedule) -> List[Tuple[PauliString, float]]:
    """Flatten a schedule into an ordered term list with per-block
    most-overlap string ordering."""
    terms: List[Tuple[PauliString, float]] = []
    for layer in schedule:
        for block in layer:
            block_terms = [
                (ws.string, ws.weight * block.parameter)
                for ws in block
                if not ws.string.is_identity
            ]
            terms.extend(most_overlap_sort(block_terms))
    return terms


def ft_synthesize(terms: List[Tuple[PauliString, float]], num_qubits: int) -> QuantumCircuit:
    """Adaptive synthesis of an ordered term list (Algorithm 2 cores).

    Each string aligns its chain plan with whichever neighbour (previous or
    next term) shares more operators, maximizing junction cancellation.
    """
    circuit = QuantumCircuit(num_qubits)
    for idx, (string, coefficient) in enumerate(terms):
        prev_string = terms[idx - 1][0] if idx > 0 else None
        next_string = terms[idx + 1][0] if idx + 1 < len(terms) else None
        neighbor = _better_neighbor(string, prev_string, next_string)
        plan = aligned_chain_plan(string, neighbor)
        circuit.extend(pauli_rotation_gates(string, -2.0 * coefficient, plan))
    return circuit


def _better_neighbor(
    string: PauliString,
    prev_string: Optional[PauliString],
    next_string: Optional[PauliString],
) -> Optional[PauliString]:
    prev_overlap = string.overlap(prev_string) if prev_string is not None else -1
    next_overlap = string.overlap(next_string) if next_string is not None else -1
    if prev_overlap < 0 and next_overlap < 0:
        return None
    return prev_string if prev_overlap >= next_overlap else next_string


def ft_compile(
    program: PauliProgram,
    scheduler: str = "gco",
    run_peephole: bool = True,
) -> FTResult:
    """Full FT flow: schedule, adaptively synthesize, peephole-optimize.

    ``scheduler`` is ``"gco"`` (gate-count-oriented, the FT default),
    ``"do"`` (depth-oriented) or ``"none"`` (program order, for ablations).
    """
    if scheduler == "gco":
        schedule = gco_schedule(program)
    elif scheduler == "do":
        schedule = do_schedule(program)
    elif scheduler == "none":
        schedule = [[block] for block in program]
    else:
        raise ValueError(f"unknown scheduler {scheduler!r}")
    terms = _flatten_schedule(schedule)
    circuit = ft_synthesize(terms, program.num_qubits)
    if run_peephole:
        circuit = optimize(circuit)
    return FTResult(circuit, terms)
