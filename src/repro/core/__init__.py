"""Paulihedral core: synthesis, scheduling, and backend optimization passes."""

from .cancellation import CompilationCancelled, check_cancel
from .compiler import CompilationResult, compile_program, resolve_target
from .controlled import (
    controlled_pauli_evolution_circuit,
    controlled_pauli_rotation_gates,
    controlled_program_circuit,
    controlled_rz_gates,
)
from .ft_backend import (
    FTResult,
    ft_compile,
    ft_synthesize,
    most_overlap_sort,
    plan_junctions,
)
from .passes import PassPipeline, PipelineResult, ft_pipeline, sc_pipeline
from .sc_backend import EmbeddedTree, SCResult, SCSynthesizer, sc_compile
from .trotter import (
    symmetric_trotterize,
    trotter_error_bound,
    trotter_steps_for,
    trotterize,
)
from .scheduling import (
    LayerProfile,
    Schedule,
    do_schedule,
    gco_schedule,
    layer_operator_overlap,
    schedule_depth_estimate,
    schedule_to_program,
)
from .streaming import (
    DEFAULT_WINDOW,
    stream_schedule,
    streaming_do_schedule,
    streaming_gco_schedule,
)
from .synthesis import (
    SynthesisPlan,
    aligned_chain_plan,
    chain_plan,
    naive_program_circuit,
    pauli_evolution_circuit,
    pauli_rotation_gates,
)

__all__ = [
    "CompilationCancelled",
    "CompilationResult",
    "EmbeddedTree",
    "FTResult",
    "PassPipeline",
    "PipelineResult",
    "SCResult",
    "SCSynthesizer",
    "Schedule",
    "SynthesisPlan",
    "aligned_chain_plan",
    "chain_plan",
    "check_cancel",
    "compile_program",
    "resolve_target",
    "controlled_pauli_evolution_circuit",
    "controlled_pauli_rotation_gates",
    "controlled_program_circuit",
    "controlled_rz_gates",
    "DEFAULT_WINDOW",
    "LayerProfile",
    "do_schedule",
    "ft_compile",
    "ft_pipeline",
    "ft_synthesize",
    "gco_schedule",
    "layer_operator_overlap",
    "most_overlap_sort",
    "naive_program_circuit",
    "pauli_evolution_circuit",
    "pauli_rotation_gates",
    "plan_junctions",
    "sc_pipeline",
    "schedule_depth_estimate",
    "schedule_to_program",
    "stream_schedule",
    "streaming_do_schedule",
    "streaming_gco_schedule",
    "symmetric_trotterize",
    "trotter_error_bound",
    "trotter_steps_for",
    "trotterize",
]
