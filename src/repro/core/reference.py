"""Scalar reference implementations of the scheduler hot paths.

These are the seed's per-byte Python implementations, kept verbatim as
*behavioral oracles*: the vectorized kernels in :mod:`repro.core.scheduling`
and :mod:`repro.core.ft_backend` must produce byte-identical schedules and
orderings.  Tests (hypothesis equivalence) and the kernel micro-benchmark
(``benchmarks/bench_kernels.py``) both import from here so the oracle cannot
drift between the two.

Everything here deliberately avoids the cached :class:`~repro.ir.BlockView`
masks — supports, depths, and profiles are recomputed from the raw strings
on every call, exactly as the seed did.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..ir import PauliBlock, PauliProgram
from ..pauli import PauliString

__all__ = [
    "scalar_most_overlap_sort",
    "scalar_layer_operator_overlap",
    "scalar_do_schedule",
]


def scalar_most_overlap_sort(
    strings: List[Tuple[PauliString, float]],
) -> List[Tuple[PauliString, float]]:
    """Seed ``most_overlap_sort``: greedy chaining via scalar ``overlap``."""
    if len(strings) <= 2:
        return list(strings)
    remaining = list(strings)
    ordered = [remaining.pop(0)]
    while remaining:
        tail = ordered[-1][0]
        best = max(remaining, key=lambda term: tail.overlap(term[0]))
        remaining.remove(best)
        ordered.append(best)
    return ordered


def _operator_profile(blocks: Sequence[PauliBlock]) -> Dict[int, set]:
    """Per-qubit set of non-identity operator labels appearing in ``blocks``."""
    profile: Dict[int, set] = {}
    for block in blocks:
        for ws in block:
            for qubit in ws.string.support:
                profile.setdefault(qubit, set()).add(ws.string[qubit])
    return profile


def scalar_layer_operator_overlap(
    block: PauliBlock, layer: Sequence[PauliBlock]
) -> int:
    """Seed ``layer_operator_overlap``: per-qubit label-set intersection."""
    block_profile = _operator_profile([block])
    layer_profile = _operator_profile(layer)
    return sum(
        1
        for qubit, labels in block_profile.items()
        if labels & layer_profile.get(qubit, set())
    )


def _active_qubits(block: PauliBlock) -> Tuple[int, ...]:
    active = set()
    for ws in block:
        active.update(ws.string.support)
    return tuple(sorted(active))


def _depth_estimate(block: PauliBlock) -> int:
    total = 0
    for ws in block:
        w = ws.string.weight
        if w > 0:
            total += 2 * (w - 1) + 1
    return total


def _sorted_block(block: PauliBlock) -> PauliBlock:
    ordered = sorted(block.strings, key=lambda ws: ws.string.lex_key())
    return PauliBlock(ordered, block.parameter, block.name)


def scalar_do_schedule(program: PauliProgram) -> List[List[PauliBlock]]:
    """Seed depth-oriented scheduler (Algorithm 1), fully scalar."""
    remaining = [_sorted_block(block) for block in program]
    remaining.sort(
        key=lambda b: (
            -len(_active_qubits(b)),
            min(ws.string.lex_key() for ws in b),
        )
    )
    layers: List[List[PauliBlock]] = []
    while remaining:
        if layers:
            primary = max(
                remaining,
                key=lambda b: (
                    scalar_layer_operator_overlap(b, layers[-1]),
                    len(_active_qubits(b)),
                ),
            )
        else:
            primary = remaining[0]
        remaining.remove(primary)
        layer = [primary]
        primary_depth = _depth_estimate(primary)
        primary_qubits = set(_active_qubits(primary))
        column_height: Dict[int, int] = {}
        padded = True
        while padded:
            padded = False
            for candidate in list(remaining):
                qubits = set(_active_qubits(candidate))
                if qubits & primary_qubits:
                    continue
                depth = _depth_estimate(candidate)
                start = max((column_height.get(q, 0) for q in qubits), default=0)
                if start + depth > primary_depth:
                    continue
                layer.append(candidate)
                remaining.remove(candidate)
                for q in qubits:
                    column_height[q] = start + depth
                padded = True
        layers.append(layer)
    return layers
