"""Trotterization: expanding ``exp(iHt)`` into repeated kernel steps.

Paper Figure 3(a): ``exp(iHt) = [prod_j exp(i w_j P_j dt)]^(t/dt) + O(t dt)``.
A :class:`~repro.ir.PauliProgram` with ``parameter = dt`` describes one step;
:func:`trotterize` replicates it, and :func:`trotter_error_bound` gives the
standard first-order commutator bound so callers can pick ``dt``.
"""

from __future__ import annotations

from typing import List

from ..ir import PauliBlock, PauliProgram

__all__ = [
    "trotterize",
    "symmetric_trotterize",
    "trotter_steps_for",
    "trotter_error_bound",
]


def trotterize(step: PauliProgram, num_steps: int, name: str = "") -> PauliProgram:
    """Repeat one Trotter step ``num_steps`` times.

    The result is a program whose blocks are the step's blocks replicated in
    order.

    .. warning::
       The IR's sum semantics (paper Figure 7) describe the *Hamiltonian*,
       not a particular product-formula ordering, so the schedulers are free
       to reorder blocks across step boundaries — including merging all
       ``num_steps`` copies of a term into one rotation, which is exactly a
       single coarse step.  When the *multi-step accuracy* matters (the whole
       point of ``num_steps > 1``), compile with ``scheduler="none"`` so the
       step structure is preserved; junction cancellation between the end of
       one step and the start of the next still applies.
    """
    if num_steps <= 0:
        raise ValueError("num_steps must be positive")
    blocks: List[PauliBlock] = []
    for _ in range(num_steps):
        blocks.extend(step.blocks)
    return PauliProgram(blocks, name=name or f"{step.name}-x{num_steps}")


def symmetric_trotterize(step: PauliProgram, num_steps: int, name: str = "") -> PauliProgram:
    """Second-order (Strang) splitting: each step is the half-parameter
    forward sweep followed by the half-parameter reverse sweep.

    The palindromic structure doubles the junction-cancellation
    opportunities the FT pass exploits — the two middle blocks of every step
    are identical, and step boundaries meet on matching strings.
    """
    if num_steps <= 0:
        raise ValueError("num_steps must be positive")
    forward = [
        PauliBlock(block.strings, parameter=block.parameter / 2.0, name=block.name)
        for block in step.blocks
    ]
    backward = list(reversed(forward))
    blocks: List[PauliBlock] = []
    for _ in range(num_steps):
        blocks.extend(forward)
        blocks.extend(backward)
    return PauliProgram(blocks, name=name or f"{step.name}-strang-x{num_steps}")


def trotter_steps_for(total_time: float, dt: float) -> int:
    """Number of steps to cover ``total_time`` at resolution ``dt``."""
    if dt <= 0:
        raise ValueError("dt must be positive")
    steps = int(round(total_time / dt))
    return max(steps, 1)


def trotter_error_bound(step: PauliProgram, total_time: float, num_steps: int) -> float:
    """First-order Trotter error bound ``(t^2 / 2N) * sum_{j<k} |[H_j, H_k]|``.

    Uses the loose triangle-inequality form
    ``|[H_j, H_k]| <= 2 |w_j| |w_k|`` for non-commuting string pairs, which
    is cheap and sufficient for step-count selection.
    """
    if num_steps <= 0:
        raise ValueError("num_steps must be positive")
    terms = [
        (ws.string, ws.weight * parameter)
        for ws, parameter in step.all_weighted_strings()
    ]
    commutator_sum = 0.0
    for j in range(len(terms)):
        for k in range(j + 1, len(terms)):
            if not terms[j][0].commutes_with(terms[k][0]):
                commutator_sum += 2.0 * abs(terms[j][1]) * abs(terms[k][1])
    return (total_time ** 2 / (2.0 * num_steps)) * commutator_sum
