"""Cooperative cancellation for long-running compilations.

A ``cancel`` callback is a zero-argument callable returning ``True`` once
the caller has abandoned the compile (client disconnected, request timed
out).  The backends poll it at pass boundaries via :func:`check_cancel` —
never mid-pass, so cancellation can only drop whole intermediate results,
and a compile that races past its last checkpoint simply completes.

The callback must be cheap and side-effect free: the gateway's process
workers use an ``os.path.exists`` probe on a flag file, in-process callers
use a ``threading.Event``.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["CompilationCancelled", "check_cancel"]


class CompilationCancelled(RuntimeError):
    """The ``cancel`` callback reported the caller abandoned this compile.

    Raised at pass boundaries (cooperative, never mid-pass), so a partially
    built circuit is simply dropped — nothing is cached and no artifact is
    written.  Long-running services use this so an abandoned request stops
    burning a worker within one pass, not one full compile.
    """


def check_cancel(cancel: Optional[Callable[[], bool]], where: str) -> None:
    """Raise :class:`CompilationCancelled` if ``cancel`` fires; no-op when
    ``cancel`` is ``None``."""
    if cancel is not None and cancel():
        raise CompilationCancelled(f"compile abandoned {where}")
