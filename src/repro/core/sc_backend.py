"""Block-wise optimization for the superconducting backend (Section 5.2).

Algorithm 3 fuses circuit synthesis, SWAP insertion and layout transition.
For each scheduled layer:

1. **Root selection** (line 5) — the primary block's root is the core qubit
   whose physical position sits in the largest connected component of the
   core positions under the *current* mapping, minimizing transition
   overhead from the previous layer.
2. **Region connection** (line 6) — remaining active qubits are pulled into
   the root's component along lowest-error shortest paths; these SWAPs are
   persistent layout transitions.
3. **String synthesis** (lines 8-17) — for every Pauli string, active
   qubits that are still scattered are gathered (``ps[n] != I`` and
   ``ps[np] == I`` -> SWAP toward the region, also persistent), then the
   string is realized as a parity sandwich on a CNOT tree embedded in the
   coupling subgraph of its active nodes: basis changes, leaf-to-root
   CNOTs, the central ``Rz``, and the exact mirror.  No swaps occur inside
   the sandwich, so the mirror is position-stable.
4. **Small-block parallelism** (lines 18-20) — other blocks in the layer
   are synthesized speculatively with all paths forbidden from touching the
   primary block's qubits; if impossible they are deferred to the
   ``remain`` pool, processed at the end in increasing cumulative-distance
   order (lines 21-23).  Deferral is legal because Pauli IR semantics are
   order-free.

The emitted ``(string, coefficient)`` order and the layout history are
recorded so tests can check full unitary equivalence on small devices.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..circuit import Gate, QuantumCircuit
from ..ir import PauliBlock, PauliProgram
from ..pauli import PauliString
from ..static.invariants import debug_check
from ..transpile import (
    CouplingMap,
    Layout,
    dense_initial_layout,
    optimize,
    run_rules,
    validate_routed,
)
from .cancellation import check_cancel
from .scheduling import Schedule, do_schedule, gco_schedule
from .streaming import is_streaming_scheduler, stream_schedule

__all__ = ["SCResult", "EmbeddedTree", "sc_compile", "SCSynthesizer"]

_NO_FORBIDDEN: FrozenSet[int] = frozenset()


class EmbeddedTree:
    """A BFS tree over physical qubits embedded in the coupling map."""

    def __init__(self, root: int, parent: Dict[int, int], depth: Dict[int, int]):
        self.root = root
        self.parent = parent  # node -> parent node (root absent)
        self.depth = depth    # node -> distance from root

    @property
    def nodes(self) -> Set[int]:
        return set(self.depth)

    def nodes_by_depth_desc(self) -> List[int]:
        return sorted(self.depth, key=lambda n: (-self.depth[n], n))

    @classmethod
    def bfs(cls, coupling: CouplingMap, nodes: Sequence[int], root: int) -> "EmbeddedTree":
        node_set = set(nodes)
        if root not in node_set:
            raise ValueError("root must be one of the tree nodes")
        parent: Dict[int, int] = {}
        depth = {root: 0}
        frontier = [root]
        while frontier:
            nxt: List[int] = []
            for node in frontier:
                for nbr in coupling.neighbors(node):
                    if nbr in node_set and nbr not in depth:
                        depth[nbr] = depth[node] + 1
                        parent[nbr] = node
                        nxt.append(nbr)
            frontier = nxt
        if set(depth) != node_set:
            raise ValueError("tree nodes are not connected in the coupling map")
        return cls(root, parent, depth)


class SCResult:
    """Output of the SC pass."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        initial_layout: Layout,
        final_layout: Layout,
        emitted_terms: List[Tuple[PauliString, float]],
        transition_swaps: int,
    ):
        self.circuit = circuit
        self.initial_layout = initial_layout
        self.final_layout = final_layout
        self.emitted_terms = emitted_terms
        self.transition_swaps = transition_swaps


class SCSynthesizer:
    """Stateful Algorithm 3 executor.

    Parameters
    ----------
    coupling:
        Device connectivity.
    edge_error:
        Optional ``{(u, v): error_rate}`` turned into a SWAP reliability
        cost (see :meth:`_edge_cost`) when moving qubits (lowest-error
        path, Algorithm 3 line 6).  Missing edges default to a uniform
        cost of 1.
    """

    def __init__(
        self,
        coupling: CouplingMap,
        edge_error: Optional[Dict[Tuple[int, int], float]] = None,
        rng: Optional["random.Random"] = None,
        release_views: bool = False,
    ):
        self.coupling = coupling
        self._edge_error = edge_error or {}
        self._rng = rng
        self._release_views = release_views

    # -- public ---------------------------------------------------------
    def run(self, schedule: Schedule, num_logical: int) -> SCResult:
        initial_layout = self._interaction_aware_layout(schedule, num_logical)
        self.layout = initial_layout.copy()
        self.circuit = QuantumCircuit(self.coupling.num_qubits)
        self.emitted: List[Tuple[PauliString, float]] = []
        self.transition_swaps = 0

        remain: List[PauliBlock] = []
        for layer in schedule:
            primary = layer[0]
            self._process_block(primary, _NO_FORBIDDEN)
            primary_region = frozenset(
                self.layout.physical(q) for q in primary.active_qubits
            )
            if self._release_views:
                primary.release_view()
            for small in layer[1:]:
                if self._try_parallel_block(small, primary_region):
                    if self._release_views:
                        small.release_view()
                else:
                    remain.append(small)

        while remain:
            block = min(remain, key=self._cumulative_distance)
            remain.remove(block)
            self._process_block(block, _NO_FORBIDDEN)
            if self._release_views:
                block.release_view()

        return SCResult(
            self.circuit,
            initial_layout,
            self.layout.copy(),
            self.emitted,
            self.transition_swaps,
        )

    # -- initial placement --------------------------------------------------
    def _interaction_aware_layout(self, schedule: Schedule, num_logical: int) -> Layout:
        """Initial mapping onto the most connected subgraph, interaction-first.

        Refines Algorithm 3 line 1: logical qubits are placed inside the
        densest device region in order of interaction weight, each next to
        the already-placed qubits it couples with most, so that early
        strings need no gather swaps at all.
        """
        interactions: Dict[Tuple[int, int], float] = {}
        for layer in schedule:
            for block in layer:
                for ws in block:
                    support = ws.string.support
                    for i in range(len(support)):
                        for j in range(i + 1, len(support)):
                            pair = (support[i], support[j])
                            interactions[pair] = interactions.get(pair, 0.0) + 1.0
        if not interactions:
            return dense_initial_layout(self.coupling, num_logical)

        region = dense_initial_layout(self.coupling, num_logical).physical_qubits()
        free = set(region)
        weight_of = {q: 0.0 for q in range(num_logical)}
        # Logical-qubit adjacency lists: the placement loops below query
        # "which placed qubits does q couple with" per candidate, and
        # scanning the full interaction dict each time is
        # O(n^2 * |interactions|) — fatal at hundreds of qubits.  The
        # adjacency form makes each query O(degree).
        adjacency: Dict[int, List[Tuple[int, float]]] = {
            q: [] for q in range(num_logical)
        }
        for (a, b), w in interactions.items():
            weight_of[a] += w
            weight_of[b] += w
            adjacency[a].append((b, w))
            adjacency[b].append((a, w))

        placed: Dict[int, int] = {}
        order = sorted(range(num_logical), key=lambda q: -weight_of[q])
        anchor = self._pick(order[:3]) if self._rng else order[0]
        start_candidates = sorted(
            free,
            key=lambda p: -sum(1 for n in self.coupling.neighbors(p) if n in free),
        )
        start = self._pick(start_candidates[:3]) if self._rng else start_candidates[0]
        placed[anchor] = start
        free.discard(start)
        unplaced = [q for q in order if q != anchor]
        while unplaced:
            # Next logical: the one most coupled to already-placed qubits.
            def coupling_to_placed(q: int) -> float:
                return sum(w for other, w in adjacency[q] if other in placed)

            logical = max(unplaced, key=lambda q: (coupling_to_placed(q), weight_of[q]))
            unplaced.remove(logical)
            placed_neighbors = [
                (placed[other], w)
                for other, w in adjacency[logical]
                if other in placed
            ]

            def placement_cost(p: int) -> float:
                return sum(
                    w * self.coupling.distance(p, position)
                    for position, w in placed_neighbors
                )

            ranked = sorted(free, key=placement_cost)
            best = self._pick(ranked[:2]) if self._rng else ranked[0]
            placed[logical] = best
            free.discard(best)
        return Layout(placed)

    def _pick(self, candidates):
        return self._rng.choice(candidates)

    # -- block processing -------------------------------------------------
    def _process_block(self, block: PauliBlock, forbidden: FrozenSet[int]) -> None:
        """Connect the block's active region, then synthesize its strings."""
        positions = {self.layout.physical(q) for q in block.active_qubits}
        if positions & forbidden:
            raise ValueError("block overlaps a protected region")
        root = self._select_root(block)
        seed = set(
            self.coupling.connected_component_within(root, sorted(positions))
        )
        self._gather(positions, forbidden, seed=seed)
        self._synthesize_block(block, forbidden)

    def _try_parallel_block(self, block: PauliBlock, protected: FrozenSet[int]) -> bool:
        """Speculatively synthesize a small block without touching the
        primary block's qubits; roll back and defer on failure."""
        recorded = len(self.circuit)
        layout_before = self.layout.copy()
        emitted_before = len(self.emitted)
        swaps_before = self.transition_swaps
        try:
            self._process_block(block, protected)
            return True
        except ValueError:
            self.circuit.truncate(recorded)
            self.layout = layout_before
            del self.emitted[emitted_before:]
            self.transition_swaps = swaps_before
            return False

    def _select_root(self, block: PauliBlock) -> int:
        """Root = core qubit whose physical position lies in the largest
        connected component of the core positions (Algorithm 3 line 5)."""
        candidates = list(block.core_qubits) or list(block.active_qubits)
        positions = [self.layout.physical(q) for q in candidates]
        return max(
            positions,
            key=lambda p: (
                len(self.coupling.connected_component_within(p, positions)),
                self.coupling.degree(p),
                -p,
            ),
        )

    # -- qubit movement ----------------------------------------------------
    def _gather(
        self,
        active: Set[int],
        forbidden: FrozenSet[int],
        seed: Optional[Set[int]] = None,
    ) -> None:
        """Persistently SWAP active qubits until they form one connected
        component of the coupling graph.

        ``active`` is mutated to the final positions.  Each round pulls the
        nearest outside qubit into the sink component along the cheapest
        (error-weighted) path.  ``seed`` selects the initial sink (defaults
        to the largest component).  Raises ``ValueError`` when ``forbidden``
        nodes make connection impossible.
        """
        if len(active) <= 1:
            return
        graph = self._allowed_graph(forbidden, keep=active)
        while True:
            components = list(nx.connected_components(graph.subgraph(active)))
            if len(components) <= 1:
                return
            if seed:
                sink = next(
                    (set(c) for c in components if c & seed),
                    max(components, key=len),
                )
            else:
                sink = max(components, key=len)
            seed = None  # only the first round honours the seed
            path = self._cheapest_path_to_sink(graph, sink, active)
            if path is None:
                raise ValueError("gather blocked by forbidden region")
            # path runs sink ... qubit; walk the qubit inward, stopping one
            # short of the sink (adjacency suffices) or at another active
            # node (components merge by adjacency).
            pos = path[-1]
            for nxt in reversed(path[1:-1]):
                if nxt in active:
                    break
                self._emit_swap(pos, nxt, transition=True)
                active.discard(pos)
                active.add(nxt)
                pos = nxt

    def _cheapest_path_to_sink(
        self, graph: nx.Graph, sink: Set[int], active: Set[int]
    ) -> Optional[List[int]]:
        """Cheapest path from the sink component to any outside active node."""
        distances, paths = nx.multi_source_dijkstra(
            graph, sources=set(sink), weight=lambda u, v, _attrs: self._edge_cost(u, v)
        )
        candidates = [n for n in active if n not in sink and n in distances]
        if not candidates:
            return None
        target = min(candidates, key=lambda n: distances[n])
        return paths[target]

    def _allowed_graph(self, forbidden: FrozenSet[int], keep: Set[int]) -> nx.Graph:
        if not forbidden:
            return self.coupling.graph
        allowed = [
            n for n in self.coupling.graph.nodes if n not in forbidden or n in keep
        ]
        return self.coupling.graph.subgraph(allowed)

    def _edge_cost(self, u: int, v: int) -> float:
        """SWAP reliability cost of one edge for path selection.

        Calibrated edges cost ``3 * -log(1 - e)`` (a SWAP is 3 CNOTs;
        summing along a path minimizes the product of failure-free
        probabilities — the same cost model as
        :func:`repro.transpile.reliability_cost_matrix`).  Rates >= 1 are
        impassable.  Uncalibrated edges keep the historical uniform cost
        of 1, which both preserves plain hop-count behaviour with no
        ``edge_error`` and makes uncalibrated hops far pricier than any
        realistic calibrated one.
        """
        rate = self._edge_error.get((u, v), self._edge_error.get((v, u)))
        if rate is None:
            return 1.0
        if rate >= 1.0:
            return math.inf
        return 3.0 * -math.log(1.0 - rate)

    # -- string synthesis ----------------------------------------------------
    def _synthesize_block(self, block: PauliBlock, forbidden: FrozenSet[int]) -> None:
        """Synthesize a block's strings cheapest-gather-first.

        The string-level analogue of Algorithm 3's cumulative-distance rule
        (line 22): under the current (persistent) mapping, always pick the
        remaining string whose active qubits are closest together, breaking
        ties by operator overlap with the previous string so the FT-style
        junction cancellation is preserved.  Strings whose qubits are
        already adjacent cost zero movement, and each gather improves the
        mapping for its neighbours in the interaction graph.
        """
        remaining = [
            (ws.string, ws.weight * block.parameter)
            for ws in block
            if not ws.string.is_identity
        ]
        previous: Optional[PauliString] = None
        while remaining:
            def key(term):
                string, _ = term
                overlap = previous.overlap(string) if previous is not None else 0
                return (self._scatter_cost(string), -overlap, string.lex_key())

            term = min(remaining, key=key)
            remaining.remove(term)
            string, coefficient = term
            self._synthesize_string(string, coefficient, forbidden)
            self.emitted.append((string, coefficient))
            previous = string

    def _scatter_cost(self, string: PauliString) -> int:
        """Cumulative pairwise distance of a string's active qubits."""
        positions = [self.layout.physical(q) for q in string.support]
        return sum(
            self.coupling.distance(positions[i], positions[j])
            for i in range(len(positions))
            for j in range(i + 1, len(positions))
        )

    def _synthesize_string(
        self, string: PauliString, coefficient: float, forbidden: FrozenSet[int]
    ) -> None:
        """Gather the string's qubits, then emit the parity sandwich."""
        active = {self.layout.physical(q) for q in string.support}
        self._gather(active, forbidden)

        basis: List[Gate] = []
        for logical in string.support:
            phys = self.layout.physical(logical)
            code = string[logical]
            if code == "X":
                basis.append(Gate("h", (phys,)))
            elif code == "Y":
                basis.append(Gate("yh", (phys,)))
        for gate in basis:
            self.circuit.append(gate)

        if len(active) == 1:
            self.circuit.rz(-2.0 * coefficient, next(iter(active)))
        else:
            tree = EmbeddedTree.bfs(
                self.coupling, sorted(active), self._sandwich_root(active)
            )
            cnots: List[Gate] = []
            for node in tree.nodes_by_depth_desc():
                if node == tree.root:
                    continue
                gate = Gate("cx", (node, tree.parent[node]))
                cnots.append(gate)
                self.circuit.append(gate)
            self.circuit.rz(-2.0 * coefficient, tree.root)
            for gate in reversed(cnots):
                self.circuit.append(gate)

        for gate in reversed(basis):
            self.circuit.append(gate)

    def _sandwich_root(self, active: Set[int]) -> int:
        """Centre of the active subgraph: minimizes the CNOT-tree depth."""
        sub = self.coupling.graph.subgraph(active)
        best = None
        best_key = None
        for node in sorted(active):
            lengths = nx.single_source_shortest_path_length(sub, node)
            key = (max(lengths.values()), sum(lengths.values()), node)
            if best_key is None or key < best_key:
                best_key = key
                best = node
        return best

    # -- bookkeeping -------------------------------------------------------
    def _emit_swap(self, a: int, b: int, transition: bool) -> None:
        self.circuit.append(Gate("swap", (a, b)))
        self.layout.swap_physical(a, b)
        if transition:
            self.transition_swaps += 1

    def _cumulative_distance(self, block: PauliBlock) -> float:
        positions = [self.layout.physical(q) for q in block.active_qubits]
        return sum(
            self.coupling.distance(positions[i], positions[j])
            for i in range(len(positions))
            for j in range(i + 1, len(positions))
        )


def sc_compile(
    program: PauliProgram,
    coupling: CouplingMap,
    scheduler: str = "do",
    edge_error: Optional[Dict[Tuple[int, int], float]] = None,
    run_peephole: bool = True,
    restarts: int = 1,
    seed: int = 7,
    cancel: Optional[Callable[[], bool]] = None,
    peephole_level: Optional[int] = None,
) -> SCResult:
    """Full SC flow: schedule, tree-embedded synthesis, peephole cleanup.

    ``scheduler`` accepts ``"do"`` (default), ``"gco"``, ``"none"``, and
    the streaming variants ``"do-stream"`` / ``"gco-stream"`` that
    schedule through :mod:`repro.core.streaming` and release block views
    after synthesis (the large-scale path).  ``restarts > 1`` re-runs the pass with jittered initial placements and
    keeps the lowest-CNOT result (deterministic given ``seed``; the first
    attempt is always the un-jittered layout).  The returned circuit acts on
    physical qubits and respects the coupling map (validated on return).
    ``cancel`` is polled after scheduling and between restart attempts
    (see :mod:`repro.core.cancellation`).  ``peephole_level`` (``None``
    = full fixpoint) restricts the cleanup to the level's rule subset —
    the speculative fast tier compiles at level 1.
    """
    streaming = is_streaming_scheduler(scheduler)
    if streaming:
        # The SC pass walks the schedule twice (interaction-aware layout,
        # then synthesis) and restarts re-run it, so the streamed layer
        # *structure* is materialized — but block views are not: the
        # streaming scheduler never realizes them for singleton blocks,
        # and release_views drops each one after synthesis.
        schedule = [list(layer) for layer in stream_schedule(program, scheduler)]
    elif scheduler == "do":
        schedule = do_schedule(program)
    elif scheduler == "gco":
        schedule = gco_schedule(program)
    elif scheduler == "none":
        schedule = [[block] for block in program]
    else:
        raise ValueError(f"unknown scheduler {scheduler!r}")
    if restarts < 1:
        raise ValueError("restarts must be >= 1")
    check_cancel(cancel, "after scheduling")
    debug_check("sc: schedule", program=program)

    best: Optional[SCResult] = None
    for attempt in range(restarts):
        if attempt > 0:
            check_cancel(cancel, f"before restart attempt {attempt}")
        rng = random.Random(seed + attempt) if attempt > 0 else None
        synthesizer = SCSynthesizer(
            coupling, edge_error, rng=rng, release_views=streaming
        )
        result = synthesizer.run(schedule, program.num_qubits)
        if run_peephole:
            if peephole_level is None or peephole_level >= 3:
                cleaned = optimize(result.circuit)
            elif peephole_level <= 0:
                cleaned = result.circuit
            else:
                cleaned, _ = run_rules(
                    result.circuit, cancel=True, merge=True,
                    commute=peephole_level >= 2, fuse=False,
                )
            result = SCResult(
                cleaned,
                result.initial_layout,
                result.final_layout,
                result.emitted_terms,
                result.transition_swaps,
            )
        if best is None or result.circuit.cnot_count < best.circuit.cnot_count:
            best = result
    validate_routed(best.circuit, coupling)
    debug_check("sc: synthesize+peephole", tape=best.circuit.tape,
                coupling=coupling)
    return best
