"""Block-wise instruction scheduling passes (paper Section 4).

Both passes consume a :class:`~repro.ir.PauliProgram` and produce a
*schedule*: an ordered list of layers, each layer an ordered list of
:class:`~repro.ir.PauliBlock` whose first element is the layer's *primary*
(largest) block and whose remaining elements are qubit-disjoint padding
blocks that execute in parallel with it.

* :func:`gco_schedule` — gate-count-oriented scheduling (Section 4.1):
  lexicographic ordering of blocks (X < Y < Z < I, highest qubit first),
  strings within each block sorted the same way; every block becomes its own
  singleton layer.
* :func:`do_schedule` — depth-oriented scheduling (Section 4.2, Algorithm
  1): blocks sorted by decreasing active length, layers built by picking the
  block with the most operator overlap with the previous layer and padding
  with disjoint small blocks whose accumulated depth fits under the primary.

The hot loop runs on the blocks' cached :class:`~repro.ir.BlockView` masks:
every candidate's overlap against the previous layer is one vectorized
popcount over pre-stacked operator-profile matrices, and the padding loop
compares packed support masks instead of rebuilding qubit sets, so a layer
costs O(remaining) mask operations rather than O(remaining x strings x
weight) Python rescans.

Both passes are semantics-preserving by the Pauli IR's commutative-sum
semantics; :func:`schedule_to_program` flattens a schedule back to a program
so the invariant can be checked (``multiset_of_terms`` is preserved).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ir import PauliBlock, PauliProgram
from ..pauli.symplectic import popcount

__all__ = [
    "Schedule",
    "LayerProfile",
    "gco_schedule",
    "do_schedule",
    "schedule_to_program",
    "schedule_depth_estimate",
    "layer_operator_overlap",
]

Schedule = List[List[PauliBlock]]


def gco_schedule(program: PauliProgram) -> Schedule:
    """Gate-count-oriented scheduling: global lexicographic block order."""
    blocks = [block.sorted_lexicographically() for block in program]
    blocks.sort(key=lambda b: b.lex_key())
    return [[block] for block in blocks]


def schedule_to_program(schedule: Schedule, name: str = "") -> PauliProgram:
    """Flatten a schedule into a program (layer order, primary first)."""
    blocks: List[PauliBlock] = []
    for layer in schedule:
        blocks.extend(layer)
    return PauliProgram(blocks, name=name)


# ----------------------------------------------------------------------
# Depth-oriented scheduling (Algorithm 1)
# ----------------------------------------------------------------------

def _layer_profile(layer: Sequence[PauliBlock]) -> np.ndarray:
    """Accumulated packed operator profile of a layer (OR of block profiles)."""
    profile = layer[0].view.op_profile.copy()
    for block in layer[1:]:
        profile |= block.view.op_profile
    return profile


class LayerProfile:
    """Incrementally accumulated operator profile of a growing layer.

    External callers that probe many candidate blocks against the same
    layer (analysis sweeps, tests, the streaming frontier) previously paid
    one :func:`_layer_profile` rebuild — O(layer) packed ORs — *per query*.
    A ``LayerProfile`` accumulates the OR once and answers every
    subsequent overlap query with a single vectorized popcount.
    """

    __slots__ = ("profile",)

    def __init__(self, layer: Sequence[PauliBlock] = ()):
        self.profile: np.ndarray = None
        for block in layer:
            self.add(block)

    def add(self, block: PauliBlock) -> "LayerProfile":
        """Fold one more block into the accumulated profile."""
        if self.profile is None:
            self.profile = block.view.op_profile.copy()
        else:
            self.profile |= block.view.op_profile
        return self

    def overlap(self, block: PauliBlock) -> int:
        """Operator overlap of ``block`` with the accumulated layer."""
        if self.profile is None:
            return 0
        return block.view.operator_overlap(self.profile)


def layer_operator_overlap(
    block: PauliBlock,
    layer: Sequence[PauliBlock],
    profile: Optional[np.ndarray] = None,
) -> int:
    """Number of qubits where ``block`` and ``layer`` share an identical
    non-identity operator (the Overlap() of Algorithm 1 line 5).

    ``profile`` short-circuits the per-call layer rebuild: pass the packed
    accumulated profile (``LayerProfile(layer).profile``) when querying
    many blocks against one layer, and the rebuild cost is paid once
    instead of per query.
    """
    if profile is not None:
        return block.view.operator_overlap(profile)
    if not layer:
        return 0
    return block.view.operator_overlap(_layer_profile(layer))


def do_schedule(program: PauliProgram) -> Schedule:
    """Depth-oriented scheduling (Algorithm 1).

    Returns layers of qubit-disjoint blocks.  Padding uses per-qubit column
    heights so several small blocks may stack sequentially inside one layer
    as long as no column exceeds the primary block's depth estimate.
    """
    remaining = [block.sorted_lexicographically() for block in program]
    remaining.sort(key=lambda b: (-b.active_length, b.lex_key()))

    views = [block.view for block in remaining]
    profiles = np.stack([view.op_profile for view in views])     # (m, 3, nb)
    supports = np.stack([view.support_mask for view in views])   # (m, nb)
    depths = np.array([view.depth_estimate for view in views])
    lengths = np.array([view.active_length for view in views])
    alive = np.ones(len(remaining), dtype=bool)

    layers: Schedule = []
    layer_profile: np.ndarray = None
    while alive.any():
        idxs = np.nonzero(alive)[0]
        if layer_profile is not None:
            # Overlap of every remaining block with the previous layer in
            # one shot: per-operator AND against the accumulated profile,
            # OR across operators, popcount per row.
            overlaps = popcount(
                np.bitwise_or.reduce(profiles[idxs] & layer_profile, axis=1)
            )
            # First maximum in remaining order, ties broken by active
            # length — the same selection max() made over the scalar list.
            best = max(
                range(len(idxs)), key=lambda k: (overlaps[k], lengths[idxs[k]])
            )
            primary = int(idxs[best])
        else:
            primary = int(idxs[0])
        alive[primary] = False
        layer = [remaining[primary]]
        layer_profile = profiles[primary].copy()
        primary_depth = int(depths[primary])
        primary_support = supports[primary]
        column_height: Dict[int, int] = {}

        # Candidates that share no qubit with the primary, in remaining
        # order.  A single in-order pass suffices: column heights only ever
        # grow, so a block that does not fit now can never fit later.
        idxs = np.nonzero(alive)[0]
        disjoint = ~np.bitwise_and(supports[idxs], primary_support).any(axis=1)
        for candidate in idxs[disjoint]:
            candidate = int(candidate)
            qubits = views[candidate].active_qubits
            depth = int(depths[candidate])
            start = max((column_height.get(q, 0) for q in qubits), default=0)
            if start + depth > primary_depth:
                continue
            layer.append(remaining[candidate])
            alive[candidate] = False
            layer_profile |= profiles[candidate]
            for q in qubits:
                column_height[q] = start + depth
        layers.append(layer)
    return layers


def schedule_depth_estimate(schedule: Schedule) -> int:
    """Estimated depth of a schedule: layers execute sequentially, blocks in
    a layer in parallel (up to padding stacking)."""
    total = 0
    for layer in schedule:
        total += max(block.depth_estimate() for block in layer)
    return total
