"""Block-wise instruction scheduling passes (paper Section 4).

Both passes consume a :class:`~repro.ir.PauliProgram` and produce a
*schedule*: an ordered list of layers, each layer an ordered list of
:class:`~repro.ir.PauliBlock` whose first element is the layer's *primary*
(largest) block and whose remaining elements are qubit-disjoint padding
blocks that execute in parallel with it.

* :func:`gco_schedule` — gate-count-oriented scheduling (Section 4.1):
  lexicographic ordering of blocks (X < Y < Z < I, highest qubit first),
  strings within each block sorted the same way; every block becomes its own
  singleton layer.
* :func:`do_schedule` — depth-oriented scheduling (Section 4.2, Algorithm
  1): blocks sorted by decreasing active length, layers built by picking the
  block with the most operator overlap with the previous layer and padding
  with disjoint small blocks whose accumulated depth fits under the primary.

Both are semantics-preserving by the Pauli IR's commutative-sum semantics;
:func:`schedule_to_program` flattens a schedule back to a program so the
invariant can be checked (``multiset_of_terms`` is preserved).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..ir import PauliBlock, PauliProgram

__all__ = [
    "Schedule",
    "gco_schedule",
    "do_schedule",
    "schedule_to_program",
    "schedule_depth_estimate",
    "layer_operator_overlap",
]

Schedule = List[List[PauliBlock]]


def gco_schedule(program: PauliProgram) -> Schedule:
    """Gate-count-oriented scheduling: global lexicographic block order."""
    blocks = [block.sorted_lexicographically() for block in program]
    blocks.sort(key=lambda b: b.lex_key())
    return [[block] for block in blocks]


def schedule_to_program(schedule: Schedule, name: str = "") -> PauliProgram:
    """Flatten a schedule into a program (layer order, primary first)."""
    blocks: List[PauliBlock] = []
    for layer in schedule:
        blocks.extend(layer)
    return PauliProgram(blocks, name=name)


# ----------------------------------------------------------------------
# Depth-oriented scheduling (Algorithm 1)
# ----------------------------------------------------------------------

def _operator_profile(blocks: Sequence[PauliBlock]) -> Dict[int, set]:
    """Per-qubit set of non-identity operator labels appearing in ``blocks``."""
    profile: Dict[int, set] = {}
    for block in blocks:
        for ws in block:
            for qubit in ws.string.support:
                profile.setdefault(qubit, set()).add(ws.string[qubit])
    return profile


def layer_operator_overlap(block: PauliBlock, layer: Sequence[PauliBlock]) -> int:
    """Number of qubits where ``block`` and ``layer`` share an identical
    non-identity operator (the Overlap() of Algorithm 1 line 5)."""
    block_profile = _operator_profile([block])
    layer_profile = _operator_profile(layer)
    return sum(
        1
        for qubit, labels in block_profile.items()
        if labels & layer_profile.get(qubit, set())
    )


def do_schedule(program: PauliProgram) -> Schedule:
    """Depth-oriented scheduling (Algorithm 1).

    Returns layers of qubit-disjoint blocks.  Padding uses per-qubit column
    heights so several small blocks may stack sequentially inside one layer
    as long as no column exceeds the primary block's depth estimate.
    """
    remaining = [block.sorted_lexicographically() for block in program]
    remaining.sort(key=lambda b: (-b.active_length, b.lex_key()))

    layers: Schedule = []
    while remaining:
        if layers:
            primary = max(
                remaining,
                key=lambda b: (layer_operator_overlap(b, layers[-1]), b.active_length),
            )
        else:
            primary = remaining[0]
        remaining.remove(primary)
        layer = [primary]
        primary_depth = primary.depth_estimate()
        primary_qubits = set(primary.active_qubits)
        column_height: Dict[int, int] = {}

        padded = True
        while padded:
            padded = False
            for candidate in list(remaining):
                qubits = set(candidate.active_qubits)
                if qubits & primary_qubits:
                    continue
                depth = candidate.depth_estimate()
                start = max((column_height.get(q, 0) for q in qubits), default=0)
                if start + depth > primary_depth:
                    continue
                layer.append(candidate)
                remaining.remove(candidate)
                for q in qubits:
                    column_height[q] = start + depth
                padded = True
        layers.append(layer)
    return layers


def schedule_depth_estimate(schedule: Schedule) -> int:
    """Estimated depth of a schedule: layers execute sequentially, blocks in
    a layer in parallel (up to padding stacking)."""
    total = 0
    for layer in schedule:
        total += max(block.depth_estimate() for block in layer)
    return total
