"""Controlled quantum simulation kernels: ``controlled-exp(i c P)``.

The paper's Section 2.2 defines the simulation kernel as implementing
"(controlled-)exp(iHt)"; the controlled form is what phase estimation and
amplitude-estimation style algorithms consume (Section 7 names phase
estimation as the natural extension target).

Making a Pauli rotation controlled only touches the *central* ``Rz``: the
basis changes and CNOT trees are self-inverse bookkeeping that cancels when
the control is off, so ``c-exp(-i a/2 P)`` is the same sandwich with the
``Rz(a)`` replaced by a controlled ``Rz`` — decomposed here into
``rz(a/2); cx; rz(-a/2); cx``.  Paulihedral's scheduling and junction
cancellation therefore carry over unchanged: only rotations differ.
"""

from __future__ import annotations

from typing import List, Optional

from ..circuit import Gate, QuantumCircuit
from ..ir import PauliProgram
from ..pauli import PauliString
from .ft_backend import _better_neighbor
from .synthesis import SynthesisPlan, aligned_chain_plan, chain_plan, pauli_rotation_gates

__all__ = [
    "controlled_rz_gates",
    "controlled_pauli_rotation_gates",
    "controlled_pauli_evolution_circuit",
    "controlled_program_circuit",
]


def controlled_rz_gates(angle: float, control: int, target: int) -> List[Gate]:
    """``CRz(angle)`` on ``(control, target)`` as basic gates.

    ``Rz(a/2) . CX . Rz(-a/2) . CX`` (target rotations), exact up to global
    phase.
    """
    return [
        Gate("rz", (target,), (angle / 2.0,)),
        Gate("cx", (control, target)),
        Gate("rz", (target,), (-angle / 2.0,)),
        Gate("cx", (control, target)),
    ]


def controlled_pauli_rotation_gates(
    string: PauliString,
    angle: float,
    control: int,
    plan: Optional[SynthesisPlan] = None,
) -> List[Gate]:
    """Gate list for ``controlled-exp(-i angle/2 P)`` with ``control`` as an
    extra qubit outside the string's register.

    The string acts on qubits ``0 .. n-1``; ``control`` must be a distinct
    qubit index in the enclosing circuit.
    """
    if 0 <= control < string.num_qubits and string[control] != "I":
        raise ValueError("control qubit overlaps the string's support")
    support = string.support
    if not support:
        # Controlled global phase: a bare Rz on the control (up to phase).
        return [Gate("rz", (control,), (angle,))]
    base = pauli_rotation_gates(string, angle, plan)
    out: List[Gate] = []
    for gate in base:
        if gate.name == "rz":
            out.extend(controlled_rz_gates(gate.params[0], control, gate.qubits[0]))
        else:
            out.append(gate)
    return out


def controlled_pauli_evolution_circuit(
    string: PauliString,
    coefficient: float,
    control: int,
    num_qubits: Optional[int] = None,
) -> QuantumCircuit:
    """Circuit for ``controlled-exp(i coefficient P)`` on ``num_qubits``
    wires (defaults to ``string.num_qubits + 1`` with the control last)."""
    total = num_qubits or string.num_qubits + 1
    circuit = QuantumCircuit(total)
    circuit.extend(
        controlled_pauli_rotation_gates(string, -2.0 * coefficient, control)
    )
    return circuit


def controlled_program_circuit(
    program: PauliProgram,
    control: int,
    power: int = 1,
) -> QuantumCircuit:
    """``controlled-U^power`` where ``U = prod exp(i w P parameter)``.

    The phase-estimation workhorse: repeated controlled applications of one
    Trotter step, with adaptive junction alignment between neighbouring
    strings (the FT pass's trick carries over because only the central
    rotations are controlled).
    """
    if power < 1:
        raise ValueError("power must be >= 1")
    terms = [
        (ws.string, ws.weight * parameter)
        for ws, parameter in program.all_weighted_strings()
        if not ws.string.is_identity
    ]
    circuit = QuantumCircuit(max(program.num_qubits, control + 1))
    repeated = terms * power
    for idx, (string, coefficient) in enumerate(repeated):
        prev_string = repeated[idx - 1][0] if idx > 0 else None
        next_string = repeated[idx + 1][0] if idx + 1 < len(repeated) else None
        neighbor = _better_neighbor(string, prev_string, next_string)
        plan = aligned_chain_plan(string, neighbor)
        circuit.extend(
            controlled_pauli_rotation_gates(string, -2.0 * coefficient, control, plan)
        )
    return circuit
