"""Reconfigurable pass pipeline (the paper's extensibility claim).

Figure 1 presents Paulihedral as a staged pipeline — technology-independent
instruction scheduling, then technology-dependent block-wise optimization,
then a generic gate-level backend — and Section 7 stresses that new
backends plug in by "adding/modifying the technology-dependent passes".
:class:`PassPipeline` makes that structure a first-class object:

* a **schedule pass**: ``PauliProgram -> Schedule``;
* a **synthesis pass**: ``(Schedule, num_qubits) -> QuantumCircuit`` (plus
  optional layout/terms metadata);
* any number of **circuit passes**: ``QuantumCircuit -> QuantumCircuit``.

The stock FT and SC flows are expressed through it (see :func:`ft_pipeline`
/ :func:`sc_pipeline`), and a user can register custom passes — e.g. an
ion-trap synthesis pass or an extra cancellation stage — without touching
the framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..circuit import QuantumCircuit
from ..ir import PauliProgram
from ..static.contracts import PipelineChecker, contract_for, register_callable
from ..static.invariants import debug_check
from ..transpile import CouplingMap, optimize
from .ft_backend import _flatten_schedule, ft_synthesize
from .sc_backend import SCSynthesizer
from .scheduling import Schedule, do_schedule, gco_schedule
from .streaming import is_streaming_scheduler, stream_schedule

__all__ = ["PipelineResult", "PassPipeline", "ft_pipeline", "sc_pipeline"]

# Bind the stock pass callables to their declared contracts so custom
# pipelines assembled from them are checked precisely; unregistered
# callables fall back to the conservative slot defaults.
register_callable(gco_schedule, "schedule_gco")
register_callable(do_schedule, "schedule_do")
register_callable(optimize, "peephole")

_CHECKER = PipelineChecker()

SchedulePass = Callable[[PauliProgram], Schedule]
CircuitPass = Callable[[QuantumCircuit], QuantumCircuit]


@dataclass
class PipelineResult:
    """Output of a pipeline run, with per-stage artifacts for inspection."""

    circuit: QuantumCircuit
    schedule: Schedule
    stage_sizes: Dict[str, int] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)


class PassPipeline:
    """A named, ordered Paulihedral compilation pipeline."""

    def __init__(
        self,
        name: str,
        schedule_pass: SchedulePass,
        synthesis_pass: Callable[[Schedule, PauliProgram], Tuple[QuantumCircuit, Dict]],
        goal: frozenset = frozenset({"synthesized"}),
    ):
        self.name = name
        self.goal = frozenset(goal)
        self._schedule_pass = schedule_pass
        self._synthesis_pass = synthesis_pass
        self._circuit_passes: List[Tuple[str, CircuitPass]] = []

    def add_circuit_pass(self, name: str, circuit_pass: CircuitPass) -> "PassPipeline":
        """Append a gate-level pass; returns self for chaining."""
        self._circuit_passes.append((name, circuit_pass))
        return self

    @property
    def pass_names(self) -> List[str]:
        return ["schedule", "synthesize"] + [name for name, _ in self._circuit_passes]

    def contracts(self):
        """The pipeline's pass contracts, in run order.

        Registered callables (and circuit passes whose *name* matches a
        registered contract) resolve precisely; anything else gets the
        conservative slot default, which trusts it to do its slot's job
        and assumes it destroys everything else.
        """
        resolved = [
            contract_for(self._schedule_pass, default="schedule_opaque"),
            contract_for(self._synthesis_pass, default="synthesize_opaque"),
        ]
        for pass_name, circuit_pass in self._circuit_passes:
            contract = contract_for(circuit_pass, default="circuit_opaque")
            if contract.name == "circuit_opaque":
                contract = contract_for(pass_name, default="circuit_opaque")
            resolved.append(contract)
        return resolved

    def validate(self) -> None:
        """Statically reject a miscomposed pass order.

        Raises :class:`repro.static.contracts.PipelineContractError` —
        naming the pass and the unmet property — before any pass runs,
        so an invalid custom pipeline never emits a gate.
        """
        _CHECKER.check(
            self.contracts(),
            initial=frozenset({"ir_valid"}),
            goal=self.goal,
            name=self.name,
        )

    def run(self, program: PauliProgram) -> PipelineResult:
        self.validate()
        schedule = self._schedule_pass(program)
        debug_check(f"{self.name}: schedule", program=program)
        circuit, metadata = self._synthesis_pass(schedule, program)
        debug_check(f"{self.name}: synthesize", tape=circuit.tape)
        sizes = {"synthesize": circuit.size}
        for pass_name, circuit_pass in self._circuit_passes:
            circuit = circuit_pass(circuit)
            debug_check(f"{self.name}: {pass_name}", tape=circuit.tape)
            sizes[pass_name] = circuit.size
        return PipelineResult(circuit, schedule, sizes, metadata)


def _resolve_schedule_pass(scheduler: str):
    """Map a scheduler name to its pass callable; streaming variants are
    wrapped to materialize the layer structure (pipelines hand the
    schedule to consumers that may walk it more than once) while keeping
    the O(window) profile memory of the streaming scan itself."""
    table = {"gco": gco_schedule, "do": do_schedule}
    if scheduler in table:
        return table[scheduler]
    if is_streaming_scheduler(scheduler):
        def schedule_pass(program: PauliProgram) -> Schedule:
            return [list(layer) for layer in stream_schedule(program, scheduler)]

        return register_callable(
            schedule_pass, f"schedule_{scheduler.replace('-', '_')}"
        )
    return None


def ft_pipeline(scheduler: str = "gco", peephole: bool = True) -> PassPipeline:
    """The stock fault-tolerant flow as a pipeline object."""
    schedule_pass = _resolve_schedule_pass(scheduler)
    if schedule_pass is None:
        raise ValueError(f"unknown scheduler {scheduler!r}")

    def synthesis(schedule: Schedule, program: PauliProgram):
        terms = _flatten_schedule(schedule)
        circuit = ft_synthesize(terms, program.num_qubits)
        return circuit, {"emitted_terms": terms}

    register_callable(synthesis, "ft_synthesize")
    pipeline = PassPipeline(
        f"ft-{scheduler}", schedule_pass, synthesis,
        goal=frozenset({"synthesized", "terms_recorded"}),
    )
    if peephole:
        pipeline.add_circuit_pass("peephole", optimize)
    return pipeline


def sc_pipeline(
    coupling: CouplingMap,
    scheduler: str = "do",
    edge_error: Optional[Dict[Tuple[int, int], float]] = None,
    peephole: bool = True,
) -> PassPipeline:
    """The stock superconducting flow as a pipeline object."""
    schedule_pass = _resolve_schedule_pass(scheduler)
    if schedule_pass is None:
        raise ValueError(f"unknown scheduler {scheduler!r}")

    def synthesis(schedule: Schedule, program: PauliProgram):
        synthesizer = SCSynthesizer(coupling, edge_error)
        result = synthesizer.run(schedule, program.num_qubits)
        return result.circuit, {
            "emitted_terms": result.emitted_terms,
            "initial_layout": result.initial_layout,
            "final_layout": result.final_layout,
        }

    register_callable(synthesis, "sc_synthesize")
    pipeline = PassPipeline(
        f"sc-{scheduler}", schedule_pass, synthesis,
        goal=frozenset({"synthesized", "routed", "coupling_respected"}),
    )
    if peephole:
        pipeline.add_circuit_pass("peephole", optimize)
    return pipeline
