"""Streaming block scheduling for million-term programs.

`gco_schedule` and `do_schedule` (core/scheduling.py) materialize the
whole program before emitting a single layer: every block gets a
realized :class:`~repro.ir.BlockView` (packed table, profile, support,
lex key) and ``do_schedule`` additionally ``np.stack``s all profiles
into one ``(m, 3, nbytes)`` matrix.  At paper scale that is fine; at
200 qubits and 10^5 terms the views alone are ~600 MB and the per-block
view construction dominates wall time.

This module reimplements both schedulers as *streams*:

* **Scan** (:func:`scan_blocks`): one pass over the input blocks —
  accepted as a :class:`~repro.ir.PauliProgram` or any block iterable,
  including a generator — computing, in chunked batched numpy sweeps,
  each block's compact byte lex key, active length, and depth estimate.
  No ``BlockView`` is built; per-block state is one small ``bytes`` key
  plus two integers.
* **Order**: a global sort on the compact keys.  The keys compare
  exactly like ``PauliString.lex_key`` tuples (see
  :func:`repro.pauli.symplectic.lex_rank_matrix`), so the order matches
  the materialized schedulers bit for bit.
* **Emit**: layers are yielded incrementally.  The depth-oriented
  variant keeps a *frontier window* of at most ``window`` realized
  profile rows (refilled from the sorted order as layers drain it) and
  runs Algorithm 1's primary selection and disjoint padding as
  vectorized operations over the window.  Emitted blocks may be
  released (:meth:`~repro.ir.PauliBlock.release_view`) by the consumer;
  the scheduler itself never realizes a view for singleton blocks.

Equivalence: with ``window >= len(blocks)`` the frontier holds every
remaining block, so :func:`streaming_do_schedule` reproduces
``do_schedule`` layer for layer and :func:`streaming_gco_schedule`
reproduces ``gco_schedule`` exactly (property-pinned in
tests/test_streaming.py).  With a smaller window the term multiset,
layer disjointness, and depth-fit invariants still hold — the window
only limits how far ahead the scheduler may look for the best primary.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..ir import PauliBlock, PauliProgram
from ..pauli.symplectic import lex_rank_matrix, popcount
from ..static.contracts import register_callable

__all__ = [
    "DEFAULT_WINDOW",
    "SCAN_CHUNK_STRINGS",
    "scan_blocks",
    "streaming_gco_schedule",
    "streaming_do_schedule",
    "stream_schedule",
    "is_streaming_scheduler",
]

#: Frontier size for :func:`streaming_do_schedule`.  4096 profile rows at
#: 500 qubits is ~2.3 MB — invisible next to the input itself — while
#: being far wider than any layer the paper workloads produce.
DEFAULT_WINDOW = 4096

#: Strings per batched scan sweep.  Bounds the transient ``(chunk, n)``
#: code matrix in :func:`scan_blocks` to a few MB.
SCAN_CHUNK_STRINGS = 16384

BlockSource = Union[PauliProgram, Iterable[PauliBlock]]


def _iter_blocks(source: BlockSource) -> Iterator[PauliBlock]:
    if isinstance(source, PauliProgram):
        return iter(source)
    return iter(source)


def _chunk_codes(blocks: List[PauliBlock], num_qubits: int) -> np.ndarray:
    """Raw ``(total_strings, n)`` code matrix of a chunk in one copy."""
    return np.frombuffer(
        b"".join(ws.string.codes for b in blocks for ws in b), dtype=np.uint8
    ).reshape(-1, num_qubits)


def _chunk_starts(counts: np.ndarray) -> np.ndarray:
    starts = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    return starts


def scan_blocks(
    source: BlockSource,
    chunk_strings: int = SCAN_CHUNK_STRINGS,
) -> Tuple[List[PauliBlock], List[bytes], np.ndarray, int]:
    """Single streaming pass over ``source``.

    Returns ``(blocks, keys, lengths, num_qubits)`` where ``keys[i]`` is
    block ``i``'s lex key as bytes (ordered identically to
    ``PauliBlock.lex_key()``) and ``lengths[i]`` its active length.  Works
    in chunked batched sweeps of at most ``chunk_strings`` strings, so the
    transient numpy state is O(chunk), independent of program size.
    """
    blocks: List[PauliBlock] = []
    keys: List[bytes] = []
    lengths: List[int] = []
    num_qubits = 0

    pending: List[PauliBlock] = []
    pending_strings = 0

    def flush() -> None:
        nonlocal pending, pending_strings
        if not pending:
            return
        n = pending[0].num_qubits
        codes = _chunk_codes(pending, n)
        ranks = lex_rank_matrix(codes)          # (S, n) uint8
        rank_bytes = ranks.tobytes()
        counts = np.fromiter(
            (b.num_strings for b in pending), dtype=np.int64, count=len(pending)
        )
        starts = _chunk_starts(counts)
        # Per-block active length: popcount of the OR of string supports.
        packed = np.packbits(codes != 0, axis=1, bitorder="little")
        block_lengths = popcount(np.bitwise_or.reduceat(packed, starts, axis=0))
        row = 0
        for i, block in enumerate(pending):
            k = int(counts[i])
            if k == 1:
                key = rank_bytes[row * n:(row + 1) * n]
            else:
                key = min(
                    rank_bytes[(row + j) * n:(row + j + 1) * n]
                    for j in range(k)
                )
            keys.append(key)
            lengths.append(int(block_lengths[i]))
            row += k
        blocks.extend(pending)
        pending = []
        pending_strings = 0

    for block in _iter_blocks(source):
        if num_qubits == 0:
            num_qubits = block.num_qubits
        pending.append(block)
        pending_strings += block.num_strings
        if pending_strings >= chunk_strings:
            flush()
    flush()
    return blocks, keys, np.asarray(lengths, dtype=np.int64), num_qubits


def _batch_stats(
    blocks: List[PauliBlock], num_qubits: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Realize ``(profiles, supports, depths)`` for a refill batch.

    One batched sweep — a single code-matrix copy, two ``packbits``, four
    ``reduceat`` reductions — instead of one ``BlockView`` per block.
    ``profiles`` is ``(k, 3, nbytes)`` in the X/Z/Y channel order of
    :class:`~repro.ir.BlockView.op_profile`, ``supports`` ``(k, nbytes)``,
    ``depths`` ``(k,)``.
    """
    counts = np.fromiter(
        (b.num_strings for b in blocks), dtype=np.int64, count=len(blocks)
    )
    starts = _chunk_starts(counts)
    codes = _chunk_codes(blocks, num_qubits)
    x = np.packbits(codes & 1, axis=1, bitorder="little")
    z = np.packbits(codes >> 1, axis=1, bitorder="little")
    supports = np.bitwise_or.reduceat(x | z, starts, axis=0)
    profiles = np.stack(
        [
            np.bitwise_or.reduceat(x & ~z, starts, axis=0),
            np.bitwise_or.reduceat(z & ~x, starts, axis=0),
            np.bitwise_or.reduceat(x & z, starts, axis=0),
        ],
        axis=1,
    )
    weights = popcount(x | z)
    contribution = np.where(weights > 0, 2 * (weights - 1) + 1, 0)
    depths = np.add.reduceat(contribution, starts)
    return profiles, supports, depths


def _emit(block: PauliBlock) -> PauliBlock:
    """Intra-block sort on emission; singleton blocks never build a view."""
    return block.sorted_lexicographically()


def streaming_gco_schedule(
    source: BlockSource,
    window: int = DEFAULT_WINDOW,
) -> Iterator[List[PauliBlock]]:
    """Streaming gate-count-oriented scheduling.

    Scans once for compact keys, sorts the keys, then yields singleton
    layers in key order.  Equivalent to ``gco_schedule`` on any input
    (the compact byte keys order exactly like ``PauliBlock.lex_key``),
    but never builds a ``BlockView`` for singleton blocks and holds no
    profile matrices at all.  ``window`` is accepted for interface
    symmetry with :func:`streaming_do_schedule`; gco needs no frontier.
    """
    del window
    blocks, keys, _lengths, _n = scan_blocks(source)
    order = sorted(range(len(blocks)), key=keys.__getitem__)
    for index in order:
        yield [_emit(blocks[index])]


def streaming_do_schedule(
    source: BlockSource,
    window: int = DEFAULT_WINDOW,
) -> Iterator[List[PauliBlock]]:
    """Streaming depth-oriented scheduling (Algorithm 1, windowed).

    Blocks are globally ordered by ``(-active_length, lex_key)`` on
    compact scan keys, then consumed through a frontier of at most
    ``window`` realized profile rows.  Each layer picks the frontier
    block with maximum operator overlap against the previous layer (ties
    by active length, then order — the exact ``do_schedule`` selection)
    and pads with qubit-disjoint frontier blocks under the primary's
    depth, using vectorized support/depth pruning.  Profile memory is
    O(window); with ``window >= len(blocks)`` the output equals
    ``do_schedule`` layer for layer.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    blocks, keys, lengths, num_qubits = scan_blocks(source)
    total = len(blocks)
    if total == 0:
        return
    order = sorted(range(total), key=lambda i: (-int(lengths[i]), keys[i]))
    del keys

    position = 0                       # next index into `order` to admit
    f_blocks: List[PauliBlock] = []    # frontier, in global order
    f_profiles: Optional[np.ndarray] = None
    f_supports: Optional[np.ndarray] = None
    f_depths: Optional[np.ndarray] = None
    f_lengths: Optional[np.ndarray] = None
    # Encoding for "first max of (overlap, length)" via a single argmax:
    # both quantities are <= num_qubits, so this radix never collides.
    radix = num_qubits + 1

    layer_profile: Optional[np.ndarray] = None
    while True:
        if len(f_blocks) < window and position < total:
            admit = order[position:position + (window - len(f_blocks))]
            position += len(admit)
            batch = [blocks[i] for i in admit]
            for i in admit:
                blocks[i] = None       # frontier owns it now; free the slot
            profiles, supports, depths = _batch_stats(batch, num_qubits)
            batch_lengths = lengths[admit]
            if f_blocks:
                f_profiles = np.concatenate([f_profiles, profiles])
                f_supports = np.concatenate([f_supports, supports])
                f_depths = np.concatenate([f_depths, depths])
                f_lengths = np.concatenate([f_lengths, batch_lengths])
            else:
                f_profiles, f_supports = profiles, supports
                f_depths, f_lengths = depths, batch_lengths
            f_blocks.extend(batch)
        if not f_blocks:
            return

        if layer_profile is None:
            best = 0
        else:
            overlaps = popcount(
                np.bitwise_or.reduce(f_profiles & layer_profile, axis=1)
            )
            best = int(np.argmax(overlaps * radix + f_lengths))
        primary_depth = int(f_depths[best])
        primary_support = f_supports[best]
        layer_profile = f_profiles[best].copy()
        layer = [_emit(f_blocks[best])]

        removed = np.zeros(len(f_blocks), dtype=bool)
        removed[best] = True
        # Vectorized candidate pruning: a padding block must be disjoint
        # from the primary and its own depth must fit under the primary's
        # (start offsets only grow, so depth > primary_depth can never fit).
        fits = ~np.bitwise_and(f_supports, primary_support).any(axis=1)
        fits &= f_depths <= primary_depth
        fits[best] = False
        candidates = np.nonzero(fits)[0]
        if candidates.size:
            # Column heights are monotone, so a candidate that fails once
            # fails forever.  Between acceptances the heights are static,
            # which lets the whole scan-to-next-acceptance happen as one
            # reduceat sweep instead of a per-candidate Python loop: the
            # first candidate whose (start + depth) fits is the next
            # accepted block, and everything before it is dead.
            bits = np.unpackbits(
                f_supports[candidates], axis=1, bitorder="little",
                count=num_qubits,
            )
            cand_depths = f_depths[candidates]
            # starts[i] == max column height over candidate i's qubits.
            # An accepted block raises all its columns to one value, so
            # each acceptance updates affected candidates with a single
            # max — no per-candidate height gathers at all.
            starts = np.zeros(candidates.size, dtype=np.int64)
            budgets = primary_depth - cand_depths
            lo = 0
            while lo < candidates.size:
                fit = starts[lo:] <= budgets[lo:]
                rel = int(np.argmax(fit))
                if not fit[rel]:
                    break
                first = lo + rel
                candidate = int(candidates[first])
                layer.append(_emit(f_blocks[candidate]))
                removed[candidate] = True
                layer_profile |= f_profiles[candidate]
                new_height = int(starts[first]) + int(cand_depths[first])
                tail = bits[first + 1:]
                if tail.size:
                    qubits = np.nonzero(bits[first])[0]
                    touched = tail[:, qubits].any(axis=1)
                    affected = np.nonzero(touched)[0] + first + 1
                    starts[affected] = np.maximum(
                        starts[affected], new_height
                    )
                lo = first + 1

        keep = ~removed
        f_blocks = [b for b, k in zip(f_blocks, keep) if k]
        f_profiles = f_profiles[keep]
        f_supports = f_supports[keep]
        f_depths = f_depths[keep]
        f_lengths = f_lengths[keep]
        yield layer


_STREAM_SCHEDULERS = {
    "gco-stream": streaming_gco_schedule,
    "do-stream": streaming_do_schedule,
    "gco": streaming_gco_schedule,
    "do": streaming_do_schedule,
}


def is_streaming_scheduler(name: Optional[str]) -> bool:
    """True for the scheduler names this module serves (``*-stream``)."""
    return isinstance(name, str) and name.endswith("-stream")


def stream_schedule(
    source: BlockSource,
    scheduler: str,
    window: int = DEFAULT_WINDOW,
) -> Iterator[List[PauliBlock]]:
    """Dispatch to a streaming scheduler by name (``gco[-stream]`` /
    ``do[-stream]``), returning the incremental layer iterator."""
    try:
        fn = _STREAM_SCHEDULERS[scheduler]
    except KeyError:
        raise ValueError(
            f"unknown streaming scheduler {scheduler!r}; "
            f"expected one of {sorted(_STREAM_SCHEDULERS)}"
        ) from None
    return fn(source, window=window)


register_callable(streaming_gco_schedule, "schedule_gco_stream")
register_callable(streaming_do_schedule, "schedule_do_stream")
