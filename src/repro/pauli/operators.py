"""Single-qubit Pauli operators and their algebra.

The four single-qubit Paulis are represented by integer codes chosen so that
the code doubles as a symplectic (x, z) bit pair:

======  ====  =======  =======
Pauli   code  x bit    z bit
======  ====  =======  =======
``I``   0     0        0
``X``   1     1        0
``Y``   3     1        1
``Z``   2     0        1
======  ====  =======  =======

i.e. ``code = x | (z << 1)``.  Products, commutation and matrix forms are
precomputed in small tables so :class:`~repro.pauli.strings.PauliString` can
operate on raw integer arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "I",
    "X",
    "Y",
    "Z",
    "CODE_TO_LABEL",
    "LABEL_TO_CODE",
    "LEX_RANK",
    "PRODUCT_CODE",
    "PRODUCT_PHASE",
    "SINGLE_QUBIT_MATRICES",
    "code_of",
    "label_of",
    "matrix_of",
]

I = 0  # noqa: E741 - established physics name
X = 1
Z = 2
Y = 3

CODE_TO_LABEL = "IXZY"
LABEL_TO_CODE = {"I": I, "X": X, "Y": Y, "Z": Z}

#: Paper ordering for lexicographic scheduling (Section 4.1): X < Y < Z < I.
LEX_RANK = {I: 3, X: 0, Y: 1, Z: 2}

#: ``PRODUCT_CODE[a][b]`` is the Pauli code of ``a @ b`` (ignoring phase).
#: For symplectic codes the product is simply XOR.
PRODUCT_CODE = [[a ^ b for b in range(4)] for a in range(4)]

# Phase exponent table: sigma_a sigma_b = i**PRODUCT_PHASE[a][b] sigma_(a^b).
# Derived from XY = iZ, YZ = iX, ZX = iY and cyclic anti-symmetry.
_PHASE = {
    (X, Y): 1, (Y, X): 3,
    (Y, Z): 1, (Z, Y): 3,
    (Z, X): 1, (X, Z): 3,
}
PRODUCT_PHASE = [[_PHASE.get((a, b), 0) for b in range(4)] for a in range(4)]

SINGLE_QUBIT_MATRICES = {
    I: np.eye(2, dtype=complex),
    X: np.array([[0, 1], [1, 0]], dtype=complex),
    Y: np.array([[0, -1j], [1j, 0]], dtype=complex),
    Z: np.array([[1, 0], [0, -1]], dtype=complex),
}


def code_of(label: str) -> int:
    """Return the integer code for a single-character Pauli label."""
    try:
        return LABEL_TO_CODE[label]
    except KeyError:
        raise ValueError(f"invalid Pauli label {label!r}; expected I, X, Y or Z") from None


def label_of(code: int) -> str:
    """Return the character label for an integer Pauli code."""
    if not 0 <= code <= 3:
        raise ValueError(f"invalid Pauli code {code!r}; expected 0..3")
    return CODE_TO_LABEL[code]


def matrix_of(code: int) -> np.ndarray:
    """Return the 2x2 complex matrix of a single-qubit Pauli."""
    if code not in SINGLE_QUBIT_MATRICES:
        raise ValueError(f"invalid Pauli code {code!r}; expected 0..3")
    return SINGLE_QUBIT_MATRICES[code]
