"""Vectorized symplectic Pauli engine: packed X/Z bit-matrix batches.

A :class:`PauliTable` stores ``m`` Pauli strings on ``n`` qubits as two
bit-packed ``uint8`` matrices (the symplectic X and Z parts, one bit per
qubit, packed little-endian so qubit ``i`` is bit ``i % 8`` of byte
``i // 8``).  All the per-pair queries the compiler's hot loops need —
operator overlap, commutation, shared support, lexicographic ordering —
become whole-row bitwise arithmetic plus a popcount lookup table, instead
of per-byte Python loops over :class:`~repro.pauli.strings.PauliString`.

The scalar :class:`PauliString` methods remain the semantic reference; the
batch kernels here are their vectorized counterparts:

================================  ====================================
scalar (``PauliString``)          batch (``PauliTable``)
================================  ====================================
``a.overlap(b)``                  ``table.overlaps(i)`` / ``overlap_matrix``
``a.commutes_with(b)``            ``table.commutes(i)`` / ``commutation_matrix``
``a.shared_support(b)``           ``table.shared_support(i, j)``
``a.lex_key()``                   ``table.lex_ranks()`` / ``lex_argsort``
================================  ====================================
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from . import operators as ops
from .strings import PauliString

__all__ = [
    "PauliTable",
    "popcount",
    "packed_as_words",
    "batch_overlap",
    "batch_commutes",
    "batch_lex_keys",
    "batch_shared_support",
]

#: Per-byte set-bit counts; ``_POPCOUNT[a]`` vectorizes over any uint8 array.
#: Kept as the fallback for numpy < 2.0, which lacks ``np.bitwise_count``.
_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint16)

#: numpy >= 2.0 popcounts natively (one machine instruction per word)
#: instead of gathering through the 256-entry lookup table — ~5x on the
#: packed-row kernels, ~10x when the rows are viewed as uint64 words.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: ``LEX_RANK`` as a vectorized lookup table over Pauli codes.
_LEX_LUT = np.array([ops.LEX_RANK[c] for c in range(4)], dtype=np.uint8)

#: Above this many rows, pairwise matrices are built in row chunks to bound
#: the intermediate ``(m, m, nbytes)`` broadcast memory.
_CHUNK_ROWS = 2048


def popcount(packed: np.ndarray, axis: int = -1) -> np.ndarray:
    """Total set bits of a packed unsigned-integer array along ``axis``."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(packed).sum(axis=axis, dtype=np.int64)
    return _POPCOUNT[packed].sum(axis=axis, dtype=np.int64)


def packed_as_words(packed: np.ndarray) -> np.ndarray:
    """Reinterpret packed ``uint8`` rows as ``uint64`` words (8x fewer
    elements for the same bits), zero-padding the last axis as needed.

    The bit content is preserved (little-endian packing on a little-endian
    dtype), so bitwise AND/OR/XOR and :func:`popcount` over the word view
    agree with the byte view.  Returns a fresh array when padding or a
    contiguity copy is required, otherwise a zero-copy view.
    """
    nbytes = packed.shape[-1]
    pad = (-nbytes) % 8
    if pad:
        widened = np.zeros(packed.shape[:-1] + (nbytes + pad,), dtype=np.uint8)
        widened[..., :nbytes] = packed
        packed = widened
    return np.ascontiguousarray(packed).view(np.uint64)


class PauliTable:
    """An immutable batch of ``m`` Pauli strings in packed symplectic form.

    Attributes
    ----------
    codes:
        ``(m, n)`` ``uint8`` matrix of raw Pauli codes (column = qubit).
    x, z:
        ``(m, ceil(n / 8))`` bit-packed symplectic parts, little-endian
        bit order (qubit ``i`` lives at bit ``i % 8`` of byte ``i // 8``).
    """

    __slots__ = ("codes", "x", "z", "num_qubits")

    def __init__(self, codes: np.ndarray):
        codes = np.ascontiguousarray(codes, dtype=np.uint8)
        if codes.ndim != 2 or codes.shape[1] == 0:
            raise ValueError("codes must be a non-empty (m, n) matrix")
        if codes.size and codes.max() > 3:
            raise ValueError("Pauli codes must be in 0..3")
        self.codes = codes
        self.x = np.packbits(codes & 1, axis=1, bitorder="little")
        self.z = np.packbits(codes >> 1, axis=1, bitorder="little")
        self.num_qubits = codes.shape[1]

    # ------------------------------------------------------------------
    # Constructors / conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_strings(cls, strings: Iterable[PauliString]) -> "PauliTable":
        """Build from an iterable of :class:`PauliString` (one row each)."""
        string_list = list(strings)
        if not string_list:
            raise ValueError("a PauliTable needs at least one string")
        n = string_list[0].num_qubits
        for s in string_list:
            if s.num_qubits != n:
                raise ValueError(
                    f"all strings must act on the same qubit count: "
                    f"{s.num_qubits} vs {n}"
                )
        buffer = b"".join(s.codes for s in string_list)
        codes = np.frombuffer(buffer, dtype=np.uint8).reshape(len(string_list), n)
        return cls(codes)

    def to_strings(self) -> List[PauliString]:
        """Unpack back into scalar :class:`PauliString` objects."""
        return [PauliString(row.tobytes()) for row in self.codes]

    @property
    def num_strings(self) -> int:
        return self.codes.shape[0]

    def __len__(self) -> int:
        return self.num_strings

    def __getitem__(self, index: int) -> PauliString:
        return PauliString(self.codes[index].tobytes())

    # ------------------------------------------------------------------
    # Row-wise reductions
    # ------------------------------------------------------------------
    def support_masks(self) -> np.ndarray:
        """Packed per-row support: bit set where the operator is non-I."""
        return self.x | self.z

    def weights(self) -> np.ndarray:
        """Number of non-identity operators per row."""
        return popcount(self.support_masks())

    def basis_change_counts(self) -> np.ndarray:
        """Per-row count of X/Y operators (qubits needing basis changes)."""
        return popcount(self.x)

    # ------------------------------------------------------------------
    # Batch overlap (gate-cancellation potential)
    # ------------------------------------------------------------------
    def overlaps(self, index: int) -> np.ndarray:
        """Overlap of row ``index`` against every row (``int64`` vector).

        Matches ``self[index].overlap(self[j])`` for every ``j``: the count
        of qubits where both rows carry the *same* non-identity operator.
        """
        xi, zi = self.x[index], self.z[index]
        # Two allocations instead of five: the greedy chain in
        # most_overlap_sort calls this once per step on huge blocks.
        same = self.x ^ xi
        np.invert(same, out=same)
        other = self.z ^ zi
        np.invert(other, out=other)
        same &= other
        same &= xi | zi
        return popcount(same)

    def overlap_matrix(self) -> np.ndarray:
        """Full ``(m, m)`` pairwise overlap matrix."""
        m = self.num_strings
        if m * m * self.num_qubits <= 1 << 24:
            # Small batches are numpy-call-overhead bound: a direct code
            # comparison on the unpacked matrix needs only three ops.
            eq = self.codes[:, None, :] == self.codes[None, :, :]
            eq &= (self.codes != 0)[:, None, :]
            return eq.sum(axis=2, dtype=np.int64)
        out = np.empty((m, m), dtype=np.int64)
        support = self.support_masks()
        for start in range(0, m, _CHUNK_ROWS):
            stop = min(start + _CHUNK_ROWS, m)
            same = (
                ~(self.x[start:stop, None, :] ^ self.x[None, :, :])
                & ~(self.z[start:stop, None, :] ^ self.z[None, :, :])
                & support[start:stop, None, :]
            )
            out[start:stop] = popcount(same)
        return out

    # ------------------------------------------------------------------
    # Batch commutation
    # ------------------------------------------------------------------
    def commutes(self, index: int) -> np.ndarray:
        """Boolean vector: does row ``index`` commute with each row?"""
        anti = popcount(self.x & self.z[index]) + popcount(self.z & self.x[index])
        return (anti & 1) == 0

    def commutation_matrix(self) -> np.ndarray:
        """Full ``(m, m)`` boolean commutation matrix."""
        m = self.num_strings
        out = np.empty((m, m), dtype=bool)
        for i in range(m):
            out[i] = self.commutes(i)
        return out

    # ------------------------------------------------------------------
    # Shared support
    # ------------------------------------------------------------------
    def shared_support(self, i: int, j: int) -> Tuple[int, ...]:
        """Qubits where rows ``i`` and ``j`` carry the same non-I operator."""
        same = (
            ~(self.x[i] ^ self.x[j])
            & ~(self.z[i] ^ self.z[j])
            & (self.x[i] | self.z[i])
        )
        bits = np.unpackbits(same, bitorder="little", count=self.num_qubits)
        return tuple(int(q) for q in np.nonzero(bits)[0])

    def consecutive_shared_masks(self) -> np.ndarray:
        """Packed shared-support mask of each adjacent row pair: bit ``q``
        of row ``j`` is set when rows ``j`` and ``j + 1`` carry the same
        non-identity operator on qubit ``q``.

        One vectorized sweep replaces ``m - 1`` scalar ``shared_support``
        calls; the FT junction planner derives its weights from this.
        """
        if self.num_strings < 2:
            return np.zeros((0, self.x.shape[1]), dtype=np.uint8)
        return (
            ~(self.x[:-1] ^ self.x[1:])
            & ~(self.z[:-1] ^ self.z[1:])
            & (self.x[:-1] | self.z[:-1])
        )

    def consecutive_overlaps(self) -> np.ndarray:
        """Overlap of each adjacent row pair: ``out[j] = overlap(j, j + 1)``."""
        return popcount(self.consecutive_shared_masks())

    # ------------------------------------------------------------------
    # Lexicographic ordering (paper Section 4.1)
    # ------------------------------------------------------------------
    def lex_ranks(self) -> np.ndarray:
        """``(m, n)`` rank matrix matching ``PauliString.lex_key`` per row:
        X < Y < Z < I, columns running from the highest qubit down."""
        return lex_rank_matrix(self.codes)

    def lex_argsort(self) -> np.ndarray:
        """Stable argsort of the rows by the paper's lexicographic key."""
        ranks = self.lex_ranks()
        # np.lexsort treats the *last* key as primary; the primary key is
        # the highest qubit, i.e. column 0 of the rank matrix.
        return np.lexsort(ranks.T[::-1])


# ----------------------------------------------------------------------
# Functional batch counterparts of the PauliString methods
# ----------------------------------------------------------------------

def lex_rank_matrix(codes: np.ndarray) -> np.ndarray:
    """Rank matrix of raw ``(m, n)`` Pauli-code rows per the paper's
    lexicographic key (X < Y < Z < I, highest qubit first).  Rows compare
    as byte strings exactly like ``PauliString.lex_key`` tuples, which is
    what lets the streaming scheduler sort million-block programs on
    compact byte keys instead of per-block views."""
    return _LEX_LUT[codes[:, ::-1]]


def _as_table(strings) -> PauliTable:
    if isinstance(strings, PauliTable):
        return strings
    return PauliTable.from_strings(strings)


def batch_overlap(strings: Sequence[PauliString]) -> np.ndarray:
    """Pairwise overlap matrix of a string batch (see ``PauliString.overlap``)."""
    return _as_table(strings).overlap_matrix()


def batch_commutes(strings: Sequence[PauliString]) -> np.ndarray:
    """Pairwise commutation matrix (see ``PauliString.commutes_with``)."""
    return _as_table(strings).commutation_matrix()


def batch_lex_keys(strings: Sequence[PauliString]) -> np.ndarray:
    """Row-per-string lexicographic rank matrix (see ``PauliString.lex_key``)."""
    return _as_table(strings).lex_ranks()


def batch_shared_support(strings: Sequence[PauliString], i: int, j: int) -> Tuple[int, ...]:
    """Shared support of rows ``i`` and ``j`` (see ``PauliString.shared_support``)."""
    return _as_table(strings).shared_support(i, j)
