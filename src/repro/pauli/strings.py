"""Multi-qubit Pauli strings.

A :class:`PauliString` is the basic datum of the Pauli IR (Section 3.2 of the
paper): an ``n``-qubit tensor product of single-qubit Paulis,
``P = sigma_{n-1} (x) sigma_{n-2} (x) ... (x) sigma_0``.

Conventions
-----------
* Qubit ``i`` corresponds to position ``i`` counted **from the right** of a
  text label, matching the paper: the label ``"YZIXZ"`` places ``Y`` on
  ``q4`` and ``Z`` on ``q0``.
* Internally, the string is a ``bytes`` object indexed by qubit number
  (``codes[i]`` is the operator on qubit ``i``), so indexing is natural and
  the object is hashable and immutable.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from . import operators as ops

__all__ = ["PauliString"]

#: Label byte -> Pauli code; everything outside "IXYZ" maps to 0xFF, which
#: the constructor's 0..3 range check rejects.
_LABEL_TRANSLATION = bytes(
    ops.LABEL_TO_CODE.get(chr(byte), 0xFF) for byte in range(256)
)

#: Interned strings by label.  PauliString is immutable and hashable, so
#: sharing instances is safe; the cap bounds memory against adversarial
#: label streams (fuzzers) while real workloads reuse a few hundred labels.
_INTERNED = {}
_INTERN_CAP = 1 << 16


class PauliString:
    """An immutable n-qubit Pauli string.

    Parameters
    ----------
    codes:
        Iterable of integer Pauli codes, indexed by qubit number
        (``codes[0]`` acts on ``q0``).

    Examples
    --------
    >>> p = PauliString.from_label("YZIXZ")
    >>> p[4], p[0]
    ('Y', 'Z')
    >>> p.support
    (0, 1, 3, 4)
    """

    __slots__ = ("_codes", "_hash")

    def __init__(self, codes: Iterable[int]):
        data = bytes(codes)
        if not data:
            raise ValueError("a Pauli string must act on at least one qubit")
        if max(data) > 3:
            raise ValueError("Pauli codes must be in 0..3")
        self._codes = data
        self._hash = hash(data)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_label(cls, label: str) -> "PauliString":
        """Build from a text label, leftmost character = highest qubit.

        Instances are interned by label (immutability makes sharing safe);
        repeated labels — artifact deserialization, workload generators —
        skip construction entirely.
        """
        cached = _INTERNED.get(label)
        if cached is not None:
            return cached
        if not label:
            raise ValueError("a Pauli string must act on at least one qubit")
        try:
            encoded = label.encode("ascii")
        except UnicodeEncodeError:
            encoded = None
        string = None
        if encoded is not None:
            # Hot path: one translate call instead of a per-character dict
            # lookup.  Invalid characters map above 3 and are rejected by
            # the constructor's range scan.
            codes = encoded[::-1].translate(_LABEL_TRANSLATION)
            try:
                string = cls(codes)
            except ValueError:
                string = None
        if string is None:
            raise ValueError(
                f"invalid Pauli label {label!r}; expected characters I, X, Y, Z"
            )
        if len(_INTERNED) < _INTERN_CAP:
            _INTERNED[label] = string
        return string

    @classmethod
    def from_sparse(cls, num_qubits: int, terms: dict) -> "PauliString":
        """Build from ``{qubit_index: 'X'|'Y'|'Z'}``; all other qubits are I.

        >>> PauliString.from_sparse(4, {0: "Z", 2: "X"}).label
        'IXIZ'
        """
        codes = bytearray(num_qubits)
        for qubit, label in terms.items():
            if not 0 <= qubit < num_qubits:
                raise ValueError(f"qubit {qubit} out of range for {num_qubits} qubits")
            codes[qubit] = ops.code_of(label)
        return cls(codes)

    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        """The all-identity string on ``num_qubits`` qubits."""
        return cls(bytes(num_qubits))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self._codes)

    @property
    def label(self) -> str:
        """Text label, leftmost character = highest qubit."""
        return "".join(ops.CODE_TO_LABEL[c] for c in reversed(self._codes))

    @property
    def codes(self) -> bytes:
        """Raw per-qubit codes (index = qubit number)."""
        return self._codes

    @property
    def support(self) -> Tuple[int, ...]:
        """Qubit indices carrying a non-identity operator, ascending."""
        return tuple(i for i, c in enumerate(self._codes) if c != ops.I)

    @property
    def weight(self) -> int:
        """Number of non-identity operators."""
        return sum(1 for c in self._codes if c != ops.I)

    @property
    def is_identity(self) -> bool:
        return all(c == ops.I for c in self._codes)

    def __len__(self) -> int:
        return len(self._codes)

    def __getitem__(self, qubit: int) -> str:
        return ops.CODE_TO_LABEL[self._codes[qubit]]

    def code_at(self, qubit: int) -> int:
        return self._codes[qubit]

    def __iter__(self) -> Iterator[str]:
        """Iterate labels by ascending qubit index."""
        return (ops.CODE_TO_LABEL[c] for c in self._codes)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def commutes_with(self, other: "PauliString") -> bool:
        """True if the two strings commute as operators.

        Two Pauli strings commute iff they anticommute on an even number of
        qubits.
        """
        self._check_compatible(other)
        anti = 0
        for a, b in zip(self._codes, other._codes):
            if a != ops.I and b != ops.I and a != b:
                anti ^= 1
        return anti == 0

    def compose(self, other: "PauliString") -> Tuple[complex, "PauliString"]:
        """Return ``(phase, P)`` with ``self @ other == phase * P``."""
        self._check_compatible(other)
        phase_exp = 0
        codes = bytearray(len(self._codes))
        for i, (a, b) in enumerate(zip(self._codes, other._codes)):
            codes[i] = a ^ b
            phase_exp = (phase_exp + ops.PRODUCT_PHASE[a][b]) % 4
        return 1j ** phase_exp, PauliString(codes)

    def __mul__(self, other: "PauliString") -> "PauliString":
        """Phase-discarding product (useful for stabilizer bookkeeping)."""
        return self.compose(other)[1]

    def overlap(self, other: "PauliString") -> int:
        """Number of qubits where both strings carry the *same* non-identity
        operator.  This is the paper's gate-cancellation potential metric
        (Sections 4 and 5)."""
        self._check_compatible(other)
        return sum(
            1
            for a, b in zip(self._codes, other._codes)
            if a != ops.I and a == b
        )

    def shared_support(self, other: "PauliString") -> Tuple[int, ...]:
        """Qubits where both strings have the same non-identity operator."""
        self._check_compatible(other)
        return tuple(
            i
            for i, (a, b) in enumerate(zip(self._codes, other._codes))
            if a != ops.I and a == b
        )

    def disjoint_from(self, other: "PauliString") -> bool:
        """True when the supports do not intersect."""
        self._check_compatible(other)
        return all(
            a == ops.I or b == ops.I for a, b in zip(self._codes, other._codes)
        )

    # ------------------------------------------------------------------
    # Symplectic form
    # ------------------------------------------------------------------
    @property
    def x_bits(self) -> np.ndarray:
        """Boolean X-part in symplectic form, indexed by qubit."""
        return np.fromiter(((c & 1) for c in self._codes), dtype=bool, count=len(self._codes))

    @property
    def z_bits(self) -> np.ndarray:
        """Boolean Z-part in symplectic form, indexed by qubit."""
        return np.fromiter(((c >> 1) & 1 for c in self._codes), dtype=bool, count=len(self._codes))

    @classmethod
    def from_bits(cls, x_bits: Sequence[bool], z_bits: Sequence[bool]) -> "PauliString":
        """Build from symplectic X/Z bit vectors (indexed by qubit)."""
        if len(x_bits) != len(z_bits):
            raise ValueError("x and z bit vectors must have equal length")
        return cls(int(x) | (int(z) << 1) for x, z in zip(x_bits, z_bits))

    # ------------------------------------------------------------------
    # Ordering / comparison
    # ------------------------------------------------------------------
    def lex_key(self) -> Tuple[int, ...]:
        """Paper's lexicographic key: X < Y < Z < I, read from the highest
        qubit down to ``q0`` (Section 4.1)."""
        return tuple(ops.LEX_RANK[c] for c in reversed(self._codes))

    # ------------------------------------------------------------------
    # Dense forms
    # ------------------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Dense ``2**n x 2**n`` matrix.  Only sensible for small ``n``."""
        if self.num_qubits > 12:
            raise ValueError("refusing to build a dense matrix for > 12 qubits")
        out = np.ones((1, 1), dtype=complex)
        for code in reversed(self._codes):  # highest qubit is the leftmost factor
            out = np.kron(out, ops.matrix_of(code))
        return out

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return self._codes == other._codes

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"PauliString('{self.label}')"

    def _check_compatible(self, other: "PauliString") -> None:
        if len(self._codes) != len(other._codes):
            raise ValueError(
                f"qubit-count mismatch: {len(self._codes)} vs {len(other._codes)}"
            )
