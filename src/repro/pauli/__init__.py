"""Pauli operator algebra: single-qubit codes, multi-qubit strings, and
packed symplectic batches."""

from .operators import CODE_TO_LABEL, I, LABEL_TO_CODE, LEX_RANK, X, Y, Z
from .strings import PauliString
from .symplectic import (
    PauliTable,
    batch_commutes,
    batch_lex_keys,
    batch_overlap,
    batch_shared_support,
    popcount,
)

__all__ = [
    "CODE_TO_LABEL",
    "LABEL_TO_CODE",
    "LEX_RANK",
    "I",
    "X",
    "Y",
    "Z",
    "PauliString",
    "PauliTable",
    "batch_commutes",
    "batch_lex_keys",
    "batch_overlap",
    "batch_shared_support",
    "popcount",
]
