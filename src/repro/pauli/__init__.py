"""Pauli operator algebra: single-qubit codes and multi-qubit strings."""

from .operators import CODE_TO_LABEL, I, LABEL_TO_CODE, LEX_RANK, X, Y, Z
from .strings import PauliString

__all__ = [
    "CODE_TO_LABEL",
    "LABEL_TO_CODE",
    "LEX_RANK",
    "I",
    "X",
    "Y",
    "Z",
    "PauliString",
]
