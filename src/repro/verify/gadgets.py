"""Gadget extraction: recover the rotation-gadget form of a circuit.

Any circuit over this repository's gate zoo is a word in Cliffords and the
three rotations, so it factors exactly as

.. code-block:: text

    U  =  C_total * R'_K * ... * R'_2 * R'_1

where ``R'_k = exp(-i theta_k/2 * P_k)`` is the ``k``-th rotation *peeled
back* through the Cliffords that precede it (``P_k = C_k^dagger A_k C_k``
with ``A_k`` the rotation's axis Pauli and ``C_k`` the Clifford prefix in
circuit order), and ``C_total`` is the product of every Clifford in the
circuit with the rotations deleted.

The peel is one forward sweep maintaining the *inverse conjugation map*
``M(P) = C^dagger P C`` of the growing Clifford prefix, tabulated on the
``2n`` generator rows ``X_q``/``Z_q``.  Appending a gate updates
``M' = M . Ad(g^dagger)``: since ``g^dagger P g`` is a +/-(i) product of
generators on ``g``'s qubits, each gate is at most two signed row
products.  Rows are stored as arbitrary-precision **integer bitmasks**
(X part, Z part, sign bit), so a row product is a handful of word-wide
XORs plus ``int.bit_count`` popcounts — ``O(n/64)`` machine words per
gate with no per-gate array dispatch, which is what keeps a 30-qubit
160k-gate verification in the hundreds of milliseconds.  When the sweep
meets a rotation on qubit ``q`` it reads the gadget straight off the
current row (``M(Z_q)`` for ``rz``, etc.).

Routed/permuted circuits need no special casing: SWAP gates are Cliffords,
so a rotation placed under an evolved layout conjugates back to its
initial-frame position automatically, and the layout's net permutation is
exactly what remains in ``C_total`` (see :class:`ResidualClifford`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..circuit import QuantumCircuit
from ..circuit.gates import OP, OPCODES
from ..pauli import PauliString
from .clifford import SignedPauli

__all__ = ["RotationGadget", "ResidualClifford", "ExtractionResult", "extract_gadgets"]

_OP_ID = OP["id"]
_OP_X = OP["x"]
_OP_Y = OP["y"]
_OP_Z = OP["z"]
_OP_H = OP["h"]
_OP_S = OP["s"]
_OP_SDG = OP["sdg"]
_OP_YH = OP["yh"]
_OP_RX = OP["rx"]
_OP_RY = OP["ry"]
_OP_RZ = OP["rz"]
_OP_CX = OP["cx"]
_OP_CZ = OP["cz"]
_OP_SWAP = OP["swap"]


def _mul(
    x1: int, z1: int, s1: int, x2: int, z2: int, s2: int
) -> Tuple[int, int, int]:
    """Signed Pauli row product ``(i^t) * (X^x Z^z)`` of two rows.

    Rows are ``(-1)^s X^{x} Z^{z}``-style signed Paulis in the ``Y = iXZ``
    convention; the returned ``t`` is the product's total ``i`` exponent
    mod 4 (callers fold in any extra ``i`` factors and then require ``t``
    even, since images of Hermitian Paulis stay Hermitian).
    """
    t = (
        2 * (s1 + s2)
        + (x1 & z1).bit_count()
        + (x2 & z2).bit_count()
        - ((x1 ^ x2) & (z1 ^ z2)).bit_count()
        + 2 * (z1 & x2).bit_count()
    )
    return x1 ^ x2, z1 ^ z2, t % 4


def _sign_bit(t: int) -> int:
    """Sign bit of a Hermitian row's ``i`` exponent (must be 0 or 2)."""
    if t & 1:
        raise AssertionError("non-Hermitian Pauli row; conjugation rules are broken")
    return (t >> 1) & 1


def _mask_string(x: int, z: int, num_qubits: int) -> PauliString:
    """Bitmask row -> positive-representative :class:`PauliString`."""
    codes = bytearray(num_qubits)
    support = x | z
    while support:
        qubit = (support & -support).bit_length() - 1
        codes[qubit] = ((x >> qubit) & 1) | (((z >> qubit) & 1) << 1)
        support &= support - 1
    return PauliString(bytes(codes))


@dataclass(frozen=True)
class RotationGadget:
    """One effective rotation ``exp(-i angle/2 * string)``.

    The row's sign is already folded into ``angle`` so ``string`` is
    always the positive representative.  ``position`` is the dense index
    (in live-gate order) of the originating rotation gate — mismatch
    reports point at it.
    """

    string: PauliString
    angle: float
    position: int

    @property
    def label(self) -> str:
        return self.string.label


class ResidualClifford:
    """The Clifford ``C_total`` left after all rotations are peeled out.

    Stored as its inverse conjugation map: row ``q`` of ``xs``/``zs`` is
    ``C^dagger X_q C`` / ``C^dagger Z_q C`` as ``(x_mask, z_mask, sign)``
    triples.  For a well-formed compilation this must be the identity
    (unrouted) or a pure qubit permutation matching the recorded layout
    transition (routed).
    """

    __slots__ = ("num_qubits", "x_rows", "z_rows")

    def __init__(
        self,
        num_qubits: int,
        x_rows: List[Tuple[int, int, int]],
        z_rows: List[Tuple[int, int, int]],
    ):
        self.num_qubits = num_qubits
        self.x_rows = x_rows
        self.z_rows = z_rows

    def inverse_image_of_x(self, qubit: int) -> SignedPauli:
        """``C^dagger X_q C`` as a signed Pauli."""
        x, z, s = self.x_rows[qubit]
        return SignedPauli(_mask_string(x, z, self.num_qubits), -1 if s else 1)

    def inverse_image_of_z(self, qubit: int) -> SignedPauli:
        """``C^dagger Z_q C`` as a signed Pauli."""
        x, z, s = self.z_rows[qubit]
        return SignedPauli(_mask_string(x, z, self.num_qubits), -1 if s else 1)

    def is_identity(self) -> bool:
        """True when ``C`` is the identity up to global phase."""
        return all(
            self.x_rows[q] == (1 << q, 0, 0) and self.z_rows[q] == (0, 1 << q, 0)
            for q in range(self.num_qubits)
        )

    def permutation(self) -> Optional[List[int]]:
        """The qubit permutation ``sigma`` realized by ``C``, if pure.

        Returns ``sigma`` with ``C X_p C^dagger = X_sigma(p)`` and
        ``C Z_p C^dagger = Z_sigma(p)`` (all signs positive), or ``None``
        when ``C`` is not a signless qubit permutation.
        """
        n = self.num_qubits
        sigma: List[Optional[int]] = [None] * n
        for q in range(n):
            x, z, s = self.x_rows[q]
            if s or z or x == 0 or x & (x - 1):
                return None
            source = x.bit_length() - 1
            zx, zz, zs = self.z_rows[q]
            if zs or zx or zz != x:
                return None
            if sigma[source] is not None:
                return None
            # C^dagger X_q C = X_source  <=>  C X_source C^dagger = X_q.
            sigma[source] = q
        return sigma  # bijective by construction (all n rows assigned)


@dataclass
class ExtractionResult:
    """A circuit's gadget factorization: gadgets in application order plus
    the residual Clifford applied after all of them."""

    gadgets: List[RotationGadget]
    frame: ResidualClifford
    num_qubits: int


def extract_gadgets(circuit: QuantumCircuit) -> ExtractionResult:
    """Factor a circuit into rotation gadgets and a residual Clifford."""
    n = circuit.num_qubits
    # Inverse-map rows M(X_q), M(Z_q) as parallel mask/sign lists.
    xx = [1 << q for q in range(n)]
    xz = [0] * n
    xsign = [0] * n
    zx = [0] * n
    zz = [1 << q for q in range(n)]
    zsign = [0] * n

    gadgets: List[RotationGadget] = []
    tape = circuit.tape
    ops, q0s, q1s, params = tape.op, tape.q0, tape.q1, tape.param
    position = 0
    for slot in tape.iter_slots():
        op = ops[slot]
        q = q0s[slot]
        if op == _OP_CX:
            t = q1s[slot]
            # CX^dagger X_c CX = X_c X_t ; CX^dagger Z_t CX = Z_c Z_t.
            x, z, e = _mul(xx[q], xz[q], xsign[q], xx[t], xz[t], xsign[t])
            xx[q], xz[q], xsign[q] = x, z, _sign_bit(e)
            x, z, e = _mul(zx[q], zz[q], zsign[q], zx[t], zz[t], zsign[t])
            zx[t], zz[t], zsign[t] = x, z, _sign_bit(e)
        elif op == _OP_RZ:
            gadgets.append(
                RotationGadget(
                    _mask_string(zx[q], zz[q], n),
                    -params[slot] if zsign[q] else params[slot],
                    position,
                )
            )
        elif op == _OP_H:
            xx[q], xz[q], xsign[q], zx[q], zz[q], zsign[q] = (
                zx[q], zz[q], zsign[q], xx[q], xz[q], xsign[q],
            )
        elif op == _OP_S:
            # S^dagger X S = -Y = i^2 * (i X Z) => row product exponent + 3.
            x, z, e = _mul(xx[q], xz[q], xsign[q], zx[q], zz[q], zsign[q])
            xx[q], xz[q], xsign[q] = x, z, _sign_bit(e + 3)
        elif op == _OP_SDG:
            # Sdg^dagger X Sdg = Y = i X Z.
            x, z, e = _mul(xx[q], xz[q], xsign[q], zx[q], zz[q], zsign[q])
            xx[q], xz[q], xsign[q] = x, z, _sign_bit(e + 1)
        elif op == _OP_YH:
            # yh^dagger X yh = -X ; yh^dagger Z yh = Y = i X Z.
            x, z, e = _mul(xx[q], xz[q], xsign[q], zx[q], zz[q], zsign[q])
            zx[q], zz[q], zsign[q] = x, z, _sign_bit(e + 1)
            xsign[q] ^= 1
        elif op == _OP_SWAP:
            t = q1s[slot]
            xx[q], xx[t] = xx[t], xx[q]
            xz[q], xz[t] = xz[t], xz[q]
            xsign[q], xsign[t] = xsign[t], xsign[q]
            zx[q], zx[t] = zx[t], zx[q]
            zz[q], zz[t] = zz[t], zz[q]
            zsign[q], zsign[t] = zsign[t], zsign[q]
        elif op == _OP_CZ:
            t = q1s[slot]
            # CZ^dagger X_a CZ = X_a Z_b (both rows read pre-update).
            new_a = _mul(xx[q], xz[q], xsign[q], zx[t], zz[t], zsign[t])
            new_b = _mul(xx[t], xz[t], xsign[t], zx[q], zz[q], zsign[q])
            xx[q], xz[q], xsign[q] = new_a[0], new_a[1], _sign_bit(new_a[2])
            xx[t], xz[t], xsign[t] = new_b[0], new_b[1], _sign_bit(new_b[2])
        elif op == _OP_RX:
            gadgets.append(
                RotationGadget(
                    _mask_string(xx[q], xz[q], n),
                    -params[slot] if xsign[q] else params[slot],
                    position,
                )
            )
        elif op == _OP_RY:
            # Y_q = i X_q Z_q.
            x, z, e = _mul(xx[q], xz[q], xsign[q], zx[q], zz[q], zsign[q])
            sign = _sign_bit(e + 1)
            gadgets.append(
                RotationGadget(
                    _mask_string(x, z, n),
                    -params[slot] if sign else params[slot],
                    position,
                )
            )
        elif op == _OP_X:
            zsign[q] ^= 1
        elif op == _OP_Z:
            xsign[q] ^= 1
        elif op == _OP_Y:
            xsign[q] ^= 1
            zsign[q] ^= 1
        elif op == _OP_ID:
            pass
        else:  # pragma: no cover - the opcode table is closed
            raise ValueError(f"unknown opcode {OPCODES[op]!r}")
        position += 1

    frame = ResidualClifford(
        n,
        [(xx[q], xz[q], xsign[q]) for q in range(n)],
        [(zx[q], zz[q], zsign[q]) for q in range(n)],
    )
    return ExtractionResult(gadgets=gadgets, frame=frame, num_qubits=n)
