"""Paper-scale equivalence verification by Pauli propagation.

The dense statevector oracle (:mod:`repro.circuit.statevector`) certifies
compilations up to ~16 qubits; beyond that, the only structure we can
exploit is the one Paulihedral itself compiles: every circuit this
repository emits is a product of Pauli-rotation gadgets conjugated by
Clifford segments.  Conjugating each rotation's axis back through the
enclosing Cliffords (PCOAST-style Pauli propagation) recovers the
effective ``(PauliString, angle)`` gadget sequence in time polynomial in
gates and qubits, which turns "verify a 30-qubit Trotter step" into
milliseconds.

Three layers:

* :mod:`repro.verify.clifford` — the vectorized, bit-packed Clifford
  conjugation engine (whole-table word ops per gate) shared with the
  baseline tableau code;
* :mod:`repro.verify.gadgets` — gadget extraction: peel every rotation
  in a :class:`~repro.circuit.circuit.QuantumCircuit` back through the
  Cliffords preceding it, plus the residual Clifford frame;
* :mod:`repro.verify.equivalence` — canonicalization and comparison of
  gadget sequences against the scheduled source program, with a precise
  first-divergence mismatch report.
"""

from .clifford import SignedPauli, SignedPauliTable, conjugate_rows
from .gadgets import ExtractionResult, ResidualClifford, RotationGadget, extract_gadgets
from .equivalence import (
    GadgetMismatch,
    VerificationError,
    VerificationReport,
    canonicalize_gadgets,
    expected_gadgets,
    verify_circuit,
    verify_result,
)

__all__ = [
    "ExtractionResult",
    "GadgetMismatch",
    "ResidualClifford",
    "RotationGadget",
    "SignedPauli",
    "SignedPauliTable",
    "VerificationError",
    "VerificationReport",
    "canonicalize_gadgets",
    "conjugate_rows",
    "expected_gadgets",
    "extract_gadgets",
    "verify_circuit",
    "verify_result",
]
