"""Equivalence checking of compiled circuits against their source program.

The oracle: a compilation is correct iff

1. the **multiset** of emitted ``(string, coefficient)`` terms equals the
   program's IR multiset (the scheduling licence — block and term order are
   semantically free, Figure 7), and
2. the compiled circuit's gadget factorization (see
   :mod:`repro.verify.gadgets`) equals ``exp(i c_k Q_k)`` over the emitted
   order, up to the rewrites the generic peephole pipeline is licensed to
   make — merging equal-Pauli gadgets across gadgets they commute with,
   dropping angle-``0 (mod 2pi)`` gadgets — and, for routed circuits, a
   residual qubit permutation matching the recorded layout transition.

Both sides are *canonicalized* (same-Pauli gadgets merged through
commuting neighbours, angles wrapped to ``(-pi, pi]``, zeros dropped) and
then matched greedily with commuting slack: an actual gadget may match an
expected gadget further ahead only if it commutes with every unmatched
expected gadget it jumps over.  Every accepted step is a sound rewrite of
the expected sequence, so a full match certifies unitary equivalence up to
global phase; the first failing step yields a localized
:class:`GadgetMismatch` (gadget index, circuit gate position, first
differing qubit).

Angles compare mod ``2pi``: a ``2pi`` discrepancy flips only the global
phase, which the oracle (like the statevector one) deliberately ignores.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit import QuantumCircuit
from ..ir import PauliProgram
from ..pauli import PauliString
from ..transpile import Layout
from .gadgets import RotationGadget, extract_gadgets

__all__ = [
    "GadgetMismatch",
    "VerificationError",
    "VerificationReport",
    "canonicalize_gadgets",
    "expected_gadgets",
    "verify_circuit",
    "verify_result",
]

_TWO_PI = 2.0 * math.pi

#: Cap on the commuting walk length during canonicalization/matching; a
#: pathological all-commuting sequence stays O(len * cap) instead of
#: quadratic.  Hitting the cap is reported as a (conservative) mismatch.
_COMMUTE_CAP = 4096


def _wrap(angle: float) -> float:
    """Wrap an angle into ``(-pi, pi]`` (gadget angles are mod ``2pi``)."""
    return math.remainder(angle, _TWO_PI)


@dataclass(frozen=True)
class GadgetMismatch:
    """First point of divergence between expected and extracted gadgets.

    ``kind`` is one of ``"pauli"`` (different operator), ``"angle"``
    (same operator, different rotation), ``"extra"`` (circuit gadget with
    no source term), ``"missing"`` (source term never realized),
    ``"frame"`` (residual Clifford is not the recorded permutation), or
    ``"multiset"`` (emitted terms are not a reordering of the program).
    """

    kind: str
    index: int
    expected: Optional[Tuple[str, float]] = None
    actual: Optional[Tuple[str, float]] = None
    #: Dense gate index of the offending rotation in the checked circuit.
    position: Optional[int] = None
    #: First qubit whose operator differs (``"pauli"`` mismatches).
    qubit: Optional[int] = None
    detail: str = ""

    def describe(self) -> str:
        parts = [f"{self.kind} mismatch at gadget {self.index}"]
        if self.expected is not None:
            parts.append(f"expected {self.expected[0]} angle {self.expected[1]:+.9g}")
        if self.actual is not None:
            parts.append(f"got {self.actual[0]} angle {self.actual[1]:+.9g}")
        if self.qubit is not None:
            parts.append(f"first diverging qubit q{self.qubit}")
        if self.position is not None:
            parts.append(f"circuit gate index {self.position}")
        if self.detail:
            parts.append(self.detail)
        return "; ".join(parts)


@dataclass
class VerificationReport:
    """Outcome of one Pauli-propagation equivalence check."""

    ok: bool
    num_qubits: int
    #: Canonical gadget count of the checked circuit / the source terms.
    gadget_count: int = 0
    term_count: int = 0
    max_angle_error: float = 0.0
    mismatch: Optional[GadgetMismatch] = None
    seconds: float = 0.0
    permutation: Optional[List[int]] = field(default=None, repr=False)

    def describe(self) -> str:
        if self.ok:
            return (
                f"verified: {self.term_count} source terms == "
                f"{self.gadget_count} circuit gadgets on {self.num_qubits} "
                f"qubits (max angle error {self.max_angle_error:.2e}, "
                f"{self.seconds * 1e3:.1f} ms)"
            )
        assert self.mismatch is not None
        return f"verification FAILED: {self.mismatch.describe()}"

    def raise_if_failed(self) -> "VerificationReport":
        if not self.ok:
            raise VerificationError(self)
        return self


class VerificationError(Exception):
    """A compiled circuit failed Pauli-propagation verification."""

    def __init__(self, report: VerificationReport):
        super().__init__(report.describe())
        self.report = report


# ----------------------------------------------------------------------
# Canonicalization
# ----------------------------------------------------------------------

def canonicalize_gadgets(
    gadgets: Sequence[RotationGadget], atol: float = 1e-8
) -> List[RotationGadget]:
    """Normalize a gadget sequence for comparison.

    Wraps every angle into ``(-pi, pi]``, drops (near-)zero rotations, and
    merges each gadget into the most recent earlier gadget with the same
    Pauli when every gadget in between commutes with it — exactly the
    rewrites the peephole's wire-adjacent rotation merge realizes on the
    circuit side (wire adjacency implies the skipped gadgets' conjugated
    Paulis act as identity on the merge wire, hence commute).
    """
    out: List[RotationGadget] = []
    for gadget in gadgets:
        angle = _wrap(gadget.angle)
        if abs(angle) <= atol:
            continue
        merged = False
        steps = 0
        for k in range(len(out) - 1, -1, -1):
            entry = out[k]
            if entry.string == gadget.string:
                total = _wrap(entry.angle + angle)
                if abs(total) <= atol:
                    del out[k]
                else:
                    out[k] = RotationGadget(entry.string, total, entry.position)
                merged = True
                break
            steps += 1
            if steps >= _COMMUTE_CAP or not entry.string.commutes_with(gadget.string):
                break
        if not merged:
            out.append(RotationGadget(gadget.string, angle, gadget.position))
    return out


def expected_gadgets(
    terms: Sequence[Tuple[PauliString, float]],
    num_qubits: int,
    initial_layout: Optional[Layout] = None,
) -> List[RotationGadget]:
    """The gadget sequence an emitted term list prescribes.

    Term ``(Q, c)`` means ``exp(i c Q)``, i.e. a gadget with angle
    ``-2 c``.  Under an initial layout the operator is re-indexed onto its
    physical qubits (``num_qubits`` is then the device width); SWAPs in the
    circuit need no handling here because extraction already conjugates
    every rotation back to the initial frame.
    """
    out: List[RotationGadget] = []
    for index, (string, coefficient) in enumerate(terms):
        if string.is_identity:
            continue
        if initial_layout is not None:
            codes = bytearray(num_qubits)
            for qubit in string.support:
                codes[initial_layout.physical(qubit)] = string.code_at(qubit)
            string = PauliString(bytes(codes))
        elif string.num_qubits != num_qubits:
            raise ValueError(
                f"term on {string.num_qubits} qubits vs circuit on {num_qubits}; "
                "pass the initial layout for routed circuits"
            )
        out.append(RotationGadget(string, -2.0 * coefficient, index))
    return out


# ----------------------------------------------------------------------
# Matching
# ----------------------------------------------------------------------

def _first_differing_qubit(a: PauliString, b: PauliString) -> Optional[int]:
    for qubit, (ca, cb) in enumerate(zip(a.codes, b.codes)):
        if ca != cb:
            return qubit
    return None


def _match_sequences(
    expected: List[RotationGadget],
    actual: List[RotationGadget],
    atol: float,
) -> Tuple[Optional[GadgetMismatch], float]:
    """Greedy order match with commuting slack; returns (mismatch, max_err)."""
    used = [False] * len(expected)
    ptr = 0
    max_err = 0.0
    for gadget in actual:
        i = ptr
        steps = 0
        while i < len(expected):
            if used[i]:
                i += 1
                continue
            entry = expected[i]
            if entry.string == gadget.string:
                err = abs(_wrap(entry.angle - gadget.angle))
                if err > atol:
                    return (
                        GadgetMismatch(
                            kind="angle",
                            index=i,
                            expected=(entry.label, entry.angle),
                            actual=(gadget.label, gadget.angle),
                            position=gadget.position,
                            detail=f"angles differ by {err:.3e} (mod 2pi)",
                        ),
                        max_err,
                    )
                used[i] = True
                max_err = max(max_err, err)
                while ptr < len(expected) and used[ptr]:
                    ptr += 1
                break
            steps += 1
            if steps >= _COMMUTE_CAP or not entry.string.commutes_with(gadget.string):
                qubit = _first_differing_qubit(entry.string, gadget.string)
                return (
                    GadgetMismatch(
                        kind="pauli",
                        index=i,
                        expected=(entry.label, entry.angle),
                        actual=(gadget.label, gadget.angle),
                        position=gadget.position,
                        qubit=qubit,
                        detail=(
                            "commuting window exhausted"
                            if steps >= _COMMUTE_CAP
                            else "circuit gadget blocked by a non-commuting source term"
                        ),
                    ),
                    max_err,
                )
            i += 1
        else:
            return (
                GadgetMismatch(
                    kind="extra",
                    index=len(expected),
                    actual=(gadget.label, gadget.angle),
                    position=gadget.position,
                    detail="circuit gadget has no remaining source term",
                ),
                max_err,
            )
    for i in range(len(expected)):
        if not used[i]:
            entry = expected[i]
            return (
                GadgetMismatch(
                    kind="missing",
                    index=i,
                    expected=(entry.label, entry.angle),
                    detail="source term never realized by the circuit",
                ),
                max_err,
            )
    return None, max_err


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def verify_circuit(
    circuit: QuantumCircuit,
    terms: Sequence[Tuple[PauliString, float]],
    initial_layout: Optional[Layout] = None,
    final_layout: Optional[Layout] = None,
    atol: float = 1e-8,
) -> VerificationReport:
    """Check one circuit against an ordered ``(string, coefficient)`` list.

    For routed circuits pass both recorded layouts; the residual Clifford
    must then be exactly the permutation carrying each logical qubit from
    its initial to its final physical position.  Without layouts the
    residual Clifford must be the identity.
    """
    start = time.perf_counter()
    if final_layout is not None and initial_layout is None:
        raise ValueError("a final layout needs the matching initial layout")
    extraction = extract_gadgets(circuit)
    actual = canonicalize_gadgets(extraction.gadgets, atol=atol)
    expected = canonicalize_gadgets(
        expected_gadgets(terms, circuit.num_qubits, initial_layout), atol=atol
    )

    report = VerificationReport(
        ok=True,
        num_qubits=circuit.num_qubits,
        gadget_count=len(actual),
        term_count=len(expected),
    )

    # Residual Clifford first: a frame error poisons every gadget after
    # the first unmirrored gate, so it is the more fundamental report.
    sigma = extraction.frame.permutation()
    report.permutation = sigma
    if initial_layout is None:
        if not extraction.frame.is_identity():
            report.ok = False
            report.mismatch = GadgetMismatch(
                kind="frame",
                index=0,
                detail=(
                    "residual Clifford is not the identity"
                    if sigma is None
                    else f"residual qubit permutation {sigma} on an unrouted circuit"
                ),
            )
    else:
        final = final_layout if final_layout is not None else initial_layout
        if sigma is None:
            report.ok = False
            report.mismatch = GadgetMismatch(
                kind="frame",
                index=0,
                detail="residual Clifford is not a pure qubit permutation",
            )
        else:
            for logical in range(initial_layout.num_logical):
                source = initial_layout.physical(logical)
                target = final.physical(logical)
                if sigma[source] != target:
                    report.ok = False
                    report.mismatch = GadgetMismatch(
                        kind="frame",
                        index=0,
                        qubit=source,
                        detail=(
                            f"logical q{logical} ends at physical "
                            f"{sigma[source]} but the final layout records {target}"
                        ),
                    )
                    break

    if report.ok:
        mismatch, max_err = _match_sequences(expected, actual, atol)
        report.max_angle_error = max_err
        if mismatch is not None:
            report.ok = False
            report.mismatch = mismatch

    report.seconds = time.perf_counter() - start
    return report


def _program_multiset(program: PauliProgram) -> Counter:
    counts: Counter = Counter()
    for (string, coefficient), multiplicity in program.multiset_of_terms().items():
        if not string.is_identity:
            counts[(string, coefficient)] += multiplicity
    return counts


def verify_result(
    program: PauliProgram,
    result,
    atol: float = 1e-8,
    check_multiset: bool = True,
) -> VerificationReport:
    """Verify a :class:`~repro.core.compiler.CompilationResult` end to end.

    Certifies (1) the emitted term order is a reordering of the source
    program's term multiset (identity strings excluded — they are global
    phase) and (2) the circuit realizes exactly the emitted gadget
    sequence under the recorded layouts.
    """
    if check_multiset:
        emitted: Counter = Counter(
            (string, coefficient)
            for string, coefficient in result.emitted_terms
            if not string.is_identity
        )
        source = _program_multiset(program)
        if emitted != source:
            missing = next(iter(source - emitted), None)
            extra = next(iter(emitted - source), None)
            detail = []
            if missing is not None:
                detail.append(
                    f"program term ({missing[0].label}, {missing[1]!r}) not emitted"
                )
            if extra is not None:
                detail.append(
                    f"emitted term ({extra[0].label}, {extra[1]!r}) not in program"
                )
            return VerificationReport(
                ok=False,
                num_qubits=result.circuit.num_qubits,
                term_count=sum(source.values()),
                mismatch=GadgetMismatch(
                    kind="multiset", index=0, detail="; ".join(detail)
                ),
            )
    return verify_circuit(
        result.circuit,
        result.emitted_terms,
        initial_layout=result.initial_layout,
        final_layout=result.final_layout,
        atol=atol,
    )
