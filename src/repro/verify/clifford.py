"""Vectorized, bit-packed Clifford conjugation engine.

A :class:`SignedPauliTable` holds ``m`` signed Pauli operators on ``n``
qubits as bit-packed symplectic X/Z matrices (same packing as
:class:`~repro.pauli.symplectic.PauliTable`: qubit ``i`` is bit ``i % 8``
of byte ``i // 8``) plus a per-row phase bit.  Conjugating the whole table
by a Clifford gate ``P -> g P g^dagger`` touches only the byte column(s)
of the gate's qubits — a handful of word-wide XOR/AND ops over all rows at
once, instead of the per-row per-qubit Python loop of the old
``baselines.tableau.TrackedPauli``.

Both directions are supported (``apply`` conjugates by ``g``,
``apply_inverse`` by ``g^dagger``).  This is the shared conjugation
primitive behind :mod:`repro.baselines.tableau` (simultaneous
diagonalization) and the matrix-validated reference the gadget
extractor's int-bitmask sweep (:mod:`repro.verify.gadgets`) is
cross-checked against.

The sign conventions are the standard CHP/tableau update rules; the
scalar tables they replace are kept as a reference implementation in
``tests/test_verify.py`` (the scalar-vs-packed migration gate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from ..circuit.gates import OP, OP_ROTATION
from ..circuit.tape import NO_SLOT
from ..pauli import PauliString

__all__ = ["SignedPauli", "SignedPauliTable", "conjugate_rows", "conjugate_tape"]

_OP_ID = OP["id"]
_OP_X = OP["x"]
_OP_Y = OP["y"]
_OP_Z = OP["z"]
_OP_H = OP["h"]
_OP_S = OP["s"]
_OP_SDG = OP["sdg"]
_OP_YH = OP["yh"]
_OP_CX = OP["cx"]
_OP_CZ = OP["cz"]
_OP_SWAP = OP["swap"]

#: opcode -> opcode whose forward conjugation equals this gate's inverse
#: conjugation (every Clifford here is self-inverse except s <-> sdg).
_CONJ_INVERSE = {
    _OP_ID: _OP_ID, _OP_X: _OP_X, _OP_Y: _OP_Y, _OP_Z: _OP_Z,
    _OP_H: _OP_H, _OP_S: _OP_SDG, _OP_SDG: _OP_S, _OP_YH: _OP_YH,
    _OP_CX: _OP_CX, _OP_CZ: _OP_CZ, _OP_SWAP: _OP_SWAP,
}


def conjugate_rows(
    x: np.ndarray, z: np.ndarray, phase: np.ndarray, op: int, q0: int, q1: int = NO_SLOT
) -> None:
    """Apply ``P -> g P g^dagger`` in place to every row of ``(x, z, phase)``.

    ``x``/``z`` are ``(m, ceil(n/8))`` bit-packed ``uint8`` matrices and
    ``phase`` an ``(m,)`` ``uint8`` vector of sign bits (``sign =
    (-1)**phase``); all three may be views (row slices) of larger tables.
    ``op`` must be a Clifford opcode — rotations are rejected.
    """
    j0, s0 = q0 >> 3, q0 & 7
    if op == _OP_H:
        xq = (x[:, j0] >> s0) & 1
        zq = (z[:, j0] >> s0) & 1
        phase ^= xq & zq
        flip = (xq ^ zq) << s0
        x[:, j0] ^= flip
        z[:, j0] ^= flip
    elif op == _OP_S:
        xq = (x[:, j0] >> s0) & 1
        zq = (z[:, j0] >> s0) & 1
        phase ^= xq & zq
        z[:, j0] ^= xq << s0
    elif op == _OP_SDG:
        xq = (x[:, j0] >> s0) & 1
        zq = (z[:, j0] >> s0) & 1
        phase ^= xq & (zq ^ 1)
        z[:, j0] ^= xq << s0
    elif op == _OP_YH:
        # (Y+Z)/sqrt(2): X -> -X, Y <-> Z.
        xq = (x[:, j0] >> s0) & 1
        zq = (z[:, j0] >> s0) & 1
        phase ^= xq & (zq ^ 1)
        x[:, j0] ^= zq << s0
    elif op == _OP_X:
        phase ^= (z[:, j0] >> s0) & 1
    elif op == _OP_Z:
        phase ^= (x[:, j0] >> s0) & 1
    elif op == _OP_Y:
        phase ^= ((x[:, j0] ^ z[:, j0]) >> s0) & 1
    elif op == _OP_CX:
        j1, s1 = q1 >> 3, q1 & 7
        xc = (x[:, j0] >> s0) & 1
        zc = (z[:, j0] >> s0) & 1
        xt = (x[:, j1] >> s1) & 1
        zt = (z[:, j1] >> s1) & 1
        phase ^= xc & zt & (xt ^ zc ^ 1)
        x[:, j1] ^= xc << s1
        z[:, j0] ^= zt << s0
    elif op == _OP_CZ:
        j1, s1 = q1 >> 3, q1 & 7
        xa = (x[:, j0] >> s0) & 1
        za = (z[:, j0] >> s0) & 1
        xb = (x[:, j1] >> s1) & 1
        zb = (z[:, j1] >> s1) & 1
        phase ^= xa & xb & (za ^ zb)
        z[:, j0] ^= xb << s0
        z[:, j1] ^= xa << s1
    elif op == _OP_SWAP:
        j1, s1 = q1 >> 3, q1 & 7
        dx = ((x[:, j0] >> s0) ^ (x[:, j1] >> s1)) & 1
        x[:, j0] ^= dx << s0
        x[:, j1] ^= dx << s1
        dz = ((z[:, j0] >> s0) ^ (z[:, j1] >> s1)) & 1
        z[:, j0] ^= dz << s0
        z[:, j1] ^= dz << s1
    elif op == _OP_ID:
        pass
    elif op in OP_ROTATION:
        raise ValueError("rotations are not Clifford; peel them as gadgets instead")
    else:
        raise ValueError(f"unknown Clifford opcode {op}")


class _ConjugationScratch:
    """Reusable ``(m,)`` work buffers for :func:`conjugate_tape`.

    ``conjugate_rows`` allocates three to five fresh ``(m,)`` temporaries
    per gate; over a 10^5-gate tape against a large table that is the
    dominant conjugation cost.  The scratch pins four buffers and every
    gate reuses them via ``out=`` ufunc calls, so a whole-tape sweep does
    zero per-gate allocation.
    """

    __slots__ = ("a", "b", "c", "d")

    def __init__(self, num_rows: int):
        self.a = np.empty(num_rows, dtype=np.uint8)
        self.b = np.empty(num_rows, dtype=np.uint8)
        self.c = np.empty(num_rows, dtype=np.uint8)
        self.d = np.empty(num_rows, dtype=np.uint8)


def _column_bit(m: np.ndarray, j: int, s: int, out: np.ndarray) -> np.ndarray:
    """``out = (m[:, j] >> s) & 1`` without allocating."""
    np.right_shift(m[:, j], s, out=out)
    out &= 1
    return out


def conjugate_tape(
    x: np.ndarray,
    z: np.ndarray,
    phase: np.ndarray,
    gates: Iterable,
    scratch: "_ConjugationScratch" = None,
) -> None:
    """Conjugate every row by a whole gate sequence, allocation-free.

    ``gates`` yields ``(op, q0, q1)`` triples (``q1`` ignored for
    single-qubit gates; pass :data:`~repro.circuit.tape.NO_SLOT`).  The
    semantics per gate are identical to :func:`conjugate_rows`; the
    difference is purely mechanical — all per-gate temporaries live in one
    preallocated :class:`_ConjugationScratch`, reused across the sweep.
    """
    if scratch is None:
        scratch = _ConjugationScratch(x.shape[0])
    a, b, c = scratch.a, scratch.b, scratch.c
    for op, q0, q1 in gates:
        j0, s0 = q0 >> 3, q0 & 7
        if op == _OP_H:
            xq = _column_bit(x, j0, s0, a)
            zq = _column_bit(z, j0, s0, b)
            np.bitwise_and(xq, zq, out=c)
            phase ^= c
            np.bitwise_xor(xq, zq, out=c)
            c <<= s0
            x[:, j0] ^= c
            z[:, j0] ^= c
        elif op == _OP_S:
            xq = _column_bit(x, j0, s0, a)
            zq = _column_bit(z, j0, s0, b)
            np.bitwise_and(xq, zq, out=c)
            phase ^= c
            xq <<= s0
            z[:, j0] ^= xq
        elif op == _OP_SDG:
            xq = _column_bit(x, j0, s0, a)
            zq = _column_bit(z, j0, s0, b)
            zq ^= 1
            np.bitwise_and(xq, zq, out=c)
            phase ^= c
            xq <<= s0
            z[:, j0] ^= xq
        elif op == _OP_YH:
            xq = _column_bit(x, j0, s0, a)
            zq = _column_bit(z, j0, s0, b)
            np.bitwise_xor(zq, 1, out=c)
            c &= xq
            phase ^= c
            zq <<= s0
            x[:, j0] ^= zq
        elif op == _OP_X:
            phase ^= _column_bit(z, j0, s0, a)
        elif op == _OP_Z:
            phase ^= _column_bit(x, j0, s0, a)
        elif op == _OP_Y:
            np.bitwise_xor(x[:, j0], z[:, j0], out=a)
            a >>= s0
            a &= 1
            phase ^= a
        elif op == _OP_CX:
            j1, s1 = q1 >> 3, q1 & 7
            xc = _column_bit(x, j0, s0, a)
            zt = _column_bit(z, j1, s1, b)
            xt = _column_bit(x, j1, s1, c)
            zc = _column_bit(z, j0, s0, scratch.d)
            # phase ^= xc & zt & (xt ^ zc ^ 1)
            xt ^= zc
            xt ^= 1
            xt &= xc
            xt &= zt
            phase ^= xt
            xc <<= s1
            x[:, j1] ^= xc
            zt <<= s0
            z[:, j0] ^= zt
        elif op == _OP_CZ:
            j1, s1 = q1 >> 3, q1 & 7
            xa = _column_bit(x, j0, s0, a)
            xb = _column_bit(x, j1, s1, b)
            za = _column_bit(z, j0, s0, c)
            zb = _column_bit(z, j1, s1, scratch.d)
            # phase ^= xa & xb & (za ^ zb)
            za ^= zb
            za &= xa
            za &= xb
            phase ^= za
            xb <<= s0
            z[:, j0] ^= xb
            xa <<= s1
            z[:, j1] ^= xa
        elif op == _OP_SWAP:
            j1, s1 = q1 >> 3, q1 & 7
            np.right_shift(x[:, j0], s0, out=a)
            np.right_shift(x[:, j1], s1, out=b)
            a ^= b
            a &= 1
            np.left_shift(a, s0, out=b)
            x[:, j0] ^= b
            a <<= s1
            x[:, j1] ^= a
            np.right_shift(z[:, j0], s0, out=a)
            np.right_shift(z[:, j1], s1, out=b)
            a ^= b
            a &= 1
            np.left_shift(a, s0, out=b)
            z[:, j0] ^= b
            a <<= s1
            z[:, j1] ^= a
        elif op == _OP_ID:
            pass
        elif op in OP_ROTATION:
            raise ValueError(
                "rotations are not Clifford; peel them as gadgets instead"
            )
        else:
            raise ValueError(f"unknown Clifford opcode {op}")


@dataclass(frozen=True)
class SignedPauli:
    """An immutable ``sign * PauliString`` pair (``sign`` is +1 or -1).

    Keeps the row-accessor surface of the old ``TrackedPauli`` so the
    diagonalization consumers (TK baseline, measurement planner) read one
    record type whether the row came from the packed engine or a test's
    scalar reference.
    """

    string: PauliString
    sign: int

    @property
    def num_qubits(self) -> int:
        return self.string.num_qubits

    def x_bit(self, qubit: int) -> int:
        return self.string.code_at(qubit) & 1

    def z_bit(self, qubit: int) -> int:
        return (self.string.code_at(qubit) >> 1) & 1

    def is_diagonal(self) -> bool:
        return all((c & 1) == 0 for c in self.string.codes)

    def to_string(self) -> PauliString:
        return self.string


class SignedPauliTable:
    """A mutable batch of signed Pauli rows under Clifford conjugation."""

    __slots__ = ("x", "z", "phase", "num_qubits")

    def __init__(self, x: np.ndarray, z: np.ndarray, phase: np.ndarray, num_qubits: int):
        self.x = x
        self.z = z
        self.phase = phase
        self.num_qubits = num_qubits

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, num_rows: int, num_qubits: int) -> "SignedPauliTable":
        """All-identity rows with positive sign."""
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        nbytes = (num_qubits + 7) >> 3
        return cls(
            np.zeros((num_rows, nbytes), dtype=np.uint8),
            np.zeros((num_rows, nbytes), dtype=np.uint8),
            np.zeros(num_rows, dtype=np.uint8),
            num_qubits,
        )

    @classmethod
    def from_strings(cls, strings: Iterable[PauliString]) -> "SignedPauliTable":
        string_list = list(strings)
        if not string_list:
            raise ValueError("a SignedPauliTable needs at least one row")
        n = string_list[0].num_qubits
        for s in string_list:
            if s.num_qubits != n:
                raise ValueError("all rows must act on the same qubit count")
        codes = np.frombuffer(
            b"".join(s.codes for s in string_list), dtype=np.uint8
        ).reshape(len(string_list), n)
        table = cls.zeros(len(string_list), n)
        table.x[:] = np.packbits(codes & 1, axis=1, bitorder="little")
        table.z[:] = np.packbits(codes >> 1, axis=1, bitorder="little")
        return table

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(self, op: int, q0: int, q1: int = NO_SLOT) -> None:
        """Conjugate every row by the gate: ``P -> g P g^dagger``."""
        conjugate_rows(self.x, self.z, self.phase, op, q0, q1)

    def apply_inverse(self, op: int, q0: int, q1: int = NO_SLOT) -> None:
        """Conjugate every row by the inverse gate: ``P -> g^dagger P g``."""
        self.apply(_CONJ_INVERSE[op], q0, q1)

    def apply_tape(self, gates: Iterable) -> None:
        """Conjugate every row by a whole ``(op, q0, q1)`` gate sequence in
        one allocation-free sweep (see :func:`conjugate_tape`)."""
        conjugate_tape(
            self.x, self.z, self.phase, gates,
            scratch=_ConjugationScratch(self.num_rows),
        )

    def apply_tape_inverse(self, gates) -> None:
        """Conjugate by the *inverse* of a gate sequence: gates reversed,
        each replaced by its inverse Clifford.  ``gates`` must be a
        reversible sequence (list/tuple), not a one-shot iterator."""
        self.apply_tape(
            (_CONJ_INVERSE[op], q0, q1) for op, q0, q1 in reversed(gates)
        )

    # ------------------------------------------------------------------
    # Row queries
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.x.shape[0]

    def __len__(self) -> int:
        return self.num_rows

    def x_bit(self, row: int, qubit: int) -> int:
        return int((self.x[row, qubit >> 3] >> (qubit & 7)) & 1)

    def z_bit(self, row: int, qubit: int) -> int:
        return int((self.z[row, qubit >> 3] >> (qubit & 7)) & 1)

    def sign(self, row: int) -> int:
        return -1 if self.phase[row] else 1

    def signs(self) -> np.ndarray:
        """Per-row signs as an ``int8`` vector of +1/-1."""
        return np.where(self.phase & 1, -1, 1).astype(np.int8)

    def is_diagonal(self, row: int) -> bool:
        """True when the row has no X component (Z/I only)."""
        return not self.x[row].any()

    def codes(self) -> np.ndarray:
        """Unpacked ``(m, n)`` Pauli-code matrix (column = qubit)."""
        n = self.num_qubits
        xb = np.unpackbits(self.x, axis=1, bitorder="little", count=n)
        zb = np.unpackbits(self.z, axis=1, bitorder="little", count=n)
        return (xb | (zb << 1)).astype(np.uint8)

    def string(self, row: int) -> PauliString:
        n = self.num_qubits
        xb = np.unpackbits(self.x[row], bitorder="little", count=n)
        zb = np.unpackbits(self.z[row], bitorder="little", count=n)
        return PauliString((xb | (zb << 1)).tobytes())

    def signed(self, row: int) -> SignedPauli:
        return SignedPauli(self.string(row), self.sign(row))

    def to_signed_paulis(self) -> List[SignedPauli]:
        codes = self.codes()
        signs = self.signs()
        return [
            SignedPauli(PauliString(codes[k].tobytes()), int(signs[k]))
            for k in range(self.num_rows)
        ]


