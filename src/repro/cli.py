"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
* ``list`` — show the benchmark registry (Table 1 names);
* ``compile NAME`` — compile one benchmark with Paulihedral and print the
  paper metrics, optionally against the baselines;
* ``compile-batch SPECS.jsonl`` — serve a JSONL stream of program specs
  through the content-addressed cache and worker pool, writing one JSONL
  artifact row per input plus a cache-stats summary;
* ``verify SPECS.jsonl --cache DIR`` — re-fingerprint each spec's program
  and run the Pauli-propagation verifier over the artifact the cache
  stores for it (catches stale, corrupted, or miscompiled artifacts at
  any qubit count, no statevector involved);
* ``check`` — static analysis: with no arguments, re-validate every
  shipped pipeline against the pass-contract checker and print the
  property flow; with ``SPECS.jsonl --cache DIR``, sweep each spec's
  program and stored artifact with the IR invariant analyzer, naming
  the first broken invariant (e.g. ``tape.wire-links``) on failure;
* ``serve`` — run the async compile gateway: a long-lived daemon serving
  newline-delimited JSON compile requests over a local socket, with
  admission control and the content-addressed cache shared across all
  clients (see :mod:`repro.service.gateway`);
* ``serve-cluster`` — run a sharded N-node fabric: a supervisor spawns N
  gateway nodes (each ``serve`` in shared-store mode, peers wired for
  pull-through replication) and fronts them with the consistent-hash
  router (see :mod:`repro.service.cluster`), surviving any single node
  dying;
* ``client SPECS.jsonl`` — stream a JSONL spec file through a running
  gateway or cluster router (pipelined), or query its ``stats`` verb;
* ``table1|table2|table3|table4|fig11`` — regenerate one experiment and
  print the report table.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .analysis import (
    circuit_metrics,
    fig11_study,
    format_table,
    table1_inventory,
    table2_compare,
    table3_compare,
    table4_passes,
)
from .baselines import tk_compile
from .core import compile_program
from .transpile import manhattan_65, transpile, validate_routed
from .workloads import BENCHMARKS, benchmark_names, build_benchmark, random_graph, regular_graph

__all__ = ["main"]


def _cmd_list(_args) -> int:
    rows = [
        [name, spec.backend, spec.family]
        for name, spec in BENCHMARKS.items()
    ]
    print(format_table(["Benchmark", "Backend", "Family"], rows))
    return 0


def _resolve_device_arg(value: Optional[str]):
    """``--device`` accepts a registry name or a snapshot JSON path."""
    if value is None:
        return None
    from .transpile import get_device, load_device

    if value.endswith(".json") or os.path.sep in value or os.path.exists(value):
        return load_device(value)
    return get_device(value)


def _cmd_compile(args) -> int:
    spec = BENCHMARKS.get(args.name)
    if spec is None:
        print(f"unknown benchmark {args.name!r}; try 'list'", file=sys.stderr)
        return 2
    try:
        device = _resolve_device_arg(args.device)
    except (ValueError, OSError, KeyError) as exc:
        print(f"bad --device: {exc}", file=sys.stderr)
        return 2
    program = spec.build(args.scale)
    if device is not None:
        coupling = device.coupling if spec.backend == "sc" else None
        kwargs = {"device": device}
    else:
        coupling = manhattan_65() if spec.backend == "sc" else None
        kwargs = {"coupling": coupling} if coupling is not None else {}

    verification = None
    if args.opt_level is None and args.frontend == "ph":
        # Legacy path: Paulihedral frontend with its own peephole cleanup.
        result = compile_program(
            program, backend=spec.backend, scheduler=args.scheduler, **kwargs
        )
        header = f"{args.name} ({spec.backend} backend, scheduler={result.scheduler})"
        metrics = result.metrics
        esp_circuit = result.circuit
        if args.verify:
            from .verify import verify_result

            verification = verify_result(program, result)
    else:
        # Table 2 path: frontend without its own cleanup, then the generic
        # level-N pipeline (optimize / coupling-aware routing / re-optimize).
        level = 3 if args.opt_level is None else args.opt_level
        if args.frontend == "tk":
            if args.scheduler is not None:
                print(
                    "warning: --scheduler only applies to the ph frontend; "
                    "ignored for --frontend tk",
                    file=sys.stderr,
                )
            if args.verify:
                print(
                    "--verify needs the ph frontend's emitted term order; "
                    "not supported with --frontend tk",
                    file=sys.stderr,
                )
                return 2
            circuit = tk_compile(program).circuit
            tag = "tk"
            needs_routing = spec.backend == "sc"
        else:
            result = compile_program(
                program, backend=spec.backend, scheduler=args.scheduler,
                run_peephole=False, **kwargs,
            )
            circuit = result.circuit
            tag = f"ph/{result.scheduler}"
            needs_routing = False  # the SC frontend routes by construction
        circuit = transpile(
            circuit,
            coupling=coupling if needs_routing else None,
            optimization_level=level,
            edge_error=(
                device.edge_error()
                if device is not None and needs_routing else None
            ),
        )
        if coupling is not None:
            validate_routed(circuit, coupling)
        header = (
            f"{args.name} ({spec.backend} backend, frontend={tag}, "
            f"generic level {level})"
        )
        metrics = circuit_metrics(circuit)
        esp_circuit = circuit
        if args.verify:
            from .verify import verify_circuit

            verification = verify_circuit(
                circuit,
                result.emitted_terms,
                initial_layout=result.initial_layout,
                final_layout=result.final_layout,
            )

    print(header)
    print(format_table(
        ["CNOT", "Single", "Total", "Depth"],
        [[metrics["cnot"], metrics["single"], metrics["total"], metrics["depth"]]],
    ))
    if device is not None:
        from .noise.model import esp

        # Routed SC circuits sit on calibrated hardware (strict); FT
        # circuits act on virtual all-to-all edges (lenient).
        value = esp(esp_circuit, device.noise_model,
                    strict=spec.backend == "sc")
        print(f"ESP on {device.name}: {value:.4g}")
    if verification is not None:
        print(verification.describe())
        if not verification.ok:
            return 1
    return 0


def _read_specs(path: str):
    """Load a JSONL job-spec file; returns ``None`` after printing on error."""
    try:
        with open(path) as handle:
            specs = [
                json.loads(line)
                for line in handle
                if line.strip() and not line.lstrip().startswith("#")
            ]
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read spec file {path!r}: {exc}", file=sys.stderr)
        return None
    if not specs:
        print(f"no job specs found in {path!r}", file=sys.stderr)
        return None
    return specs


def _cmd_compile_batch(args) -> int:
    from .service import CompileCache, compile_batch, result_from_dict

    specs = _read_specs(args.specs)
    if specs is None:
        return 2
    if args.device:
        try:
            default_device = _resolve_device_arg(args.device)
        except (ValueError, OSError, KeyError) as exc:
            print(f"bad --device: {exc}", file=sys.stderr)
            return 2
        snapshot = default_device.to_snapshot()
        for spec in specs:
            if "device" not in spec and "coupling" not in spec:
                spec["device"] = snapshot

    cache = CompileCache(args.cache) if args.cache else CompileCache()
    try:
        batch = compile_batch(specs, cache=cache, workers=args.workers)
    except ValueError as exc:
        print(f"bad job spec: {exc}", file=sys.stderr)
        return 2

    if args.out:
        metrics_by_fp = {}
        with open(args.out, "w") as handle:
            for entry in batch.entries:
                artifact = json.loads(entry.artifact)
                # Entries sharing a fingerprint share a byte-identical
                # artifact; rebuild the gate tape only once per unique one.
                metrics = metrics_by_fp.get(entry.fingerprint)
                if metrics is None:
                    metrics = result_from_dict(artifact).metrics
                    metrics_by_fp[entry.fingerprint] = metrics
                handle.write(json.dumps({
                    "index": entry.index,
                    "label": entry.label,
                    "fingerprint": entry.fingerprint,
                    "cached": entry.cached,
                    "deduped": entry.deduped,
                    "seconds": entry.seconds,
                    "metrics": metrics,
                    "artifact": artifact,
                }, sort_keys=True) + "\n")

    summary = batch.summary()
    rows = [[
        entry.index, entry.label,
        "hit" if entry.cached else ("dedup" if entry.deduped else "compiled"),
        f"{entry.seconds:.3f}s", entry.fingerprint[:12],
    ] for entry in batch.entries]
    print(format_table(["#", "Job", "Source", "Time", "Fingerprint"], rows))
    stats = summary.pop("cache", {})
    print(
        f"jobs={summary['jobs']} unique={summary['unique']} "
        f"dispatched={summary['dispatched']} cache_hits={summary['cache_hits']} "
        f"deduped={summary['deduped']} workers={summary['workers']} "
        f"wall={summary['wall_seconds']:.3f}s"
    )
    if stats:
        print(
            f"cache: hits={stats['hits']} (memory {stats['memory_hits']}, "
            f"disk {stats['disk_hits']}) misses={stats['misses']} "
            f"puts={stats['puts']} evictions={stats['evictions']} "
            f"merged={stats['merged']}"
        )
    if args.out:
        print(f"wrote {len(batch.entries)} artifact rows to {args.out}")
    return 0


def _cmd_verify(args) -> int:
    """Verify stored service artifacts against their fingerprinted programs."""
    from .service import CompileCache, loads_artifact, resolve_spec
    from .verify import verify_result

    specs = _read_specs(args.specs)
    if specs is None:
        return 2

    cache = CompileCache(args.cache)
    rows = []
    verified = missing = failed = 0
    for index, spec in enumerate(specs):
        try:
            job = resolve_spec(spec)
        except ValueError as exc:
            print(f"bad job spec on line {index}: {exc}", file=sys.stderr)
            return 2
        fingerprint = job.fingerprint()
        stored = cache.get(fingerprint)
        if stored is None:
            missing += 1
            rows.append([index, job.label, fingerprint[:12], "missing", "-", "-"])
            continue
        try:
            result = loads_artifact(stored)
        except (ValueError, KeyError, TypeError) as exc:
            failed += 1
            rows.append([index, job.label, fingerprint[:12], "corrupt", "-", str(exc)])
            continue
        report = verify_result(job.program, result)
        if report.ok:
            verified += 1
            status, note = "ok", f"{report.gadget_count} gadgets"
        else:
            failed += 1
            status, note = "FAIL", report.mismatch.describe()
        rows.append(
            [index, job.label, fingerprint[:12], status,
             f"{report.seconds * 1e3:.1f}ms", note]
        )

    print(format_table(["#", "Job", "Fingerprint", "Status", "Time", "Detail"], rows))
    print(
        f"verified={verified} failed={failed} missing={missing} "
        f"of {len(specs)} artifact(s)"
    )
    if failed:
        return 1
    if missing and not args.allow_missing:
        print(
            "some artifacts are missing from the cache; compile them first "
            "(compile-batch) or pass --allow-missing",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_check(args) -> int:
    """Static checks: pipeline contracts or cached-artifact invariants."""
    from .static import (
        PipelineChecker,
        PipelineContractError,
        check_program,
        check_result,
        shipped_pipelines,
    )

    if args.specs is None:
        # Contract mode: importing repro.static already self-checked the
        # shipped pipelines, but re-running here prints the property flow
        # and keeps the CLI honest about *which* sequences were proven.
        checker = PipelineChecker()
        rows = []
        bad = 0
        for pipeline in shipped_pipelines():
            try:
                final = checker.check(
                    pipeline.passes, initial=pipeline.initial,
                    goal=pipeline.goal, name=pipeline.name,
                )
            except PipelineContractError as exc:
                bad += 1
                rows.append([pipeline.name, len(pipeline.passes), "FAIL", str(exc)])
            else:
                rows.append([
                    pipeline.name, len(pipeline.passes), "ok",
                    " ".join(sorted(final)),
                ])
        print(format_table(
            ["Pipeline", "Passes", "Status", "Final properties"], rows))
        print(f"{len(rows) - bad} of {len(rows)} shipped pipelines well-composed")
        return 1 if bad else 0

    if not args.cache:
        print("check SPECS.jsonl needs --cache DIR (the artifact store); "
              "run plain 'check' for the pipeline-contract mode",
              file=sys.stderr)
        return 2

    from .service import CompileCache, loads_artifact, resolve_spec
    from .service.batch import _option_kwargs

    specs = _read_specs(args.specs)
    if specs is None:
        return 2

    cache = CompileCache(args.cache)
    rows = []
    failed = missing = 0
    for index, spec in enumerate(specs):
        try:
            job = resolve_spec(spec)
        except ValueError as exc:
            print(f"bad job spec on line {index}: {exc}", file=sys.stderr)
            return 2
        # The input program is checked regardless of cache state: a
        # malformed program poisons every artifact derived from it.
        report = check_program(job.program, subject=job.label)
        fingerprint = job.fingerprint()
        stored = cache.get(fingerprint)
        if stored is None:
            if report.ok:
                missing += 1
                rows.append([index, job.label, fingerprint[:12],
                             "missing", "-", "no stored artifact"])
                continue
        else:
            try:
                result = loads_artifact(stored)
            except (ValueError, KeyError, TypeError, AttributeError) as exc:
                failed += 1
                rows.append([index, job.label, fingerprint[:12],
                             "FAIL", "artifact.decode",
                             f"cannot rebuild artifact: {exc}"])
                continue
            coupling = _option_kwargs(job.options)["coupling"]
            report.merge(check_result(result, coupling=coupling))
        if report.ok:
            note = f"{len(report.warnings)} warning(s)" if report.warnings else "-"
            rows.append([index, job.label, fingerprint[:12], "ok", "-", note])
        else:
            failed += 1
            first = report.errors[0]
            rows.append([index, job.label, fingerprint[:12], "FAIL",
                         first.invariant,
                         f"{first.location}: {first.message}"])
    print(format_table(
        ["#", "Job", "Fingerprint", "Status", "Invariant", "Detail"], rows))
    print(
        f"checked={len(specs) - missing} failed={failed} missing={missing} "
        f"of {len(specs)} spec(s)"
    )
    if failed:
        return 1
    if missing and not args.allow_missing:
        print(
            "some artifacts are missing from the cache; compile them first "
            "(compile-batch) or pass --allow-missing",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args) -> int:
    """Run the compile gateway daemon until SIGINT/SIGTERM (exit 0)."""
    import asyncio
    import signal

    from .service import CompileGateway, GatewayConfig, prepare_unix_path

    peer_stores = tuple(
        p.strip() for p in (args.peer_stores or "").split(",") if p.strip())
    config = GatewayConfig(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        cache_root=args.cache,
        workers=args.workers,
        queue_limit=args.queue_limit,
        per_client_limit=args.per_client_limit,
        allow_shutdown=args.allow_shutdown,
        peer_stores=peer_stores,
        replica_probes=args.replica_probes,
        speculate=args.speculate,
        speculative_limit=args.speculative_limit,
    )

    async def run() -> int:
        gateway = CompileGateway(config)
        try:
            if config.socket_path:
                prepare_unix_path(config.socket_path)
            await gateway.start()
        except OSError as exc:
            print(f"cannot bind gateway: {exc}", file=sys.stderr)
            # start() may have allocated the worker pool and cancel dir
            # before the bind failed; release them so supervisor restart
            # loops against a stuck port don't accumulate leaks.
            await gateway.close(drain=False)
            return 2
        print(
            f"gateway listening on {gateway.address} "
            f"(cache={args.cache or 'memory-only'}, "
            f"workers={config.workers or 'in-process'})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(
                signum, gateway.shutdown_requested.set)
        await gateway.shutdown_requested.wait()
        print("gateway draining...", flush=True)
        await gateway.close()
        print("gateway stopped", flush=True)
        return 0

    return asyncio.run(run())


def _parse_tenant_quotas(pairs) -> dict:
    quotas = {}
    for pair in pairs or []:
        name, _, value = pair.partition("=")
        if not name or not value.isdigit():
            raise ValueError(
                f"bad --tenant-quota {pair!r}; expected NAME=N")
        quotas[name] = int(value)
    return quotas


def _cmd_serve_cluster(args) -> int:
    """Run an N-node sharded compile fabric until SIGINT/SIGTERM."""
    import asyncio
    import signal

    from .service import (
        ClusterRouter,
        ClusterSupervisor,
        plan_cluster,
        prepare_unix_path,
    )

    try:
        tenant_quotas = _parse_tenant_quotas(args.tenant_quota)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    os.makedirs(args.state_dir, exist_ok=True)
    config = plan_cluster(
        args.state_dir,
        nodes=args.nodes,
        workers=args.workers,
        queue_limit=args.queue_limit,
        replica_probes=args.replica_probes,
        speculate=args.speculate,
        speculative_limit=args.speculative_limit,
        vnodes=args.vnodes,
        per_client_limit=args.per_client_limit,
        tenant_quotas=tenant_quotas,
        allow_shutdown=args.allow_shutdown,
    )
    if args.socket:
        config.socket_path = args.socket

    supervisor = ClusterSupervisor(
        config.nodes, log_dir=os.path.join(args.state_dir, "logs"))
    print(f"starting {args.nodes} gateway node(s)...", flush=True)
    try:
        supervisor.start()
    except (RuntimeError, TimeoutError, ValueError) as exc:
        print(f"cannot start cluster nodes: {exc}", file=sys.stderr)
        supervisor.stop()
        return 2

    async def run() -> int:
        router = ClusterRouter(config)
        try:
            if config.socket_path:
                prepare_unix_path(config.socket_path)
            await router.start()
        except OSError as exc:
            print(f"cannot bind cluster router: {exc}", file=sys.stderr)
            await router.close(drain=False)
            return 2
        print(
            f"cluster listening on {router.address} "
            f"(nodes={len(config.nodes)}, workers={args.workers}, "
            f"healthy={len(router.healthy_nodes())})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, router.shutdown_requested.set)
        await router.shutdown_requested.wait()
        print("cluster draining...", flush=True)
        await router.close()
        print("cluster router stopped", flush=True)
        return 0

    try:
        return asyncio.run(run())
    finally:
        supervisor.stop()
        print("cluster nodes stopped", flush=True)


def _cmd_client(args) -> int:
    """Stream specs through a running gateway; exit 1 on any failed job."""
    import asyncio

    from .service import GatewayClient

    if not args.stats and not args.specs:
        print("client needs a SPECS.jsonl file (or --stats)", file=sys.stderr)
        return 2
    socket_path = args.socket
    if args.cluster:
        if socket_path:
            print("--cluster and --socket are mutually exclusive",
                  file=sys.stderr)
            return 2
        socket_path = os.path.join(args.cluster, "router.sock")
    specs = None
    if args.specs:
        specs = _read_specs(args.specs)
        if specs is None:
            return 2

    async def run() -> int:
        try:
            client = await GatewayClient.connect(
                socket_path=socket_path, host=args.host, port=args.port,
                timeout=args.timeout,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            print(f"cannot connect to gateway: {exc}", file=sys.stderr)
            return 2
        try:
            if args.stats:
                print(json.dumps(await client.stats(), indent=2, sort_keys=True))
                return 0
            responses, latencies = await client.run_specs(
                specs, want=args.want, window=args.window,
                timeout=args.timeout * len(specs) + 60,
                tenant=args.tenant,
                want_upgrade=args.wait_upgrade,
            )
            upgrades = {}
            if args.wait_upgrade:
                # Every opt-1 answer has a background recompile coming;
                # collect the upgrade push frames before disconnecting
                # (a disconnect would withdraw the pending jobs).
                for index, response in enumerate(responses):
                    if (response and response.get("ok")
                            and response.get("tier") == "opt1"):
                        upgrades[index] = await client.wait_upgrade(
                            f"q{index}", timeout=args.timeout)
        except (ConnectionError, TimeoutError, asyncio.TimeoutError) as exc:
            print(f"gateway connection failed mid-run: {exc}", file=sys.stderr)
            return 2
        finally:
            await client.close()

        failed = 0
        rows = []
        for index, (spec, response, latency) in enumerate(
                zip(specs, responses, latencies)):
            label = spec.get("label", spec.get("benchmark", f"job{index}"))
            if response is None or not response.get("ok"):
                failed += 1
                code = "no-response" if response is None \
                    else response.get("code", "error")
                rows.append([index, label, code, f"{latency * 1e3:.1f}ms", "-"])
            else:
                rows.append([
                    index, label,
                    "hit" if response.get("cached") else "compiled",
                    f"{latency * 1e3:.1f}ms",
                    response.get("fingerprint", "")[:12],
                ])
        print(format_table(["#", "Job", "Source", "Latency", "Fingerprint"], rows))
        ok = len(specs) - failed
        hits = sum(1 for r in responses if r and r.get("ok") and r.get("cached"))
        print(f"jobs={len(specs)} ok={ok} failed={failed} cache_hits={hits}")
        if args.wait_upgrade:
            landed = sum(1 for u in upgrades.values() if u.get("ok"))
            lines = [f"{u.get('upgrade_ms', 0.0):.1f}ms"
                     for u in upgrades.values() if u.get("ok")]
            print(f"upgrades: pending={len(upgrades)} landed={landed} "
                  f"({', '.join(lines) if lines else 'none'})")
        if args.out:
            with open(args.out, "w") as handle:
                for response in responses:
                    handle.write(json.dumps(response, sort_keys=True) + "\n")
            print(f"wrote {len(responses)} response rows to {args.out}")
        return 1 if failed else 0

    return asyncio.run(run())


def _cmd_table1(args) -> int:
    rows = table1_inventory(scale=args.scale)
    print(format_table(
        ["Benchmark", "Backend", "Qubits", "Pauli#", "CNOT#", "Single#"],
        [[r["name"], r["backend"], r["qubits"], r["paulis"],
          r["naive_cnot"], r["naive_single"]] for r in rows],
    ))
    return 0


def _cmd_table2(args) -> int:
    names = args.names or ["Ising-1D", "Heisen-1D", "UCCSD-8", "REG-20-4"]
    lines = []
    for name in names:
        row = table2_compare(name, args.scale)
        for config in ("ph+qiskit_l3", "ph+tket_o2", "tk+qiskit_l3", "tk+tket_o2"):
            m = row[config]
            lines.append([name, config, m["cnot"], m["single"], m["total"], m["depth"]])
    print(format_table(["Benchmark", "Config", "CNOT", "Single", "Total", "Depth"], lines))
    return 0


def _cmd_table3(args) -> int:
    names = args.names or ["REG-20-4", "REG-20-8", "Rand-20-0.3"]
    lines = []
    for name in names:
        row = table3_compare(name, scale="paper", seeds=args.seeds)
        for label in ("ph", "qaoa_compiler"):
            m = row[label]
            lines.append([name, label, m["cnot"], m["total"], m["depth"], f"{m['seconds']:.2f}s"])
    print(format_table(["Benchmark", "Compiler", "CNOT", "Total", "Depth", "Time"], lines))
    return 0


def _cmd_table4(args) -> int:
    names = args.names or ["UCCSD-8", "Ising-1D", "Heisen-1D", "N2"]
    lines = []
    for name in names:
        row = table4_passes(name, args.scale)
        for key in ("cnot", "total", "depth"):
            lines.append([
                name, key,
                f"{row['do_vs_gco_pct'][key]:+.1f}%",
                f"{row['bc_improvement_pct'][key]:+.1f}%",
            ])
    print(format_table(["Benchmark", "Metric", "DO vs GCO", "BC vs naive"], lines))
    return 0


def _cmd_fig11(args) -> int:
    graphs = {}
    for n in args.sizes:
        graphs[f"REG-n{n}-d4"] = regular_graph(n, 4, seed=n)
        graphs[f"RD-n{n}-p0.5"] = random_graph(n, 0.5, seed=n)
    rows = fig11_study(graphs, trajectories=args.trajectories)
    print(format_table(
        ["Graph", "ESP x", "RSP x", "PH CNOT", "Base CNOT"],
        [[r["name"], f"{r['esp_improvement']:.2f}", f"{r['rsp_improvement']:.2f}",
          r["ph"]["cnot"], r["baseline"]["cnot"]] for r in rows],
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks").set_defaults(func=_cmd_list)

    p = sub.add_parser("compile", help="compile one benchmark with Paulihedral")
    p.add_argument("name")
    p.add_argument("--scale", default="small", choices=["small", "paper"])
    p.add_argument(
        "--scheduler",
        default=None,
        choices=["gco", "do", "none", "gco-stream", "do-stream"],
    )
    p.add_argument(
        "--opt-level", type=int, default=None, choices=[0, 1, 2, 3],
        help="run the generic pipeline at this level after the frontend "
             "(Table 2 configuration); omits the frontend's own peephole",
    )
    p.add_argument(
        "--frontend", default="ph", choices=["ph", "tk"],
        help="ph (Paulihedral, default) or the TK-style baseline; tk on an "
             "SC benchmark routes through the device coupling map",
    )
    p.add_argument(
        "--verify", action="store_true",
        help="run the Pauli-propagation verifier on the compiled circuit "
             "(any qubit count; exits 1 on mismatch)",
    )
    p.add_argument(
        "--device", default=None, metavar="NAME_OR_JSON",
        help="compile against a registry device (e.g. melbourne-15, "
             "falcon-27, ion-trap-12) or a DeviceSpec snapshot JSON file: "
             "supplies the coupling map and calibration for "
             "reliability-weighted routing, and reports ESP",
    )
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser(
        "compile-batch",
        help="compile a JSONL stream of program specs through the cache "
             "and worker pool (see repro.service.batch for the spec schema)",
    )
    p.add_argument("specs", help="JSONL file, one job spec per line")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool width (1 = serial, no pool)")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="on-disk cache directory (default: in-memory only)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write one JSONL artifact row per input job")
    p.add_argument(
        "--device", default=None, metavar="NAME_OR_JSON",
        help="default device for specs that name none (registry name or "
             "snapshot JSON; per-spec 'device'/'coupling' keys win)",
    )
    p.set_defaults(func=_cmd_compile_batch)

    p = sub.add_parser(
        "verify",
        help="verify cached compile artifacts against their fingerprinted "
             "programs with the Pauli-propagation oracle",
    )
    p.add_argument("specs", help="JSONL file, one job spec per line "
                                 "(same schema as compile-batch)")
    p.add_argument("--cache", required=True, metavar="DIR",
                   help="on-disk cache directory holding the artifacts")
    p.add_argument("--allow-missing", action="store_true",
                   help="exit 0 even when some specs have no stored artifact")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "check",
        help="static analysis: pipeline pass-contract validation (no "
             "arguments) or IR invariant sweep of cached artifacts "
             "(SPECS.jsonl --cache DIR)",
    )
    p.add_argument("specs", nargs="?", default=None,
                   help="JSONL spec file (same schema as compile-batch); "
                        "omit to check the shipped pipeline contracts")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="on-disk cache directory holding the artifacts "
                        "(required with a spec file)")
    p.add_argument("--allow-missing", action="store_true",
                   help="exit 0 even when some specs have no stored artifact")
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser(
        "serve",
        help="run the async compile gateway daemon (newline-delimited JSON "
             "over a local socket; see repro.service.protocol)",
    )
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="bind a unix-domain socket (wins over --host/--port)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7421,
                   help="TCP port (default 7421; 0 = ephemeral)")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="on-disk cache directory shared by all clients "
                        "(default: in-memory only)")
    p.add_argument("--workers", type=int, default=1,
                   help="compile worker processes (0 = one in-process thread)")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="max undispatched cold compiles before rejecting")
    p.add_argument("--per-client-limit", type=int, default=16,
                   help="max unanswered cold requests per client")
    p.add_argument("--allow-shutdown", action="store_true",
                   help="honor the protocol 'shutdown' verb")
    p.add_argument("--peer-stores", default=None, metavar="DIR,DIR,...",
                   help="comma-separated peer cache directories probed "
                        "(pull-through replication) on a local disk miss")
    p.add_argument("--replica-probes", type=int, default=None,
                   help="max peers one miss consults (default: all)")
    p.add_argument("--speculate", action="store_true",
                   help="tiered speculative compilation: cold misses answer "
                        "at the fast opt-1 tier and a background full-effort "
                        "recompile upgrades the cache entry in place")
    p.add_argument("--speculative-limit", type=int, default=8,
                   help="cap on queued background upgrade jobs (default 8; "
                        "overflow is dropped, not buffered)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "serve-cluster",
        help="run a sharded multi-node compile fabric: N supervised "
             "gateway nodes behind a consistent-hash router "
             "(see repro.service.cluster)",
    )
    p.add_argument("state_dir", metavar="STATE_DIR",
                   help="directory for node sockets, stores, and logs "
                        "(created if missing)")
    p.add_argument("--nodes", type=int, default=3,
                   help="gateway node count (default 3)")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="router socket (default STATE_DIR/router.sock)")
    p.add_argument("--workers", type=int, default=1,
                   help="compile worker processes per node "
                        "(0 = one in-process thread per node)")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="per-node cap on undispatched cold compiles")
    p.add_argument("--per-client-limit", type=int, default=32,
                   help="router cap on one client's unanswered requests")
    p.add_argument("--vnodes", type=int, default=128,
                   help="virtual nodes per member on the hash ring")
    p.add_argument("--replica-probes", type=int, default=None,
                   help="peers probed per pull-through miss (default: all)")
    p.add_argument("--tenant-quota", action="append", metavar="NAME=N",
                   help="cap tenant NAME at N outstanding compiles "
                        "(repeatable)")
    p.add_argument("--allow-shutdown", action="store_true",
                   help="honor the protocol 'shutdown' verb at the router")
    p.add_argument("--speculate", action="store_true",
                   help="enable tiered speculative compilation on every node")
    p.add_argument("--speculative-limit", type=int, default=8,
                   help="per-node cap on queued background upgrades")
    p.set_defaults(func=_cmd_serve_cluster)

    p = sub.add_parser(
        "client",
        help="stream a JSONL spec file through a running gateway "
             "(same spec schema as compile-batch)",
    )
    p.add_argument("specs", nargs="?", default=None,
                   help="JSONL file, one job spec per line")
    p.add_argument("--socket", default=None, metavar="PATH")
    p.add_argument("--cluster", default=None, metavar="STATE_DIR",
                   help="connect to a serve-cluster router by its state "
                        "directory (shorthand for --socket "
                        "STATE_DIR/router.sock)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7421)
    p.add_argument("--tenant", default=None, metavar="NAME",
                   help="tag compile requests with a tenant identity "
                        "(cluster routers quota by it)")
    p.add_argument("--want", default="metrics",
                   choices=["metrics", "artifact", "ack"])
    p.add_argument("--window", type=int, default=8,
                   help="max requests in flight (pipelining width); for "
                        "cold corpora keep at or below the server's "
                        "--per-client-limit or the excess is rejected "
                        "as overloaded")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-request timeout budget in seconds")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write one JSONL response row per input job")
    p.add_argument("--stats", action="store_true",
                   help="print the gateway's stats verb instead of compiling")
    p.add_argument("--wait-upgrade", action="store_true",
                   help="subscribe to speculative upgrade push frames and "
                        "wait for the background opt-3 recompiles to land "
                        "before exiting (needs a --speculate server)")
    p.set_defaults(func=_cmd_client)

    p = sub.add_parser("table1", help="regenerate Table 1")
    p.add_argument("--scale", default="small", choices=["small", "paper"])
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="regenerate Table 2 rows")
    p.add_argument("names", nargs="*", default=None)
    p.add_argument("--scale", default="small", choices=["small", "paper"])
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("table3", help="regenerate Table 3 rows")
    p.add_argument("names", nargs="*", default=None)
    p.add_argument("--seeds", type=int, default=20)
    p.set_defaults(func=_cmd_table3)

    p = sub.add_parser("table4", help="regenerate Table 4 rows")
    p.add_argument("names", nargs="*", default=None)
    p.add_argument("--scale", default="small", choices=["small", "paper"])
    p.set_defaults(func=_cmd_table4)

    p = sub.add_parser("fig11", help="regenerate the Figure 11 study")
    p.add_argument("--sizes", type=int, nargs="*", default=[7, 8])
    p.add_argument("--trajectories", type=int, default=120)
    p.set_defaults(func=_cmd_fig11)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
