"""Paulihedral reproduction: block-wise compiler optimization for quantum
simulation kernels (Li et al., ASPLOS 2022).

Public API tour
---------------
* :mod:`repro.pauli` — Pauli strings and their algebra.
* :mod:`repro.ir` — the block-structured Pauli IR (paper Section 3).
* :mod:`repro.core` — scheduling and backend passes (Sections 4-5) plus the
  top-level :func:`repro.core.compiler.compile_program` entry point.
* :mod:`repro.circuit` — gate-level circuits and exact simulation.
* :mod:`repro.transpile` — generic layout/routing/cancellation substrate.
* :mod:`repro.baselines` — TK (simultaneous diagonalization), naive, and
  QAOA-compiler comparators.
* :mod:`repro.workloads` — benchmark generators (Table 1).
* :mod:`repro.noise` — error models, ESP and noisy execution (Figure 11).
* :mod:`repro.service` — serving layer: content-addressed compile cache
  and the parallel batch compilation service.
"""

from .ir import PauliBlock, PauliProgram, WeightedString
from .pauli import PauliString

__version__ = "1.0.0"

__all__ = [
    "PauliBlock",
    "PauliProgram",
    "PauliString",
    "WeightedString",
    "__version__",
]
