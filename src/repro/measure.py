"""Measurement of Pauli-sum observables by commuting-group diagonalization.

VQE-style algorithms estimate ``<H> = sum_k w_k <P_k>`` from samples.  The
standard trick (the measurement-side twin of the TK baseline's
simultaneous diagonalization) partitions the strings into mutually
commuting families and measures each family in one shot batch: a Clifford
``C`` maps every family member to a Z-string, so computational-basis
samples after ``C`` determine all of the family's expectations at once.

This module turns a Hamiltonian into measurement *plans* and estimates
energies from (simulated or real) samples:

>>> plans = measurement_plans(hamiltonian_terms, num_qubits)
>>> energy = estimate_expectation(plans, state, shots=4096, seed=7)
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .baselines.tableau import simultaneous_diagonalize
from .baselines.tket_like import partition_commuting
from .circuit import QuantumCircuit, simulate
from .pauli import PauliString

__all__ = ["MeasurementPlan", "measurement_plans", "estimate_expectation", "sample_counts"]


class MeasurementPlan:
    """One shot batch: a basis-change circuit plus readout masks.

    Attributes
    ----------
    circuit:
        Clifford basis change to apply before computational-basis readout.
    masks:
        ``(weight, sign, bitmask)`` per string: the string's estimate from a
        sample ``s`` is ``sign * (-1)^popcount(s & bitmask)``.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        masks: List[Tuple[float, int, int]],
    ):
        self.circuit = circuit
        self.masks = masks

    def estimate_from_counts(self, counts: Dict[int, int]) -> float:
        """Weighted expectation contribution from a sample histogram."""
        total_shots = sum(counts.values())
        if total_shots == 0:
            raise ValueError("no samples")
        value = 0.0
        for weight, sign, bitmask in self.masks:
            acc = 0
            for outcome, count in counts.items():
                parity = bin(outcome & bitmask).count("1") & 1
                acc += -count if parity else count
            value += weight * sign * acc / total_shots
        return value


def measurement_plans(
    terms: Sequence[Tuple[PauliString, float]],
    num_qubits: int,
) -> List[MeasurementPlan]:
    """Partition terms into commuting families and build one plan each.

    Identity strings contribute a constant and are folded into a plan with
    an empty bitmask.
    """
    constant = 0.0
    measurable = []
    for string, weight in terms:
        if string.is_identity:
            constant += weight
        else:
            measurable.append((string, weight))

    plans: List[MeasurementPlan] = []
    for group in partition_commuting(measurable):
        strings = [s for s, _ in group]
        clifford, tracked = simultaneous_diagonalize(strings)
        masks = []
        for entry, (_, weight) in zip(tracked, group):
            bitmask = 0
            for qubit in range(entry.num_qubits):
                if entry.z_bit(qubit):
                    bitmask |= 1 << qubit
            masks.append((weight, entry.sign, bitmask))
        plans.append(MeasurementPlan(clifford, masks))

    if constant:
        empty = QuantumCircuit(num_qubits)
        plans.append(MeasurementPlan(empty, [(constant, 1, 0)]))
    return plans


def sample_counts(
    probabilities: np.ndarray,
    shots: int,
    rng: random.Random,
) -> Dict[int, int]:
    """Multinomial sampling of a basis-state distribution."""
    normalized = np.asarray(probabilities, dtype=float)
    normalized = normalized / normalized.sum()
    generator = np.random.default_rng(rng.getrandbits(32))
    drawn = generator.multinomial(shots, normalized)
    return {int(i): int(c) for i, c in enumerate(drawn) if c > 0}


def estimate_expectation(
    plans: Sequence[MeasurementPlan],
    state: np.ndarray,
    shots: int = 4096,
    seed: int = 7,
) -> float:
    """Sampled estimate of ``<state| H |state>`` using the plans.

    ``shots`` are spent per plan (matching the per-family shot batches a
    real device would use).
    """
    rng = random.Random(seed)
    total = 0.0
    for plan in plans:
        if not plan.masks:
            continue
        if all(mask == 0 for _, _, mask in plan.masks):
            total += sum(w * s for w, s, _ in plan.masks)
            continue
        rotated = simulate(plan.circuit, state)
        probabilities = np.abs(rotated) ** 2
        counts = sample_counts(probabilities, shots, rng)
        total += plan.estimate_from_counts(counts)
    return total
