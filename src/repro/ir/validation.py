"""Static validation and diagnostics for Pauli IR programs.

The IR's safety story (paper Section 3.2) rests on a few structural
properties that workload generators and hand-written programs should
uphold.  :func:`validate_program` checks them and returns a diagnostic
report instead of failing fast, so callers can decide severity:

* **errors** — violations of IR well-formedness (zero weights that silently
  drop terms, all-identity blocks that compile to nothing);
* **warnings** — legal-but-suspicious structure (non-commuting strings
  inside one block, which is allowed by the grammar but breaks the
  "strings in one block are usually mutually commutative" assumption the
  GCO representative-string heuristic relies on; duplicate strings within a
  block that could be merged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .program import PauliProgram

__all__ = ["Diagnostic", "ValidationReport", "validate_program"]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: severity, block index (or -1), message."""

    severity: str          # "error" | "warning"
    block_index: int
    message: str

    def __str__(self) -> str:
        where = f"block {self.block_index}" if self.block_index >= 0 else "program"
        return f"[{self.severity}] {where}: {self.message}"


@dataclass
class ValidationReport:
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_on_error(self) -> None:
        if self.errors:
            details = "; ".join(str(d) for d in self.errors)
            raise ValueError(f"invalid Pauli IR program: {details}")

    def __str__(self) -> str:
        if not self.diagnostics:
            return "program OK"
        return "\n".join(str(d) for d in self.diagnostics)


def validate_program(program: PauliProgram) -> ValidationReport:
    """Run all structural checks over a program."""
    report = ValidationReport()
    for index, block in enumerate(program):
        strings = [ws.string for ws in block]

        if all(s.is_identity for s in strings):
            report.diagnostics.append(Diagnostic(
                "error", index,
                "block contains only identity strings and compiles to nothing",
            ))

        zero_weights = sum(1 for ws in block if ws.weight == 0.0)
        if zero_weights:
            report.diagnostics.append(Diagnostic(
                "error", index,
                f"{zero_weights} string(s) have zero weight and silently vanish",
            ))

        seen = {}
        for ws in block:
            seen[ws.string] = seen.get(ws.string, 0) + 1
        duplicates = {s: c for s, c in seen.items() if c > 1}
        if duplicates:
            labels = ", ".join(s.label for s in duplicates)
            report.diagnostics.append(Diagnostic(
                "warning", index,
                f"duplicate strings within the block could be merged: {labels}",
            ))

        if len(strings) > 1 and not block.is_mutually_commuting():
            report.diagnostics.append(Diagnostic(
                "warning", index,
                "strings in this block do not mutually commute; the GCO "
                "representative-string heuristic may mis-order it",
            ))

        if block.parameter == 0.0:
            report.diagnostics.append(Diagnostic(
                "warning", index,
                "block parameter is zero; the block is a no-op",
            ))
    return report
