"""Textual round-trip for Pauli IR programs.

The concrete syntax mirrors Figure 5/6 of the paper:

.. code-block:: text

    {(IIXY, 0.5), (IIYX, -0.5), theta1};
    {(XYII, -0.5), (YXII, 0.5), theta2};

* one ``{...}`` group per block, terminated by ``;``;
* each ``(LABEL, weight)`` pair is a weighted string;
* the trailing bare token is the block parameter — either a float literal or
  a symbolic name (symbolic parameters resolve through the ``parameters``
  mapping, defaulting to 1.0).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..pauli import PauliString
from .blocks import PauliBlock, WeightedString
from .program import PauliProgram

__all__ = ["parse_program", "format_program"]

_BLOCK_RE = re.compile(r"\{([^{}]*)\}")
_PAIR_RE = re.compile(r"\(\s*([IXYZ]+)\s*,\s*([-+0-9.eE]+)\s*\)")


def parse_program(
    text: str,
    parameters: Optional[Dict[str, float]] = None,
    name: str = "",
) -> PauliProgram:
    """Parse the textual Pauli IR form into a :class:`PauliProgram`."""
    parameters = parameters or {}
    blocks: List[PauliBlock] = []
    for match in _BLOCK_RE.finditer(text):
        body = match.group(1)
        pairs = _PAIR_RE.findall(body)
        if not pairs:
            raise ValueError(f"block without Pauli strings: {body!r}")
        strings = [
            WeightedString(PauliString.from_label(label), float(weight))
            for label, weight in pairs
        ]
        remainder = _PAIR_RE.sub("", body)
        tokens = [tok for tok in re.split(r"[\s,]+", remainder) if tok]
        if not tokens:
            raise ValueError(f"block without a parameter: {body!r}")
        token = tokens[-1]
        try:
            parameter = float(token)
        except ValueError:
            parameter = parameters.get(token, 1.0)
        blocks.append(PauliBlock(strings, parameter=parameter))
    if not blocks:
        raise ValueError("no blocks found in program text")
    return PauliProgram(blocks, name=name)


def format_program(program: PauliProgram) -> str:
    """Render a program back into the textual IR form."""
    lines = []
    for block in program:
        pairs = ", ".join(
            f"({ws.string.label}, {_fmt(ws.weight)})" for ws in block
        )
        lines.append(f"{{{pairs}, {_fmt(block.parameter)}}};")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    return f"{value:g}"
