"""Pauli IR: block-structured intermediate representation (paper Section 3)."""

from .blocks import BlockView, PauliBlock, WeightedString
from .parser import format_program, parse_program
from .program import PauliProgram

#: Names that now live in the static-analysis layer.  The old
#: ``ir.validation`` module was folded into ``repro.static.invariants``
#: (one validation entry point); these lazy re-exports keep
#: ``from repro.ir import validate_program`` working without making the
#: low-level IR package eagerly import the higher static layer.
_STATIC_REEXPORTS = ("Diagnostic", "ValidationReport", "validate_program")


def __getattr__(name):
    if name in _STATIC_REEXPORTS:
        from .. import static

        return getattr(static, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BlockView",
    "PauliBlock",
    "PauliProgram",
    "WeightedString",
    "Diagnostic",
    "ValidationReport",
    "format_program",
    "parse_program",
    "validate_program",
]
