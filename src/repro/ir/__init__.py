"""Pauli IR: block-structured intermediate representation (paper Section 3)."""

from .blocks import BlockView, PauliBlock, WeightedString
from .parser import format_program, parse_program
from .program import PauliProgram
from .validation import Diagnostic, ValidationReport, validate_program

__all__ = [
    "BlockView",
    "PauliBlock",
    "PauliProgram",
    "WeightedString",
    "Diagnostic",
    "ValidationReport",
    "format_program",
    "parse_program",
    "validate_program",
]
