"""Pauli IR blocks: weighted Pauli strings sharing one parameter.

A :class:`PauliBlock` is the ``pauli_block`` production of the IR grammar in
Figure 5 of the paper:

.. code-block:: text

    <pauli_block> ::= { <pauli_str_list>, parameter }

All strings in a block share one real parameter (e.g. a Trotter step or a
variational angle) and the block is the unit the schedulers move around:
strings inside a block are *always kept together* (Section 3.2, "Encoding
constraints").
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from ..pauli import PauliString
from ..pauli.symplectic import PauliTable, popcount

__all__ = ["WeightedString", "PauliBlock", "BlockView"]


class WeightedString:
    """A ``(pauli_str, weight)`` pair — one entry of a ``pauli_str_list``."""

    __slots__ = ("string", "weight")

    def __init__(self, string: PauliString, weight: float = 1.0):
        if not isinstance(string, PauliString):
            raise TypeError(f"expected PauliString, got {type(string).__name__}")
        self.string = string
        self.weight = float(weight)

    @property
    def num_qubits(self) -> int:
        return self.string.num_qubits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedString):
            return NotImplemented
        # Structural identity, not numeric closeness.
        return (self.string == other.string
                and self.weight == other.weight)  # lint: allow-float-eq

    def __hash__(self) -> int:
        return hash((self.string, self.weight))

    def __repr__(self) -> str:
        return f"WeightedString({self.string.label!r}, {self.weight!r})"


class BlockView:
    """Memoized symplectic view of one block (built lazily, kept for life).

    The schedulers and synthesis passes interrogate the same block-level
    facts over and over — support masks, per-qubit operator profiles, depth
    estimates — and recomputing them from the scalar strings on every query
    is what made scheduling quadratic-to-cubic.  A ``BlockView`` computes
    them once from the block's :class:`~repro.pauli.symplectic.PauliTable`
    and caches the results as packed bit masks ready for batch arithmetic.

    Attributes
    ----------
    table:
        The block's strings as a :class:`PauliTable`.
    support_mask:
        Packed ``uint8`` vector; bit set where any string is non-identity.
    op_profile:
        ``(3, nbytes)`` packed presence masks, one row per operator
        (``X``, ``Z``, ``Y``): bit ``q`` of row ``k`` is set when some
        string carries that operator on qubit ``q``.  The operator overlap
        of two profiles is ``popcount(OR_k(a[k] & b[k]))``.
    active_qubits, active_length, core_qubits, depth_estimate:
        Cached values of the like-named :class:`PauliBlock` queries.
    """

    __slots__ = (
        "table",
        "support_mask",
        "op_profile",
        "active_qubits",
        "active_length",
        "core_qubits",
        "depth_estimate",
        "lex_order",
        "lex_key",
    )

    def __init__(self, block: "PauliBlock"):
        table = PauliTable.from_strings(block.pauli_strings)
        self.table = table
        self.lex_order = table.lex_argsort()
        self.lex_key = tuple(int(r) for r in table.lex_ranks()[self.lex_order[0]])
        supports = table.support_masks()
        self.support_mask = np.bitwise_or.reduce(supports, axis=0)
        self.op_profile = np.stack(
            [
                np.bitwise_or.reduce(table.x & ~table.z, axis=0),  # X
                np.bitwise_or.reduce(table.z & ~table.x, axis=0),  # Z
                np.bitwise_or.reduce(table.x & table.z, axis=0),   # Y
            ]
        )
        self.active_qubits = _mask_to_qubits(self.support_mask, table.num_qubits)
        self.active_length = len(self.active_qubits)
        self.core_qubits = _mask_to_qubits(
            np.bitwise_and.reduce(supports, axis=0), table.num_qubits
        )
        weights = table.weights()
        active = weights > 0
        self.depth_estimate = int((2 * (weights[active] - 1) + 1).sum())

    def operator_overlap(self, other_profile: np.ndarray) -> int:
        """Qubits where this block and ``other_profile`` share an identical
        non-identity operator (the Overlap() of Algorithm 1)."""
        return int(
            popcount(np.bitwise_or.reduce(self.op_profile & other_profile, axis=0))
        )


def _mask_to_qubits(mask: np.ndarray, num_qubits: int) -> Tuple[int, ...]:
    bits = np.unpackbits(mask, bitorder="little", count=num_qubits)
    return tuple(int(q) for q in np.nonzero(bits)[0])


def encode_symplectic_rows(codes: np.ndarray, coefficients) -> bytes:
    """Sorted canonical record block for ``(m, n)`` Pauli codes + coefficients.

    Each record is the bit-packed symplectic X part, Z part, and the
    little-endian IEEE-754 coefficient; records are sorted bytewise so the
    encoding is term-order-insensitive.  Shared by
    :meth:`PauliBlock.canonical_bytes` and the one-sweep
    :meth:`~repro.ir.program.PauliProgram.canonical_form` fast path, which
    must produce identical bytes.
    """
    x = np.packbits(codes & 1, axis=1, bitorder="little")
    z = np.packbits(codes >> 1, axis=1, bitorder="little")
    # "+ 0.0" collapses -0.0 onto +0.0 so the two encode identically.
    coeff_bytes = (np.asarray(coefficients, dtype="<f8") + 0.0).tobytes()
    rows = [
        x[i].tobytes() + z[i].tobytes() + coeff_bytes[8 * i: 8 * i + 8]
        for i in range(len(coefficients))
    ]
    rows.sort()
    return struct.pack("<I", len(rows)) + b"".join(rows)


class PauliBlock:
    """A list of weighted Pauli strings sharing a single real parameter.

    Parameters
    ----------
    strings:
        The weighted strings.  Entries may be :class:`WeightedString`,
        bare :class:`~repro.pauli.PauliString` (weight 1.0), or
        ``(PauliString | label, weight)`` tuples.
    parameter:
        The shared real parameter (``theta``/``gamma``/``dt`` in the paper).
    name:
        Optional human-readable tag used in reports.
    """

    __slots__ = ("_strings", "parameter", "name", "_view", "_sorted")

    def __init__(
        self,
        strings: Iterable,
        parameter: float = 1.0,
        name: str = "",
    ):
        normalized: List[WeightedString] = []
        for entry in strings:
            normalized.append(self._normalize(entry))
        if not normalized:
            raise ValueError("a Pauli block must contain at least one string")
        n = normalized[0].num_qubits
        for ws in normalized:
            if ws.num_qubits != n:
                raise ValueError(
                    "all strings in a block must act on the same qubit count: "
                    f"{ws.num_qubits} vs {n}"
                )
        self._strings = normalized
        self.parameter = float(parameter)
        self.name = name
        self._view: "BlockView" = None
        self._sorted: "PauliBlock" = None

    @staticmethod
    def _normalize(entry) -> WeightedString:
        if isinstance(entry, WeightedString):
            return entry
        if isinstance(entry, PauliString):
            return WeightedString(entry, 1.0)
        if isinstance(entry, str):
            return WeightedString(PauliString.from_label(entry), 1.0)
        string, weight = entry
        if isinstance(string, str):
            string = PauliString.from_label(string)
        return WeightedString(string, weight)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def strings(self) -> Tuple[WeightedString, ...]:
        return tuple(self._strings)

    @property
    def pauli_strings(self) -> Tuple[PauliString, ...]:
        """The bare strings, without weights."""
        return tuple(ws.string for ws in self._strings)

    @property
    def num_qubits(self) -> int:
        return self._strings[0].num_qubits

    @property
    def num_strings(self) -> int:
        return len(self._strings)

    @property
    def view(self) -> "BlockView":
        """The block's memoized symplectic view (built on first access)."""
        if self._view is None:
            self._view = BlockView(self)
        return self._view

    def release_view(self) -> None:
        """Drop the memoized view (and the sorted twin's) to reclaim memory.

        The view is rebuilt on the next access, so releasing is always
        safe; it is the streaming scheduler's release-after-schedule hook
        (``core/streaming.py``) that keeps million-term compilations from
        accumulating one realized view per block.  The ``_sorted`` link
        itself is kept — re-sorting is pure bookkeeping — but its view is
        released too, since the sorted twin is what a schedule emits.
        """
        self._view = None
        twin = self._sorted
        if twin is not None and twin is not self:
            twin._view = None

    @property
    def active_qubits(self) -> Tuple[int, ...]:
        """Qubits with a non-identity operator in at least one string."""
        return self.view.active_qubits

    @property
    def active_length(self) -> int:
        """Paper's over-approximation of block footprint (Section 4.2)."""
        return self.view.active_length

    @property
    def core_qubits(self) -> Tuple[int, ...]:
        """Qubits with a non-identity operator in *all* strings (Section 5.2)."""
        return self.view.core_qubits

    def depth_estimate(self) -> int:
        """Cheap per-block depth estimate used by the DO scheduler padding
        loop: the dominant cost of a string of weight ``w`` is its two CNOT
        trees, ``2 * (w - 1)`` CNOT levels, plus the central rotation."""
        return self.view.depth_estimate

    def is_mutually_commuting(self) -> bool:
        """True if every pair of strings in the block commutes."""
        strings = self.pauli_strings
        return all(
            strings[i].commutes_with(strings[j])
            for i in range(len(strings))
            for j in range(i + 1, len(strings))
        )

    def overlaps_qubits(self, other: "PauliBlock") -> bool:
        """True when the two blocks' active-qubit sets intersect."""
        return bool(set(self.active_qubits) & set(other.active_qubits))

    # ------------------------------------------------------------------
    # Transformations (all return new blocks; blocks are conceptually
    # immutable once inside a program)
    # ------------------------------------------------------------------
    def sorted_lexicographically(self) -> "PauliBlock":
        """Sort strings inside the block by the paper's lexicographic key.

        The result is cached (blocks are immutable), so schedulers that
        re-sort the same program reuse one block object and its view."""
        if self._sorted is None:
            if len(self._strings) == 1:
                # Singleton blocks (the plain-Hamiltonian form, and the
                # whole of the million-term scale regime) are trivially
                # sorted; skip the symplectic view build entirely.
                self._sorted = self
                return self
            order = self.view.lex_order
            if all(int(order[i]) == i for i in range(len(order))):
                self._sorted = self
            else:
                block = PauliBlock(
                    [self._strings[int(i)] for i in order], self.parameter, self.name
                )
                block._sorted = block
                self._sorted = block
        return self._sorted

    def with_strings(self, strings: Sequence[WeightedString]) -> "PauliBlock":
        return PauliBlock(strings, self.parameter, self.name)

    def canonical_bytes(self) -> bytes:
        """Order-insensitive canonical encoding of this block's semantics.

        One record per string — the packed symplectic X and Z parts followed
        by the IEEE-754 encoding of the *effective* coefficient
        ``weight * parameter`` — with the records sorted bytewise.  Two
        blocks that differ only in string order, in how the coefficient is
        split between weight and parameter, or in how a coefficient literal
        was formatted, encode identically; blocks with different semantics
        encode differently (up to float representability).

        This is the per-block unit the serving layer's content fingerprint
        (:mod:`repro.service.fingerprint`) is built from.  The packing goes
        straight from the raw code bytes (one :func:`numpy.packbits` sweep)
        rather than through :class:`BlockView`, so fingerprinting a program
        never triggers view construction it doesn't otherwise need.
        """
        codes = np.frombuffer(
            b"".join(ws.string.codes for ws in self._strings), dtype=np.uint8
        ).reshape(len(self._strings), self.num_qubits)
        return encode_symplectic_rows(
            codes, [ws.weight * self.parameter for ws in self._strings]
        )

    def lex_key(self) -> Tuple[int, ...]:
        """Block-level lexicographic key: the *minimum* of its strings' keys.

        For a block that has been intra-block sorted this equals the first
        string's key (Section 4.1 uses the first string as the block
        representative), but taking ``min`` keeps the key independent of the
        strings' current order, so unsorted blocks rank identically."""
        return self.view.lex_key

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._strings)

    def __iter__(self) -> Iterator[WeightedString]:
        return iter(self._strings)

    def __getitem__(self, index: int) -> WeightedString:
        return self._strings[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliBlock):
            return NotImplemented
        return (
            self._strings == other._strings
            # Structural identity, not numeric closeness.
            and self.parameter == other.parameter  # lint: allow-float-eq
        )

    def __repr__(self) -> str:
        labels = ", ".join(
            f"({ws.string.label}, {ws.weight})" for ws in self._strings[:4]
        )
        if len(self._strings) > 4:
            labels += ", ..."
        tag = f" {self.name!r}" if self.name else ""
        return f"PauliBlock{tag}[{labels}; parameter={self.parameter}]"
