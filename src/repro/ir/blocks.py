"""Pauli IR blocks: weighted Pauli strings sharing one parameter.

A :class:`PauliBlock` is the ``pauli_block`` production of the IR grammar in
Figure 5 of the paper:

.. code-block:: text

    <pauli_block> ::= { <pauli_str_list>, parameter }

All strings in a block share one real parameter (e.g. a Trotter step or a
variational angle) and the block is the unit the schedulers move around:
strings inside a block are *always kept together* (Section 3.2, "Encoding
constraints").
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from ..pauli import PauliString

__all__ = ["WeightedString", "PauliBlock"]


class WeightedString:
    """A ``(pauli_str, weight)`` pair — one entry of a ``pauli_str_list``."""

    __slots__ = ("string", "weight")

    def __init__(self, string: PauliString, weight: float = 1.0):
        if not isinstance(string, PauliString):
            raise TypeError(f"expected PauliString, got {type(string).__name__}")
        self.string = string
        self.weight = float(weight)

    @property
    def num_qubits(self) -> int:
        return self.string.num_qubits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedString):
            return NotImplemented
        return self.string == other.string and self.weight == other.weight

    def __hash__(self) -> int:
        return hash((self.string, self.weight))

    def __repr__(self) -> str:
        return f"WeightedString({self.string.label!r}, {self.weight!r})"


class PauliBlock:
    """A list of weighted Pauli strings sharing a single real parameter.

    Parameters
    ----------
    strings:
        The weighted strings.  Entries may be :class:`WeightedString`,
        bare :class:`~repro.pauli.PauliString` (weight 1.0), or
        ``(PauliString | label, weight)`` tuples.
    parameter:
        The shared real parameter (``theta``/``gamma``/``dt`` in the paper).
    name:
        Optional human-readable tag used in reports.
    """

    __slots__ = ("_strings", "parameter", "name")

    def __init__(
        self,
        strings: Iterable,
        parameter: float = 1.0,
        name: str = "",
    ):
        normalized: List[WeightedString] = []
        for entry in strings:
            normalized.append(self._normalize(entry))
        if not normalized:
            raise ValueError("a Pauli block must contain at least one string")
        n = normalized[0].num_qubits
        for ws in normalized:
            if ws.num_qubits != n:
                raise ValueError(
                    "all strings in a block must act on the same qubit count: "
                    f"{ws.num_qubits} vs {n}"
                )
        self._strings = normalized
        self.parameter = float(parameter)
        self.name = name

    @staticmethod
    def _normalize(entry) -> WeightedString:
        if isinstance(entry, WeightedString):
            return entry
        if isinstance(entry, PauliString):
            return WeightedString(entry, 1.0)
        if isinstance(entry, str):
            return WeightedString(PauliString.from_label(entry), 1.0)
        string, weight = entry
        if isinstance(string, str):
            string = PauliString.from_label(string)
        return WeightedString(string, weight)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def strings(self) -> Tuple[WeightedString, ...]:
        return tuple(self._strings)

    @property
    def pauli_strings(self) -> Tuple[PauliString, ...]:
        """The bare strings, without weights."""
        return tuple(ws.string for ws in self._strings)

    @property
    def num_qubits(self) -> int:
        return self._strings[0].num_qubits

    @property
    def num_strings(self) -> int:
        return len(self._strings)

    @property
    def active_qubits(self) -> Tuple[int, ...]:
        """Qubits with a non-identity operator in at least one string."""
        active = set()
        for ws in self._strings:
            active.update(ws.string.support)
        return tuple(sorted(active))

    @property
    def active_length(self) -> int:
        """Paper's over-approximation of block footprint (Section 4.2)."""
        return len(self.active_qubits)

    @property
    def core_qubits(self) -> Tuple[int, ...]:
        """Qubits with a non-identity operator in *all* strings (Section 5.2)."""
        core = set(self._strings[0].string.support)
        for ws in self._strings[1:]:
            core &= set(ws.string.support)
        return tuple(sorted(core))

    def depth_estimate(self) -> int:
        """Cheap per-block depth estimate used by the DO scheduler padding
        loop: the dominant cost of a string of weight ``w`` is its two CNOT
        trees, ``2 * (w - 1)`` CNOT levels, plus the central rotation."""
        total = 0
        for ws in self._strings:
            w = ws.string.weight
            if w > 0:
                total += 2 * (w - 1) + 1
        return total

    def is_mutually_commuting(self) -> bool:
        """True if every pair of strings in the block commutes."""
        strings = self.pauli_strings
        return all(
            strings[i].commutes_with(strings[j])
            for i in range(len(strings))
            for j in range(i + 1, len(strings))
        )

    def overlaps_qubits(self, other: "PauliBlock") -> bool:
        """True when the two blocks' active-qubit sets intersect."""
        return bool(set(self.active_qubits) & set(other.active_qubits))

    # ------------------------------------------------------------------
    # Transformations (all return new blocks; blocks are conceptually
    # immutable once inside a program)
    # ------------------------------------------------------------------
    def sorted_lexicographically(self) -> "PauliBlock":
        """Sort strings inside the block by the paper's lexicographic key."""
        ordered = sorted(self._strings, key=lambda ws: ws.string.lex_key())
        return PauliBlock(ordered, self.parameter, self.name)

    def with_strings(self, strings: Sequence[WeightedString]) -> "PauliBlock":
        return PauliBlock(strings, self.parameter, self.name)

    def lex_key(self) -> Tuple[int, ...]:
        """Block-level lexicographic key: the key of its first string after
        intra-block sorting (Section 4.1 uses the first string as the block
        representative)."""
        return min(ws.string.lex_key() for ws in self._strings)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._strings)

    def __iter__(self) -> Iterator[WeightedString]:
        return iter(self._strings)

    def __getitem__(self, index: int) -> WeightedString:
        return self._strings[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliBlock):
            return NotImplemented
        return (
            self._strings == other._strings
            and self.parameter == other.parameter
        )

    def __repr__(self) -> str:
        labels = ", ".join(
            f"({ws.string.label}, {ws.weight})" for ws in self._strings[:4]
        )
        if len(self._strings) > 4:
            labels += ", ..."
        tag = f" {self.name!r}" if self.name else ""
        return f"PauliBlock{tag}[{labels}; parameter={self.parameter}]"
